"""E20 extension: the register-pressure / initiation-interval trade-off.

Classic software-pipelining figure: running a loop *slower* than its
rate optimum lets values retire sooner relative to the period, cutting
buffer requirements and MaxLive.  Sweeps T from the optimum upward under
the ``min_buffers`` objective and reports the pressure curve per kernel;
buffer totals must be non-increasing in T.
"""

from conftest import once

from repro.core import Formulation, FormulationOptions, schedule_loop
from repro.core.bounds import modulo_feasible_t
from repro.ddg.kernels import KERNELS
from repro.registers import allocate_registers, max_live, total_buffers

KERNEL_NAMES = ("dotprod", "daxpy", "ll1", "spice")


def test_e20_pressure_vs_rate(benchmark, ppc604):
    def run():
        rows = []
        for name in KERNEL_NAMES:
            ddg = KERNELS[name]()
            t_opt = schedule_loop(ddg, ppc604).achieved_t
            for delta in (0, 1, 2, 4):
                t_period = t_opt + delta
                if not modulo_feasible_t(ddg, ppc604, t_period):
                    continue
                formulation = Formulation(
                    ddg, ppc604, t_period,
                    FormulationOptions(objective="min_buffers"),
                )
                solution = formulation.solve()
                if not solution.status.has_solution:
                    continue
                schedule = formulation.extract(solution)
                rows.append((
                    name, t_period, delta,
                    total_buffers(schedule),
                    max_live(schedule),
                    allocate_registers(schedule).num_registers,
                ))
        return rows

    rows = once(benchmark, run)

    print()
    print(f"{'kernel':<10} {'T':>3} {'dT':>3} {'buffers':>8} "
          f"{'MaxLive':>8} {'registers':>10}")
    for name, t_period, delta, buffers, live, regs in rows:
        print(f"{name:<10} {t_period:>3} {delta:>3} {buffers:>8} "
              f"{live:>8} {regs:>10}")

    # Pressure is non-increasing in T per kernel (minimum buffers can
    # only improve as the period relaxes).
    by_kernel = {}
    for name, t_period, _, buffers, live, regs in rows:
        by_kernel.setdefault(name, []).append((t_period, buffers, regs))
    for name, series in by_kernel.items():
        series.sort()
        for (_, b0, _), (_, b1, _) in zip(series, series[1:]):
            assert b1 <= b0, name
        # Registers always cover MaxLive (validated inside allocation).
    assert len(by_kernel) == len(KERNEL_NAMES)
