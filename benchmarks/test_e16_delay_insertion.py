"""E16 extension: repairing modulo-infeasible periods by delay insertion.

The paper's §3 declares periods that violate the modulo scheduling
constraint out of scope.  Delay insertion (Patel–Davidson) trades extra
latency for compatibility; this bench measures how often the repair
recovers a smaller initiation interval on machines with sparse unclean
tables.
"""

import random

from conftest import once

from repro.core import schedule_loop, verify_schedule
from repro.ddg.generators import GeneratorConfig, random_ddg
from repro.machine import Machine, ReservationTable
from repro.sim import simulate


def _sparse_machine() -> Machine:
    m = Machine("sparse-hazards")
    m.add_fu_type("A", count=1,
                  table=ReservationTable([[1, 0, 1], [0, 1, 0]]))
    m.add_fu_type("B", count=2, table=ReservationTable.clean(2))
    m.add_op_class("hop", "A", latency=3)
    m.add_op_class("mov", "B", latency=2)
    return m


def test_e16_delay_insertion(benchmark):
    machine = _sparse_machine()
    rng = random.Random(16)
    config = GeneratorConfig(
        min_ops=2, max_ops=7,
        class_weights={"hop": 0.5, "mov": 0.5},
    )
    loops = [random_ddg(rng, machine, config, name=f"e16_{i}")
             for i in range(20)]

    def run():
        rows = []
        for ddg in loops:
            plain = schedule_loop(ddg, machine, max_extra=12)
            repaired = schedule_loop(ddg, machine, max_extra=12,
                                     repair_modulo=True)
            if repaired.schedule is not None:
                verify_schedule(repaired.schedule)
                assert simulate(repaired.schedule, iterations=8).ok
            rows.append((ddg.name, plain.achieved_t, repaired.achieved_t))
        return rows

    rows = once(benchmark, run)

    print()
    print(f"{'loop':<10} {'T(plain)':>9} {'T(repaired)':>12} {'gain':>5}")
    improved = 0
    for name, t_plain, t_repaired in rows:
        gain = ""
        if t_plain is not None and t_repaired is not None:
            delta = t_plain - t_repaired
            gain = str(delta)
            if delta > 0:
                improved += 1
            assert t_repaired <= t_plain, name
        print(f"{name:<10} {str(t_plain):>9} {str(t_repaired):>12} "
              f"{gain:>5}")
    print(f"\ndelay insertion improved {improved}/{len(rows)} loops")
    assert improved >= 1  # the repair must pay off somewhere
