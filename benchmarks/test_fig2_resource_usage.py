"""E4 / Figure 2: per-stage modulo resource-usage tables.

Prints the FP reservation table, its modulo wrap at T=2 (the paper's
Figure 2(b) — ``10 / 01 / 11``), and the per-unit stage usage of the
scheduled kernel.
"""

from conftest import once

from repro.core import schedule_loop
from repro.ddg.kernels import motivating_example


def test_fig2_resource_usage(benchmark, motivating):
    result = once(
        benchmark,
        lambda: schedule_loop(
            motivating_example(), motivating, objective="min_sum_t"
        ),
    )
    schedule = result.schedule
    table = motivating.reservation_for("fadd")

    print()
    print(table.render("FP reservation table (Figure 2a)"))
    wrapped = table.modulo_table(2)
    print("modulo wrap at T=2 (Figure 2b):")
    for stage in range(wrapped.shape[0]):
        print(f"  Stage {stage + 1}: {' '.join(map(str, wrapped[stage]))}")
    print()
    print(schedule.render_usage("FP"))
    print()
    print(schedule.render_usage("MEM"))

    # Figure 2(b) quoted rows.
    assert wrapped.tolist() == [[1, 0], [0, 1], [1, 1]]
    # Fixed mapping: per-unit usage is 0/1 everywhere.
    for copy in range(2):
        assert schedule.stage_usage_table("FP", copy).max() <= 1
