"""E14 extension: unroll-and-pipeline vs direct pipelining.

Unrolling by ``k`` lets the scheduler approach fractional recurrence
bounds: the per-original-iteration rate ``T(unrolled)/k`` is never worse
than ``T(base)`` and the recurrence-bound kernels scale exactly
linearly (the critical cycle's ratio is integral).
"""

from conftest import once

from repro.core import schedule_loop, verify_schedule
from repro.ddg.kernels import KERNELS
from repro.ddg.transforms import unroll


KERNEL_NAMES = ("dotprod", "ll11", "daxpy")


def test_e14_unrolling(benchmark, ppc604):
    def run():
        rows = []
        for name in KERNEL_NAMES:
            ddg = KERNELS[name]()
            base = schedule_loop(ddg, ppc604)
            for factor in (2, 3):
                unrolled_ddg = unroll(ddg, factor)
                unrolled = schedule_loop(
                    unrolled_ddg, ppc604, max_extra=30,
                    time_limit_per_t=10.0,
                )
                if unrolled.schedule is not None:
                    verify_schedule(unrolled.schedule)
                rows.append((
                    name, factor, base.achieved_t, unrolled.achieved_t,
                ))
        return rows

    rows = once(benchmark, run)

    print()
    print(f"{'kernel':<10} {'unroll':>7} {'T(base)':>8} {'T(unrolled)':>12} "
          f"{'per-iter rate':>14}")
    for name, factor, t_base, t_unrolled in rows:
        rate = t_unrolled / factor if t_unrolled else float("nan")
        print(f"{name:<10} {factor:>7} {t_base:>8} "
              f"{t_unrolled if t_unrolled else '-':>12} {rate:>14.2f}")

    for name, factor, t_base, t_unrolled in rows:
        if t_unrolled is not None:
            assert t_unrolled <= factor * t_base, (name, factor)
