"""E15: ILP vs exhaustive search — the paper's §7 open question.

The conclusion asks whether "cleverly designed exhaustive search methods
[will] be superior to an ILP solver in terms of efficiency" (ref [2]).
This bench races the two exact methods over the tiny-loop corpus and the
hand kernels: they must agree on the optimal T everywhere (both are
exact), and we report who was faster and by how much.
"""

from conftest import once

from repro.core import schedule_loop
from repro.ddg.kernels import KERNELS
from repro.enumerative import enumerative_schedule_loop


def test_e15_ilp_vs_enumeration(benchmark, tiny_corpus, ppc604):
    def run():
        rows = []
        loops = [KERNELS[k]() for k in sorted(KERNELS)] + [
            g for g in tiny_corpus if g.num_ops <= 10
        ]
        for ddg in loops:
            ilp = schedule_loop(ddg, ppc604, time_limit_per_t=10.0,
                                max_extra=6)
            enumerated = enumerative_schedule_loop(
                ddg, ppc604, time_limit_per_t=10.0, max_extra=6
            )
            ilp_seconds = sum(a.seconds for a in ilp.attempts)
            rows.append((
                ddg.name, ddg.num_ops,
                ilp.achieved_t, enumerated.achieved_t,
                ilp_seconds, enumerated.seconds, enumerated.nodes,
            ))
        return rows

    rows = once(benchmark, run)

    print()
    print(f"{'loop':<12} {'ops':>4} {'T(ilp)':>7} {'T(enum)':>8} "
          f"{'ilp s':>8} {'enum s':>8} {'enum nodes':>11}")
    enum_wins = 0
    compared = 0
    for name, ops, t_ilp, t_enum, s_ilp, s_enum, nodes in rows:
        print(f"{name:<12} {ops:>4} {str(t_ilp):>7} {str(t_enum):>8} "
              f"{s_ilp:>8.4f} {s_enum:>8.4f} {nodes:>11}")
        if t_ilp is not None and t_enum is not None:
            assert t_ilp == t_enum, name  # both exact -> must agree
            compared += 1
            if s_enum < s_ilp:
                enum_wins += 1
    print(f"\nenumeration faster on {enum_wins}/{compared} loops "
          "(the paper's open question, answered for this corpus)")
    assert compared >= len(rows) * 3 // 4
