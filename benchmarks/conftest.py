"""Shared fixtures for the experiment benchmarks.

Each benchmark regenerates one of the paper's tables or figures (see the
experiment index in DESIGN.md) and prints the artifact, so running::

    pytest benchmarks/ --benchmark-only -s

reproduces the full evaluation.  Corpus sizes default to a laptop-friendly
subset; set ``REPRO_FULL=1`` to run the paper-scale 1066-loop corpus.
"""

import os

import pytest

from repro.ddg.generators import suite, suite1066
from repro.machine.presets import motivating_machine, powerpc604

FULL = os.environ.get("REPRO_FULL", "") not in ("", "0")

#: Loops used by corpus-level benches when not in FULL mode.
SMALL_CORPUS_SIZE = 120
#: Loops for the heavier pairwise benches (E10-E12).
TINY_CORPUS_SIZE = 24


@pytest.fixture(scope="session")
def ppc604():
    return powerpc604()


@pytest.fixture(scope="session")
def motivating():
    return motivating_machine()


@pytest.fixture(scope="session")
def corpus(ppc604):
    """The Table 4/5 corpus (1066 loops in FULL mode)."""
    if FULL:
        return suite1066(ppc604)
    return suite(SMALL_CORPUS_SIZE, ppc604, seed=604)


@pytest.fixture(scope="session")
def tiny_corpus(ppc604):
    return suite(TINY_CORPUS_SIZE, ppc604, seed=1995)


def once(benchmark, fn):
    """Run ``fn`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, iterations=1, rounds=1)
