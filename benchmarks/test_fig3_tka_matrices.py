"""E5 / Figure 3: the T, K and A matrices of Schedule B.

The paper publishes ``T = [0,1,3,5,7,11]'``, ``K = [0,0,0,1,1,2]'`` and
the two non-trivial A rows ``[0 1 0 1 0 0]`` (t=1) and ``[0 0 1 0 1 1]``
(t=3).  Our min-sum-t schedule reproduces K and the A-row structure
exactly (the store lands at 10 rather than 11 — one cycle tighter,
equally valid).
"""

from conftest import once

from repro.core import periodic, schedule_loop
from repro.ddg.kernels import motivating_example


def test_fig3_tka_matrices(benchmark, motivating):
    result = once(
        benchmark,
        lambda: schedule_loop(
            motivating_example(), motivating, objective="min_sum_t"
        ),
    )
    schedule = result.schedule

    print()
    print(schedule.render_tka())
    print()
    print("paper's published vectors (Schedule B):")
    print(periodic.format_tka([0, 1, 3, 5, 7, 11], 4,
                              [f"i{i}" for i in range(6)]))

    assert schedule.k_vector == [0, 0, 0, 1, 1, 2]  # matches the paper
    a = schedule.a_matrix
    assert a[1].tolist() == [0, 1, 0, 1, 0, 0]
    # The paper's published T places i5 at slot 3; ours at slot 2 (t=10
    # vs 11).  Both rows carry i2 and i4 at slot 3.
    assert a[3][2] == 1 and a[3][4] == 1

    # The published start times themselves decompose consistently (Eq. 1).
    k, a_paper = periodic.decompose([0, 1, 3, 5, 7, 11], 4)
    periodic.validate([0, 1, 3, 5, 7, 11], k, a_paper, 4)
    assert a_paper[3].tolist() == [0, 0, 1, 0, 1, 1]
