"""E17 extension: hardware sizing via the ``min_fu`` objective (Eq. 5).

The paper's objective context ``min sum_r C_r * R_r`` treats FU counts
as decision variables.  This bench sweeps the initiation interval and
asks, at each T, the *minimum* number of FP and MEM units that still
realize a fixed-mapping schedule — a rate/hardware trade-off curve.
The curve must be non-increasing in T (more time never needs more
hardware), pinning the motivating example's known points: T=4 needs
2 FP units, T=6 needs 1.
"""

from conftest import once

from repro.core import Formulation, FormulationOptions, verify_schedule
from repro.core.errors import ModuloInfeasibleError
from repro.ddg.kernels import motivating_example
from repro.machine.presets import motivating_machine


def test_e17_fu_sizing(benchmark):
    machine = motivating_machine(fp_units=4, mem_units=3)
    ddg = motivating_example()

    def run():
        curve = []
        for t_period in range(3, 13):
            try:
                formulation = Formulation(
                    ddg, machine, t_period,
                    FormulationOptions(objective="min_fu"),
                )
            except ModuloInfeasibleError:
                curve.append((t_period, None, None))
                continue
            solution = formulation.solve()
            if not solution.status.has_solution:
                curve.append((t_period, None, None))
                continue
            schedule = formulation.extract(solution)
            verify_schedule(schedule)
            used = schedule.fu_counts_used or {}
            curve.append((
                t_period, used.get("FP"), used.get("MEM"),
            ))
        return curve

    curve = once(benchmark, run)

    print()
    print(f"{'T':>3} {'FP units':>9} {'MEM units':>10}")
    for t_period, fp, mem in curve:
        print(f"{t_period:>3} {str(fp):>9} {str(mem):>10}")

    by_t = {t: (fp, mem) for t, fp, mem in curve}
    # Known points from the motivating analysis: the T=3 triangle needs
    # one FP unit per op; the paper's two-unit machine first works at
    # T=4; a single FP unit suffices once T reaches 6.
    assert by_t[3][0] == 3
    assert by_t[4][0] == 2
    assert by_t[6][0] == 1
    # Monotonicity: more time never needs more hardware.
    previous_fp = None
    for t_period, fp, _ in curve:
        if fp is None:
            continue
        if previous_fp is not None:
            assert fp <= previous_fp
        previous_fp = fp
