"""E12 ablation: structural-hazard model on vs off.

Scheduling the same loops on the real (unclean) machine and on an
idealized variant with clean pipelines of equal span isolates the
initiation-interval cost of the hazards themselves.  On the motivating
machine the cost is exactly one cycle per iteration (T=4 vs T=3).
"""

from conftest import once

from repro.ddg.kernels import motivating_example
from repro.experiments.ablation import hazard_ablation


def test_e12_hazard_ablation(benchmark, tiny_corpus, motivating, ppc604):
    def run():
        canonical = hazard_ablation([motivating_example()], motivating)
        corpus = hazard_ablation(tiny_corpus, ppc604, time_limit_per_t=5.0)
        return canonical, corpus

    canonical, corpus = once(benchmark, run)

    print()
    print("motivating example:")
    row = canonical.rows[0]
    print(f"  unclean T={row.t_unclean}  idealized T={row.t_clean}  "
          f"hazard cost={row.hazard_cost}")
    print(corpus.render())

    assert row.hazard_cost == 1
    assert canonical.never_negative
    assert corpus.never_negative
