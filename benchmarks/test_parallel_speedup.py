"""Parallel-vs-sequential wall-clock on the checked-in corpus.

Records how long the 24-loop regression corpus takes (a) loop-by-loop
through the sequential driver and (b) through the multiprocess batch
runner, and prints the ratio.  On a multi-core box the batch runner
should approach ``min(jobs, loops)``-way speedup since per-loop solves
are independent; on a single core it documents the pool overhead
instead.  No speedup is *asserted* — CI hardware varies — but the
equivalence of results is.
"""

import os
import pathlib
import time

from conftest import once

from repro.core import schedule_loop
from repro.ddg.builders import parse_ddg
from repro.parallel import run_batch

CORPUS_DIR = pathlib.Path(__file__).resolve().parent.parent / "corpus"
FILES = sorted(CORPUS_DIR.glob("*.ddg"))
TIME_LIMIT = 10.0
MAX_EXTRA = 30


def _run_sequential(machine):
    results = []
    for path in FILES:
        ddg = parse_ddg(path.read_text(encoding="utf-8"))
        results.append(
            schedule_loop(ddg, machine, time_limit_per_t=TIME_LIMIT,
                          max_extra=MAX_EXTRA)
        )
    return results


def test_parallel_speedup(benchmark, ppc604):
    jobs = max(2, os.cpu_count() or 1)

    start = time.monotonic()
    sequential = _run_sequential(ppc604)
    seq_seconds = time.monotonic() - start

    report = once(
        benchmark,
        lambda: run_batch(
            FILES, ppc604, jobs=jobs, time_limit_per_t=TIME_LIMIT,
            max_extra=MAX_EXTRA,
        ),
    )
    par_seconds = report.total_seconds

    print()
    print(
        f"corpus of {len(FILES)} loops: sequential {seq_seconds:.2f}s, "
        f"batch ({jobs} jobs) {par_seconds:.2f}s, "
        f"speedup {seq_seconds / par_seconds:.2f}x "
        f"({os.cpu_count()} CPU(s) visible)"
    )

    # Semantics must not drift, whatever the clock says.
    assert report.failed == 0
    for seq_result, entry in zip(sequential, report.entries):
        assert entry.result.achieved_t == seq_result.achieved_t
        assert (
            entry.result.is_rate_optimal_proven
            == seq_result.is_rate_optimal_proven
        )
