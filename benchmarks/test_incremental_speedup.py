"""Incremental T-sweep ablation: shared context + warm LP bases on vs off.

Sweeps a seeded corpus on the §2 motivating machine (the hazard-heavy
configuration where infeasibility proofs at T_lb..T-1 dominate the
sweep) under two regimes per backend:

* **baseline** — ``incremental=False`` and, on the pure-python solver,
  ``REPRO_LP_ENGINE=cold``: every attempt rebuilds its analysis from
  scratch and every branch-and-bound node solves its LP cold;
* **incremental** — the defaults: a sweep-wide
  :class:`repro.core.incremental.SweepContext` (shared T-independent
  analysis, recycled infeasibility cuts) plus warm dual-simplex
  restarts across nodes.

Asserts the headline claim — at least a 15% end-to-end wall-clock
reduction on the ``bnb`` backend and non-regression on ``highs`` (where
scipy exposes no basis I/O, so only the formulation-side reuse applies)
— and the safety claim: with the LP engine held fixed, toggling
``incremental`` leaves every schedule byte-identical (start cycles, FU
colors, per-period statuses, bounds, proof flags).  Writes the measured
numbers to ``BENCH_incremental.json`` at the repo root.

``warmstart=False`` keeps the heuristic pre-pass out of the loop so the
measurement isolates the ILP sweep the issue targets.
"""

import json
import os
import pathlib
import time

from conftest import once

from repro.core import schedule_loop, verify_schedule
from repro.core.incremental import clear_contexts, incremental_stats
from repro.ddg.generators import suite
from repro.ilp.branch_bound import LP_ENGINE_ENV

BENCH_PATH = (
    pathlib.Path(__file__).resolve().parent.parent / "BENCH_incremental.json"
)
CORPUS_SIZE = 40
SEED = 604
MAX_EXTRA = 30
#: Loops small enough for the pure-python solver's practical range.
BNB_MAX_OPS = 8
BNB_TIME_LIMIT = 30.0
HIGHS_TIME_LIMIT = 10.0


def _sweep(loops, machine, backend, time_limit, incremental, lp_engine):
    """Run the corpus sequentially; return (results, wall_seconds)."""
    clear_contexts()
    previous = os.environ.get(LP_ENGINE_ENV)
    os.environ[LP_ENGINE_ENV] = lp_engine
    try:
        start = time.monotonic()
        results = [
            schedule_loop(
                ddg, machine, backend=backend, warmstart=False,
                time_limit_per_t=time_limit, max_extra=MAX_EXTRA,
                incremental=incremental,
            )
            for ddg in loops
        ]
        elapsed = time.monotonic() - start
    finally:
        if previous is None:
            os.environ.pop(LP_ENGINE_ENV, None)
        else:
            os.environ[LP_ENGINE_ENV] = previous
    return results, elapsed


def _fields(result):
    """Everything the incremental toggle is forbidden to change."""
    return {
        "achieved_t": result.achieved_t,
        "proven": result.is_rate_optimal_proven,
        "t_dep": result.bounds.t_dep,
        "t_res": result.bounds.t_res,
        "statuses": [(a.t_period, a.status) for a in result.attempts],
        "starts": result.schedule.starts if result.schedule else None,
        "colors": (sorted(result.schedule.colors.items())
                   if result.schedule else None),
    }


def _assert_byte_identical(on, off):
    for res_on, res_off in zip(on, off):
        assert _fields(res_on) == _fields(res_off), res_on.loop_name
        if res_on.schedule is not None:
            verify_schedule(res_on.schedule)


def _summarize(results, elapsed):
    reused = rebuilt = skipped = 0
    for result in results:
        for attempt in result.attempts:
            stats = attempt.model_stats
            if not stats:
                continue
            if "cut_skip" in stats:
                skipped += 1
                continue
            reused += stats.get("reused_rows", 0)
            rebuilt += stats.get("rebuilt_rows", 0)
    return {
        "wall_seconds": round(elapsed, 3),
        "scheduled": sum(1 for r in results if r.schedule is not None),
        "reused_rows": reused,
        "rebuilt_rows": rebuilt,
        "attempts_cut_skipped": skipped,
    }


def test_incremental_speedup(benchmark, motivating):
    loops = [
        ddg for ddg in suite(CORPUS_SIZE, motivating, seed=SEED)
        if ddg.num_ops <= BNB_MAX_OPS
    ]
    assert len(loops) >= 10, "corpus filter left too few bnb-sized loops"

    # --- bnb: the backend where both reuse layers apply -------------------
    bnb_off, bnb_off_secs = _sweep(
        loops, motivating, "bnb", BNB_TIME_LIMIT,
        incremental=False, lp_engine="cold",
    )
    def _headline():
        return _sweep(
            loops, motivating, "bnb", BNB_TIME_LIMIT,
            incremental=True, lp_engine="warm",
        )
    bnb_on, bnb_on_secs = once(benchmark, _headline)
    bnb_reduction = 1.0 - bnb_on_secs / bnb_off_secs
    bnb_stats = incremental_stats()

    # Safety: same engine, incremental toggled — byte-identical results.
    bnb_off_warm, _ = _sweep(
        loops, motivating, "bnb", BNB_TIME_LIMIT,
        incremental=False, lp_engine="warm",
    )
    _assert_byte_identical(bnb_on, bnb_off_warm)

    # --- highs: formulation-side reuse only, must not regress -------------
    highs_off, highs_off_secs = _sweep(
        loops, motivating, "highs", HIGHS_TIME_LIMIT,
        incremental=False, lp_engine="warm",
    )
    highs_on, highs_on_secs = _sweep(
        loops, motivating, "highs", HIGHS_TIME_LIMIT,
        incremental=True, lp_engine="warm",
    )
    _assert_byte_identical(highs_on, highs_off)
    highs_reduction = 1.0 - highs_on_secs / highs_off_secs

    doc = {
        "machine": motivating.name,
        "corpus_size": len(loops),
        "seed": SEED,
        "max_ops": BNB_MAX_OPS,
        "warmstart": False,
        "bnb": {
            "time_limit_per_t": BNB_TIME_LIMIT,
            "baseline": _summarize(bnb_off, bnb_off_secs),
            "incremental": _summarize(bnb_on, bnb_on_secs),
            "reduction": round(bnb_reduction, 4),
            "analysis_hits": bnb_stats["analysis_hits"],
            "cuts_harvested": bnb_stats["cuts_harvested"],
        },
        "highs": {
            "time_limit_per_t": HIGHS_TIME_LIMIT,
            "baseline": _summarize(highs_off, highs_off_secs),
            "incremental": _summarize(highs_on, highs_on_secs),
            "reduction": round(highs_reduction, 4),
        },
        "byte_identical": True,
    }
    BENCH_PATH.write_text(json.dumps(doc, indent=2) + "\n",
                          encoding="utf-8")
    print(
        f"\nincremental sweep ({len(loops)} loops, motivating machine): "
        f"bnb {bnb_off_secs:.2f}s -> {bnb_on_secs:.2f}s "
        f"({bnb_reduction:.1%}), "
        f"highs {highs_off_secs:.2f}s -> {highs_on_secs:.2f}s "
        f"({highs_reduction:.1%})"
    )
    assert bnb_reduction >= 0.15, doc
    # highs gains are formulation-side only; require non-regression with
    # a noise margin rather than a hard speedup.
    assert highs_reduction >= -0.10, doc
