"""E10: ILP vs iterative modulo scheduling vs no pipelining.

Shape claims (cf. [9]'s heuristic comparison and the paper's §7):
the ILP is rate-optimal, so its T never exceeds the heuristic's II;
and software pipelining clearly beats back-to-back iterations.
"""

from conftest import once

from repro.experiments.compare import run_compare


def test_e10_ilp_vs_heuristic(benchmark, tiny_corpus, ppc604):
    comparison = once(
        benchmark,
        lambda: run_compare(tiny_corpus, ppc604, time_limit_per_t=5.0),
    )

    print()
    print(comparison.render())
    for row in comparison.rows:
        print(
            f"  {row.loop_name}: T_lb={row.t_lb} ILP={row.ilp_t} "
            f"IMS={row.heuristic_ii} slack={row.slack_ii} "
            f"sequential={row.sequential_ii}"
        )

    assert comparison.ilp_never_worse
    assert len(comparison.both_completed) >= len(tiny_corpus) * 3 // 4
    assert comparison.mean_speedup_vs_sequential > 1.2
