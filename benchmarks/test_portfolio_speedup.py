"""(period x backend) portfolio racing vs. the best single backend.

Two claims, measured on the hazard-heavy ``deep-unclean`` machine (deep
non-pipelined reservation tables — the structural-hazard regime the
paper targets, and the slice where CNF propagation beats LP-based
branch-and-bound):

1. **SAT wins a slice outright**: summed over the corpus slice, the
   pure-python CDCL backend is faster than *both* ILP backends at the
   same verdicts (feasibility agreement is checked loop by loop).
2. **The portfolio tracks the best backend**: racing
   ``(period x backend)`` cells with first-winner-kills-losers costs no
   more than the best single backend plus dispatch overhead — without
   knowing in advance which backend that is.

Writes the measured numbers to ``BENCH_portfolio.json`` at the repo
root (shipped with the bench-smoke CI artifacts next to
``BENCH_incremental.json``).

``warmstart=False`` keeps the heuristic pre-pass from settling loops
before any backend runs, so the measurement isolates backend search.
"""

import json
import pathlib
import time

import pytest
from conftest import once

from repro.core import schedule_loop
from repro.ddg.generators import suite
from repro.machine.presets import deep_unclean
from repro.parallel import race_periods
from repro.parallel.cache import clear_caches

BENCH_PATH = (
    pathlib.Path(__file__).resolve().parent.parent / "BENCH_portfolio.json"
)
CORPUS_SIZE = 30
SEED = 604
#: deep-unclean interference blows up past this size on the pure-python
#: ILP solver; the slice is exactly the paper-scale "small hot loop".
MAX_OPS = 10
TIME_LIMIT = 5.0
MAX_EXTRA = 10
ROSTER = ("highs", "bnb", "sat")
#: Dispatch allowance for claim 2: per-race pool spin-up plus the
#: loser-kill latency, measured generously for CI noise.
OVERHEAD_FRACTION = 0.50
OVERHEAD_SECONDS = 10.0


@pytest.fixture(scope="module")
def machine():
    return deep_unclean()


@pytest.fixture(scope="module")
def loops(machine):
    corpus = [
        ddg for ddg in suite(CORPUS_SIZE, machine, seed=SEED)
        if ddg.num_ops <= MAX_OPS
    ]
    assert len(corpus) >= 10, "slice filter left too few loops"
    return corpus


def _single_sweep(loops, machine, backend):
    """Sequential per-loop sweeps on one backend; (results, seconds)."""
    clear_caches()
    start = time.monotonic()
    results = [
        schedule_loop(
            ddg, machine, backend=backend, warmstart=False,
            time_limit_per_t=TIME_LIMIT, max_extra=MAX_EXTRA,
        )
        for ddg in loops
    ]
    return results, time.monotonic() - start


def _portfolio_sweep(loops, machine):
    clear_caches()
    start = time.monotonic()
    results = [
        race_periods(
            ddg, machine, backends=ROSTER, warmstart=False,
            time_limit_per_t=TIME_LIMIT, max_extra=MAX_EXTRA,
            jobs=4,
        )
        for ddg in loops
    ]
    return results, time.monotonic() - start


def _summary(results, seconds):
    return {
        "wall_seconds": round(seconds, 3),
        "scheduled": sum(
            1 for r in results if r.schedule is not None
        ),
        "proven": sum(1 for r in results if r.is_rate_optimal_proven),
        "achieved": {
            r.loop_name: r.achieved_t for r in results
        },
    }


def _assert_verdicts_agree(per_backend, loops):
    """Hard conflicts only: feasible-vs-infeasible at the same T.

    Timeout-induced differences in achieved T are legitimate (a slower
    backend may fail to settle a period inside the budget); what can
    never happen is one backend scheduling a period a sibling *proved*
    infeasible.
    """
    conflicts = []
    for ddg in loops:
        verdicts = {}
        for backend, (results, _) in per_backend.items():
            result = next(
                r for r in results if r.loop_name == ddg.name
            )
            for a in result.attempts:
                if a.status in ("optimal", "feasible"):
                    verdicts.setdefault(a.t_period, {})[backend] = True
                elif a.status in ("infeasible", "modulo_infeasible"):
                    verdicts.setdefault(a.t_period, {})[backend] = False
        for t, by_backend in verdicts.items():
            if len(set(by_backend.values())) > 1:
                conflicts.append((ddg.name, t, by_backend))
    assert not conflicts, conflicts


def test_portfolio_speedup(benchmark, machine, loops):
    per_backend = {}
    for backend in ROSTER:
        per_backend[backend] = _single_sweep(loops, machine, backend)

    _assert_verdicts_agree(per_backend, loops)

    portfolio_results, portfolio_secs = once(
        benchmark, lambda: _portfolio_sweep(loops, machine)
    )

    # Per-loop winner tally for the report.
    wins = {}
    for result in portfolio_results:
        name = (result.portfolio or {}).get("winner_backend", "none")
        wins[name] = wins.get(name, 0) + 1

    singles = {b: secs for b, (_, secs) in per_backend.items()}
    best_backend = min(singles, key=singles.get)
    best_secs = singles[best_backend]
    sat_secs = singles["sat"]

    doc = {
        "machine": machine.name,
        "corpus_size": len(loops),
        "seed": SEED,
        "max_ops": MAX_OPS,
        "time_limit_per_t": TIME_LIMIT,
        "warmstart": False,
        "roster": list(ROSTER),
        "single_backend": {
            b: _summary(*per_backend[b]) for b in ROSTER
        },
        "portfolio": {
            **_summary(portfolio_results, portfolio_secs),
            "jobs": 4,
            "wins": wins,
            "killed_running": sum(
                (r.portfolio or {}).get("killed_running", 0)
                for r in portfolio_results
            ),
            "cancelled_queued": sum(
                (r.portfolio or {}).get("cancelled_queued", 0)
                for r in portfolio_results
            ),
        },
        "best_single_backend": best_backend,
        "best_single_seconds": round(best_secs, 3),
        "portfolio_vs_best_single": round(
            portfolio_secs / best_secs, 3
        ),
        "sat_vs_highs": round(sat_secs / singles["highs"], 3),
        "sat_vs_bnb": round(sat_secs / singles["bnb"], 3),
        "verdicts_agree": True,
    }
    BENCH_PATH.write_text(
        json.dumps(doc, indent=2) + "\n", encoding="utf-8"
    )
    print(
        f"\nportfolio sweep ({len(loops)} loops, {machine.name}): "
        + "  ".join(
            f"{b} {secs:.2f}s" for b, secs in singles.items()
        )
        + f"  portfolio {portfolio_secs:.2f}s "
        f"(best single: {best_backend})"
    )

    # Claim 1: the SAT backend wins this slice outright.
    assert sat_secs < singles["highs"], doc
    assert sat_secs < singles["bnb"], doc

    # The portfolio must schedule and prove no worse than the best
    # single backend (kills must never cost answers).
    best_results = per_backend[best_backend][0]
    assert (
        sum(1 for r in portfolio_results if r.schedule is not None)
        >= sum(1 for r in best_results if r.schedule is not None)
    ), doc

    # Claim 2: portfolio wall-clock tracks the best single backend.
    allowance = best_secs * OVERHEAD_FRACTION + OVERHEAD_SECONDS
    assert portfolio_secs <= best_secs + allowance, doc
