"""E6 / Figure 4: the circular-arc coloring instance behind the mapping.

Prints each FP op's occupied (stage, slot) cells around the period circle
and the overlap edges; verifies the ILP's coloring is a proper coloring
of the overlap graph and that at T=3 the overlap graph needs more colors
than units exist (why T=3 dies).
"""

from conftest import once

from repro.core import schedule_loop
from repro.core.schedule import Schedule
from repro.ddg.kernels import motivating_example
from repro.experiments.motivating import (
    circular_arcs,
    overlap_edges,
    render_arcs,
)


def test_fig4_circular_arcs(benchmark, motivating):
    result = once(
        benchmark,
        lambda: schedule_loop(
            motivating_example(), motivating, objective="min_sum_t"
        ),
    )
    schedule = result.schedule

    print()
    print(render_arcs(schedule, "FP"))

    arcs = circular_arcs(schedule, "FP")
    assert set(arcs) == {2, 3, 4}
    for i, j in overlap_edges(schedule, "FP"):
        assert schedule.colors[i] != schedule.colors[j]

    # At T=3, any offsets make the three FP arcs pairwise overlap on
    # stage 3 (arcs of length 2 in Z_3): a 3-clique on 2 units.
    t3 = Schedule(
        ddg=schedule.ddg, machine=motivating, t_period=3,
        starts=[0, 1, 3, 5, 7, 11], colors={},
    )
    edges = overlap_edges(t3, "FP")
    assert len(edges) == 3  # triangle
    print(f"at T=3 the FP overlap graph is a triangle: {edges} "
          "-> needs 3 units, only 2 exist")
