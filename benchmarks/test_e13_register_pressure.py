"""E13 extension (paper §7): buffer/register pressure under the ILP.

The paper notes its framework can incorporate the buffer-minimization
objective of Ning–Gao [18] and the MaxLive metric of Eichenberger et
al. [5].  This bench compares, per kernel at the rate-optimal T, the
buffer totals and MaxLive of a plain feasibility solution vs the
``min_buffers`` objective — the latter must never be worse on the
objective it optimizes.
"""

from conftest import once

from repro.core import Formulation, FormulationOptions, schedule_loop
from repro.ddg.kernels import KERNELS
from repro.registers import max_live, total_buffers, unroll_factor


def test_e13_register_pressure(benchmark, ppc604):
    def run():
        rows = []
        for name in sorted(KERNELS):
            ddg = KERNELS[name]()
            t_opt = schedule_loop(ddg, ppc604).achieved_t
            plain = Formulation(ddg, ppc604, t_opt)
            plain_schedule = plain.extract(plain.solve())
            tuned = Formulation(
                ddg, ppc604, t_opt,
                FormulationOptions(objective="min_buffers"),
            )
            tuned_schedule = tuned.extract(tuned.solve())
            rows.append((
                name, t_opt,
                total_buffers(plain_schedule), total_buffers(tuned_schedule),
                max_live(plain_schedule), max_live(tuned_schedule),
                unroll_factor(tuned_schedule),
            ))
        return rows

    rows = once(benchmark, run)

    print()
    print(f"{'kernel':<12} {'T':>3} {'buf(plain)':>11} {'buf(min)':>9} "
          f"{'maxlive(plain)':>15} {'maxlive(min)':>13} {'MVE unroll':>11}")
    for name, t, b0, b1, m0, m1, u in rows:
        print(f"{name:<12} {t:>3} {b0:>11} {b1:>9} {m0:>15} {m1:>13} {u:>11}")

    for name, _, b0, b1, _, _, u in rows:
        assert b1 <= b0, name          # objective honoured
        assert u >= 1
