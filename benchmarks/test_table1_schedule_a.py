"""E2 / Table 1: Schedule A — valid only under run-time FU selection.

The counting-only relaxation (§4.1 constraints alone) is feasible at
T = T_lb = 3; the resulting schedule executes hazard-free when each
*instance* may pick its FP unit at run time, yet admits no fixed
per-instruction assignment — the phenomenon motivating the paper.
"""

import pytest
from conftest import once

from repro.core import Formulation, FormulationOptions, MappingError
from repro.core.schedule import greedy_mapping
from repro.ddg.kernels import motivating_example
from repro.sim import simulate


def test_table1_schedule_a(benchmark, motivating):
    def build():
        ddg = motivating_example()
        formulation = Formulation(
            ddg, motivating, 3,
            FormulationOptions(mapping=False, objective="min_sum_t"),
        )
        solution = formulation.solve()
        assert solution.status.has_solution
        return formulation.extract(solution, require_mapping=False)

    schedule_a = once(benchmark, build)

    print()
    print("Schedule A (T=3, counting-only):")
    print(schedule_a.render_kernel())
    dynamic = simulate(schedule_a, iterations=16, dynamic_mapping=True)
    print(f"dynamic (run-time FU choice) execution ok: {dynamic.ok}")

    assert dynamic.ok
    with pytest.raises(MappingError):
        greedy_mapping(
            schedule_a.ddg, motivating, schedule_a.starts, 3
        )
    print("fixed FU assignment: impossible (MappingError) — as in Table 1")
