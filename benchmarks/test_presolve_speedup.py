"""Presolve ablation: model size and wall-clock with the pass on vs off.

Schedules a 60-loop synthetic corpus on the §2 motivating machine (the
hazard-heavy configuration where pair interference dominates the model)
twice — presolve enabled and disabled — through the same sequential
driver.  Asserts the differential guarantee (identical achieved periods
and per-period verdicts wherever both runs reached a definitive answer)
and the headline claim: at least a 30% reduction in total
build+lower+solve time or at least a 40% reduction in constraint rows.
Writes the measured numbers to ``BENCH_presolve.json`` at the repo root.
"""

import json
import pathlib

from conftest import once

from repro.core import schedule_loop, verify_schedule
from repro.ddg.generators import suite
from repro.ilp.solution import SolveStatus

BENCH_PATH = (
    pathlib.Path(__file__).resolve().parent.parent / "BENCH_presolve.json"
)
CORPUS_SIZE = 60
SEED = 604
TIME_LIMIT = 10.0
MAX_EXTRA = 30
TIMED_OUT = SolveStatus.TIME_LIMIT.value


def _run_corpus(loops, machine, presolve):
    return [
        schedule_loop(
            ddg, machine, backend="highs", time_limit_per_t=TIME_LIMIT,
            max_extra=MAX_EXTRA, presolve=presolve,
        )
        for ddg in loops
    ]


def _totals(results):
    """Aggregate model sizes and phase seconds over every solved attempt."""
    rows = nnz = variables = 0
    seconds = 0.0
    for result in results:
        for attempt in result.attempts:
            stats = attempt.model_stats
            if not stats:
                continue  # modulo_infeasible periods never built a model
            rows += stats["constraints"]
            nnz += stats["nonzeros"]
            variables += stats["variables"]
            seconds += stats["total_seconds"]
    return {
        "rows": rows,
        "nonzeros": nnz,
        "variables": variables,
        "seconds": round(seconds, 6),
    }


def _assert_equivalent(on, off):
    for res_on, res_off in zip(on, off):
        statuses_on = {a.t_period: a.status for a in res_on.attempts}
        statuses_off = {a.t_period: a.status for a in res_off.attempts}
        timed_out = TIMED_OUT in statuses_on.values() or TIMED_OUT in (
            statuses_off.values()
        )
        if not timed_out:
            assert res_on.achieved_t == res_off.achieved_t, (
                res_on.loop_name
            )
        for t_period in set(statuses_on) & set(statuses_off):
            pair = (statuses_on[t_period], statuses_off[t_period])
            if TIMED_OUT in pair:
                continue
            assert pair[0] == pair[1], (res_on.loop_name, t_period)
        if res_on.schedule is not None:
            verify_schedule(res_on.schedule)


def test_presolve_speedup(benchmark, motivating):
    loops = suite(CORPUS_SIZE, motivating, seed=SEED)

    off = _run_corpus(loops, motivating, presolve=False)
    on = once(benchmark, lambda: _run_corpus(loops, motivating,
                                             presolve=True))
    _assert_equivalent(on, off)

    totals_on, totals_off = _totals(on), _totals(off)
    rows_reduction = 1.0 - totals_on["rows"] / totals_off["rows"]
    time_reduction = 1.0 - totals_on["seconds"] / totals_off["seconds"]
    scheduled = sum(1 for r in on if r.schedule is not None)

    doc = {
        "machine": motivating.name,
        "backend": "highs",
        "corpus_size": CORPUS_SIZE,
        "seed": SEED,
        "time_limit_per_t": TIME_LIMIT,
        "scheduled": scheduled,
        "presolve_on": totals_on,
        "presolve_off": totals_off,
        "rows_reduction": round(rows_reduction, 4),
        "time_reduction": round(time_reduction, 4),
    }
    BENCH_PATH.write_text(json.dumps(doc, indent=2) + "\n",
                          encoding="utf-8")
    print(
        f"\npresolve ablation ({CORPUS_SIZE} loops, motivating machine): "
        f"rows {totals_off['rows']} -> {totals_on['rows']} "
        f"({rows_reduction:.1%}), "
        f"time {totals_off['seconds']:.2f}s -> "
        f"{totals_on['seconds']:.2f}s ({time_reduction:.1%})"
    )
    assert time_reduction >= 0.30 or rows_reduction >= 0.40, doc
