"""E8 / Table 4: scheduling performance over the loop corpus.

Paper (766 loops scheduled within budget, of 1066):

    735 at T = T_lb (mean 6 nodes), 20 at T_lb+2 (16), 11 at T_lb+4 (17)

i.e. ~96% of scheduled loops achieve the lower bound, and the loops that
miss it are markedly larger.  This bench reproduces the buckets on the
synthetic corpus (set REPRO_FULL=1 for all 1066 loops).
"""

from conftest import FULL, once

from repro.experiments.table4 import PAPER_TABLE4, run_table4


def test_table4_scheduling_performance(benchmark, corpus, ppc604):
    table = once(
        benchmark,
        lambda: run_table4(
            corpus, ppc604,
            time_limit_per_t=10.0 if FULL else 5.0,
        ),
    )

    print()
    print(table.render())
    print()
    print("paper's Table 4 (for reference):")
    for delta, (loops, nodes) in sorted(PAPER_TABLE4.items()):
        label = "T = T_lb" if delta == 0 else f"T = T_lb + {delta}"
        print(f"{loops:>8}  {label:<22}  {nodes}")

    # Shape claim: the overwhelming majority of scheduled loops achieve
    # the lower bound (paper: 96%; "the fraction where T_lb was not
    # tight is similar to what others have found [13, 16]").
    assert table.fraction_at_t_lb >= 0.85
    # Every off-bound loop was *proven* off: all smaller admissible
    # periods returned infeasible, never a budget timeout (this is
    # where we differ from 1995 — the modern solver always finishes).
    for result in table.results:
        if result.delta_from_lb and result.delta_from_lb > 0:
            assert result.is_rate_optimal_proven, result.loop_name
