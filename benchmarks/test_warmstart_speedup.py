"""Warm-start ablation: sweep wall-clock with the heuristic pass on vs off.

Schedules a synthetic corpus on the §2 motivating machine (the
hazard-heavy configuration) twice per backend — warm starts enabled and
disabled — through the same sequential driver.  HiGHS takes the full
corpus; the pure-python branch-and-bound backend takes the small-loop
subset (it is the research baseline, not the production path).  Asserts
the differential guarantee (identical achieved periods wherever both
runs reached a definitive answer) and the headline claim per backend: at
least a 10% wall-clock reduction, or the heuristic settling at least a
third of the corpus with zero ILP solves.  Writes the measured numbers
to ``BENCH_warmstart.json`` at the repo root.
"""

import json
import pathlib

from conftest import once

from repro.core import schedule_loop, verify_schedule
from repro.ddg.generators import suite
from repro.ilp.solution import SolveStatus

BENCH_PATH = (
    pathlib.Path(__file__).resolve().parent.parent / "BENCH_warmstart.json"
)
CORPUS_SIZE = 40
SEED = 604
MAX_EXTRA = 30
TIMED_OUT = SolveStatus.TIME_LIMIT.value
#: Per-backend corpus filter and per-period budget.
BACKENDS = {
    "highs": {"max_ops": None, "time_limit": 10.0},
    "bnb": {"max_ops": 8, "time_limit": 5.0},
}


def _run_corpus(loops, machine, backend, warmstart, time_limit):
    return [
        schedule_loop(
            ddg, machine, backend=backend, time_limit_per_t=time_limit,
            max_extra=MAX_EXTRA, warmstart=warmstart,
        )
        for ddg in loops
    ]


def _assert_equivalent(on, off):
    for res_on, res_off in zip(on, off):
        timed_out = any(
            a.status == TIMED_OUT
            for r in (res_on, res_off)
            for a in r.attempts
        )
        if not timed_out:
            assert res_on.achieved_t == res_off.achieved_t, (
                res_on.loop_name
            )
        if res_on.schedule is not None:
            verify_schedule(res_on.schedule)


def _totals(results):
    return {
        "seconds": round(sum(r.total_seconds for r in results), 6),
        "ilp_solves": sum(
            r.warmstart.ilp_solves if r.warmstart is not None else 0
            for r in results
        ),
        "scheduled": sum(1 for r in results if r.schedule is not None),
    }


def test_warmstart_speedup(benchmark, motivating):
    corpus = suite(CORPUS_SIZE, motivating, seed=SEED)
    per_backend_loops = {
        backend: [
            ddg for ddg in corpus
            if cfg["max_ops"] is None or ddg.num_ops <= cfg["max_ops"]
        ]
        for backend, cfg in BACKENDS.items()
    }

    cold = {
        backend: _run_corpus(
            per_backend_loops[backend], motivating, backend,
            warmstart=False, time_limit=BACKENDS[backend]["time_limit"],
        )
        for backend in BACKENDS
    }
    warm = once(
        benchmark,
        lambda: {
            backend: _run_corpus(
                per_backend_loops[backend], motivating, backend,
                warmstart=True,
                time_limit=BACKENDS[backend]["time_limit"],
            )
            for backend in BACKENDS
        },
    )

    doc = {
        "machine": motivating.name,
        "corpus_size": CORPUS_SIZE,
        "seed": SEED,
        "max_extra": MAX_EXTRA,
        "backends": {},
    }
    lines = []
    for backend in BACKENDS:
        _assert_equivalent(warm[backend], cold[backend])
        totals_on, totals_off = _totals(warm[backend]), _totals(cold[backend])
        skipped = sum(
            1 for r in warm[backend]
            if r.warmstart is not None and r.warmstart.skipped_all_ilp
        )
        time_reduction = (
            1.0 - totals_on["seconds"] / totals_off["seconds"]
            if totals_off["seconds"] else 0.0
        )
        doc["backends"][backend] = {
            "loops": len(per_backend_loops[backend]),
            "time_limit_per_t": BACKENDS[backend]["time_limit"],
            "warmstart_on": totals_on,
            "warmstart_off": totals_off,
            "skipped_ilp": skipped,
            "time_reduction": round(time_reduction, 4),
        }
        lines.append(
            f"{backend}: {len(per_backend_loops[backend])} loops, "
            f"time {totals_off['seconds']:.2f}s -> "
            f"{totals_on['seconds']:.2f}s ({time_reduction:.1%}), "
            f"ILP solves {totals_off['ilp_solves']} -> "
            f"{totals_on['ilp_solves']}, "
            f"{skipped} settled by heuristic alone"
        )

    BENCH_PATH.write_text(json.dumps(doc, indent=2) + "\n",
                          encoding="utf-8")
    print("\nwarm-start ablation (motivating machine):")
    for line in lines:
        print(f"  {line}")
    for backend, stats in doc["backends"].items():
        assert (
            stats["time_reduction"] >= 0.10
            or stats["skipped_ilp"] >= stats["loops"] // 3
        ), (backend, stats)
