"""E19 extension: throughput response to hardware (unit-count sweep).

Sweeps the motivating machine's FP and MEM unit counts over a corpus of
FP-heavy loops and reports the mean rate-optimal T per configuration.
Per loop, adding units can only relax the ILP, so with every loop
scheduled in every configuration the mean is monotone non-increasing —
asserted — and the curve shows where the corpus stops being
FP-bound (diminishing returns).
"""

import random

from conftest import once

from repro.ddg.generators import GeneratorConfig, random_ddg
from repro.experiments.sweep import fp_mem_sweep
from repro.machine.presets import motivating_machine


def test_e19_machine_sweep(benchmark):
    rng = random.Random(19)
    machine = motivating_machine()
    config = GeneratorConfig(
        min_ops=3, max_ops=8,
        class_weights={"fadd": 0.35, "fmul": 0.25, "load": 0.25,
                       "store": 0.15},
    )
    loops = [random_ddg(rng, machine, config, name=f"e19_{i}")
             for i in range(16)]

    result = once(
        benchmark,
        lambda: fp_mem_sweep(loops, fp_range=(1, 2, 3), mem_range=(1, 2),
                             max_extra=25),
    )

    print()
    print(result.render())

    # Every loop must schedule in every configuration for comparability.
    assert all(p.scheduled == len(loops) for p in result.points)
    assert result.monotone_in_fp()
    # The second FP unit must actually help an FP-heavy corpus...
    assert (result.point(2, 1).mean_t
            < result.point(1, 1).mean_t - 0.05)
    # ...while the mean never drops below the dependence-driven floor.
    for point in result.points:
        assert point.mean_t >= point.mean_t_lb
