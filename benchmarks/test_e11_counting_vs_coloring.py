"""E11 ablation: aggregate counting (§4.1) vs full coloring (§4.2).

Counting-only feasibility does not imply a fixed FU assignment exists;
the motivating example is the canonical witness (counting says T=3,
coloring proves T=4).  Over a random corpus, every reported gap must be
certified by an actual mapping failure.
"""

from conftest import once

from repro.ddg.kernels import motivating_example
from repro.experiments.ablation import counting_vs_coloring


def test_e11_counting_vs_coloring(benchmark, tiny_corpus, motivating, ppc604):
    def run():
        canonical = counting_vs_coloring(
            [motivating_example()], motivating
        )
        corpus_rows = counting_vs_coloring(
            tiny_corpus, ppc604, time_limit_per_t=5.0
        )
        return canonical, corpus_rows

    canonical, corpus_rows = once(benchmark, run)

    row = canonical[0]
    print()
    print(f"motivating example: counting T={row.t_counting}, "
          f"full T={row.t_full}, gap witnessed={row.gap_witnessed}")
    gaps = [r for r in corpus_rows if r.has_gap]
    print(f"corpus: {len(gaps)}/{len(corpus_rows)} loops show a "
          "counting-vs-coloring gap")

    assert row.t_counting == 3 and row.t_full == 4
    assert row.gap_witnessed
    for r in corpus_rows:
        if r.t_counting is not None and r.t_full is not None:
            assert r.t_full >= r.t_counting
        if r.has_gap:
            assert r.gap_witnessed
