"""Persistent store: cold-vs-warm wall-clock over a synthetic corpus.

Schedules a 40-loop corpus on the PowerPC 604 model three times through
the same sequential driver against one on-disk store: a cold run that
populates it, a warm run that should answer almost entirely from disk,
and an adversarial run where every loop is scrambled (ops renamed, op
and dep order shuffled) and the machine object is renamed — the
canonical DDG digest and the name-free machine digest must see through
both.  Asserts the headline claims: >= 90% store hits on the warm and
scrambled runs, zero ILP solves there, and at least a 5x wall-clock
reduction warm-vs-cold.  Writes the measured numbers to
``BENCH_store.json`` at the repo root.
"""

import copy
import json
import pathlib
import random

from conftest import once

from repro.core import schedule_loop, verify_schedule
from repro.ddg.generators import suite
from repro.ddg.transforms import scrambled
from repro.parallel.cache import clear_caches
from repro.store.tiering import clear_tiers

BENCH_PATH = (
    pathlib.Path(__file__).resolve().parent.parent / "BENCH_store.json"
)
CORPUS_SIZE = 40
SEED = 604
TIME_LIMIT = 10.0
MAX_EXTRA = 10


def _run_corpus(loops, machine, store_dir):
    # Fresh process-local tiers each run: only the on-disk store may
    # carry answers across runs, exactly as separate processes would.
    clear_tiers()
    clear_caches()
    results = [
        schedule_loop(
            ddg, machine, time_limit_per_t=TIME_LIMIT,
            max_extra=MAX_EXTRA, store=store_dir,
        )
        for ddg in loops
    ]
    return results


def _totals(results):
    return {
        "seconds": round(sum(r.total_seconds for r in results), 6),
        "scheduled": sum(1 for r in results if r.schedule is not None),
        "store_hits": sum(1 for r in results if r.store.hit),
        "published": sum(1 for r in results if r.store.published),
        "ilp_solves": sum(
            r.warmstart.ilp_solves if r.warmstart is not None else 0
            for r in results
            if not r.store.hit
        ),
    }


def test_store_speedup(benchmark, ppc604, tmp_path):
    corpus = suite(CORPUS_SIZE, ppc604, seed=SEED)
    store_dir = str(tmp_path / "store")

    cold = _run_corpus(corpus, ppc604, store_dir)
    warm = once(benchmark, lambda: _run_corpus(corpus, ppc604, store_dir))

    rng = random.Random(1995)
    variants = [scrambled(ddg, rng) for ddg in corpus]
    renamed = copy.deepcopy(ppc604)
    renamed.name = "renamed604"
    variant_run = _run_corpus(variants, renamed, store_dir)

    for cold_res, warm_res, var_res in zip(cold, warm, variant_run):
        if warm_res.store.hit:
            assert warm_res.achieved_t == cold_res.achieved_t
            verify_schedule(warm_res.schedule)
        if var_res.store.hit:
            assert var_res.achieved_t == cold_res.achieved_t
            verify_schedule(var_res.schedule)

    totals = {
        "cold": _totals(cold),
        "warm": _totals(warm),
        "scrambled_renamed": _totals(variant_run),
    }
    speedup = (
        totals["cold"]["seconds"] / totals["warm"]["seconds"]
        if totals["warm"]["seconds"] else float("inf")
    )
    doc = {
        "machine": ppc604.name,
        "corpus_size": CORPUS_SIZE,
        "seed": SEED,
        "time_limit_per_t": TIME_LIMIT,
        "max_extra": MAX_EXTRA,
        "runs": totals,
        "warm_speedup": round(speedup, 2),
    }
    BENCH_PATH.write_text(json.dumps(doc, indent=2) + "\n",
                          encoding="utf-8")

    print("\npersistent store (powerpc604, 40 loops):")
    for label, stats in totals.items():
        print(
            f"  {label}: {stats['seconds']:.2f}s, "
            f"{stats['store_hits']}/{CORPUS_SIZE} hits, "
            f"{stats['ilp_solves']} cold ILP solves"
        )
    print(f"  warm speedup: {speedup:.1f}x")

    floor = int(CORPUS_SIZE * 0.9)
    # The cold run may see a handful of hits: the synthetic suite can
    # contain isomorphic loops, and the second one hits the entry the
    # first just published.  It must still be overwhelmingly cold.
    assert totals["cold"]["store_hits"] <= CORPUS_SIZE - floor
    assert totals["warm"]["store_hits"] >= floor
    assert totals["scrambled_renamed"]["store_hits"] >= floor
    assert totals["warm"]["ilp_solves"] == 0
    assert totals["scrambled_renamed"]["ilp_solves"] == 0
    assert speedup >= 5.0, totals
