"""E7 / Table 3: the PowerPC-604-like machine model used in §6.

Prints the full FU/latency table and checks the structural facts the
paper's evaluation relies on (blocking divides, pipelined FP adds, two
single-cycle integer units).
"""

from conftest import once

from repro.machine.presets import powerpc604


def test_table3_machine_model(benchmark):
    machine = once(benchmark, powerpc604)

    print()
    print(machine.render())
    print()
    for cls_name in sorted(machine.op_classes):
        table = machine.reservation_for(cls_name)
        kind = "clean" if table.is_clean else "BLOCKING"
        print(f"  {cls_name:<8} lat {machine.latency(cls_name):>2}  "
              f"span {table.length:>2}  {kind}")

    assert machine.fu_type("SCIU").count == 2
    assert machine.reservation_for("fadd").is_clean
    assert not machine.reservation_for("fdiv").is_clean
    assert machine.reservation_for("div").forbidden_latencies() == set(
        range(1, 20)
    )
    machine.validate()
