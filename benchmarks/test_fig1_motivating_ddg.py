"""E1 / Figure 1: the motivating DDG, machine and lower bounds."""

from conftest import once

from repro.core import lower_bounds
from repro.ddg.kernels import motivating_example
from repro.ddg.render import ascii_ddg, to_dot


def test_fig1_motivating_ddg(benchmark, motivating):
    def build():
        ddg = motivating_example()
        return ddg, lower_bounds(ddg, motivating)

    ddg, bounds = once(benchmark, build)

    print()
    print(ascii_ddg(ddg, motivating))
    print(motivating.render())
    print(motivating.reservation_for("fadd").render("FP reservation table"))
    print(f"T_dep={bounds.t_dep}  T_res={bounds.t_res}  T_lb={bounds.t_lb}")

    # Paper's quoted values.
    assert bounds.t_dep == 2
    assert bounds.t_lb == 3
    assert to_dot(ddg).count("->") == 6
