"""Paper-scale generated corpus: batch characterization sweep.

Runs the ``repro batch`` driver over generated corpora on the two
hazard-heavy presets (``coreblocks`` and ``deep-unclean``): a
guaranteed-schedulable slice and an adversarial slice per machine, 140
loops each (560+ in FULL mode).  Reports, per machine and family, how
many loops scheduled, the II-gap histogram against the dependence/
resource lower bound, and per-loop wall-clock percentiles; asserts the
headline claim that >= 95% of guaranteed-schedulable loops schedule and
verify.  Writes ``BENCH_corpus.json`` at the repo root.
"""

import json
import pathlib

from conftest import FULL, once

from repro.corpusgen import FamilySpec, generate_corpus
from repro.ddg.generators import GenParams, adversarial_params
from repro.machine.presets import by_name
from repro.parallel import run_batch

BENCH_PATH = (
    pathlib.Path(__file__).resolve().parent.parent / "BENCH_corpus.json"
)
PRESETS = ("coreblocks", "deep-unclean")
SEED = 42
GUARANTEED = 500 if FULL else 120
ADVERSARIAL = 100 if FULL else 20
TIME_LIMIT = 10.0
MAX_EXTRA = 20
SCHEDULED_FLOOR = 0.95


def _families():
    return [
        FamilySpec("guaranteed", GUARANTEED, "ddg", GenParams()),
        FamilySpec("adversarial", ADVERSARIAL, "ddg",
                   adversarial_params(max_ops=24)),
    ]


def _percentile(sorted_values, q):
    if not sorted_values:
        return None
    k = min(len(sorted_values) - 1, int(round(q * (len(sorted_values) - 1))))
    return round(sorted_values[k], 6)


def _characterize(entries):
    scheduled = [
        e for e in entries
        if e.error is None and e.result.schedule is not None
    ]
    gaps = {}
    for e in scheduled:
        delta = e.result.achieved_t - e.result.bounds.t_lb
        gaps[str(delta)] = gaps.get(str(delta), 0) + 1
    seconds = sorted(
        e.result.total_seconds for e in entries if e.result is not None
    )
    return {
        "loops": len(entries),
        "scheduled": len(scheduled),
        "errors": sum(1 for e in entries if e.error is not None),
        "rate_optimal_proven": sum(
            1 for e in scheduled if e.result.is_rate_optimal_proven
        ),
        "ii_gap_histogram": dict(sorted(gaps.items(), key=lambda x: int(x[0]))),
        "wall_seconds": {
            "p50": _percentile(seconds, 0.50),
            "p90": _percentile(seconds, 0.90),
            "p99": _percentile(seconds, 0.99),
            "total": round(sum(seconds), 3),
        },
    }


def _sweep_machine(preset):
    machine = by_name(preset)
    families = _families()
    loops = generate_corpus(SEED, machine, families)
    report = run_batch(
        loops, machine, time_limit_per_t=TIME_LIMIT, max_extra=MAX_EXTRA,
    )
    # Split the in-order entries back into their families.
    split = {}
    offset = 0
    for family in families:
        split[family.name] = report.entries[offset:offset + family.count]
        offset += family.count
    return {name: _characterize(entries) for name, entries in split.items()}


def test_corpus_scaling(benchmark):
    stats = once(
        benchmark,
        lambda: {preset: _sweep_machine(preset) for preset in PRESETS},
    )
    doc = {
        "seed": SEED,
        "guaranteed_per_machine": GUARANTEED,
        "adversarial_per_machine": ADVERSARIAL,
        "time_limit_per_t": TIME_LIMIT,
        "max_extra": MAX_EXTRA,
        "machines": stats,
    }
    BENCH_PATH.write_text(json.dumps(doc, indent=2) + "\n",
                          encoding="utf-8")

    total = sum(
        f["loops"] for per in stats.values() for f in per.values()
    )
    print(f"\ngenerated-corpus sweep ({total} loops):")
    for preset, per in stats.items():
        for family, s in per.items():
            print(
                f"  {preset}/{family}: {s['scheduled']}/{s['loops']} "
                f"scheduled, gaps {s['ii_gap_histogram']}, "
                f"p50 {s['wall_seconds']['p50']}s "
                f"p99 {s['wall_seconds']['p99']}s"
            )

    assert total >= 200
    for preset, per in stats.items():
        guaranteed = per["guaranteed"]
        assert guaranteed["errors"] == 0, preset
        rate = guaranteed["scheduled"] / guaranteed["loops"]
        assert rate >= SCHEDULED_FLOOR, (preset, rate)
