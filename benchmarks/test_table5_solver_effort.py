"""E9 / Table 5: solver-effort distribution under the 10 s / 30 s budgets.

The paper gave its commercial solver (OSL) a 10-second budget, retrying
the leftovers with 30 s.  HiGHS on a modern laptop is far faster, so the
*absolute* times shrink by orders of magnitude; the shape claim that
survives is that the overwhelming majority of loops are solved well
within the smaller budget and the tail is driven by the larger DDGs.
"""

from conftest import FULL, once

from repro.experiments.table4 import run_table4
from repro.experiments.table5 import run_table5


def test_table5_solver_effort(benchmark, corpus, ppc604):
    def run():
        table4 = run_table4(
            corpus, ppc604, time_limit_per_t=10.0 if FULL else 5.0
        )
        return run_table5(table4.results)

    table5 = once(benchmark, run)

    print()
    print(table5.render())

    within10 = table5.solved_within.get(10.0, 0)
    assert within10 >= 0.9 * table5.total_loops
    assert table5.solved_within.get(30.0, 0) >= within10
    assert table5.mean_seconds < 10.0
