"""E18 extension: the run-time cost of compile-time FU assignment.

Quantifies the paper's §2 tension on real hardware semantics: greedy
dynamic-issue hardware (run-time FU selection, the regime of the earlier
clean-pipeline ILP work [6, 9]) vs the rate-optimal *fixed-assignment*
schedule the paper's ILP produces.  On the motivating example the gap is
exactly one cycle per iteration (II 3 vs T 4); on clean machines the gap
is zero (mapping is free); on random unclean corpora the measured gap
stays small — evidence that fixed assignment costs little while enabling
simple, interlock-free hardware.
"""

from conftest import once

from repro.core import schedule_loop
from repro.ddg.kernels import motivating_example
from repro.machine.presets import motivating_machine
from repro.sim import run_interlocked


def test_e18_fixed_assignment_cost(benchmark, tiny_corpus, ppc604):
    motivating = motivating_machine()

    def run():
        rows = []
        # The canonical instance first.
        ddg = motivating_example()
        fixed = schedule_loop(ddg, motivating)
        dynamic = run_interlocked(ddg, motivating, iterations=48)
        rows.append(("motivating", fixed.achieved_t, dynamic.steady_ii))
        # A 604-like corpus.
        for loop in tiny_corpus[:12]:
            fixed = schedule_loop(loop, ppc604, max_extra=30,
                                  time_limit_per_t=5.0)
            if fixed.achieved_t is None:
                continue
            dynamic = run_interlocked(loop, ppc604, iterations=48)
            rows.append((loop.name, fixed.achieved_t, dynamic.steady_ii))
        return rows

    rows = once(benchmark, run)

    print()
    print(f"{'loop':<12} {'T(fixed)':>9} {'II(dynamic)':>12} {'gap':>6}")
    for name, t_fixed, ii_dynamic in rows:
        gap = t_fixed - ii_dynamic
        print(f"{name:<12} {t_fixed:>9} {ii_dynamic:>12.2f} {gap:>6.2f}")

    canonical = rows[0]
    assert canonical[1] == 4
    assert abs(canonical[2] - 3.0) < 0.25  # Schedule A's rate, recovered
    # Across the corpus the *average* fixed-assignment cost is small.
    gaps = [t - ii for _, t, ii in rows[1:]]
    if gaps:
        assert sum(gaps) / len(gaps) <= 2.0
