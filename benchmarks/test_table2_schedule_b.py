"""E3 / Table 2: Schedule B — the fixed-mapping schedule at T = 4.

The unified ILP proves T = 3 infeasible and produces a verified
fixed-assignment schedule at T = 4; the overlapped-iteration listing is
the Table 2 artifact (prolog, repetitive pattern, epilog).
"""

from conftest import once

from repro.codegen import emit_assembly, flat_listing, pipeline_sections
from repro.core import schedule_loop, verify_schedule
from repro.ddg.kernels import motivating_example
from repro.sim import simulate


def test_table2_schedule_b(benchmark, motivating):
    def build():
        return schedule_loop(
            motivating_example(), motivating, objective="min_sum_t"
        )

    result = once(benchmark, build)
    schedule = result.schedule

    print()
    print(flat_listing(schedule, iterations=3))
    print()
    print(emit_assembly(schedule))

    assert schedule.t_period == 4
    assert result.is_rate_optimal_proven
    verify_schedule(schedule)
    assert simulate(schedule, iterations=16).ok
    sections = pipeline_sections(schedule)
    assert sections.kernel_cycles[1] - sections.kernel_cycles[0] == 4
