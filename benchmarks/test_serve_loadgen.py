"""Serve daemon under load: throughput, coalescing, zero-lost-jobs.

Boots a real ``repro serve`` subprocess, drives the seeded corpus mix
through it (closed loop then open loop) with ``crash@attempt`` fault
injection in the daemon's workers, SIGKILLs the daemon mid-open-loop,
restarts it on the same journal and asserts the service-level claims:

* sustained closed-loop throughput (every accepted job answered);
* request coalescing collapsed at least one duplicate submission;
* the end-to-end error rate stays under the policy bound even with
  injected worker crashes;
* the kill-and-restart differential loses **zero** accepted jobs.

Writes the measured numbers to ``BENCH_serve.json`` at the repo root.
"""

import pathlib

from conftest import once

from repro.serve.loadgen import run_benchmark

BENCH_PATH = (
    pathlib.Path(__file__).resolve().parent.parent / "BENCH_serve.json"
)
CORPUS_DIR = (
    pathlib.Path(__file__).resolve().parent.parent / "corpus"
)
REQUESTS = 30
#: Policy bound on the end-to-end error rate under injected crashes.
#: ``crash@attempt:t=4`` deterministically fails every loop whose sweep
#: visits period 4 (retries crash at the same period), which covers
#: roughly a sixth of the seeded mix; 0.35 leaves headroom without
#: letting a systemic failure through.
ERROR_RATE_BOUND = 0.35


def test_serve_loadgen_survives_faults_and_restart(benchmark):
    corpus = sorted(CORPUS_DIR.glob("*.ddg"))
    assert corpus, "seeded corpus missing; run `repro corpus` first"

    doc = once(benchmark, lambda: run_benchmark(
        corpus,
        "powerpc604",
        BENCH_PATH,
        requests=REQUESTS,
        time_limit=3.0,
        warmstart=False,  # reach the ILP attempt sites where faults fire
        faults="crash@attempt:t=4",
    ))

    closed = doc["phases"][0]
    assert closed["accepted"] == closed["completed"] + closed["failed"]
    assert closed["throughput_rps"] > 0.5
    assert doc["coalesce_hits"] >= 1
    assert doc["failure_kinds"].get("crash", 0) >= 0  # taxonomy present
    assert doc["error_rate"] <= ERROR_RATE_BOUND
    restart = doc["restart"]
    assert restart["accepted_before_kill"] >= 2
    assert restart["lost_jobs"] == []
    assert restart["resumed_terminal"] == restart["accepted_before_kill"]
