"""Property-based tests over random DDGs (sequential + parallel drivers).

For seeded random loops from :mod:`repro.ddg.generators`, any schedule
either driver returns must:

* pass :func:`repro.core.verify_schedule` (the independent oracle),
* achieve ``T >= T_lb`` (no driver may beat the lower bound),
* report a non-negative ``delta_from_lb``,

and a proven-rate-optimal result must have actually proven every smaller
admissible period infeasible.  The parallel driver runs in-process
(``jobs=1``) for most seeds — the multiprocess path is exercised by
``tests/parallel/`` and the differential suite — keeping this file fast
enough for tier 1.
"""

import random

import pytest

from repro.core import schedule_loop, verify_schedule
from repro.core.bounds import modulo_feasible_t
from repro.ddg.generators import GeneratorConfig, random_ddg
from repro.ilp.solution import SolveStatus
from repro.machine.presets import powerpc604
from repro.parallel import race_periods

SEEDS = list(range(12))
CONFIG = GeneratorConfig(min_ops=2, max_ops=12)


@pytest.fixture(scope="module")
def machine():
    return powerpc604()


def _random_loop(seed, machine):
    rng = random.Random(seed)
    return random_ddg(rng, machine, CONFIG, name=f"prop{seed}")


def _check_invariants(result, ddg, machine):
    assert result.bounds.t_lb >= 1
    if result.schedule is None:
        assert result.achieved_t is None
        assert result.delta_from_lb is None
        return
    verify_schedule(result.schedule)
    assert result.achieved_t >= result.bounds.t_lb
    assert result.delta_from_lb is not None
    assert result.delta_from_lb >= 0
    if result.is_rate_optimal_proven:
        for attempt in result.attempts:
            if attempt.t_period >= result.achieved_t:
                continue
            assert attempt.status in (
                SolveStatus.INFEASIBLE.value, "modulo_infeasible",
            )
            if attempt.status == "modulo_infeasible":
                assert not modulo_feasible_t(
                    ddg, machine, attempt.t_period
                )


@pytest.mark.parametrize("seed", SEEDS)
def test_sequential_driver_invariants(seed, machine):
    ddg = _random_loop(seed, machine)
    result = schedule_loop(ddg, machine, time_limit_per_t=10.0,
                           max_extra=20)
    assert result.schedule is not None, ddg.name
    _check_invariants(result, ddg, machine)


@pytest.mark.parametrize("seed", SEEDS)
def test_parallel_driver_invariants(seed, machine):
    ddg = _random_loop(seed, machine)
    jobs = 2 if seed < 3 else 1  # a few seeds exercise the real pool
    result = race_periods(ddg, machine, time_limit_per_t=10.0,
                          max_extra=20, jobs=jobs)
    assert result.schedule is not None, ddg.name
    _check_invariants(result, ddg, machine)


@pytest.mark.parametrize("seed", SEEDS[:6])
def test_drivers_agree_on_random_loops(seed, machine):
    ddg = _random_loop(seed, machine)
    seq = schedule_loop(ddg, machine, time_limit_per_t=10.0, max_extra=20)
    par = race_periods(ddg, machine, time_limit_per_t=10.0, max_extra=20,
                       jobs=2)
    assert par.achieved_t == seq.achieved_t
    assert par.is_rate_optimal_proven == seq.is_rate_optimal_proven


def _assert_presolve_equivalent(ddg, machine, backend, **kwargs):
    """Presolve must not change the achieved T or any per-period verdict.

    Attempts that expired their time budget on either side are exempt:
    a presolve pass that turns a timed-out model into a solved one is a
    speedup, not a disagreement.  Whenever both runs reached a definitive
    verdict at a period, those verdicts must match exactly.
    """
    on = schedule_loop(ddg, machine, backend=backend, presolve=True,
                       **kwargs)
    off = schedule_loop(ddg, machine, backend=backend, presolve=False,
                        **kwargs)
    timed_out = SolveStatus.TIME_LIMIT.value
    by_t_on = {a.t_period: a.status for a in on.attempts}
    by_t_off = {a.t_period: a.status for a in off.attempts}
    any_timeout = timed_out in by_t_on.values() or timed_out in (
        by_t_off.values()
    )
    if not any_timeout:
        assert on.achieved_t == off.achieved_t, ddg.name
        assert on.is_rate_optimal_proven == off.is_rate_optimal_proven
        assert set(by_t_on) == set(by_t_off)
    for t_period in set(by_t_on) & set(by_t_off):
        s_on, s_off = by_t_on[t_period], by_t_off[t_period]
        if timed_out in (s_on, s_off):
            continue
        assert s_on == s_off, (ddg.name, t_period)
    if on.schedule is not None:
        verify_schedule(on.schedule)
    if off.schedule is not None:
        verify_schedule(off.schedule)


@pytest.mark.parametrize("seed", SEEDS[:8])
def test_presolve_differential_highs(seed, machine):
    ddg = _random_loop(seed, machine)
    _assert_presolve_equivalent(
        ddg, machine, "highs", time_limit_per_t=10.0, max_extra=20
    )


@pytest.mark.parametrize("seed", SEEDS[:4])
def test_presolve_differential_bnb(machine, seed):
    # Smaller loops: the pure-Python B&B is the slow backend.
    rng = random.Random(1000 + seed)
    ddg = random_ddg(rng, machine, GeneratorConfig(min_ops=2, max_ops=8),
                     name=f"bnbprop{seed}")
    _assert_presolve_equivalent(
        ddg, machine, "bnb", time_limit_per_t=15.0, max_extra=20
    )


@pytest.mark.slow
@pytest.mark.parametrize("backend", ("highs", "bnb"))
def test_presolve_differential_corpus(machine, backend):
    """>= 50 random loops per backend: presolve-on and presolve-off runs
    must produce identical achieved periods and per-period verdicts."""
    max_ops = 12 if backend == "highs" else 8
    for seed in range(50):
        rng = random.Random(5000 + seed)
        ddg = random_ddg(
            rng, machine, GeneratorConfig(min_ops=2, max_ops=max_ops),
            name=f"corpus{seed}",
        )
        _assert_presolve_equivalent(
            ddg, machine, backend, time_limit_per_t=15.0, max_extra=20
        )
