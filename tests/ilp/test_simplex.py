"""Tests for the pure-python simplex LP solver.

Cross-checked against scipy's HiGHS ``linprog`` on randomized instances —
the simplex engine must agree on status and optimal value.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from scipy.optimize import linprog

from repro.ilp import Model
from repro.ilp.simplex import solve_lp
from repro.ilp.standard import to_arrays


def _lp(build):
    model = Model("lp")
    build(model)
    return to_arrays(model)


class TestBasics:
    def test_simple_minimum(self):
        form = _lp(lambda m: (
            (x := m.add_var("x", lb=0, ub=10)),
            (y := m.add_var("y", lb=0, ub=10)),
            m.add(x + y >= 4),
            m.minimize(2 * x + 3 * y),
        ))
        result = solve_lp(form)
        assert result.is_optimal
        assert result.objective == pytest.approx(8.0)
        assert result.x[0] == pytest.approx(4.0)

    def test_equality_constraint(self):
        form = _lp(lambda m: (
            (x := m.add_var("x", lb=0)),
            (y := m.add_var("y", lb=0)),
            m.add(x + y == 5),
            m.minimize(x - y),
        ))
        result = solve_lp(form)
        assert result.is_optimal
        assert result.objective == pytest.approx(-5.0)

    def test_infeasible(self):
        form = _lp(lambda m: (
            (x := m.add_var("x", lb=0, ub=1)),
            m.add(x >= 3),
            m.minimize(x),
        ))
        assert solve_lp(form).status == "infeasible"

    def test_unbounded(self):
        form = _lp(lambda m: (
            (x := m.add_var("x", lb=0)),
            m.minimize(-1 * x),
        ))
        assert solve_lp(form).status == "unbounded"

    def test_empty_feasible_model(self):
        form = _lp(lambda m: None)
        result = solve_lp(form)
        assert result.is_optimal
        assert result.objective == 0.0

    def test_objective_constant_included(self):
        form = _lp(lambda m: (
            (x := m.add_var("x", lb=2, ub=9)),
            m.minimize(x + 10),
        ))
        result = solve_lp(form)
        assert result.objective == pytest.approx(12.0)

    def test_shifted_lower_bounds(self):
        form = _lp(lambda m: (
            (x := m.add_var("x", lb=3, ub=8)),
            (y := m.add_var("y", lb=1)),
            m.add(x + y <= 10),
            m.minimize(-1 * x - y),
        ))
        result = solve_lp(form)
        assert result.is_optimal
        assert result.objective == pytest.approx(-10.0)
        assert result.x[0] >= 3 - 1e-9

    def test_maximize_flips(self):
        form = _lp(lambda m: (
            (x := m.add_var("x", lb=0, ub=4)),
            m.maximize(5 * x),
        ))
        result = solve_lp(form)
        # ArrayForm stores minimize(-5x); user objective maps back.
        assert form.user_objective(result.objective) == pytest.approx(20.0)

    def test_degenerate_pivots_terminate(self):
        # Classic degeneracy: many redundant constraints through a vertex.
        form = _lp(lambda m: (
            (x := m.add_var("x", lb=0)),
            (y := m.add_var("y", lb=0)),
            m.add(x + y <= 1),
            m.add(x + y <= 1),
            m.add(2 * x + 2 * y <= 2),
            m.add(x <= 1),
            m.minimize(-1 * x - y),
        ))
        result = solve_lp(form)
        assert result.is_optimal
        assert result.objective == pytest.approx(-1.0)

    def test_bound_override(self):
        form = _lp(lambda m: (
            (x := m.add_var("x", lb=0, ub=10)),
            m.minimize(x),
        ))
        result = solve_lp(form, lb=np.array([4.0]), ub=np.array([10.0]))
        assert result.objective == pytest.approx(4.0)

    def test_bound_override_infeasible(self):
        form = _lp(lambda m: (
            (x := m.add_var("x", lb=0, ub=10)),
            m.minimize(x),
        ))
        result = solve_lp(form, lb=np.array([5.0]), ub=np.array([4.0]))
        assert result.status == "infeasible"


@settings(max_examples=40, deadline=None)
@given(st.data())
def test_randomized_agreement_with_highs(data):
    """Status and optimal value must match scipy's HiGHS LP solver."""
    rng_vals = data.draw(
        st.lists(st.integers(-5, 5), min_size=12, max_size=12)
    )
    n, m = 3, 3
    c = np.array(rng_vals[:n], dtype=float)
    a = np.array(rng_vals[n:n + m * n], dtype=float).reshape(m, n)
    b = np.array(
        data.draw(st.lists(st.integers(0, 10), min_size=m, max_size=m)),
        dtype=float,
    )
    model = Model("rand")
    xs = [model.add_var(f"x{i}", lb=0, ub=6) for i in range(n)]
    for row, rhs in zip(a, b):
        expr = sum((float(coef) * x for coef, x in zip(row, xs)),
                   start=0 * xs[0])
        model.add(expr <= float(rhs))
    model.minimize(
        sum((float(ci) * x for ci, x in zip(c, xs)), start=0 * xs[0])
    )
    form = to_arrays(model)
    ours = solve_lp(form)
    ref = linprog(
        c, A_ub=a, b_ub=b, bounds=[(0, 6)] * n, method="highs"
    )
    if ref.status == 0:
        assert ours.is_optimal
        assert ours.objective == pytest.approx(ref.fun, abs=1e-6)
    elif ref.status == 2:
        assert ours.status == "infeasible"
