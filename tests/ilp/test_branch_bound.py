"""Tests for the branch-and-bound MILP solver (vs HiGHS as oracle)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ilp import Model, SolveStatus
from repro.ilp.branch_bound import solve_bnb


def _solve_both(model):
    return (
        model.solve(backend="bnb"),
        model.solve(backend="highs"),
    )


class TestKnownInstances:
    def test_small_integer_program(self):
        m = Model()
        x = m.add_var("x", lb=0, ub=10, integer=True)
        y = m.add_var("y", lb=0, ub=10, integer=True)
        m.add(2 * x + 3 * y >= 12)
        m.add(x - y <= 2)
        m.minimize(x + y)
        ours, ref = _solve_both(m)
        assert ours.status == SolveStatus.OPTIMAL
        assert ours.objective == pytest.approx(ref.objective)

    def test_knapsack(self):
        values = [10, 13, 18, 31, 7, 15]
        weights = [2, 3, 4, 5, 1, 4]
        m = Model("knapsack")
        xs = [m.add_binary(f"x{i}") for i in range(6)]
        m.add(sum((w * x for w, x in zip(weights, xs)), start=0 * xs[0]) <= 10)
        m.maximize(sum((v * x for v, x in zip(values, xs)), start=0 * xs[0]))
        ours = m.solve(backend="bnb")
        ref = m.solve(backend="highs")
        assert ours.status == SolveStatus.OPTIMAL
        # Optimum packs weights 5+4+1 for value 31+18+7.
        assert ours.objective == pytest.approx(56.0)
        assert ref.objective == pytest.approx(56.0)

    def test_integrality_matters(self):
        # LP relaxation gives 2.5; integral optimum is 3.
        m = Model()
        x = m.add_var("x", lb=0, ub=10, integer=True)
        m.add(2 * x >= 5)
        m.minimize(x)
        ours = m.solve(backend="bnb")
        assert ours.objective == pytest.approx(3.0)
        assert ours.int_value(x) == 3

    def test_infeasible(self):
        m = Model()
        x = m.add_binary("x")
        m.add(x >= 2)
        assert m.solve(backend="bnb").status == SolveStatus.INFEASIBLE

    def test_unbounded(self):
        m = Model()
        x = m.add_var("x", lb=0, integer=True)
        m.minimize(-1 * x)
        assert m.solve(backend="bnb").status == SolveStatus.UNBOUNDED

    def test_equality_with_integers(self):
        m = Model()
        x = m.add_var("x", lb=0, ub=20, integer=True)
        y = m.add_var("y", lb=0, ub=20, integer=True)
        m.add(3 * x + 5 * y == 19)
        m.minimize(x + y)
        ours = m.solve(backend="bnb")
        assert ours.status == SolveStatus.OPTIMAL
        # 3*3 + 5*2 = 19 -> objective 5
        assert ours.objective == pytest.approx(5.0)

    def test_mixed_integer_continuous(self):
        m = Model()
        x = m.add_var("x", lb=0, ub=10, integer=True)
        y = m.add_var("y", lb=0, ub=10)
        m.add(x + y >= 4.5)
        m.minimize(3 * x + y)
        ours, ref = _solve_both(m)
        assert ours.objective == pytest.approx(ref.objective)

    def test_feasibility_only_objective(self):
        m = Model()
        x = m.add_binary("x")
        y = m.add_binary("y")
        m.add(x + y == 1)
        ours = m.solve(backend="bnb")
        assert ours.status == SolveStatus.OPTIMAL
        assert ours.int_value(x) + ours.int_value(y) == 1

    def test_values_are_integral(self):
        m = Model()
        x = m.add_var("x", lb=0, ub=9, integer=True)
        m.add(2 * x >= 7)
        m.minimize(x)
        sol = m.solve(backend="bnb")
        assert sol.values[x] == int(sol.values[x])

    def test_solution_getitem_and_value(self):
        m = Model()
        x = m.add_var("x", lb=0, ub=4, integer=True)
        m.add(x >= 2)
        m.minimize(x)
        sol = m.solve(backend="bnb")
        assert sol[x] == 2.0
        assert sol.value(2 * x + 1) == 5.0

    def test_node_count_reported(self):
        m = Model()
        xs = [m.add_binary(f"x{i}") for i in range(6)]
        m.add(sum((x for x in xs), start=0 * xs[0]) >= 3)
        m.minimize(sum(((i + 1) * x for i, x in enumerate(xs)),
                       start=0 * xs[0]))
        sol = m.solve(backend="bnb")
        assert sol.nodes >= 1
        assert sol.backend == "bnb"


def _knapsack():
    values = [10, 13, 18, 31, 7, 15]
    weights = [2, 3, 4, 5, 1, 4]
    m = Model("knapsack")
    xs = [m.add_binary(f"x{i}") for i in range(6)]
    m.add(sum((w * x for w, x in zip(weights, xs)), start=0 * xs[0]) <= 10)
    m.maximize(sum((v * x for v, x in zip(values, xs)), start=0 * xs[0]))
    # Optimum 56 packs items 1 (w=5), 2 (w=4), 4 (w=1).
    optimal = {xs[i]: float(i in (2, 3, 4)) for i in range(6)}
    return m, xs, optimal


class TestBoundsAndGaps:
    def test_optimal_has_tight_bound_and_zero_gap(self):
        m, _, _ = _knapsack()
        sol = m.solve(backend="bnb")
        assert sol.status == SolveStatus.OPTIMAL
        assert sol.bound == pytest.approx(sol.objective)
        assert sol.gap == pytest.approx(0.0, abs=1e-6)

    def test_node_limit_reports_open_bound_and_gap(self):
        m, _, _ = _knapsack()
        sol = solve_bnb(m, node_limit=1)
        assert sol.bound is not None
        assert sol.gap is not None
        if sol.status.has_solution:
            # Maximizing: the dual bound sits at or above the incumbent.
            assert sol.bound >= sol.objective - 1e-6

    def test_bound_brackets_true_optimum_under_limits(self):
        m, _, _ = _knapsack()
        limited = solve_bnb(m, node_limit=1)
        assert limited.bound >= 56.0 - 1e-6

    def test_infeasible_has_no_gap(self):
        m = Model()
        x = m.add_binary("x")
        m.add(x >= 2)
        sol = m.solve(backend="bnb")
        assert sol.status == SolveStatus.INFEASIBLE
        assert sol.gap is None


class TestMipStart:
    def test_optimal_start_prunes_to_one_node(self):
        m, _, optimal = _knapsack()
        cold = m.solve(backend="bnb")
        warm = m.solve(backend="bnb", mip_start=optimal)
        assert warm.status == SolveStatus.OPTIMAL
        assert warm.objective == pytest.approx(cold.objective) == 56.0
        assert warm.nodes <= cold.nodes

    def test_suboptimal_start_still_finds_optimum(self):
        m, xs, _ = _knapsack()
        feasible = {x: 0.0 for x in xs}
        feasible[xs[4]] = 1.0  # value 7, weight 1
        sol = m.solve(backend="bnb", mip_start=feasible)
        assert sol.status == SolveStatus.OPTIMAL
        assert sol.objective == pytest.approx(56.0)

    def test_infeasible_start_ignored(self):
        m, xs, _ = _knapsack()
        overweight = {x: 1.0 for x in xs}  # weight 19 > 10
        sol = m.solve(backend="bnb", mip_start=overweight)
        assert sol.status == SolveStatus.OPTIMAL
        assert sol.objective == pytest.approx(56.0)

    def test_fractional_start_ignored(self):
        m, xs, _ = _knapsack()
        fractional = {x: 0.5 for x in xs}
        sol = m.solve(backend="bnb", mip_start=fractional)
        assert sol.status == SolveStatus.OPTIMAL
        assert sol.objective == pytest.approx(56.0)

    def test_incumbent_survives_node_limit(self):
        m, _, optimal = _knapsack()
        sol = solve_bnb(m, node_limit=1, mip_start=optimal)
        assert sol.status.has_solution
        assert sol.objective == pytest.approx(56.0)

    def test_start_used_on_minimize(self):
        m = Model()
        x = m.add_var("x", lb=0, ub=10, integer=True)
        y = m.add_var("y", lb=0, ub=10, integer=True)
        m.add(2 * x + 3 * y >= 12)
        m.add(x - y <= 2)
        m.minimize(x + y)
        cold = m.solve(backend="bnb")
        warm = m.solve(
            backend="bnb", mip_start={x: 3.0, y: 2.0}
        )
        assert warm.objective == pytest.approx(cold.objective)
        assert warm.nodes <= cold.nodes


@settings(max_examples=25, deadline=None)
@given(st.data())
def test_randomized_agreement_with_highs(data):
    """B&B and HiGHS must agree on status and optimal objective."""
    n = 3
    c = data.draw(st.lists(st.integers(-4, 4), min_size=n, max_size=n))
    rows = data.draw(
        st.lists(
            st.tuples(
                st.lists(st.integers(-3, 3), min_size=n, max_size=n),
                st.integers(-2, 8),
            ),
            min_size=1,
            max_size=4,
        )
    )
    m = Model("rand-milp")
    xs = [m.add_var(f"x{i}", lb=0, ub=5, integer=True) for i in range(n)]
    for coeffs, rhs in rows:
        m.add(
            sum((float(a) * x for a, x in zip(coeffs, xs)), start=0 * xs[0])
            <= float(rhs)
        )
    m.minimize(
        sum((float(ci) * x for ci, x in zip(c, xs)), start=0 * xs[0])
    )
    ours = m.solve(backend="bnb")
    ref = m.solve(backend="highs")
    assert (ours.status == SolveStatus.INFEASIBLE) == (
        ref.status == SolveStatus.INFEASIBLE
    )
    if ours.status.has_solution and ref.status.has_solution:
        assert ours.objective == pytest.approx(ref.objective, abs=1e-6)
