"""Unit tests for the ILP modeling layer."""

import math

import pytest

from repro.ilp import LinExpr, Model, ModelError, lin_sum
from repro.ilp.model import EQ, GE, LE


@pytest.fixture
def model():
    return Model("test")


class TestVariable:
    def test_defaults(self, model):
        x = model.add_var("x")
        assert x.lb == 0.0
        assert x.ub == math.inf
        assert not x.integer

    def test_bounds_and_integrality(self, model):
        x = model.add_var("x", lb=-2, ub=7, integer=True)
        assert (x.lb, x.ub, x.integer) == (-2.0, 7.0, True)

    def test_binary_shorthand(self, model):
        b = model.add_binary("b")
        assert (b.lb, b.ub, b.integer) == (0.0, 1.0, True)

    def test_infinite_lower_bound_rejected(self, model):
        with pytest.raises(ModelError, match="finite lower bound"):
            model.add_var("x", lb=-math.inf)

    def test_inverted_bounds_rejected(self, model):
        with pytest.raises(ModelError, match="ub"):
            model.add_var("x", lb=5, ub=2)

    def test_indices_are_sequential(self, model):
        names = [model.add_var(f"v{i}").index for i in range(5)]
        assert names == [0, 1, 2, 3, 4]

    def test_repr_mentions_kind(self, model):
        assert "int" in repr(model.add_var("x", integer=True))


class TestLinExpr:
    def test_addition_merges_terms(self, model):
        x, y = model.add_var("x"), model.add_var("y")
        expr = x + y + x
        assert expr.terms[x] == 2.0
        assert expr.terms[y] == 1.0

    def test_subtraction_cancels(self, model):
        x = model.add_var("x")
        expr = (x + 3) - x
        assert x not in expr.terms
        assert expr.const == 3.0

    def test_scalar_multiplication(self, model):
        x = model.add_var("x")
        expr = 3 * (2 * x + 1)
        assert expr.terms[x] == 6.0
        assert expr.const == 3.0

    def test_multiply_by_zero_empties(self, model):
        x = model.add_var("x")
        expr = (x + 5) * 0
        assert not expr.terms
        assert expr.const == 0.0

    def test_negation(self, model):
        x = model.add_var("x")
        expr = -(x + 1)
        assert expr.terms[x] == -1.0
        assert expr.const == -1.0

    def test_rsub(self, model):
        x = model.add_var("x")
        expr = 10 - x
        assert expr.terms[x] == -1.0
        assert expr.const == 10.0

    def test_value_evaluation(self, model):
        x, y = model.add_var("x"), model.add_var("y")
        expr = 2 * x - y + 4
        assert expr.value({x: 3, y: 1}) == 9.0

    def test_multiplying_two_exprs_rejected(self, model):
        x, y = model.add_var("x"), model.add_var("y")
        with pytest.raises(TypeError):
            (x + 1) * (y + 1)  # type: ignore[operator]

    def test_coerce_number(self):
        expr = LinExpr.coerce(4)
        assert expr.const == 4.0 and not expr.terms

    def test_coerce_rejects_strings(self):
        with pytest.raises(TypeError):
            LinExpr.coerce("nope")  # type: ignore[arg-type]


class TestLinSum:
    def test_mixed_items(self, model):
        x, y = model.add_var("x"), model.add_var("y")
        expr = lin_sum([x, 2 * y, 5, x + 1])
        assert expr.terms[x] == 2.0
        assert expr.terms[y] == 2.0
        assert expr.const == 6.0

    def test_empty(self):
        expr = lin_sum([])
        assert not expr.terms and expr.const == 0.0

    def test_cancellation_drops_entries(self, model):
        x = model.add_var("x")
        expr = lin_sum([x, -1 * x])
        assert x not in expr.terms

    def test_rejects_bad_items(self, model):
        with pytest.raises(TypeError):
            lin_sum(["bad"])  # type: ignore[list-item]

    def test_matches_naive_sum(self, model):
        xs = [model.add_var(f"x{i}") for i in range(10)]
        fast = lin_sum(xs)
        slow = sum(xs[1:], xs[0]._as_expr())
        assert fast.terms == slow.terms


class TestConstraint:
    def test_le_sense(self, model):
        x = model.add_var("x")
        con = model.add(x + 1 <= 5)
        assert con.sense == LE
        assert con.rhs == 4.0

    def test_ge_sense(self, model):
        x = model.add_var("x")
        con = model.add(x >= 3)
        assert con.sense == GE
        assert con.rhs == 3.0

    def test_eq_sense(self, model):
        x = model.add_var("x")
        con = model.add(x == 2)
        assert con.sense == EQ
        assert con.rhs == 2.0

    def test_expr_on_both_sides(self, model):
        x, y = model.add_var("x"), model.add_var("y")
        con = model.add(x + 2 <= y - 1)
        assert con.expr.terms[x] == 1.0
        assert con.expr.terms[y] == -1.0
        assert con.rhs == -3.0

    def test_violation_le(self, model):
        x = model.add_var("x")
        con = model.add(x <= 5)
        assert con.violation({x: 7}) == 2.0
        assert con.violation({x: 4}) == 0.0

    def test_violation_eq(self, model):
        x = model.add_var("x")
        con = model.add(x == 5)
        assert con.violation({x: 3}) == 2.0

    def test_auto_naming(self, model):
        x = model.add_var("x")
        con0 = model.add(x <= 1)
        con1 = model.add(x <= 2)
        assert con0.name == "c0" and con1.name == "c1"

    def test_explicit_name(self, model):
        x = model.add_var("x")
        con = model.add(x <= 1, name="cap")
        assert con.name == "cap"

    def test_add_rejects_non_constraints(self, model):
        with pytest.raises(ModelError):
            model.add(True)  # type: ignore[arg-type]


class TestModel:
    def test_foreign_variable_rejected(self):
        m1, m2 = Model("a"), Model("b")
        x = m1.add_var("x")
        with pytest.raises(ModelError, match="different model"):
            m2.add(x <= 1)

    def test_foreign_objective_rejected(self):
        m1, m2 = Model("a"), Model("b")
        x = m1.add_var("x")
        with pytest.raises(ModelError, match="different model"):
            m2.minimize(x)

    def test_stats(self, model):
        x = model.add_var("x", integer=True)
        y = model.add_var("y")
        model.add(x + y <= 3)
        model.add(x >= 1)
        stats = model.stats()
        assert stats == {
            "variables": 2,
            "integer_variables": 1,
            "constraints": 2,
            "nonzeros": 3,
        }

    def test_maximize_sense(self, model):
        x = model.add_var("x")
        model.maximize(x)
        assert not model.sense_minimize

    def test_repr(self, model):
        model.add_var("x")
        assert "vars=1" in repr(model)

    def test_render_shows_objective_and_rows(self, model):
        x = model.add_var("x", integer=True)
        model.add(x <= 5, name="cap")
        model.minimize(2 * x)
        text = model.render()
        assert "1 integer" in text
        assert "min" in text
        assert "cap:" in text

    def test_render_truncates(self, model):
        x = model.add_var("x")
        for i in range(10):
            model.add(x <= i)
        text = model.render(max_rows=3)
        assert "... 7 more row(s)" in text

    def test_render_full(self, model):
        x = model.add_var("x")
        for i in range(10):
            model.add(x <= i)
        assert "more row" not in model.render(max_rows=None)
