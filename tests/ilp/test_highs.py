"""Tests for the HiGHS backend adapter and the dispatcher."""

import pytest

from repro.ilp import Model, SolverError, SolveStatus


class TestHighsBackend:
    def test_optimal(self):
        m = Model()
        x = m.add_var("x", lb=0, ub=10, integer=True)
        m.add(3 * x >= 7)
        m.minimize(x)
        sol = m.solve(backend="highs")
        assert sol.status == SolveStatus.OPTIMAL
        assert sol.backend == "highs"
        assert sol.int_value(x) == 3

    def test_maximize_objective_mapped_back(self):
        m = Model()
        x = m.add_var("x", lb=0, ub=7, integer=True)
        m.add(x <= 5)
        m.maximize(2 * x)
        sol = m.solve(backend="highs")
        assert sol.objective == pytest.approx(10.0)

    def test_infeasible(self):
        m = Model()
        x = m.add_binary("x")
        m.add(x >= 2)
        assert m.solve(backend="highs").status == SolveStatus.INFEASIBLE

    def test_no_constraints(self):
        m = Model()
        x = m.add_var("x", lb=1, ub=4, integer=True)
        m.minimize(x)
        sol = m.solve(backend="highs")
        assert sol.objective == pytest.approx(1.0)

    def test_objective_constant_preserved(self):
        m = Model()
        x = m.add_var("x", lb=2, ub=8)
        m.minimize(x + 100)
        sol = m.solve(backend="highs")
        assert sol.objective == pytest.approx(102.0)

    def test_solve_seconds_recorded(self):
        m = Model()
        x = m.add_binary("x")
        m.minimize(x)
        sol = m.solve(backend="highs")
        assert sol.solve_seconds >= 0.0

    def test_int_value_rejects_fractional(self):
        m = Model()
        x = m.add_var("x", lb=0, ub=5)  # continuous
        m.add(2 * x >= 5)
        m.minimize(x)
        sol = m.solve(backend="highs")
        with pytest.raises(ValueError, match="non-integral"):
            sol.int_value(x)


class TestHighsMipStart:
    """scipy's milp has no native start; the adapter adds a cutoff row."""

    def test_feasibility_start_short_circuits(self):
        # Constant objective + feasible start: proven optimal instantly.
        m = Model()
        x = m.add_binary("x")
        y = m.add_binary("y")
        m.add(x + y == 1)
        sol = m.solve(backend="highs", mip_start={x: 1.0, y: 0.0})
        assert sol.status == SolveStatus.OPTIMAL
        assert sol.nodes == 0

    def test_optimal_start_keeps_optimum(self):
        m = Model()
        x = m.add_var("x", lb=0, ub=10, integer=True)
        y = m.add_var("y", lb=0, ub=10, integer=True)
        m.add(2 * x + 3 * y >= 12)
        m.minimize(x + y)
        cold = m.solve(backend="highs")
        warm = m.solve(backend="highs", mip_start={x: 0.0, y: 4.0})
        assert warm.status.has_solution
        assert warm.objective == pytest.approx(cold.objective)

    def test_invalid_start_ignored(self):
        m = Model()
        x = m.add_var("x", lb=0, ub=10, integer=True)
        m.add(3 * x >= 7)
        m.minimize(x)
        sol = m.solve(backend="highs", mip_start={x: 0.5})
        assert sol.status == SolveStatus.OPTIMAL
        assert sol.int_value(x) == 3

    def test_gap_zero_when_proven(self):
        m = Model()
        x = m.add_var("x", lb=0, ub=10, integer=True)
        m.add(3 * x >= 7)
        m.minimize(x)
        sol = m.solve(backend="highs", mip_start={x: 3.0})
        assert sol.status == SolveStatus.OPTIMAL
        assert sol.gap is not None and sol.gap == pytest.approx(
            0.0, abs=1e-6
        )


class TestDispatch:
    def test_unknown_backend_rejected(self):
        m = Model()
        m.add_var("x")
        with pytest.raises(SolverError, match="unknown backend"):
            m.solve(backend="cplex")

    def test_auto_prefers_highs(self):
        m = Model()
        x = m.add_binary("x")
        m.minimize(x)
        assert m.solve(backend="auto").backend == "highs"

    def test_bool_of_solution(self):
        m = Model()
        x = m.add_binary("x")
        m.add(x >= 2)
        assert not m.solve()
        m2 = Model()
        y = m2.add_binary("y")
        m2.minimize(y)
        assert m2.solve()
