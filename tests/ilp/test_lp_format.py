"""Tests for the CPLEX LP format writer."""

import pytest

from repro.core import Formulation
from repro.ddg.kernels import motivating_example
from repro.ilp import Model
from repro.ilp.lp_format import write_lp
from repro.machine.presets import motivating_machine


class TestBasicOutput:
    def test_sections_present(self):
        m = Model("demo")
        x = m.add_var("x", lb=0, ub=3, integer=True)
        y = m.add_var("y", lb=1)
        m.add(x + 2 * y <= 7, name="cap")
        m.minimize(x + y)
        text = write_lp(m)
        for section in ("Minimize", "Subject To", "Bounds", "General", "End"):
            assert section in text

    def test_constraint_line(self):
        m = Model()
        x = m.add_var("x")
        m.add(2 * x >= 4, name="low")
        text = write_lp(m)
        assert "low: 2 x >= 4" in text

    def test_maximize(self):
        m = Model()
        x = m.add_var("x", ub=1)
        m.maximize(x)
        assert "Maximize" in write_lp(m)

    def test_unit_coefficients_have_no_number(self):
        m = Model()
        x = m.add_var("x")
        y = m.add_var("y")
        m.add(x - y <= 0, name="c")
        text = write_lp(m)
        assert "c: x - y <= 0" in text

    def test_infinite_upper_bound(self):
        m = Model()
        m.add_var("x", lb=2)
        assert "2 <= x <= +inf" in write_lp(m)

    def test_no_general_section_for_pure_lp(self):
        m = Model()
        x = m.add_var("x")
        m.minimize(x)
        assert "General" not in write_lp(m)

    def test_feasibility_objective_parseable(self):
        m = Model()
        x = m.add_binary("x")
        m.add(x >= 0)
        text = write_lp(m)
        assert "obj: 0 x" in text


class TestNameHandling:
    def test_brackets_sanitized(self):
        m = Model()
        m.add_var("a[0,3]")
        text = write_lp(m)
        assert "a[0,3]" not in text
        assert "a_0_3_" in text

    def test_duplicate_names_uniquified(self):
        m = Model()
        m.add_var("x")
        m.add_var("x")
        text = write_lp(m)
        assert "x_1" in text

    def test_leading_digit_prefixed(self):
        m = Model()
        m.add_var("0bad")
        assert "v_0bad" in write_lp(m)


class TestSchedulingModelExport:
    def test_motivating_formulation_exports(self, tmp_path):
        f = Formulation(motivating_example(), motivating_machine(), 4)
        f.build()
        text = write_lp(f.model)
        path = tmp_path / "model.lp"
        path.write_text(text, encoding="utf-8")
        assert "assign_0_" in text
        assert "dep_0_" in text
        assert text.count("\n") > f.model.num_constraints
