"""Warm-restart LP engine vs the cold simplex, on real and random LPs.

:class:`repro.ilp.simplex.LpEngine` carries a live tableau across
branch-and-bound node solves.  Whatever sequence of bound changes the
search throws at it, every answer must match a cold :func:`solve_lp` of
the same (form, lb, ub) — status and objective value both.
"""

import numpy as np
import pytest

from repro.core.formulation import Formulation
from repro.ddg.generators import suite
from repro.ddg.kernels import motivating_example
from repro.ilp import Model
from repro.ilp.simplex import LpEngine, solve_lp
from repro.ilp.standard import to_arrays
from repro.machine.presets import motivating_machine


def _form(build):
    model = Model("lp")
    build(model)
    return to_arrays(model)


def _assert_matches_cold(engine, form, lb, ub, tag=""):
    warm = engine.solve(lb, ub)
    cold = solve_lp(form, lb, ub)
    assert warm.status == cold.status, (tag, warm.status, cold.status)
    if cold.is_optimal:
        assert warm.objective == pytest.approx(
            cold.objective, rel=1e-7, abs=1e-7
        ), tag
    return warm


class TestBoundSequences:
    def test_repeated_tightening_and_relaxing(self):
        form = _form(lambda m: (
            (x := m.add_var("x", lb=0, ub=10)),
            (y := m.add_var("y", lb=0, ub=10)),
            m.add(x + y >= 4),
            m.add(2 * x + y <= 14),
            m.minimize(2 * x + 3 * y),
        ))
        engine = LpEngine(form)
        lb, ub = form.lb.copy(), form.ub.copy()
        _assert_matches_cold(engine, form, lb, ub, "root")
        # Tighten x down (ub), then up (lb), then restore — the classic
        # branch / backtrack pattern.
        for x_lb, x_ub in [(0, 1), (3, 10), (0, 10), (4, 4), (0, 2)]:
            lb[0], ub[0] = x_lb, x_ub
            _assert_matches_cold(engine, form, lb, ub, (x_lb, x_ub))
        assert engine.stats.warm_solves > 0

    def test_transition_into_and_out_of_infeasible(self):
        form = _form(lambda m: (
            (x := m.add_var("x", lb=0, ub=10)),
            (y := m.add_var("y", lb=0, ub=10)),
            m.add(x + y >= 6),
            m.minimize(x + y),
        ))
        engine = LpEngine(form)
        lb, ub = form.lb.copy(), form.ub.copy()
        _assert_matches_cold(engine, form, lb, ub, "root")
        # Cap both vars so the >= 6 row cannot be met.
        ub[0] = ub[1] = 2.0
        result = _assert_matches_cold(engine, form, lb, ub, "capped")
        assert result.status == "infeasible"
        # ... and recover.
        ub[0] = ub[1] = 10.0
        result = _assert_matches_cold(engine, form, lb, ub, "restored")
        assert result.is_optimal

    def test_root_infeasible_short_circuits(self):
        form = _form(lambda m: (
            (x := m.add_var("x", lb=0, ub=1)),
            m.add(x >= 3),
            m.minimize(x),
        ))
        engine = LpEngine(form)
        assert engine.solve().status == "infeasible"
        # Tightening bounds further can never recover feasibility: the
        # engine answers without touching a tableau.
        lb, ub = form.lb.copy(), form.ub.copy()
        ub[0] = 0.5
        assert engine.solve(lb, ub).status == "infeasible"
        assert engine.stats.warm_solves == 0

    def test_contradictory_bounds(self):
        form = _form(lambda m: (
            (x := m.add_var("x", lb=0, ub=10)),
            m.add(x >= 1),
            m.minimize(x),
        ))
        engine = LpEngine(form)
        lb, ub = form.lb.copy(), form.ub.copy()
        lb[0], ub[0] = 5.0, 3.0
        assert engine.solve(lb, ub).status == "infeasible"

    def test_relaxing_below_root_falls_back(self):
        """Bounds looser than the root aren't representable warm."""
        form = _form(lambda m: (
            (x := m.add_var("x", lb=2, ub=10)),
            m.add(x <= 8),
            m.minimize(x),
        ))
        engine = LpEngine(form)
        engine.solve()
        lb, ub = form.lb.copy(), form.ub.copy()
        lb[0] = 0.0  # below the root lower bound
        warm = engine.solve(lb, ub)
        cold = solve_lp(form, lb, ub)
        assert warm.status == cold.status
        assert warm.objective == pytest.approx(cold.objective)


class TestOnSchedulingModels:
    """Drive the engine with dive-style bound fixings on real models."""

    @staticmethod
    def _models():
        machine = motivating_machine()
        loops = [motivating_example()] + suite(3, machine, seed=42)
        for ddg in loops:
            if ddg.num_ops > 8:
                continue
            for t_period in (3, 4, 5):
                formulation = Formulation(ddg, machine, t_period)
                formulation.build()
                yield ddg.name, t_period, to_arrays(formulation.model)

    def test_fixing_sequences_match_cold(self):
        rng = np.random.default_rng(7)
        for name, t_period, form in self._models():
            engine = LpEngine(form)
            lb, ub = form.lb.copy(), form.ub.copy()
            root = _assert_matches_cold(
                engine, form, lb, ub, (name, t_period, "root")
            )
            if not root.is_optimal:
                continue
            # Fix a random walk of integer variables to rounded LP
            # values, the way _dive does, checking parity at each step.
            candidates = np.flatnonzero(form.integrality)
            rng.shuffle(candidates)
            for step, j in enumerate(candidates[:6]):
                value = float(np.clip(round(root.x[j]), lb[j], ub[j]))
                lb[j] = ub[j] = value
                result = _assert_matches_cold(
                    engine, form, lb, ub, (name, t_period, "fix", step)
                )
                if not result.is_optimal:
                    break
            assert engine.stats.warm_solves > 0, (name, t_period)

    def test_branching_with_backtrack_matches_cold(self):
        for name, t_period, form in self._models():
            engine = LpEngine(form)
            lb, ub = form.lb.copy(), form.ub.copy()
            root = engine.solve(lb, ub)
            if not root.is_optimal:
                continue
            candidates = np.flatnonzero(form.integrality)[:4]
            for j in candidates:
                value = round(root.x[j])
                # Down branch ...
                saved = ub[j]
                ub[j] = max(lb[j], value - 1)
                _assert_matches_cold(
                    engine, form, lb, ub, (name, t_period, "down", int(j))
                )
                ub[j] = saved
                # ... then the up branch from the same engine state.
                saved = lb[j]
                lb[j] = min(ub[j], value + 1)
                _assert_matches_cold(
                    engine, form, lb, ub, (name, t_period, "up", int(j))
                )
                lb[j] = saved


class TestRandomized:
    def test_random_bound_boxes_match_cold(self):
        rng = np.random.default_rng(20260807)
        for trial in range(20):
            n_vars = int(rng.integers(2, 6))
            n_rows = int(rng.integers(1, 5))
            model = Model(f"rand{trial}")
            xs = [
                model.add_var(f"x{i}", lb=0, ub=float(rng.integers(2, 8)))
                for i in range(n_vars)
            ]
            for _ in range(n_rows):
                coeffs = rng.integers(-3, 4, size=n_vars)
                expr = sum(
                    int(c) * x for c, x in zip(coeffs, xs)
                    if c != 0
                )
                if isinstance(expr, int):
                    continue
                rhs = float(rng.integers(-5, 10))
                model.add(expr <= rhs if rng.random() < 0.5 else expr >= rhs)
            model.minimize(sum(
                int(c) * x
                for c, x in zip(rng.integers(-2, 3, size=n_vars), xs)
            ) + 0 * xs[0])
            form = to_arrays(model)
            engine = LpEngine(form)
            lb, ub = form.lb.copy(), form.ub.copy()
            _assert_matches_cold(engine, form, lb, ub, (trial, "root"))
            for step in range(8):
                j = int(rng.integers(0, n_vars))
                new_lb = float(rng.integers(0, int(form.ub[j]) + 1))
                lb[j] = max(form.lb[j], new_lb)
                ub[j] = min(form.ub[j], float(
                    rng.integers(int(lb[j]), int(form.ub[j]) + 1)
                ))
                _assert_matches_cold(engine, form, lb, ub, (trial, step))
