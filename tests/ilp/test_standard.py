"""Tests for the model-to-arrays lowering."""

import math

import numpy as np
import pytest

from repro.ilp import Model
from repro.ilp.standard import to_arrays


class TestToArrays:
    def test_objective_vector(self):
        m = Model()
        x, y = m.add_var("x"), m.add_var("y")
        m.minimize(2 * x - y + 7)
        form = to_arrays(m)
        assert list(form.c) == [2.0, -1.0]
        assert form.c0 == 7.0
        assert not form.flipped

    def test_maximize_negates(self):
        m = Model()
        x = m.add_var("x")
        m.maximize(3 * x + 1)
        form = to_arrays(m)
        assert list(form.c) == [-3.0]
        assert form.c0 == -1.0
        assert form.flipped
        assert form.user_objective(-5.0) == 5.0

    def test_row_bounds_by_sense(self):
        m = Model()
        x = m.add_var("x")
        m.add(x <= 4)
        m.add(x >= 1)
        m.add(x == 2)
        form = to_arrays(m)
        assert form.row_upper[0] == 4.0 and form.row_lower[0] == -math.inf
        assert form.row_lower[1] == 1.0 and form.row_upper[1] == math.inf
        assert form.row_lower[2] == form.row_upper[2] == 2.0

    def test_duplicate_terms_accumulate(self):
        m = Model()
        x = m.add_var("x")
        m.add(x + x + 2 * x <= 8)
        form = to_arrays(m)
        assert form.a_matrix[0, 0] == 4.0

    def test_integrality_mask(self):
        m = Model()
        m.add_var("x", integer=True)
        m.add_var("y")
        form = to_arrays(m)
        assert list(form.integrality) == [True, False]

    def test_variable_bounds(self):
        m = Model()
        m.add_var("x", lb=1, ub=3)
        m.add_var("y", lb=0)
        form = to_arrays(m)
        assert list(form.lb) == [1.0, 0.0]
        assert form.ub[0] == 3.0
        assert form.ub[1] == math.inf

    def test_row_names_preserved(self):
        m = Model()
        x = m.add_var("x")
        m.add(x <= 1, name="cap")
        assert to_arrays(m).row_names == ["cap"]

    def test_shapes(self):
        m = Model()
        xs = [m.add_var(f"x{i}") for i in range(4)]
        m.add(xs[0] + xs[3] <= 1)
        form = to_arrays(m)
        assert form.a_matrix.shape == (1, 4)
        assert form.num_vars == 4
        assert form.num_rows == 1
        assert np.count_nonzero(form.a_matrix) == 2
