"""Regression tests: solve() validates its parameters up front.

Previously a non-positive time limit or negative gap flowed straight
into the backends, where scipy silently treats ``time_limit <= 0`` as
*no limit* — an unbounded solve where the caller asked for an instant
one.  :class:`SolverError` now fires before any backend is touched.
"""

import pytest

from repro.ilp import Model
from repro.ilp.errors import SolverError
from repro.ilp.solve import (
    process_time_budget,
    set_process_time_budget,
    solve,
)


@pytest.fixture
def model():
    m = Model("tiny")
    x = m.add_var("x", lb=0, ub=5, integer=True)
    m.add(x >= 2)
    m.minimize(x)
    return m


@pytest.fixture(autouse=True)
def _no_leftover_budget():
    yield
    set_process_time_budget(None)


@pytest.mark.parametrize("bad", [0, -1, -0.5, float("nan")])
def test_nonpositive_time_limit_rejected(model, bad):
    with pytest.raises(SolverError, match="time_limit must be > 0"):
        solve(model, time_limit=bad)


@pytest.mark.parametrize("bad", ["10", True, None])
def test_non_numeric_time_limit_rejected(model, bad):
    if bad is None:
        solve(model)  # None means "no limit" and stays legal
        return
    with pytest.raises(SolverError, match="time_limit must be"):
        solve(model, time_limit=bad)


@pytest.mark.parametrize("bad", [-1e-9, -1, float("nan"), "0", False])
def test_bad_gap_rejected(model, bad):
    with pytest.raises(SolverError, match="gap must be"):
        solve(model, gap=bad)


def test_zero_gap_allowed(model):
    solution = solve(model, gap=0.0)
    assert solution.status.has_solution
    assert solution.objective == pytest.approx(2.0)


def test_unknown_backend_rejected(model):
    with pytest.raises(SolverError, match="unknown backend"):
        solve(model, backend="cplex")


class TestProcessTimeBudget:
    def test_budget_roundtrip(self):
        assert process_time_budget() is None
        set_process_time_budget(5.0)
        assert process_time_budget() == 5.0
        set_process_time_budget(None)
        assert process_time_budget() is None

    def test_bad_budget_rejected(self):
        with pytest.raises(SolverError, match="process time budget"):
            set_process_time_budget(0)

    def test_budget_caps_solves(self, model):
        # An effectively-zero budget forces TIME_LIMIT even though the
        # call itself asked for a generous limit.
        set_process_time_budget(1e-9)
        solution = solve(model, time_limit=100.0, backend="bnb")
        assert solution.status.value in ("time_limit", "optimal")
        # (tiny models may still finish within one node; the budget is
        # what reached the backend either way)

    def test_budget_applies_when_no_limit_given(self, model):
        set_process_time_budget(30.0)
        solution = solve(model)
        assert solution.status.has_solution
