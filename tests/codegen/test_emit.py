"""Tests for prolog/kernel/epilog emission."""

import pytest

from repro.codegen import emit_assembly, flat_listing, pipeline_sections
from repro.core import schedule_loop
from repro.core.schedule import Schedule, greedy_mapping
from repro.ddg.kernels import daxpy, motivating_example
from repro.machine.presets import motivating_machine, powerpc604


@pytest.fixture
def schedule_b():
    ddg = motivating_example()
    machine = motivating_machine()
    starts = [0, 1, 3, 5, 7, 11]
    colors = greedy_mapping(ddg, machine, starts, 4)
    return Schedule(ddg=ddg, machine=machine, t_period=4,
                    starts=starts, colors=colors)


class TestFlatListing:
    def test_all_instances_present(self, schedule_b):
        text = flat_listing(schedule_b, iterations=3)
        # Each op appears once per iteration column.
        assert text.count("i0") == 3
        assert text.count("i5") == 3

    def test_iteration_columns(self, schedule_b):
        text = flat_listing(schedule_b, iterations=2)
        assert "Iter 0" in text and "Iter 1" in text

    def test_rows_are_cycles(self, schedule_b):
        lines = flat_listing(schedule_b, iterations=2).splitlines()
        body = [l for l in lines[2:] if l.strip()]
        # First issuing cycle is 0 (i0 of iteration 0).
        assert body[0].startswith("   0 |")

    def test_overlap_visible(self, schedule_b):
        """Software pipelining overlaps iterations: some cycle issues
        ops from two different iterations."""
        text = flat_listing(schedule_b, iterations=3)
        overlapped = False
        for line in text.splitlines()[2:]:
            cells = line.split("|")[-1]
            if sum(1 for op in ("i0", "i1", "i2", "i3", "i4", "i5")
                   if op in cells) >= 2:
                overlapped = True
        assert overlapped


class TestSections:
    def test_motivating_sections(self, schedule_b):
        sections = pipeline_sections(schedule_b)
        # 3 software stages, T=4: kernel reached at cycle 8.
        assert sections.prolog_cycles == (0, 8)
        assert sections.kernel_cycles == (8, 12)
        assert sections.prolog_length == 8
        assert sections.epilog_span == schedule_b.span - 4

    def test_single_stage_loop_has_empty_prolog(self):
        machine = powerpc604()
        result = schedule_loop(daxpy(), machine, objective="min_sum_t")
        schedule = result.schedule
        sections = pipeline_sections(schedule)
        assert sections.prolog_length == (
            (schedule.num_software_stages - 1) * schedule.t_period
        )


class TestAssembly:
    def test_has_three_sections(self, schedule_b):
        text = emit_assembly(schedule_b)
        assert "PROLOG:" in text
        assert "KERNEL:" in text
        assert "EPILOG:" in text

    def test_kernel_has_t_rows(self, schedule_b):
        text = emit_assembly(schedule_b)
        for t in range(4):
            assert f"t={t}:" in text

    def test_ops_carry_fu_labels(self, schedule_b):
        text = emit_assembly(schedule_b)
        assert "@MEM0" in text
        assert "@FP" in text

    def test_trip_count_symbol(self, schedule_b):
        text = emit_assembly(schedule_b, trip_count_symbol="COUNT")
        assert "COUNT" in text


class TestAllocatedAssembly:
    def test_registers_annotated(self, schedule_b):
        from repro.registers import allocate_registers

        allocation = allocate_registers(schedule_b)
        text = emit_assembly(schedule_b, allocation=allocation)
        assert "register(s)" in text
        assert "->r" in text

    def test_stores_have_no_destination(self, schedule_b):
        from repro.registers import allocate_registers

        allocation = allocate_registers(schedule_b)
        text = emit_assembly(schedule_b, allocation=allocation)
        for line in text.splitlines():
            if "i5" in line and "t=" in line:
                assert "->r" not in line.split("i5", 1)[1].split(";")[0]

    def test_mve_unrolls_kernel(self):
        """A long lifetime forces unroll > 1: the kernel is emitted in
        copies with rotated register names."""
        from repro.core.schedule import Schedule
        from repro.ddg import Ddg
        from repro.machine.presets import powerpc604
        from repro.registers import allocate_registers

        machine = powerpc604()
        g = Ddg("slack")
        g.add_op("a", "add")
        g.add_op("b", "add")
        g.add_dep(a_op := 0, 1)
        schedule = Schedule(ddg=g, machine=machine, t_period=2,
                            starts=[0, 9], colors={0: 0, 1: 0})
        allocation = allocate_registers(schedule)
        assert allocation.unroll == 4
        text = emit_assembly(schedule, allocation=allocation)
        for copy in range(4):
            assert f".copy {copy}:" in text
        # The value's register rotates across copies.
        regs = {
            allocation.register_name(0, copy) for copy in range(4)
        }
        assert len(regs) == 4
        for reg in regs:
            assert f"->{reg}" in text
