"""Multi-function pipelines (paper §7 extension): several op classes
sharing one FU type with per-class reservation tables.

The PowerPC-604 model exercises this: MCIU runs pipelined multiplies
(clean 4-deep) and blocking divides (1x20 all-ones) on shared stages;
the FPU likewise mixes pipelined adds with blocking fdiv.
"""

import pytest

from repro.core import schedule_loop, verify_schedule
from repro.core.bounds import per_type_t_res
from repro.ddg import Ddg
from repro.machine.presets import powerpc604
from repro.sim import simulate


@pytest.fixture
def machine():
    return powerpc604()


def _mix_loop(muls: int, divs: int) -> Ddg:
    g = Ddg(f"mix{muls}m{divs}d")
    for i in range(muls):
        g.add_op(f"m{i}", "mul")
    for i in range(divs):
        g.add_op(f"d{i}", "div")
    # A chain through the first of each keeps the DDG connected.
    if muls and divs:
        g.add_dep("m0", "d0")
    return g


class TestSharedStageAccounting:
    def test_divide_blocks_multiplies(self, machine):
        """One divide occupies MCIU stage 0 for 20 cycles; multiplies
        must thread through the single free slot per period."""
        g = _mix_loop(muls=2, divs=1)
        bounds = per_type_t_res(g, machine)
        # Stage 0 usage: div 20 + 2 muls * 1 = 22 on one unit.
        assert bounds["MCIU"] == 22
        result = schedule_loop(g, machine, max_extra=15)
        assert result.schedule is not None
        verify_schedule(result.schedule)
        assert result.achieved_t >= 22

    def test_two_divides_serialize(self, machine):
        g = _mix_loop(muls=0, divs=2)
        result = schedule_loop(g, machine, max_extra=25)
        assert result.achieved_t >= 40  # 2 x 20 busy cycles, 1 unit
        verify_schedule(result.schedule)

    def test_pure_multiplies_pipeline_fully(self, machine):
        g = _mix_loop(muls=3, divs=0)
        result = schedule_loop(g, machine)
        assert result.achieved_t == 3  # clean pipeline: 1 per cycle
        verify_schedule(result.schedule)

    def test_fpu_mix_simulates(self, machine):
        g = Ddg("fpmix")
        g.add_op("a", "fadd")
        g.add_op("d", "fdiv")
        g.add_op("b", "fmul")
        g.add_dep("a", "d")
        g.add_dep("d", "b")
        result = schedule_loop(g, machine, max_extra=25)
        assert result.schedule is not None
        verify_schedule(result.schedule)
        report = simulate(result.schedule, iterations=6)
        assert report.ok, report.first_violation()

    def test_usage_table_combines_classes(self, machine):
        g = _mix_loop(muls=1, divs=1)
        result = schedule_loop(g, machine, max_extra=25)
        schedule = result.schedule
        grid = schedule.stage_usage_table("MCIU")
        # Stage 0 carries the divide's 20 cells plus the multiply's 1.
        assert grid[0].sum() == 21
        assert grid.max() <= 1  # single unit: everything must be 0/1


class TestModuloInteraction:
    def test_divide_constrains_admissible_periods(self, machine):
        """div forbids T in 1..19 and any T where 20 % T == 0... i.e.
        only T >= 20 with no stage-cycle collision mod T."""
        g = _mix_loop(muls=0, divs=1)
        result = schedule_loop(g, machine)
        skipped = {
            a.t_period for a in result.attempts
            if a.status == "modulo_infeasible"
        }
        assert result.achieved_t == 20
        assert not skipped  # T_lb = 20 is immediately admissible
