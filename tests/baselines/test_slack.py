"""Tests for the slack-based (Huff) modulo scheduler."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import slack_modulo_schedule
from repro.core import schedule_loop, verify_schedule
from repro.ddg.generators import GeneratorConfig, random_ddg
from repro.ddg.kernels import KERNELS, motivating_example
from repro.machine.presets import motivating_machine, powerpc604


class TestOnKernels:
    @pytest.mark.parametrize("name", sorted(KERNELS))
    def test_schedules_and_verifies(self, name):
        machine = powerpc604()
        result = slack_modulo_schedule(KERNELS[name](), machine)
        assert result.schedule is not None, name
        verify_schedule(result.schedule)

    def test_motivating_respects_mapping_obstruction(self):
        result = slack_modulo_schedule(
            motivating_example(), motivating_machine()
        )
        assert result.schedule is not None
        assert result.achieved_ii >= 4
        verify_schedule(result.schedule)

    @pytest.mark.parametrize("name", sorted(KERNELS))
    def test_ilp_never_worse(self, name):
        machine = powerpc604()
        ddg = KERNELS[name]()
        ilp = schedule_loop(ddg, machine)
        heuristic = slack_modulo_schedule(ddg, machine)
        assert heuristic.achieved_ii is not None
        assert ilp.achieved_t <= heuristic.achieved_ii

    def test_recurrence_bound_kernels_hit_mii(self):
        """On pure recurrence-bound loops the heuristic should reach
        MII (slack placement keeps the critical cycle tight)."""
        machine = powerpc604()
        for name in ("dotprod", "ll11"):
            result = slack_modulo_schedule(KERNELS[name](), machine)
            assert result.achieved_ii == result.mii, name


class TestLifetimeSensitivity:
    def test_buffers_not_catastrophic(self):
        """Slack placement should keep buffer totals in the same league
        as the ILP's min_buffers schedules (within 3x on kernels)."""
        from repro.core import Formulation, FormulationOptions
        from repro.registers import total_buffers

        machine = powerpc604()
        for name in ("dotprod", "daxpy", "ll5"):
            ddg = KERNELS[name]()
            heuristic = slack_modulo_schedule(ddg, machine)
            assert heuristic.schedule is not None
            tuned = Formulation(
                ddg, machine, heuristic.achieved_ii,
                FormulationOptions(objective="min_buffers"),
            )
            optimum = tuned.extract(tuned.solve())
            assert (
                total_buffers(heuristic.schedule)
                <= 3 * total_buffers(optimum)
            ), name


@settings(max_examples=15, deadline=None)
@given(st.integers(0, 10_000))
def test_property_slack_schedules_verify(seed):
    machine = powerpc604()
    ddg = random_ddg(
        random.Random(seed), machine, GeneratorConfig(min_ops=2, max_ops=9)
    )
    result = slack_modulo_schedule(ddg, machine)
    if result.schedule is not None:
        verify_schedule(result.schedule)
        assert result.achieved_ii >= result.mii
