"""Tests for the no-pipelining list-scheduling baseline."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import list_schedule
from repro.core import schedule_loop
from repro.core.errors import SchedulingError
from repro.ddg import Ddg
from repro.ddg.generators import GeneratorConfig, random_ddg
from repro.ddg.kernels import KERNELS, daxpy, motivating_example
from repro.machine.presets import motivating_machine, powerpc604


class TestBasics:
    def test_daxpy(self):
        machine = powerpc604()
        result = list_schedule(daxpy(), machine)
        assert result.makespan >= 2 + 3 + 3 + 1  # critical path ld-mul-add-st

    def test_intra_iteration_deps_respected(self):
        machine = powerpc604()
        ddg = daxpy()
        result = list_schedule(ddg, machine)
        lat = ddg.latencies(machine)
        for dep in ddg.deps:
            if dep.distance == 0:
                assert (
                    result.starts[dep.dst]
                    >= result.starts[dep.src] + lat[dep.src]
                )

    def test_no_structural_hazards_within_iteration(self):
        machine = motivating_machine()
        ddg = motivating_example()
        result = list_schedule(ddg, machine)
        # Rebuild occupancy and assert single-booking per unit cell.
        cells = {}
        for op in ddg.ops:
            fu = machine.fu_type_of(op.op_class)
            table = machine.reservation_for(op.op_class)
            copy = result.colors[op.index]
            for stage, cycle in table.usage_offsets():
                key = (fu.name, copy, stage, result.starts[op.index] + cycle)
                assert key not in cells, key
                cells[key] = op.name

    def test_loop_carried_stretch(self):
        """A value produced late and consumed early next iteration
        stretches the effective II beyond the makespan."""
        machine = powerpc604()
        g = Ddg("carried")
        a = g.add_op("a", "fadd")
        g.add_dep(a, a, distance=1)
        result = list_schedule(g, machine)
        assert result.effective_ii >= 3

    def test_intra_cycle_rejected(self):
        machine = powerpc604()
        g = Ddg("bad")
        g.add_op("a", "add")
        g.add_op("b", "add")
        g.add_dep("a", "b")
        g.add_dep("b", "a")  # 0-distance cycle
        with pytest.raises(SchedulingError, match="cycle"):
            list_schedule(g, machine)


class TestAsBaseline:
    @pytest.mark.parametrize("name", sorted(KERNELS))
    def test_pipelining_never_slower(self, name):
        """The rate-optimal T never exceeds the sequential II."""
        machine = powerpc604()
        ddg = KERNELS[name]()
        pipelined = schedule_loop(ddg, machine)
        sequential = list_schedule(ddg, machine)
        assert pipelined.achieved_t <= sequential.effective_ii

    def test_speedup_on_parallel_loop(self):
        """daxpy has no recurrence: pipelining must win clearly."""
        machine = powerpc604()
        pipelined = schedule_loop(daxpy(), machine)
        sequential = list_schedule(daxpy(), machine)
        assert sequential.effective_ii / pipelined.achieved_t >= 2.0


@settings(max_examples=20, deadline=None)
@given(st.integers(0, 10_000))
def test_property_sequential_ii_upper_bounds_optimal(seed):
    machine = powerpc604()
    ddg = random_ddg(
        random.Random(seed), machine, GeneratorConfig(min_ops=2, max_ops=8)
    )
    sequential = list_schedule(ddg, machine)
    pipelined = schedule_loop(ddg, machine, max_extra=30)
    if pipelined.achieved_t is not None:
        assert pipelined.achieved_t <= sequential.effective_ii
