"""Tests for the iterative-modulo-scheduling baseline."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import iterative_modulo_schedule
from repro.core import schedule_loop, verify_schedule
from repro.ddg.generators import GeneratorConfig, random_ddg
from repro.ddg.kernels import KERNELS, motivating_example
from repro.machine.presets import motivating_machine, powerpc604


class TestOnKernels:
    @pytest.mark.parametrize("name", sorted(KERNELS))
    def test_schedules_and_verifies(self, name):
        machine = powerpc604()
        result = iterative_modulo_schedule(KERNELS[name](), machine)
        assert result.schedule is not None
        verify_schedule(result.schedule)

    def test_motivating_needs_t4_or_more(self):
        """The heuristic must also respect the mapping obstruction."""
        result = iterative_modulo_schedule(
            motivating_example(), motivating_machine()
        )
        assert result.schedule is not None
        assert result.achieved_ii >= 4
        verify_schedule(result.schedule)

    def test_mii_equals_t_lb(self):
        result = iterative_modulo_schedule(
            motivating_example(), motivating_machine()
        )
        assert result.mii == 3
        assert result.delta_from_mii == result.achieved_ii - 3

    def test_tried_iis_recorded(self):
        result = iterative_modulo_schedule(
            motivating_example(), motivating_machine()
        )
        assert result.tried_iis[0] == 3
        assert result.tried_iis[-1] == result.achieved_ii


class TestDominanceByIlp:
    @pytest.mark.parametrize("name", sorted(KERNELS))
    def test_ilp_never_worse(self, name):
        """Rate-optimality: the ILP's T lower-bounds the heuristic's II."""
        machine = powerpc604()
        ddg = KERNELS[name]()
        ilp = schedule_loop(ddg, machine)
        heuristic = iterative_modulo_schedule(ddg, machine)
        assert ilp.achieved_t is not None
        assert heuristic.achieved_ii is not None
        assert ilp.achieved_t <= heuristic.achieved_ii


@settings(max_examples=20, deadline=None)
@given(st.integers(0, 10_000))
def test_property_heuristic_schedules_verify(seed):
    """Property: every heuristic schedule passes independent verification."""
    machine = powerpc604()
    ddg = random_ddg(
        random.Random(seed), machine, GeneratorConfig(min_ops=2, max_ops=9)
    )
    result = iterative_modulo_schedule(ddg, machine)
    if result.schedule is not None:
        verify_schedule(result.schedule)
        assert result.achieved_ii >= result.mii
