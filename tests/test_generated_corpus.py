"""Property harness over the paper-scale generated corpus.

Invariants asserted for seeded (loop, machine) samples drawn exactly the
way ``repro gen`` draws them:

* every generated loop serializes and re-parses losslessly;
* canonical labeling is invariant under op scrambling;
* every schedule returned by the sweep passes ``verify_schedule``;
* guaranteed-schedulable mode always schedules within a generous
  sweep budget — on the hazard-heavy presets too;
* a written corpus regenerates byte-identically from its manifest alone.

The wide sweeps are marked ``slow``; a small subset always runs.
"""

import filecmp
import random

import pytest

from repro.cli import main
from repro.core import schedule_loop, verify_schedule
from repro.corpusgen import (
    FamilySpec,
    default_families,
    generate_corpus,
    loop_seed,
    read_manifest,
    regenerate_from,
    verify_corpus,
    write_corpus,
)
from repro.ddg.builders import parse_ddg, serialize_ddg
from repro.ddg.canonical import canonical_digest
from repro.ddg.generators import GenParams
from repro.ddg.transforms import scrambled
from repro.machine.presets import by_name, powerpc604

#: Small params so the fast harness stays inside tier-1 budgets.
SMALL = GenParams(max_ops=10)

#: Hazard-heavy presets introduced for the generated corpus.
HAZARD_PRESETS = ("coreblocks", "deep-unclean")


def _sample(machine, count, seed=42, base=SMALL):
    return generate_corpus(
        seed, machine, default_families(count, base=base)
    )


class TestCorpusProperties:
    def test_round_trip_and_canonical_invariance(self, corpus_factory):
        rng = random.Random(99)
        for g in corpus_factory(count=20, seed=7):
            text = serialize_ddg(g)
            back = parse_ddg(text)
            assert serialize_ddg(back) == text
            assert canonical_digest(back) == canonical_digest(g)
            assert canonical_digest(
                scrambled(g, rng)
            ) == canonical_digest(g)

    @pytest.mark.parametrize("preset", ("powerpc604",) + HAZARD_PRESETS)
    def test_guaranteed_mode_always_schedules(self, preset):
        machine = by_name(preset)
        for g in _sample(machine, 6, seed=11):
            result = schedule_loop(
                g, machine, time_limit_per_t=10.0, max_extra=20
            )
            assert result.schedule is not None, g.name
            verify_schedule(result.schedule)

    def test_loops_valid_on_their_machine(self, hazard_machine):
        for g in _sample(hazard_machine, 12, seed=3):
            g.validate_against(hazard_machine)

    @pytest.mark.slow
    @pytest.mark.parametrize("preset", ("powerpc604",) + HAZARD_PRESETS)
    def test_guaranteed_mode_sweep_wide(self, preset):
        """Wide slow sweep: 40 guaranteed loops per preset, full sizes."""
        machine = by_name(preset)
        loops = generate_corpus(
            1995, machine, default_families(40, mode="guaranteed")
        )
        for g in loops:
            result = schedule_loop(
                g, machine, time_limit_per_t=10.0, max_extra=25
            )
            assert result.schedule is not None, g.name
            verify_schedule(result.schedule)


class TestManifestReproducibility:
    def test_regenerates_byte_identically(self, tmp_path):
        first = tmp_path / "a"
        second = tmp_path / "b"
        families = default_families(15, base=SMALL)
        manifest = write_corpus(first, 42, "powerpc604", families)
        assert manifest.count == 15
        regenerate_from(first, second)
        names = [r.file for r in manifest.loops] + ["manifest.json"]
        match, mismatch, errors = filecmp.cmpfiles(
            first, second, names, shallow=False
        )
        assert not mismatch and not errors
        assert sorted(match) == sorted(names)

    def test_in_memory_matches_written(self, tmp_path):
        families = default_families(10, base=SMALL)
        manifest = write_corpus(tmp_path, 5, "coreblocks", families)
        in_memory = generate_corpus(5, by_name("coreblocks"), families)
        for record, ddg in zip(manifest.loops, in_memory):
            on_disk = (tmp_path / record.file).read_text(encoding="utf-8")
            assert on_disk == serialize_ddg(ddg)

    def test_loop_seeds_are_coordinates(self, tmp_path):
        manifest = write_corpus(
            tmp_path, 9, "powerpc604", default_families(6, base=SMALL)
        )
        by_family = {}
        for record in manifest.loops:
            k = by_family.setdefault(record.family, 0)
            assert record.seed == loop_seed(9, record.family, k)
            by_family[record.family] = k + 1

    def test_verify_corpus_clean(self, tmp_path):
        write_corpus(
            tmp_path, 1, "deep-unclean",
            [FamilySpec("guaranteed", 5, "ddg", SMALL)],
        )
        audit = verify_corpus(tmp_path)
        assert audit["problems"] == []
        assert len(audit["checked"]) == 5


class TestGenCli:
    def test_gen_check_from_manifest_cycle(self, tmp_path, capsys):
        out = tmp_path / "corpus"
        assert main([
            "gen", "--out", str(out), "--seed", "7", "--count", "12",
            "--max-ops", "10",
        ]) == 0
        stdout = capsys.readouterr().out
        assert "12 loop" in stdout
        manifest = read_manifest(out)
        assert manifest.count == 12 and manifest.seed == 7

        assert main(["gen", "--check", str(out)]) == 0

        rebuilt = tmp_path / "rebuilt"
        assert main([
            "gen", "--from-manifest", str(out), "--out", str(rebuilt),
        ]) == 0
        for record in manifest.loops:
            assert (rebuilt / record.file).read_bytes() == \
                (out / record.file).read_bytes()

    def test_gen_check_flags_corruption(self, tmp_path, capsys):
        out = tmp_path / "corpus"
        main(["gen", "--out", str(out), "--seed", "1", "--count", "4",
              "--max-ops", "8"])
        victim = next(out.glob("gen*.ddg"))
        victim.write_text("op x add\n", encoding="utf-8")
        capsys.readouterr()
        assert main(["gen", "--check", str(out)]) == 1
        err = capsys.readouterr()
        combined = err.out + err.err
        assert victim.name in combined or str(victim) in combined

    def test_gen_modes(self, tmp_path):
        for mode in ("guaranteed", "adversarial", "dsl"):
            out = tmp_path / mode
            assert main([
                "gen", "--out", str(out), "--seed", "2", "--count", "3",
                "--mode", mode,
            ]) == 0
            manifest = read_manifest(out)
            assert [f.name for f in manifest.families] == [mode]
