"""Differential tests: incremental sweep on vs. off, byte-identical.

The ``incremental`` knob (shared :class:`~repro.core.incremental.
SweepContext`, recycled infeasibility cuts, T-independent analysis
reuse) is a pure wall-clock optimization: over the seeded 50-loop
corpus pinned by the issue (master seed 604, mixed families), toggling
it must leave every observable result field untouched — achieved
period, proven-optimality flag, lower bounds, per-attempt statuses, and
the schedule itself (start cycles and FU colors) — on both solver
backends.

Cut-skipped attempts report ``infeasible``, the same terminal status
the cold path reaches by solving, so the status vectors compare equal
by construction; the assertions below check that end to end.

The corpus-wide sweeps (and everything under the pure-python ``bnb``
backend) are marked ``slow`` and excluded from the default tier-1 run;
a small smoke subset always runs.
"""

import pathlib

import pytest

from repro.core import schedule_loop, verify_schedule
from repro.core.incremental import clear_contexts
from repro.corpusgen import default_families, generate_corpus
from repro.ddg.builders import parse_ddg
from repro.ddg.generators import GenParams
from repro.machine.presets import coreblocks, motivating_machine, powerpc604
from repro.parallel.cache import clear_caches

CORPUS_DIR = pathlib.Path(__file__).resolve().parent.parent / "corpus"
FILES = sorted(CORPUS_DIR.glob("*.ddg"))
SMOKE_FILES = FILES[:4]

#: Loops whose ILPs stay small enough for the pure-python solver.
BNB_MAX_OPS = 8

GEN_SAMPLE_SEED = 604
GEN_SAMPLE_SIZE = 50


@pytest.fixture(scope="module")
def machine():
    return powerpc604()


@pytest.fixture(autouse=True)
def fresh_state():
    clear_caches()
    yield
    clear_caches()


def _generated_sample(machine):
    return generate_corpus(
        GEN_SAMPLE_SEED, machine,
        default_families(GEN_SAMPLE_SIZE, base=GenParams(max_ops=12)),
    )


def _result_fields(result):
    """Everything an incremental toggle is forbidden to change."""
    return {
        "achieved_t": result.achieved_t,
        "proven": result.is_rate_optimal_proven,
        "t_dep": result.bounds.t_dep,
        "t_res": result.bounds.t_res,
        "statuses": [(a.t_period, a.status) for a in result.attempts],
        "starts": result.schedule.starts if result.schedule else None,
        "colors": (sorted(result.schedule.colors.items())
                   if result.schedule else None),
    }


def _assert_identical(ddg, machine, backend, time_limit):
    # Each leg starts from a cold per-process context registry so the
    # "off" run cannot be polluted and the "on" run's reuse is entirely
    # intra-sweep — the configuration the bench measures.
    clear_contexts()
    on = schedule_loop(
        ddg, machine, backend=backend, time_limit_per_t=time_limit,
        max_extra=30, incremental=True,
    )
    clear_contexts()
    off = schedule_loop(
        ddg, machine, backend=backend, time_limit_per_t=time_limit,
        max_extra=30, incremental=False,
    )
    assert _result_fields(on) == _result_fields(off), ddg.name
    if on.schedule is not None:
        verify_schedule(on.schedule)
    # No cut may fire with the context disabled.
    assert not any(
        "cut_skip" in a.model_stats for a in off.attempts
    ), ddg.name


@pytest.mark.parametrize("path", SMOKE_FILES, ids=lambda p: p.stem)
def test_incremental_smoke_highs(path, machine):
    _assert_identical(
        parse_ddg(path.read_text(encoding="utf-8")), machine, "highs", 10.0
    )


def test_incremental_smoke_bnb(machine):
    for path in FILES:
        ddg = parse_ddg(path.read_text(encoding="utf-8"))
        if ddg.num_ops <= BNB_MAX_OPS:
            _assert_identical(ddg, machine, "bnb", 20.0)
            break
    else:
        pytest.skip("no corpus loop small enough for the bnb solver")


def test_incremental_smoke_motivating_machine():
    """The hazard-heavy motivating machine exercises coloring + repair."""
    mach = motivating_machine()
    for ddg in _generated_sample(mach)[:3]:
        if ddg.num_ops <= BNB_MAX_OPS:
            _assert_identical(ddg, mach, "bnb", 20.0)


@pytest.mark.slow
@pytest.mark.parametrize("path", FILES, ids=lambda p: p.stem)
def test_incremental_corpus_highs(path, machine):
    _assert_identical(
        parse_ddg(path.read_text(encoding="utf-8")), machine, "highs", 10.0
    )


@pytest.mark.slow
@pytest.mark.parametrize("preset", ["powerpc604", "coreblocks"])
def test_incremental_generated_full_highs(preset):
    mach = {"powerpc604": powerpc604, "coreblocks": coreblocks}[preset]()
    for ddg in _generated_sample(mach):
        _assert_identical(ddg, mach, "highs", 10.0)


@pytest.mark.slow
def test_incremental_generated_full_bnb(machine):
    for ddg in _generated_sample(machine):
        if ddg.num_ops > BNB_MAX_OPS:
            continue
        _assert_identical(ddg, machine, "bnb", 20.0)


@pytest.mark.slow
def test_incremental_generated_full_bnb_motivating():
    mach = motivating_machine()
    for ddg in _generated_sample(mach):
        if ddg.num_ops > BNB_MAX_OPS:
            continue
        _assert_identical(ddg, mach, "bnb", 20.0)
