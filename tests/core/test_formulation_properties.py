"""Property-based tests on the ILP formulation itself.

These check structural invariants of the *model* (not just of solved
schedules): variable/row counts follow closed forms, every solution's A
matrix is a well-formed assignment, the two backends agree, and the
t-expression substitution matches Eq. 1 on extracted schedules.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Formulation, FormulationOptions
from repro.core.bounds import lower_bounds, modulo_feasible_t
from repro.core.periodic import decompose
from repro.ddg.generators import GeneratorConfig, random_ddg
from repro.machine.presets import motivating_machine, powerpc604


def _instance(seed):
    rng = random.Random(seed)
    machine = powerpc604()
    ddg = random_ddg(rng, machine, GeneratorConfig(min_ops=2, max_ops=6))
    t_lb = lower_bounds(ddg, machine).t_lb
    t_period = t_lb + rng.randrange(3)
    if not modulo_feasible_t(ddg, machine, t_period):
        return None
    return ddg, machine, t_period


@settings(max_examples=25, deadline=None)
@given(st.integers(0, 100_000))
def test_property_variable_count_formula(seed):
    """vars = T*N (A) + N (K) + colors + pair binaries; rows include
    exactly N assignment rows and |E| dependence rows."""
    instance = _instance(seed)
    if instance is None:
        return
    ddg, machine, t_period = instance
    formulation = Formulation(
        ddg, machine, t_period, FormulationOptions(presolve=False)
    )
    model = formulation.build()
    n = ddg.num_ops
    base_vars = t_period * n + n
    extra = model.num_vars - base_vars
    assert extra >= 0  # colors / overlap / sign variables only add
    names = [c.name for c in model.constraints]
    assert sum(1 for x in names if x.startswith("assign[")) == n
    assert sum(1 for x in names if x.startswith("dep[")) == ddg.num_deps


@settings(max_examples=20, deadline=None)
@given(st.integers(0, 100_000))
def test_property_solutions_have_assignment_structure(seed):
    """Any feasible solution's A variables form a 0-1 matrix with
    exactly one start slot per op, and t_expr == T*k + slot."""
    instance = _instance(seed)
    if instance is None:
        return
    ddg, machine, t_period = instance
    formulation = Formulation(ddg, machine, t_period)
    solution = formulation.solve(time_limit=10.0)
    if not solution.status.has_solution:
        return
    for i in range(ddg.num_ops):
        column = [
            0 if formulation.a[t][i] is None
            else solution.int_value(formulation.a[t][i])
            for t in range(t_period)
        ]
        assert sum(column) == 1
        slot = column.index(1)
        k = solution.int_value(formulation.k[i])
        assert solution.value(formulation.t_expr[i]) == pytest.approx(
            t_period * k + slot
        )


@settings(max_examples=15, deadline=None)
@given(st.integers(0, 100_000))
def test_property_extracted_schedule_decomposes(seed):
    """Extracted start times round-trip through the Eq. 1 decomposition
    with k matching the ILP's k variables."""
    instance = _instance(seed)
    if instance is None:
        return
    ddg, machine, t_period = instance
    formulation = Formulation(ddg, machine, t_period)
    solution = formulation.solve(time_limit=10.0)
    if not solution.status.has_solution:
        return
    schedule = formulation.extract(solution)
    k_vector, a_matrix = decompose(schedule.starts, t_period)
    for i in range(ddg.num_ops):
        assert k_vector[i] == solution.int_value(formulation.k[i])
        assert a_matrix[:, i].sum() == 1


class TestModelScaling:
    def test_rows_grow_linearly_in_t_for_clean_types(self):
        ddg_machine = motivating_machine()
        from repro.ddg.kernels import motivating_example

        ddg = motivating_example()
        sizes = {}
        for t_period in (4, 6, 8):
            model = Formulation(ddg, ddg_machine, t_period).build()
            sizes[t_period] = model.stats()
        assert sizes[6]["variables"] > sizes[4]["variables"]
        assert sizes[8]["constraints"] > sizes[6]["constraints"]

    def test_counting_mode_is_smaller(self):
        from repro.ddg.kernels import motivating_example

        ddg = motivating_example()
        machine = motivating_machine()
        full = Formulation(ddg, machine, 4).build()
        counting = Formulation(
            ddg, machine, 4, FormulationOptions(mapping=False)
        ).build()
        assert counting.num_vars < full.num_vars
        assert counting.num_constraints < full.num_constraints
