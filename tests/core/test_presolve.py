"""Tests for the ILP presolve pass (:mod:`repro.core.presolve`).

Soundness checks on the analysis itself (windows contain the optimum,
infeasibility verdicts agree with the solver), plus differential tests
asserting the presolve never changes a scheduling outcome — only the
model the solver has to chew through.
"""

import pytest

from repro.core import Formulation, FormulationOptions, verify_schedule
from repro.core.bounds import lower_bounds
from repro.core.presolve import ALWAYS, MAYBE, NEVER, presolve
from repro.ddg import Ddg
from repro.ddg.kernels import motivating_example
from repro.machine.presets import (
    clean_machine,
    motivating_machine,
    powerpc604,
)


def _fp_triangle() -> Ddg:
    g = Ddg("fp3")
    for i in range(3):
        g.add_op(f"f{i}", "fadd")
    return g


def _cyclic_pair() -> Ddg:
    """Two ops on a carried cycle: a -> b (flow), b -> a (distance 1)."""
    g = Ddg("cyc2")
    g.add_op("a", "add")
    g.add_op("b", "add")
    g.add_dep("a", "b", latency=2)
    g.add_dep("b", "a", distance=1, latency=2)
    return g


class TestAnalysis:
    def test_windows_cover_min_sum_t_optimum(self):
        """asap/latest are implied bounds for minimal solutions, so the
        min_sum_t optimum (a minimal solution by definition) must sit
        inside every op's window."""
        ddg = motivating_example()
        machine = motivating_machine()
        options = FormulationOptions(
            objective="min_sum_t", presolve=False
        )
        f = Formulation(ddg, machine, 4, options)
        schedule = f.extract(f.solve())
        info = presolve(ddg, machine, 4, objective="min_sum_t", k_max=20)
        assert not info.infeasible
        assert info.anchor is None  # min_sum_t is not shift-invariant
        for i, start in enumerate(schedule.starts):
            assert info.asap[i] <= start <= info.latest[i], i
            assert info.slot_allowed(i, start % 4), i

    def test_anchor_pinned_to_slot_zero(self):
        ddg = motivating_example()
        info = presolve(ddg, motivating_machine(), 4, k_max=20)
        assert info.anchor is not None
        assert info.allowed_slots(info.anchor) == [0]

    def test_positive_cycle_marks_infeasible(self):
        # Cycle separation 4 with distance 1 forces T >= 4.
        info = presolve(_cyclic_pair(), clean_machine(), 3, k_max=20)
        assert info.infeasible

    def test_pair_classification_covers_colored_pairs(self):
        ddg = motivating_example()
        machine = motivating_machine()
        f = Formulation(ddg, machine, 4)
        f.build()
        info = f.presolve_info
        assert info is not None and not info.infeasible
        fp_ops = sorted(f.color)
        for a in range(len(fp_ops)):
            for b in range(a + 1, len(fp_ops)):
                pair = (fp_ops[a], fp_ops[b])
                assert pair in info.pairs
                assert info.pairs[pair].kind in (NEVER, ALWAYS, MAYBE)

    def test_never_pairs_have_no_overlap_rows(self):
        ddg = motivating_example()
        machine = motivating_machine()
        f = Formulation(ddg, machine, 4)
        model = f.build()
        info = f.presolve_info
        names = [c.name for c in model.constraints]
        for (i, j), verdict in info.pairs.items():
            prefix = f"ov[{i},{j},"
            rows = [x for x in names if x.startswith(prefix)]
            if verdict.kind == NEVER:
                assert not rows, (i, j)
                assert (i, j) not in f.overlap
            elif verdict.kind == ALWAYS:
                assert not rows, (i, j)  # o folded into the hu rows
                assert (i, j) not in f.overlap


class TestOrderedSymmetry:
    def test_rank_rows_emitted(self):
        """With 3 colored ops on 2 FP units there is one rank row, and
        it pins the earliest-window op to color 1."""
        f = Formulation(_fp_triangle(), motivating_machine(), 4)
        model = f.build()
        sym_rows = [
            c.name for c in model.constraints
            if c.name.startswith("sym[")
        ]
        assert sym_rows == ["sym[FP,0]"]

    def test_can_still_be_disabled(self):
        options = FormulationOptions(symmetry_breaking=False)
        f = Formulation(_fp_triangle(), motivating_machine(), 4, options)
        model = f.build()
        assert not any(
            c.name.startswith("sym[") for c in model.constraints
        )


class TestDifferential:
    @pytest.mark.parametrize("backend", ("highs", "bnb"))
    def test_infeasible_period_agrees_with_solver(self, backend):
        """Presolve's dependence-infeasibility verdict (T=3 < cycle
        bound 4) must match what both solvers say, with and without the
        presolve row shortcut."""
        ddg = _cyclic_pair()
        machine = clean_machine()
        for presolve_on in (True, False):
            options = FormulationOptions(presolve=presolve_on)
            f = Formulation(ddg, machine, 3, options)
            status = f.solve(backend=backend).status
            assert not status.has_solution, (backend, presolve_on)

    @pytest.mark.parametrize("backend", ("highs", "bnb"))
    def test_motivating_statuses_match(self, backend):
        """Presolve on/off agree period by period on the §2 loop."""
        ddg = motivating_example()
        machine = motivating_machine()
        for t_period in (3, 4, 5):
            verdicts = {}
            for presolve_on in (True, False):
                options = FormulationOptions(presolve=presolve_on)
                f = Formulation(ddg, machine, t_period, options)
                solution = f.solve(backend=backend, time_limit=30.0)
                verdicts[presolve_on] = solution.status.has_solution
                if solution.status.has_solution:
                    verify_schedule(f.extract(solution))
            assert verdicts[True] == verdicts[False], (backend, t_period)

    def test_min_fu_counts_unchanged(self):
        """Satellite check: the capacity-row fix for Variable capacities
        plus presolve must not change min_fu's answer."""
        ddg = _fp_triangle()
        machine = motivating_machine()
        for t_period, expected in ((6, 1), (4, 2)):
            counts = {}
            for presolve_on in (True, False):
                options = FormulationOptions(
                    objective="min_fu", presolve=presolve_on
                )
                f = Formulation(ddg, machine, t_period, options)
                solution = f.solve()
                assert solution.status.has_solution
                schedule = f.extract(solution)
                verify_schedule(schedule)
                counts[presolve_on] = schedule.fu_counts_used["FP"]
            assert counts[True] == counts[False] == expected, t_period

    def test_min_fu_infeasible_t_unchanged(self):
        for presolve_on in (True, False):
            options = FormulationOptions(
                objective="min_fu", presolve=presolve_on
            )
            f = Formulation(_fp_triangle(), motivating_machine(), 3, options)
            assert not f.solve().status.has_solution, presolve_on


class TestModelReduction:
    def test_presolve_only_shrinks_the_model(self):
        """On the ppc604 T_lb instance of a mid-size loop, presolve must
        strictly reduce row count and never add variables."""
        import random

        from repro.ddg.generators import GeneratorConfig, random_ddg

        machine = powerpc604()
        rng = random.Random(604)
        ddg = random_ddg(
            rng, machine, GeneratorConfig(min_ops=6, max_ops=10)
        )
        t_lb = lower_bounds(ddg, machine).t_lb
        on = Formulation(ddg, machine, t_lb).build()
        off = Formulation(
            ddg, machine, t_lb, FormulationOptions(presolve=False)
        ).build()
        assert on.num_constraints <= off.num_constraints
        assert on.num_vars <= off.num_vars

    def test_stats_account_for_eliminated_rows(self):
        f_on = Formulation(motivating_example(), motivating_machine(), 4)
        f_on.build()
        f_off = Formulation(
            motivating_example(), motivating_machine(), 4,
            FormulationOptions(presolve=False),
        )
        f_off.build()
        stats = f_on.model_stats
        assert stats.eliminated_constraints > 0
        assert stats.eliminated_variables > 0
        assert (
            stats.constraints + stats.eliminated_constraints
            == f_off.model_stats.constraints
        )
        assert (
            stats.variables + stats.eliminated_variables
            == f_off.model_stats.variables
        )
