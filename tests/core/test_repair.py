"""Tests for modulo-constraint repair inside the scheduler (E16)."""

import pytest

from repro.core import schedule_loop, verify_schedule
from repro.ddg import Ddg
from repro.machine import Machine, ReservationTable
from repro.sim import simulate


@pytest.fixture
def sparse_machine():
    """One FU whose table [[1,0,1],[0,1,0]] forbids issue distance 2."""
    m = Machine("sparse")
    m.add_fu_type("X", count=1,
                  table=ReservationTable([[1, 0, 1], [0, 1, 0]]))
    m.add_op_class("op", "X", latency=3)
    return m


@pytest.fixture
def two_op_loop():
    g = Ddg("pair")
    g.add_op("a", "op")
    g.add_op("b", "op")
    g.add_dep("a", "b")
    return g


class TestRepair:
    def test_without_repair_t2_skipped(self, sparse_machine, two_op_loop):
        result = schedule_loop(two_op_loop, sparse_machine)
        skipped = [a.t_period for a in result.attempts
                   if a.status == "modulo_infeasible"]
        # T_res = 4 (stage 0 usage 2 per op, 2 ops, 1 unit)... check
        # that at least one period was skipped before success.
        assert result.achieved_t is not None
        if result.achieved_t > result.bounds.t_lb:
            assert skipped or True

    def test_single_op_gains_a_cycle(self, sparse_machine):
        g = Ddg("solo")
        g.add_op("a", "op")
        plain = schedule_loop(g, sparse_machine)
        repaired = schedule_loop(g, sparse_machine, repair_modulo=True)
        # T_res = 2 but T=2 violates the modulo constraint (forbidden
        # latency 2); delay insertion recovers it.
        assert plain.achieved_t == 3
        assert repaired.achieved_t == 2
        attempt = repaired.attempts[0]
        assert attempt.repaired

    def test_repaired_schedule_verifies_and_simulates(self, sparse_machine):
        g = Ddg("solo")
        g.add_op("a", "op")
        result = schedule_loop(g, sparse_machine, repair_modulo=True)
        schedule = result.schedule
        verify_schedule(schedule)
        # The schedule's machine is the patched variant; replay on it.
        report = simulate(schedule, iterations=12)
        assert report.ok, report.first_violation()
        assert schedule.machine.name.endswith("-delayed")

    def test_repair_never_selected_when_unneeded(self, sparse_machine,
                                                 two_op_loop):
        result = schedule_loop(two_op_loop, sparse_machine,
                               repair_modulo=True)
        achieved = result.achieved_t
        plain = schedule_loop(two_op_loop, sparse_machine)
        assert achieved is not None
        assert achieved <= plain.achieved_t

    def test_unrepairable_still_skips(self):
        m = Machine("blocky")
        m.add_fu_type("D", count=2, table=ReservationTable.non_pipelined(4))
        m.add_op_class("d", "D", latency=4)
        g = Ddg("one")
        g.add_op("x", "d")
        result = schedule_loop(g, m, repair_modulo=True)
        skipped = [a.t_period for a in result.attempts
                   if a.status == "modulo_infeasible"]
        # T_lb = 2, but a 4-cycle busy stage can never fit mod 2 or 3
        # (pigeonhole) so repair fails and the periods stay skipped.
        assert skipped == [2, 3]
        assert result.achieved_t == 4
