"""Tests for the unified ILP formulation."""

import pytest

from repro.core import (
    Formulation,
    FormulationOptions,
    ModuloInfeasibleError,
    verify_schedule,
)
from repro.core.errors import CoreError, MappingError
from repro.ddg import Ddg
from repro.ddg.kernels import motivating_example
from repro.machine.presets import (
    clean_machine,
    motivating_machine,
    nonpipelined_machine,
)


def _fp_triangle() -> Ddg:
    """Three independent FP ops — the §2 mapping stress case."""
    g = Ddg("fp3")
    for i in range(3):
        g.add_op(f"f{i}", "fadd")
    return g


class TestConstruction:
    def test_rejects_bad_period(self):
        with pytest.raises(CoreError):
            Formulation(_fp_triangle(), motivating_machine(), 0)

    def test_rejects_modulo_infeasible_period(self):
        machine = nonpipelined_machine(div_time=4)
        g = Ddg()
        g.add_op("d", "div")
        with pytest.raises(ModuloInfeasibleError):
            Formulation(g, machine, 2)

    def test_modulo_check_can_be_disabled(self):
        machine = nonpipelined_machine(div_time=4)
        g = Ddg()
        g.add_op("d", "div")
        options = FormulationOptions(enforce_modulo_constraint=False)
        Formulation(g, machine, 2, options)  # no raise

    def test_unknown_objective_rejected(self):
        with pytest.raises(CoreError, match="unknown objective"):
            FormulationOptions(objective="min_latency")

    def test_build_idempotent(self):
        f = Formulation(_fp_triangle(), motivating_machine(), 4)
        model1 = f.build()
        size = model1.num_constraints
        model2 = f.build()
        assert model2 is model1
        assert model2.num_constraints == size


class TestModelShape:
    def test_a_matrix_variables(self):
        f = Formulation(
            _fp_triangle(), motivating_machine(), 4,
            FormulationOptions(presolve=False),
        )
        f.build()
        assert len(f.a) == 4
        assert len(f.a[0]) == 3
        assert all(v.integer for row in f.a for v in row)

    def test_presolve_prunes_a_variables(self):
        """With presolve on, slots outside an op's window hold ``None``
        but every op keeps at least one live slot variable."""
        f = Formulation(_fp_triangle(), motivating_machine(), 4)
        f.build()
        assert len(f.a) == 4 and len(f.a[0]) == 3
        live = [
            sum(1 for t in range(4) if f.a[t][i] is not None)
            for i in range(3)
        ]
        assert all(count >= 1 for count in live)
        assert all(
            v.integer for row in f.a for v in row if v is not None
        )
        assert f.model_stats.eliminated_variables >= 0

    def test_assignment_rows_present(self):
        f = Formulation(_fp_triangle(), motivating_machine(), 4)
        model = f.build()
        names = [c.name for c in model.constraints]
        assert "assign[0]" in names and "assign[2]" in names

    def test_dependence_rows_present(self):
        f = Formulation(motivating_example(), motivating_machine(), 4)
        model = f.build()
        dep_rows = [c for c in model.constraints if c.name.startswith("dep[")]
        assert len(dep_rows) == motivating_example().num_deps

    def test_coloring_only_for_unclean_multicopy_types(self):
        f = Formulation(motivating_example(), motivating_machine(), 4)
        f.build()
        assert f.colored_types == ["FP"]
        fp_ops = {2, 3, 4}
        assert set(f.color) == fp_ops

    def test_clean_machine_has_no_colors(self):
        g = Ddg()
        for i in range(4):
            g.add_op(f"a{i}", "add")
        f = Formulation(g, clean_machine(int_units=2), 2)
        f.build()
        assert not f.color
        assert not f.colored_types

    def test_mapping_false_strips_coloring(self):
        options = FormulationOptions(mapping=False)
        f = Formulation(
            motivating_example(), motivating_machine(), 4, options
        )
        f.build()
        assert not f.color

    def test_mapping_true_forces_coloring_on_clean_types(self):
        g = Ddg()
        for i in range(4):
            g.add_op(f"a{i}", "add")
        options = FormulationOptions(mapping=True)
        f = Formulation(g, clean_machine(int_units=2), 2, options)
        f.build()
        assert f.color

    def test_single_copy_type_needs_no_colors(self):
        machine = motivating_machine(fp_units=1)
        g = Ddg()
        g.add_op("f0", "fadd")
        g.add_op("f1", "fadd")
        f = Formulation(g, machine, 4)
        f.build()
        assert not f.color  # capacity 1 rows already forbid overlap


class TestSolveAndExtract:
    def test_motivating_t3_infeasible_with_mapping(self):
        f = Formulation(motivating_example(), motivating_machine(), 3)
        assert not f.solve().status.has_solution

    def test_motivating_t3_feasible_counting_only(self):
        options = FormulationOptions(mapping=False)
        f = Formulation(
            motivating_example(), motivating_machine(), 3, options
        )
        solution = f.solve()
        assert solution.status.has_solution
        with pytest.raises(MappingError):
            f.extract(solution, require_mapping=True)
        partial = f.extract(solution, require_mapping=False)
        assert not partial.has_complete_mapping

    def test_motivating_t4_feasible_and_verifies(self):
        f = Formulation(motivating_example(), motivating_machine(), 4)
        solution = f.solve()
        assert solution.status.has_solution
        schedule = f.extract(solution)
        verify_schedule(schedule)
        assert schedule.t_period == 4

    def test_extract_requires_solution(self):
        f = Formulation(motivating_example(), motivating_machine(), 3)
        solution = f.solve()
        with pytest.raises(CoreError, match="cannot extract"):
            f.extract(solution)

    def test_both_backends_agree_on_feasibility(self):
        for t_period, feasible in ((3, False), (4, True)):
            for backend in ("highs", "bnb"):
                f = Formulation(
                    motivating_example(), motivating_machine(), t_period
                )
                status = f.solve(backend=backend).status
                assert status.has_solution == feasible, (t_period, backend)


class TestObjectives:
    def test_min_sum_t_compacts(self):
        base = Formulation(
            motivating_example(), motivating_machine(), 4,
            FormulationOptions(objective="min_sum_t"),
        )
        solution = base.solve()
        schedule = base.extract(solution)
        verify_schedule(schedule)
        # min sum t at T=4 is known: 0+1+3+5+7+10 = 26.
        assert sum(schedule.starts) == 26

    def test_min_fu_uses_one_fp_when_t_allows(self):
        """At a large T the three FP ops fit on one unit."""
        options = FormulationOptions(objective="min_fu")
        f = Formulation(_fp_triangle(), motivating_machine(), 6, options)
        solution = f.solve()
        assert solution.status.has_solution
        schedule = f.extract(solution)
        assert schedule.fu_counts_used is not None
        assert schedule.fu_counts_used["FP"] == 1
        verify_schedule(schedule)

    def test_min_fu_infeasible_at_t3_even_with_both_units(self):
        """Three stage-3 arcs of length 2 pairwise overlap in Z_3, so
        even min_fu's full budget of 2 FP units cannot realize T=3."""
        options = FormulationOptions(objective="min_fu")
        f = Formulation(_fp_triangle(), motivating_machine(), 3, options)
        assert not f.solve().status.has_solution

    def test_min_fu_needs_two_fp_at_t4(self):
        options = FormulationOptions(objective="min_fu")
        f = Formulation(_fp_triangle(), motivating_machine(), 4, options)
        solution = f.solve()
        assert solution.status.has_solution
        schedule = f.extract(solution)
        assert schedule.fu_counts_used["FP"] == 2
        verify_schedule(schedule)

    def test_min_buffers_reduces_lifetimes(self):
        options = FormulationOptions(objective="min_buffers")
        f = Formulation(
            motivating_example(), motivating_machine(), 4, options
        )
        solution = f.solve()
        schedule = f.extract(solution)
        verify_schedule(schedule)

    def test_min_lifetimes_objective(self):
        """Sum of issue-to-use spans is minimized and never exceeds the
        feasibility solution's."""
        ddg = motivating_example()
        machine = motivating_machine()

        def spans(schedule):
            return sum(
                schedule.starts[d.dst] - schedule.starts[d.src]
                + 4 * d.distance
                for d in ddg.deps
            )

        plain = Formulation(ddg, machine, 4)
        plain_schedule = plain.extract(plain.solve())
        tuned = Formulation(
            ddg, machine, 4,
            FormulationOptions(objective="min_lifetimes"),
        )
        tuned_solution = tuned.solve()
        tuned_schedule = tuned.extract(tuned_solution)
        verify_schedule(tuned_schedule)
        assert spans(tuned_schedule) <= spans(plain_schedule)
        assert tuned_solution.objective == pytest.approx(
            spans(tuned_schedule)
        )

    def test_feasibility_objective_is_zero(self):
        f = Formulation(motivating_example(), motivating_machine(), 4)
        solution = f.solve()
        assert solution.objective == pytest.approx(0.0)


class TestSymmetryBreaking:
    def test_first_colored_op_gets_color_one(self):
        f = Formulation(motivating_example(), motivating_machine(), 4)
        solution = f.solve()
        first_fp = min(f.color)
        assert solution.int_value(f.color[first_fp]) == 1

    def test_can_be_disabled(self):
        options = FormulationOptions(symmetry_breaking=False)
        f = Formulation(
            motivating_example(), motivating_machine(), 4, options
        )
        model = f.build()
        assert not any(c.name.startswith("sym[") for c in model.constraints)
