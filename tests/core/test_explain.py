"""Tests for the infeasibility explainer."""

import pytest

from repro.core.explain import Reason, explain_infeasibility
from repro.ddg import Ddg
from repro.ddg.kernels import motivating_example
from repro.machine import Machine, ReservationTable
from repro.machine.presets import (
    motivating_machine,
    nonpipelined_machine,
    powerpc604,
)


class TestLevels:
    def test_feasible(self):
        diagnosis = explain_infeasibility(
            motivating_example(), motivating_machine(), 4
        )
        assert diagnosis.reason == Reason.FEASIBLE

    def test_modulo(self):
        machine = nonpipelined_machine(div_units=2, div_time=4)
        g = Ddg("one")
        g.add_op("d", "div")
        diagnosis = explain_infeasibility(g, machine, 2)
        assert diagnosis.reason == Reason.MODULO
        assert "div" in diagnosis.detail
        assert diagnosis.critical_ops == [0]

    def test_dependence(self):
        machine = powerpc604()
        g = Ddg("rec")
        g.add_op("a", "fadd")
        g.add_dep("a", "a", distance=1)
        diagnosis = explain_infeasibility(g, machine, 2)  # needs 3
        assert diagnosis.reason == Reason.DEPENDENCE
        assert 0 in diagnosis.critical_ops

    def test_capacity(self):
        machine = powerpc604()
        g = Ddg("four-loads")
        for i in range(4):
            g.add_op(f"l{i}", "load")
        diagnosis = explain_infeasibility(g, machine, 2)  # LSU needs 4
        assert diagnosis.reason == Reason.CAPACITY
        assert "LSU" in diagnosis.detail
        assert len(diagnosis.critical_ops) == 4

    def test_mapping_on_motivating_example(self):
        """The §2 story in one word: T=3 dies on MAPPING."""
        diagnosis = explain_infeasibility(
            motivating_example(), motivating_machine(), 3
        )
        assert diagnosis.reason == Reason.MAPPING
        assert diagnosis.counting_schedule is not None
        assert diagnosis.counting_schedule.t_period == 3
        assert "FU assignment" in diagnosis.detail or "fits on none" in (
            diagnosis.detail
        )

    def test_render_mentions_ops(self):
        ddg = motivating_example()
        diagnosis = explain_infeasibility(ddg, motivating_machine(), 3)
        text = diagnosis.render(ddg)
        assert "T = 3" in text
        assert "coloring" in text or "assignment" in text or "fits" in text


class TestConsistencyWithScheduler:
    @pytest.mark.parametrize("t_period,expected", [
        (3, Reason.MAPPING),
        (4, Reason.FEASIBLE),
        (5, Reason.FEASIBLE),
    ])
    def test_motivating_sweep(self, t_period, expected):
        diagnosis = explain_infeasibility(
            motivating_example(), motivating_machine(), t_period
        )
        assert diagnosis.reason == expected

    def test_counting_infeasible_combined(self):
        """Dependences + counting interact: a single-unit machine where
        each relaxation alone passes but their combination fails at the
        bound... exercised via a tight 2-op chain."""
        machine = Machine("tight")
        machine.add_fu_type(
            "X", count=1, table=ReservationTable([[1, 1, 0]])
        )
        machine.add_op_class("op", "X", latency=3)
        g = Ddg("pair")
        g.add_op("a", "op")
        g.add_op("b", "op")
        g.add_dep("a", "b")
        g.add_dep("b", "a", distance=1)
        # T_dep = 6; capacity bound = 4; at T=4..5 dependence fails.
        diagnosis = explain_infeasibility(g, machine, 5)
        assert diagnosis.reason == Reason.DEPENDENCE
