"""Tests for the rate-optimal scheduling driver."""

import pytest

from repro.core import schedule_loop, verify_schedule
from repro.core.scheduler import ScheduleAttempt, SchedulingResult
from repro.core.bounds import LowerBounds
from repro.ddg import Ddg
from repro.ddg.kernels import KERNELS, motivating_example
from repro.machine.presets import (
    motivating_machine,
    nonpipelined_machine,
    powerpc604,
)


class TestMotivatingEndToEnd:
    def test_finds_t4(self):
        result = schedule_loop(motivating_example(), motivating_machine())
        assert result.achieved_t == 4
        assert result.bounds == LowerBounds(t_dep=2, t_res=3)
        assert result.delta_from_lb == 1

    def test_rate_optimality_proven(self):
        result = schedule_loop(motivating_example(), motivating_machine())
        assert result.is_rate_optimal_proven
        t3 = [a for a in result.attempts if a.t_period == 3]
        assert t3 and t3[0].status == "infeasible"

    def test_schedule_verifies(self):
        result = schedule_loop(motivating_example(), motivating_machine())
        verify_schedule(result.schedule)

    def test_summary_text(self):
        result = schedule_loop(motivating_example(), motivating_machine())
        text = result.summary()
        assert "T_lb=3" in text and "-> T=4" in text


class TestDriverBehaviour:
    def test_counting_only_mode(self):
        result = schedule_loop(
            motivating_example(), motivating_machine(), mapping=False
        )
        assert result.achieved_t == 3  # aggregate-feasible at T_lb
        assert not result.schedule.has_complete_mapping

    def test_max_extra_zero_gives_up(self):
        result = schedule_loop(
            motivating_example(), motivating_machine(), max_extra=0
        )
        assert result.schedule is None
        assert result.achieved_t is None
        assert result.delta_from_lb is None

    def test_modulo_infeasible_periods_recorded(self):
        machine = nonpipelined_machine(div_units=1, div_time=4)
        g = Ddg("divs")
        g.add_op("d0", "div")
        g.add_op("d1", "div")
        g.add_dep("d0", "d1")
        result = schedule_loop(g, machine)
        # T_res = 8; all admissible, so scheduled at 8 directly.
        assert result.achieved_t == 8
        verify_schedule(result.schedule)

    def test_modulo_skips_show_in_attempts(self):
        machine = nonpipelined_machine(div_units=2, div_time=4)
        g = Ddg("one-div")
        g.add_op("d0", "div")
        g.add_op("d1", "div")
        # T_lb = ceil(8/2) = 4; fine.  Force a skip by making T_lb small:
        g2 = Ddg("single")
        g2.add_op("d", "div")
        result = schedule_loop(g2, machine)
        skipped = [
            a.t_period for a in result.attempts
            if a.status == "modulo_infeasible"
        ]
        assert skipped == [2, 3]  # T_lb=2, but only T=4 admissible
        assert result.achieved_t == 4

    def test_attempts_record_model_stats(self):
        result = schedule_loop(motivating_example(), motivating_machine())
        solved = [
            a for a in result.attempts
            if a.status not in ("modulo_infeasible", "heuristic")
        ]
        assert solved
        # An attempt settled by a recycled infeasibility cut (possible
        # when an earlier sweep in this process already proved its T)
        # records the cut kind instead of model sizes.
        for attempt in solved:
            if "cut_skip" in attempt.model_stats:
                assert attempt.status == "infeasible"
            else:
                assert attempt.model_stats["variables"] > 0

    def test_objectives_pass_through(self):
        result = schedule_loop(
            motivating_example(), motivating_machine(),
            objective="min_sum_t",
        )
        assert sum(result.schedule.starts) == 26

    def test_bnb_backend_matches_highs(self):
        highs = schedule_loop(
            motivating_example(), motivating_machine(), backend="highs"
        )
        bnb = schedule_loop(
            motivating_example(), motivating_machine(), backend="bnb"
        )
        assert highs.achieved_t == bnb.achieved_t == 4
        verify_schedule(bnb.schedule)


class TestKernelsOnPpc604:
    @pytest.mark.parametrize("name", sorted(KERNELS))
    def test_every_kernel_schedules_and_verifies(self, name):
        machine = powerpc604()
        result = schedule_loop(KERNELS[name](), machine)
        assert result.schedule is not None
        verify_schedule(result.schedule)

    @pytest.mark.parametrize("name", ["dotprod", "ll11"])
    def test_recurrence_bound_achieved(self, name):
        """These kernels are recurrence-bound: T should equal T_dep."""
        machine = powerpc604()
        result = schedule_loop(KERNELS[name](), machine)
        assert result.achieved_t == result.bounds.t_dep


class TestResultProperties:
    def test_not_proven_when_smaller_t_unresolved(self):
        from repro.core.schedule import Schedule

        ddg = motivating_example()
        machine = motivating_machine()
        schedule = Schedule(ddg=ddg, machine=machine, t_period=4,
                            starts=[0, 1, 3, 5, 7, 11], colors={})
        result = SchedulingResult(
            loop_name="x",
            bounds=LowerBounds(t_dep=2, t_res=3),
            attempts=[
                ScheduleAttempt(t_period=3, status="time_limit"),
                ScheduleAttempt(t_period=4, status="optimal"),
            ],
            schedule=schedule,
        )
        assert not result.is_rate_optimal_proven

    def test_proven_when_smaller_t_modulo_skipped(self):
        from repro.core.schedule import Schedule

        ddg = motivating_example()
        machine = motivating_machine()
        schedule = Schedule(ddg=ddg, machine=machine, t_period=4,
                            starts=[0, 1, 3, 5, 7, 11], colors={})
        result = SchedulingResult(
            loop_name="x",
            bounds=LowerBounds(t_dep=2, t_res=3),
            attempts=[
                ScheduleAttempt(t_period=3, status="modulo_infeasible"),
                ScheduleAttempt(t_period=4, status="optimal"),
            ],
            schedule=schedule,
        )
        assert result.is_rate_optimal_proven
