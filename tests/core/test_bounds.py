"""Tests for initiation-interval lower bounds and period filtering."""

import pytest

from repro.core import bounds
from repro.ddg import Ddg
from repro.ddg.kernels import motivating_example
from repro.machine import Machine, ReservationTable
from repro.machine.presets import (
    clean_machine,
    motivating_machine,
    nonpipelined_machine,
)


def _loop_of(op_class: str, count: int) -> Ddg:
    g = Ddg(f"{count}x{op_class}")
    previous = None
    for i in range(count):
        op = g.add_op(f"n{i}", op_class)
        if previous is not None:
            g.add_dep(previous, op)
        previous = op
    return g


class TestTRes:
    def test_clean_pipeline_is_ops_over_units(self):
        machine = clean_machine(fp_units=1)
        assert bounds.t_res(_loop_of("fadd", 5), machine) == 5
        machine2 = clean_machine(fp_units=2)
        assert bounds.t_res(_loop_of("fadd", 5), machine2) == 3  # ceil(5/2)

    def test_non_pipelined_scales_with_busy_time(self):
        machine = nonpipelined_machine(div_units=1, div_time=4)
        assert bounds.t_res(_loop_of("div", 3), machine) == 12
        machine2 = nonpipelined_machine(div_units=2, div_time=4)
        assert bounds.t_res(_loop_of("div", 3), machine2) == 6

    def test_unclean_uses_busiest_stage(self):
        machine = motivating_machine(fp_units=2)
        # fadd uses stage 3 twice: 3 ops * 2 uses / 2 units = 3.
        assert bounds.t_res(_loop_of("fadd", 3), machine) == 3

    def test_minimum_is_one(self):
        machine = clean_machine(int_units=2)
        assert bounds.t_res(_loop_of("add", 1), machine) == 1

    def test_per_type_breakdown(self):
        machine = motivating_machine()
        per_type = bounds.per_type_t_res(motivating_example(), machine)
        assert per_type == {"FP": 3, "MEM": 3}

    def test_only_used_types_counted(self):
        machine = motivating_machine()
        per_type = bounds.per_type_t_res(_loop_of("load", 2), machine)
        assert set(per_type) == {"MEM"}


class TestLowerBounds:
    def test_motivating(self):
        lbs = bounds.lower_bounds(motivating_example(), motivating_machine())
        assert lbs.t_dep == 2
        assert lbs.t_res == 3
        assert lbs.t_lb == 3

    def test_t_lb_is_max(self):
        lbs = bounds.LowerBounds(t_dep=7, t_res=3)
        assert lbs.t_lb == 7


class TestModuloFilter:
    def test_clean_machine_all_feasible(self):
        machine = clean_machine()
        g = _loop_of("fadd", 2)
        assert all(
            bounds.modulo_feasible_t(g, machine, t) for t in range(1, 10)
        )

    def test_non_pipelined_small_periods_infeasible(self):
        machine = nonpipelined_machine(div_time=4)
        g = _loop_of("div", 1)
        assert not bounds.modulo_feasible_t(g, machine, 2)
        assert bounds.modulo_feasible_t(g, machine, 5)

    def test_only_used_classes_matter(self):
        machine = nonpipelined_machine(div_time=4)
        adds = _loop_of("add", 2)  # never touches the DIV unit
        assert bounds.modulo_feasible_t(adds, machine, 1)

    def test_infeasible_periods_listing(self):
        machine = nonpipelined_machine(div_time=4)
        g = _loop_of("div", 1)
        assert bounds.infeasible_periods(g, machine, 8) == [1, 2, 3]


class TestCandidatePeriods:
    def test_starts_at_t_lb(self):
        machine = motivating_machine()
        periods = list(bounds.candidate_periods(
            motivating_example(), machine, max_extra=3
        ))
        assert periods == [3, 4, 5, 6]

    def test_skips_modulo_infeasible(self):
        machine = Machine("gappy")
        machine.add_fu_type(
            "X", count=1, table=ReservationTable([[1, 0, 0, 1]])
        )  # forbidden latency 3
        machine.add_op_class("op", "X", latency=4)
        g = _loop_of("op", 1)
        periods = list(bounds.candidate_periods(g, machine, max_extra=4))
        # T_res = 2 (busiest stage used twice); T=3 violates the modulo rule.
        assert 3 not in periods
        assert periods[0] == 2

    def test_include_infeasible_flag(self):
        machine = Machine("gappy")
        machine.add_fu_type(
            "X", count=1, table=ReservationTable([[1, 0, 0, 1]])
        )
        machine.add_op_class("op", "X", latency=4)
        g = _loop_of("op", 1)
        periods = list(bounds.candidate_periods(
            g, machine, max_extra=4, include_infeasible=True
        ))
        assert 3 in periods
