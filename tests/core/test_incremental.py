"""Incremental sweep core: byte parity, cut soundness, registry behavior.

The contract under test is strict: everything the
:class:`repro.core.incremental.SweepContext` feeds back into a build must
reproduce the cold path's output *exactly* (``render()``-identical
models, field-identical presolve info), and every recycled cut may fire
only where the cold path deterministically returns INFEASIBLE.
"""

import pytest

from repro.core.formulation import Formulation, FormulationOptions
from repro.core.incremental import (
    CAPACITY_FLOOR,
    CYCLE_FLOOR,
    WINDOW_MEMO,
    CutPool,
    LoopAnalysis,
    SweepContext,
    clear_contexts,
    context_for,
    incremental_stats,
    machine_key,
)
from repro.core.presolve import _collapsed_edges, presolve
from repro.core.scheduler import AttemptConfig, attempt_period, schedule_loop
from repro.ddg.generators import suite
from repro.ddg.graph import Ddg
from repro.ddg.kernels import motivating_example
from repro.machine.presets import motivating_machine, powerpc604


@pytest.fixture(autouse=True)
def _fresh_registry():
    clear_contexts()
    yield
    clear_contexts()


def _loops(machine, count=6, seed=1207, max_ops=9):
    loops = [motivating_example()] + suite(count, machine, seed=seed)
    return [d for d in loops if d.num_ops <= max_ops]


class TestLoopAnalysis:
    def test_collapsed_edges_match_cold_exactly(self):
        machine = motivating_machine()
        for ddg in _loops(machine):
            analysis = LoopAnalysis(ddg, machine)
            for t_period in range(1, 9):
                assert analysis.collapsed_edges(t_period) == _collapsed_edges(
                    ddg, machine, t_period
                ), (ddg.name, t_period)

    def test_t_independent_products_match_cold(self):
        machine = motivating_machine()
        ddg = motivating_example()
        analysis = LoopAnalysis(ddg, machine)
        assert analysis.dep_latencies == list(ddg.dep_latencies(machine))
        assert analysis.total_latency == sum(ddg.latencies(machine))
        groups = {}
        for op in ddg.ops:
            fu = machine.op_class(op.op_class).fu_type
            groups.setdefault(fu, []).append(op.index)
        assert analysis.ops_by_type == groups

    def test_pair_diff_residues_are_per_t_offsets(self):
        # The per-T offset set must equal {d % T} over the raw diffs —
        # checked indirectly by presolve parity below, directly here.
        machine = motivating_machine()
        ddg = motivating_example()
        analysis = LoopAnalysis(ddg, machine)
        for (i, j, s), diffs in list(analysis._pair_diffs.items()):
            ci = analysis.stage_cycles.get((i, s), ())
            cj = analysis.stage_cycles.get((j, s), ())
            assert diffs == tuple(a - b for a in ci for b in cj)


class TestBuildParity:
    @pytest.mark.parametrize("objective", [
        "feasibility", "min_sum_t", "min_buffers", "min_fu",
    ])
    def test_model_byte_identical_with_context(self, objective):
        machine = motivating_machine()
        for ddg in _loops(machine, count=4):
            context = context_for(ddg, machine)
            for t_period in range(2, 8):
                for mapping in (None, True, False):
                    options = FormulationOptions(
                        objective=objective, mapping=mapping,
                        enforce_modulo_constraint=False,
                    )
                    cold = Formulation(ddg, machine, t_period, options)
                    cold.build()
                    fed = Formulation(
                        ddg, machine, t_period, options, context=context
                    )
                    fed.build()
                    assert fed.model.render() == cold.model.render(), (
                        ddg.name, t_period, objective, mapping
                    )

    def test_presolve_info_identical_with_analysis(self):
        machine = motivating_machine()
        for ddg in _loops(machine, count=4):
            analysis = LoopAnalysis(ddg, machine)
            for t_period in range(2, 8):
                cold = presolve(ddg, machine, t_period)
                fed = presolve(ddg, machine, t_period, analysis=analysis)
                assert fed.infeasible == cold.infeasible
                assert fed.k_max == cold.k_max
                assert fed.asap == cold.asap
                assert fed.latest == cold.latest
                assert fed.slot_windows == cold.slot_windows
                assert fed.k_bounds == cold.k_bounds
                assert fed.pairs == cold.pairs

    def test_reused_rows_accounted(self):
        machine = motivating_machine()
        ddg = motivating_example()
        context = context_for(ddg, machine)
        fed = Formulation(ddg, machine, 4, context=context)
        fed.build()
        stats = fed.model_stats
        assert stats.reused_rows > 0
        assert stats.reused_rows + stats.rebuilt_rows == stats.constraints
        cold = Formulation(ddg, machine, 4)
        cold.build()
        assert cold.model_stats.reused_rows == 0
        assert cold.model_stats.rebuilt_rows == cold.model_stats.constraints


class TestCutPool:
    def test_floor_validity_is_strict(self):
        pool = CutPool()
        pool.assert_floor(CYCLE_FLOOR, "m", 4)
        assert pool.consult("m", 3, "feasibility", None, None) == CYCLE_FLOOR
        assert pool.consult("m", 4, "feasibility", None, None) is None
        assert pool.consult("other", 3, "feasibility", None, None) is None
        pool.assert_floor(CAPACITY_FLOOR, "m", 6)
        assert (
            pool.consult("m", 5, "feasibility", None, None) == CAPACITY_FLOOR
        )
        # A floor never regresses to a weaker one.
        pool.assert_floor(CAPACITY_FLOOR, "m", 2)
        assert (
            pool.consult("m", 5, "feasibility", None, None) == CAPACITY_FLOOR
        )

    def test_window_memo_is_exact_tuple(self):
        pool = CutPool()
        pool.memoize_infeasible("m", 5, "feasibility", None, None, "solver")
        assert pool.consult("m", 5, "feasibility", None, None) == WINDOW_MEMO
        # Any differing coordinate misses.
        assert pool.consult("m", 6, "feasibility", None, None) is None
        assert pool.consult("m", 5, "min_sum_t", None, None) is None
        assert pool.consult("m", 5, "feasibility", 7, None) is None
        assert pool.consult("m", 5, "feasibility", None, True) is None
        assert pool.consult("x", 5, "feasibility", None, None) is None

    def test_harvest_through_attempt_period(self):
        machine = motivating_machine()
        ddg = motivating_example()
        config = AttemptConfig(backend="bnb", warmstart=False)
        context = context_for(ddg, machine)
        key = context.base_machine_key
        # T=3 needs the solver to prove infeasibility: memo only.
        first = attempt_period(ddg, machine, 3, config, context=context)
        assert first.attempt.status == "infeasible"
        assert "cut_skip" not in first.attempt.model_stats
        memo_key = (key, 3, "feasibility", None, None)
        assert context.cuts.window_memo[memo_key] == "solver"
        # The replay settles the retry without building anything.
        again = attempt_period(ddg, machine, 3, config, context=context)
        assert again.attempt.status == "infeasible"
        assert again.attempt.model_stats == {"cut_skip": WINDOW_MEMO}
        # T=2 is presolve-proven infeasible, which also certifies the
        # machine's dependence and capacity floors.
        below = attempt_period(ddg, machine, 2, config, context=context)
        assert below.attempt.status == "infeasible"
        assert "cut_skip" not in below.attempt.model_stats
        assert context.cuts.window_memo[
            (key, 2, "feasibility", None, None)
        ] == "presolve"
        assert context.cuts.cycle_floors[key] == 2
        assert context.cuts.capacity_floors[key] == 3
        # A retry of T=2 now sits below the capacity floor: floor-skip,
        # no memo lookup needed.
        retry = attempt_period(ddg, machine, 2, config, context=context)
        assert retry.attempt.status == "infeasible"
        assert retry.attempt.model_stats["cut_skip"] in (
            CYCLE_FLOOR, CAPACITY_FLOOR,
        )

    def test_cuts_never_fire_without_incremental(self):
        machine = motivating_machine()
        ddg = motivating_example()
        context = context_for(ddg, machine)
        context.cuts.memoize_infeasible(
            context.base_machine_key, 3, "feasibility", None, None, "solver"
        )
        config = AttemptConfig(backend="bnb", warmstart=False,
                               incremental=False)
        outcome = attempt_period(ddg, machine, 3, config)
        assert outcome.attempt.status == "infeasible"
        assert "cut_skip" not in outcome.attempt.model_stats


class TestRegistry:
    def test_structurally_identical_loops_share_a_context(self):
        machine = motivating_machine()
        first = motivating_example()
        second = motivating_example()
        assert first is not second
        assert context_for(first, machine) is context_for(second, machine)
        stats = incremental_stats()
        assert stats["contexts"] == 1
        assert stats["registry_hits"] == 1
        assert stats["registry_misses"] == 1

    def test_distinct_machines_get_distinct_contexts(self):
        ddg = motivating_example()
        a = context_for(ddg, motivating_machine())
        b = context_for(ddg, powerpc604())
        assert a is not b

    def test_analysis_lru_per_attempt_machine(self):
        machine = motivating_machine()
        ddg = motivating_example()
        context = context_for(ddg, machine)
        one = context.analysis_for(machine)
        two = context.analysis_for(machine)
        assert one is two
        assert context.stats.analyses_built == 1
        assert context.stats.analysis_hits == 1

    def test_clear_contexts_resets(self):
        context_for(motivating_example(), motivating_machine())
        clear_contexts()
        stats = incremental_stats()
        assert stats["contexts"] == 0
        assert stats["registry_misses"] == 0

    def test_machine_key_matches_context_base(self):
        machine = motivating_machine()
        context = context_for(motivating_example(), machine)
        assert context.base_machine_key == machine_key(machine)

    def test_context_survives_sweep_and_banks_cuts(self):
        machine = motivating_machine()
        ddg = motivating_example()
        result = schedule_loop(ddg, machine, backend="bnb", warmstart=False)
        assert result.achieved_t == 4
        stats = incremental_stats()
        assert stats["contexts"] == 1
        assert stats["cuts_harvested"] > 0
        # Sweeping the identical loop again replays the banked verdict.
        rerun = schedule_loop(
            motivating_example(), machine, backend="bnb", warmstart=False
        )
        assert rerun.achieved_t == 4
        assert rerun.is_rate_optimal_proven
        skipped = [
            a for a in rerun.attempts
            if "cut_skip" in a.model_stats
        ]
        assert skipped and all(a.status == "infeasible" for a in skipped)


class TestSweepDifferential:
    """Incremental on/off must be invisible in every result field."""

    @staticmethod
    def _key(result):
        return (
            result.achieved_t,
            result.is_rate_optimal_proven,
            result.bounds.t_lb,
            [a.status for a in result.attempts],
            result.schedule.starts if result.schedule else None,
            (sorted(result.schedule.colors.items())
             if result.schedule else None),
        )

    @pytest.mark.parametrize("backend", ["bnb", "highs"])
    def test_smoke_differential(self, backend):
        machine = motivating_machine()
        for ddg in _loops(machine, count=3, max_ops=8):
            clear_contexts()
            on = schedule_loop(
                ddg, machine, backend=backend, warmstart=False,
                incremental=True,
            )
            clear_contexts()
            off = schedule_loop(
                ddg, machine, backend=backend, warmstart=False,
                incremental=False,
            )
            assert self._key(on) == self._key(off), (backend, ddg.name)
