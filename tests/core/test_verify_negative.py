"""Oracle hardening: mutated schedules must be *rejected* by the verifier.

``verify_schedule`` is the independent checker every driver and test
trusts; these tests make sure it actually catches corrupted schedules —
a verifier that accepts everything would silently green-light both
drivers.  Each mutation targets one check and asserts the specific
:class:`VerificationError` message.
"""

import dataclasses

import pytest

from repro.core import schedule_loop, verify_schedule
from repro.core.errors import VerificationError
from repro.ddg.kernels import motivating_example
from repro.machine.presets import motivating_machine


@pytest.fixture(scope="module")
def good():
    """A verified schedule of the §2 motivating loop (T=4).

    The mutations below target the specific feasible point the ILP
    returns; disable the heuristic warm start so the fixture stays
    pinned to that solution rather than the modulo scheduler's.
    """
    result = schedule_loop(
        motivating_example(), motivating_machine(), warmstart=False
    )
    assert result.schedule is not None
    verify_schedule(result.schedule)
    return result.schedule


def _with(schedule, **changes):
    return dataclasses.replace(schedule, **changes)


class TestStartMutations:
    def test_shift_start_breaks_capacity(self, good):
        starts = list(good.starts)
        starts[0] += 1  # load now collides with the other load's slot
        with pytest.raises(VerificationError, match="FU type 'MEM'"):
            verify_schedule(_with(good, starts=starts))

    def test_shift_start_breaks_mapping(self, good):
        starts = list(good.starts)
        starts[3] += 1  # fadd lands on a slot its own FP copy already uses
        with pytest.raises(
            VerificationError, match="structural hazard on FP#0"
        ):
            verify_schedule(_with(good, starts=starts))

    def test_shift_start_breaks_dependence(self, good):
        starts = list(good.starts)
        starts[5] = 0  # the store now precedes the fadd chain feeding it
        with pytest.raises(
            VerificationError, match=r"dependence i4->i5 .* violated"
        ):
            verify_schedule(_with(good, starts=starts))

    def test_negative_start_rejected(self, good):
        starts = list(good.starts)
        starts[2] = -1
        with pytest.raises(
            VerificationError, match="invalid start time"
        ):
            verify_schedule(_with(good, starts=starts))

    def test_wrong_start_count_rejected(self, good):
        with pytest.raises(
            VerificationError, match="start times for"
        ):
            verify_schedule(_with(good, starts=list(good.starts[:-1])))


class TestColorMutations:
    def test_swap_two_colors_rejected(self, good):
        # i2 (FP#0) and i4 (FP#1) overlap third parties once exchanged.
        colors = dict(good.colors)
        colors[2], colors[4] = colors[4], colors[2]
        with pytest.raises(
            VerificationError, match="structural hazard on FP#"
        ):
            verify_schedule(_with(good, colors=colors))

    def test_out_of_range_color_rejected(self, good):
        colors = dict(good.colors)
        colors[2] = 99
        with pytest.raises(
            VerificationError, match=r"mapped to FP#99 but only"
        ):
            verify_schedule(_with(good, colors=colors))

    def test_missing_color_rejected(self, good):
        colors = dict(good.colors)
        del colors[2]
        with pytest.raises(
            VerificationError, match="no FU assignment for: i2"
        ):
            verify_schedule(_with(good, colors=colors))

    def test_missing_color_ok_when_mapping_unchecked(self, good):
        colors = dict(good.colors)
        del colors[2]
        verify_schedule(_with(good, colors=colors), check_mapping=False)


class TestPeriodMutations:
    def test_shrunk_period_rejected(self, good):
        # T=3 was proven infeasible by the driver; relabeling the same
        # starts with T=3 must therefore fail verification.  Which FP
        # check trips first (type capacity vs per-copy hazard) depends
        # on the particular feasible point the solver returned.
        with pytest.raises(VerificationError, match="FP"):
            verify_schedule(_with(good, t_period=good.t_period - 1))

    def test_grown_period_can_break_dependences(self, good):
        # Growing T stretches carried-dependence slack the other way;
        # the motivating loop's recurrence keeps this schedule valid at
        # T+1, so assert the verifier (not an exception) decides.
        mutated = _with(good, t_period=good.t_period + 1)
        try:
            verify_schedule(mutated)
        except VerificationError as exc:
            assert "violated" in str(exc) or "needs" in str(exc)
