"""Tests for the linear periodic schedule form (Eq. 1)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import periodic
from repro.core.errors import CoreError


class TestDecompose:
    def test_paper_figure3(self):
        """The published Schedule B: T=[0,1,3,5,7,11], T=4."""
        k, a = periodic.decompose([0, 1, 3, 5, 7, 11], 4)
        assert k == [0, 0, 0, 1, 1, 2]
        assert a.shape == (4, 6)
        # Paper's quoted A rows: t=1 -> i1,i3; t=3 -> i2,i4,i5.
        assert a[1].tolist() == [0, 1, 0, 1, 0, 0]
        assert a[3].tolist() == [0, 0, 1, 0, 1, 1]

    def test_single_op(self):
        k, a = periodic.decompose([5], 3)
        assert k == [1]
        assert a[2, 0] == 1

    def test_rejects_bad_period(self):
        with pytest.raises(CoreError):
            periodic.decompose([0], 0)

    def test_rejects_negative_start(self):
        with pytest.raises(CoreError, match="negative"):
            periodic.decompose([-1], 2)

    def test_columns_sum_to_one(self):
        _, a = periodic.decompose([0, 4, 9, 2], 5)
        assert (a.sum(axis=0) == 1).all()


class TestCompose:
    def test_inverse_of_decompose(self):
        starts = [0, 1, 3, 5, 7, 11]
        k, a = periodic.decompose(starts, 4)
        assert periodic.compose(k, a, 4) == starts

    def test_rejects_wrong_row_count(self):
        with pytest.raises(CoreError, match="rows"):
            periodic.compose([0], np.zeros((3, 1), dtype=int), 4)

    def test_rejects_non_binary(self):
        a = np.full((2, 1), 2)
        with pytest.raises(CoreError, match="0-1"):
            periodic.compose([0], a, 2)

    def test_rejects_multi_start_column(self):
        a = np.ones((2, 1), dtype=int)
        with pytest.raises(CoreError, match="exactly one"):
            periodic.compose([0], a, 2)


class TestValidate:
    def test_accepts_consistent_triple(self):
        starts = [2, 5, 9]
        k, a = periodic.decompose(starts, 4)
        periodic.validate(starts, k, a, 4)

    def test_rejects_tampered_k(self):
        starts = [2, 5, 9]
        k, a = periodic.decompose(starts, 4)
        k[0] += 1
        with pytest.raises(CoreError, match="Eq. 1"):
            periodic.validate(starts, k, a, 4)


class TestHelpers:
    def test_offsets(self):
        assert periodic.offsets([0, 1, 3, 5, 7, 11], 4) == [0, 1, 3, 1, 3, 3]

    def test_format_tka_contains_vectors(self):
        text = periodic.format_tka([0, 1, 3], 2, ["a", "b", "c"])
        assert "T = [0, 1, 3]'" in text
        assert "K = [0, 0, 1]'" in text
        assert "a, b, c" in text

    def test_format_tka_default_names(self):
        text = periodic.format_tka([0, 1], 2)
        assert "i0, i1" in text


@settings(max_examples=100, deadline=None)
@given(
    st.lists(st.integers(0, 60), min_size=1, max_size=12),
    st.integers(1, 12),
)
def test_property_decompose_compose_roundtrip(starts, t_period):
    """Property: compose(decompose(T)) == T for any starts and period."""
    k, a = periodic.decompose(starts, t_period)
    assert periodic.compose(k, a, t_period) == starts
    assert all(ki == ti // t_period for ki, ti in zip(k, starts))
