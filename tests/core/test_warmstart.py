"""Differential tests for the heuristic-primal warm-start pipeline.

The load-bearing property: every warm start the pipeline hands a solver
is a *feasible integer point of the built model*, checked row by row
(``violated_rows``), for every objective and with presolve both on and
off.  A warm start that silently violated a row would not crash — the
solvers treat starts as advisory — but it would throw away the pruning
the whole feature exists for, so the suite asserts emptiness explicitly.

The corpus-wide sweep agreement tests (warm start on vs off must reach
the same achieved period on both backends) are marked ``slow`` and run
with ``-m slow``.
"""

import random

import pytest

from repro.core import (
    HEURISTIC,
    Formulation,
    FormulationOptions,
    compute_warmstart,
    schedule_loop,
    verify_schedule,
)
from repro.core.warmstart import violated_rows, warmstart_assignment
from repro.ddg import Ddg
from repro.ddg.generators import GeneratorConfig, random_ddg
from repro.ddg.kernels import KERNELS, motivating_example
from repro.machine.presets import motivating_machine, powerpc604

OBJECTIVES = (
    "feasibility", "min_sum_t", "min_fu", "min_buffers", "min_lifetimes"
)


def _corpus(machine, count, seed, max_ops=10):
    rng = random.Random(seed)
    return [
        random_ddg(
            rng, machine, GeneratorConfig(min_ops=3, max_ops=max_ops),
            name=f"ws{i}",
        )
        for i in range(count)
    ]


class TestComputeWarmstart:
    def test_motivating_loop(self):
        ws = compute_warmstart(motivating_example(), motivating_machine())
        assert ws.ii == 4 and ws.mii == 3
        assert not ws.hit_lower_bound
        assert ws.schedule is not None
        verify_schedule(ws.schedule, check_mapping=True)

    def test_hit_lower_bound(self):
        ws = compute_warmstart(KERNELS["dotprod"](), powerpc604())
        assert ws.hit_lower_bound
        assert ws.ii == ws.mii

    def test_stats_dict_shape(self):
        ws = compute_warmstart(motivating_example(), motivating_machine())
        stats = ws.to_stats_dict()
        assert stats["heuristic_ii"] == 4
        assert stats["placements"] > 0
        assert stats["heuristic_seconds"] >= 0.0


class TestAssignmentGuards:
    def test_wrong_period_rejected(self):
        ddg, machine = motivating_example(), motivating_machine()
        ws = compute_warmstart(ddg, machine)
        form = Formulation(ddg, machine, ws.ii + 1)
        form.build()
        assert warmstart_assignment(form, ws.schedule) is None

    def test_incomplete_mapping_rejected(self):
        import dataclasses

        ddg, machine = motivating_example(), motivating_machine()
        ws = compute_warmstart(ddg, machine)
        colors = dict(ws.schedule.colors)
        colors.pop(next(iter(colors)))
        partial = dataclasses.replace(ws.schedule, colors=colors)
        form = Formulation(ddg, machine, ws.ii)
        form.build()
        assert warmstart_assignment(form, partial) is None

    def test_violated_rows_flags_corruption(self):
        ddg, machine = motivating_example(), motivating_machine()
        ws = compute_warmstart(ddg, machine)
        form = Formulation(ddg, machine, ws.ii)
        form.build()
        values = warmstart_assignment(form, ws.schedule)
        assert values is not None
        # Move one op off its slot: some assignment row must trip.
        var = next(v for v in values if v in form.k)
        values[var] = values[var] + 1.0
        assert violated_rows(form, values)


class TestRowByRowValidity:
    """Every heuristic warm start satisfies the formulation row by row."""

    @pytest.mark.parametrize("objective", OBJECTIVES)
    @pytest.mark.parametrize("presolve", [True, False])
    def test_motivating(self, objective, presolve):
        ddg, machine = motivating_example(), motivating_machine()
        ws = compute_warmstart(ddg, machine)
        options = FormulationOptions(objective=objective, presolve=presolve)
        form = Formulation(ddg, machine, ws.ii, options)
        form.build()
        values = warmstart_assignment(form, ws.schedule, validate=False)
        assert values is not None
        assert violated_rows(form, values) == []

    @pytest.mark.parametrize("name", sorted(KERNELS))
    def test_kernels_on_ppc604(self, name):
        machine = powerpc604()
        ddg = KERNELS[name]()
        ws = compute_warmstart(ddg, machine)
        assert ws.schedule is not None
        for objective in OBJECTIVES:
            options = FormulationOptions(objective=objective)
            form = Formulation(ddg, machine, ws.ii, options)
            form.build()
            values = warmstart_assignment(form, ws.schedule, validate=False)
            assert values is not None, objective
            assert violated_rows(form, values) == [], objective

    @pytest.mark.slow
    @pytest.mark.parametrize(
        "machine_factory", [motivating_machine, powerpc604]
    )
    def test_corpus_all_objectives(self, machine_factory):
        machine = machine_factory()
        for ddg in _corpus(machine, 30, seed=1995):
            ws = compute_warmstart(ddg, machine, max_extra=30)
            if ws.schedule is None:
                continue
            for objective in OBJECTIVES:
                for presolve in (True, False):
                    options = FormulationOptions(
                        objective=objective, presolve=presolve
                    )
                    form = Formulation(ddg, machine, ws.ii, options)
                    form.build()
                    values = warmstart_assignment(
                        form, ws.schedule, validate=False
                    )
                    label = f"{ddg.name}/{objective}/presolve={presolve}"
                    assert values is not None, label
                    assert violated_rows(form, values) == [], label


class TestSweepIntegration:
    def test_heuristic_short_circuit_records_zero_ilp_solves(self):
        # dotprod is recurrence-bound: the heuristic hits II == T_lb and
        # the sweep must not build a single ILP.
        result = schedule_loop(KERNELS["dotprod"](), powerpc604())
        assert result.warmstart is not None
        assert result.warmstart.skipped_all_ilp
        assert result.warmstart.ilp_solves == 0
        assert [a.status for a in result.attempts] == [HEURISTIC]
        verify_schedule(result.schedule, check_mapping=True)

    def test_warmstart_off_matches_on(self):
        ddg, machine = motivating_example(), motivating_machine()
        on = schedule_loop(ddg, machine)
        off = schedule_loop(ddg, machine, warmstart=False)
        assert on.achieved_t == off.achieved_t == 4
        assert on.is_rate_optimal_proven and off.is_rate_optimal_proven
        assert off.warmstart is not None and not off.warmstart.enabled

    def test_incumbent_seeds_non_feasibility_objective(self):
        result = schedule_loop(
            motivating_example(), motivating_machine(),
            objective="min_sum_t",
        )
        final = result.attempts[-1]
        assert final.t_period == 4
        assert final.status != HEURISTIC  # optimality still needs the ILP
        assert final.warm_started
        assert sum(result.schedule.starts) == 26

    def test_counting_relaxation_disables_warmstart(self):
        result = schedule_loop(
            motivating_example(), motivating_machine(), mapping=False
        )
        assert result.warmstart is not None
        assert not result.warmstart.enabled
        assert all(not a.warm_started for a in result.attempts)

    @pytest.mark.slow
    @pytest.mark.parametrize("backend", ["highs", "bnb"])
    def test_corpus_sweeps_agree(self, backend):
        """Warm start on vs off: same achieved period, corpus-wide."""
        machine = powerpc604()
        max_ops = 10 if backend == "highs" else 6
        for ddg in _corpus(machine, 30, seed=604, max_ops=max_ops):
            on = schedule_loop(
                ddg, machine, backend=backend, max_extra=30,
                time_limit_per_t=30.0,
            )
            off = schedule_loop(
                ddg, machine, backend=backend, max_extra=30,
                time_limit_per_t=30.0, warmstart=False,
            )
            assert on.achieved_t == off.achieved_t, ddg.name
            assert (
                on.is_rate_optimal_proven == off.is_rate_optimal_proven
            ), ddg.name
            if on.schedule is not None:
                verify_schedule(on.schedule)
