"""Tests for Schedule objects and the greedy mapper."""

import pytest

from repro.core.errors import MappingError, VerificationError
from repro.core.schedule import Schedule, greedy_mapping
from repro.ddg import Ddg
from repro.ddg.kernels import motivating_example
from repro.machine.presets import clean_machine, motivating_machine


@pytest.fixture
def schedule_b():
    """The paper's Schedule B (reconstructed starts)."""
    ddg = motivating_example()
    machine = motivating_machine()
    starts = [0, 1, 3, 5, 7, 11]
    colors = greedy_mapping(ddg, machine, starts, 4)
    return Schedule(ddg=ddg, machine=machine, t_period=4,
                    starts=starts, colors=colors)


class TestGreedyMapping:
    def test_schedule_b_is_mappable(self, schedule_b):
        assert schedule_b.has_complete_mapping
        # i2 and i4 collide on every FP stage: different units.
        assert schedule_b.colors[2] != schedule_b.colors[4]

    def test_schedule_a_is_not_mappable(self):
        """The §2 phenomenon: T=3 starts admit no fixed assignment."""
        ddg = motivating_example()
        machine = motivating_machine()
        with pytest.raises(MappingError, match="no fixed FU assignment"):
            greedy_mapping(ddg, machine, [0, 1, 3, 5, 7, 11], 3)

    def test_clean_machine_always_mappable(self):
        machine = clean_machine(int_units=2)
        g = Ddg()
        for i in range(4):
            g.add_op(f"a{i}", "add")
        # Two ops per slot <= 2 units.
        colors = greedy_mapping(g, machine, [0, 0, 1, 1], 2)
        assert colors[0] != colors[1]
        assert colors[2] != colors[3]

    def test_partial_pins_respected(self):
        ddg = motivating_example()
        machine = motivating_machine()
        colors = greedy_mapping(
            ddg, machine, [0, 1, 3, 5, 7, 11], 4, partial={2: 1}
        )
        assert colors[2] == 1
        assert colors[4] == 0

    def test_conflicting_pins_raise_verification_error(self):
        ddg = motivating_example()
        machine = motivating_machine()
        with pytest.raises(VerificationError, match="collides"):
            greedy_mapping(
                ddg, machine, [0, 1, 3, 5, 7, 11], 4,
                partial={2: 0, 4: 0},
            )


class TestPeriodicViews:
    def test_offsets_and_k(self, schedule_b):
        assert schedule_b.offsets == [0, 1, 3, 1, 3, 3]
        assert schedule_b.k_vector == [0, 0, 0, 1, 1, 2]

    def test_a_matrix_matches_paper(self, schedule_b):
        a = schedule_b.a_matrix
        assert a[1].tolist() == [0, 1, 0, 1, 0, 0]
        assert a[3].tolist() == [0, 0, 1, 0, 1, 1]

    def test_software_stages(self, schedule_b):
        assert schedule_b.num_software_stages == 3

    def test_span(self, schedule_b):
        # i5 (store, latency 1) starts at 11 -> completes at 12.
        assert schedule_b.span == 12


class TestUsageTables:
    def test_aggregate_within_capacity(self, schedule_b):
        assert schedule_b.stage_usage_table("FP").max() <= 2
        assert schedule_b.stage_usage_table("MEM").max() <= 1

    def test_per_copy_binary(self, schedule_b):
        for copy in range(2):
            assert schedule_b.stage_usage_table("FP", copy).max() <= 1

    def test_aggregate_is_sum_of_copies(self, schedule_b):
        total = schedule_b.stage_usage_table("FP")
        parts = sum(
            schedule_b.stage_usage_table("FP", c) for c in range(2)
        )
        assert (total == parts).all()

    def test_usage_counts_cells(self, schedule_b):
        # 3 fadds x 4 cells each = 12 cells total on FP.
        assert schedule_b.stage_usage_table("FP").sum() == 12


class TestRendering:
    def test_kernel_rows_cover_all_ops(self, schedule_b):
        rows = schedule_b.kernel_rows()
        entries = [e for row in rows for e in row]
        assert len(entries) == 6
        assert any(e.startswith("i2/FP") for e in entries)

    def test_render_kernel_header(self, schedule_b):
        text = schedule_b.render_kernel()
        assert "T=4" in text and "stages=3" in text

    def test_render_tka(self, schedule_b):
        text = schedule_b.render_tka()
        assert "K = [0, 0, 0, 1, 1, 2]'" in text

    def test_render_usage_per_unit(self, schedule_b):
        text = schedule_b.render_usage("FP")
        assert "FP#0" in text and "FP#1" in text

    def test_fu_label_unmapped(self):
        ddg = motivating_example()
        machine = motivating_machine()
        schedule = Schedule(ddg=ddg, machine=machine, t_period=4,
                            starts=[0, 1, 3, 5, 7, 11], colors={})
        assert schedule.fu_label(2) == "FP?"
        assert not schedule.has_complete_mapping

    def test_to_dict_round(self, schedule_b):
        data = schedule_b.to_dict()
        assert data["t_period"] == 4
        assert data["starts"] == [0, 1, 3, 5, 7, 11]
        assert set(data["colors"]) == {str(i) for i in range(6)}


class TestSerialization:
    def test_dict_round_trip(self, schedule_b):
        rebuilt = Schedule.from_dict(
            schedule_b.to_dict(), schedule_b.ddg, schedule_b.machine
        )
        assert rebuilt.starts == schedule_b.starts
        assert rebuilt.colors == schedule_b.colors
        assert rebuilt.t_period == schedule_b.t_period

    def test_json_file_round_trip(self, schedule_b, tmp_path):
        from repro.core import verify_schedule

        path = tmp_path / "schedule.json"
        schedule_b.save_json(path)
        rebuilt = Schedule.load_json(
            path, schedule_b.ddg, schedule_b.machine
        )
        verify_schedule(rebuilt)
        assert rebuilt.k_vector == schedule_b.k_vector

    def test_wrong_loop_rejected(self, schedule_b):
        from repro.core.errors import VerificationError
        from repro.ddg.kernels import dot_product

        data = schedule_b.to_dict()
        with pytest.raises(VerificationError, match="saved for loop"):
            Schedule.from_dict(data, dot_product(), schedule_b.machine)

    def test_truncated_starts_rejected(self, schedule_b):
        from repro.core.errors import VerificationError

        data = schedule_b.to_dict()
        data["starts"] = data["starts"][:-1]
        with pytest.raises(VerificationError, match="starts"):
            Schedule.from_dict(data, schedule_b.ddg, schedule_b.machine)
