"""Tests for independent schedule verification."""

import pytest

from repro.core import VerificationError, schedule_loop, verify_schedule
from repro.core.schedule import Schedule, greedy_mapping
from repro.ddg.kernels import motivating_example
from repro.machine.presets import motivating_machine


@pytest.fixture
def valid():
    ddg = motivating_example()
    machine = motivating_machine()
    starts = [0, 1, 3, 5, 7, 11]
    colors = greedy_mapping(ddg, machine, starts, 4)
    return Schedule(ddg=ddg, machine=machine, t_period=4,
                    starts=starts, colors=colors)


class TestValidSchedules:
    def test_paper_schedule_b_passes(self, valid):
        verify_schedule(valid)

    def test_ilp_output_passes(self):
        result = schedule_loop(motivating_example(), motivating_machine())
        verify_schedule(result.schedule)


class TestStartChecks:
    def test_wrong_length(self, valid):
        valid.starts = valid.starts[:-1]
        with pytest.raises(VerificationError, match="start times"):
            verify_schedule(valid)

    def test_negative_start(self, valid):
        valid.starts[0] = -1
        with pytest.raises(VerificationError, match="invalid start"):
            verify_schedule(valid)


class TestDependenceChecks:
    def test_violated_flow_dep(self, valid):
        valid.starts[2] = 1  # i2 before i0's load completes
        with pytest.raises(VerificationError, match="dependence i0->i2"):
            verify_schedule(valid)

    def test_violated_by_exact_amount(self, valid):
        valid.starts[3] = 4  # i2@3 + latency 2 = 5 > 4
        with pytest.raises(VerificationError, match="violated by 1 cycle"):
            verify_schedule(valid)

    def test_loop_carried_distance_credited(self, valid):
        # Self-loop i2 with m=1: start may repeat every T >= 2, so the
        # valid schedule passes (already covered) and a tiny T would not.
        valid2 = Schedule(
            ddg=valid.ddg, machine=valid.machine, t_period=1,
            starts=[0, 1, 3, 5, 7, 11], colors=dict(valid.colors),
        )
        with pytest.raises(VerificationError):
            verify_schedule(valid2)


class TestCapacityChecks:
    def test_mem_overload(self, valid):
        # i5 at 12 shares offset 0 with i0 on the single MEM unit while
        # still satisfying i4 -> i5 (9 <= 12).
        valid.starts[5] = 12
        with pytest.raises(VerificationError, match="FU type 'MEM'"):
            verify_schedule(valid, check_mapping=False)

    def test_fp_stage_overload(self, valid):
        # All three fadds at offset 3 (deps still hold along the chain,
        # and i5 moves to 14 to keep MEM clean): stage-1 usage 3 > 2.
        valid.starts[2], valid.starts[3], valid.starts[4] = 3, 7, 11
        valid.starts[5] = 14
        with pytest.raises(VerificationError, match="FU type 'FP'"):
            verify_schedule(valid, check_mapping=False)

    def test_fu_counts_used_override(self, valid):
        valid.fu_counts_used = {"FP": 1}
        with pytest.raises(VerificationError, match="only 1 exist"):
            verify_schedule(valid, check_mapping=False)


class TestMappingChecks:
    def test_missing_mapping(self, valid):
        del valid.colors[2]
        with pytest.raises(VerificationError, match="no FU assignment"):
            verify_schedule(valid)

    def test_missing_mapping_ok_when_not_checked(self, valid):
        del valid.colors[2]
        verify_schedule(valid, check_mapping=False)

    def test_out_of_range_color(self, valid):
        valid.colors[2] = 5
        with pytest.raises(VerificationError, match="only 2 unit"):
            verify_schedule(valid)

    def test_double_booked_unit(self, valid):
        # Force i2 and i4 (which collide on every FP stage) together.
        valid.colors[2] = valid.colors[4]
        with pytest.raises(VerificationError, match="structural hazard"):
            verify_schedule(valid)
