"""Corpus manifest plumbing and its failure diagnostics.

The contract under test: a manifest that references a missing, corrupt,
or unparsable ``.ddg`` file must surface an error that names both the
loop and the offending path — in ``repro gen --check``, in
``read_manifest``/``regenerate``, and as per-loop error entries in the
batch runner (never a silent skip).
"""

import json

import pytest

from repro.corpusgen import (
    CorpusGenError,
    FamilySpec,
    Manifest,
    default_families,
    manifest_sources,
    read_manifest,
    regenerate_corpus,
    regenerate_from,
    resolve_machine,
    verify_corpus,
    write_corpus,
)
from repro.ddg.generators import GenParams
from repro.parallel import run_batch

SMALL = GenParams(max_ops=8)


@pytest.fixture
def corpus(tmp_path):
    """A 6-loop corpus plus its manifest, written under ``tmp_path``."""
    out = tmp_path / "corpus"
    manifest = write_corpus(
        out, 21, "powerpc604", default_families(6, base=SMALL)
    )
    return out, manifest


class TestManifestErrors:
    def test_missing_manifest_names_path(self, tmp_path):
        with pytest.raises(CorpusGenError, match="cannot read") as exc:
            read_manifest(tmp_path)
        assert "manifest.json" in str(exc.value)

    def test_invalid_json_names_path(self, tmp_path):
        (tmp_path / "manifest.json").write_text("{nope", encoding="utf-8")
        with pytest.raises(CorpusGenError, match="not valid JSON"):
            read_manifest(tmp_path)

    def test_wrong_version_rejected(self, tmp_path):
        (tmp_path / "manifest.json").write_text(
            json.dumps({"manifest_version": 99}), encoding="utf-8"
        )
        with pytest.raises(CorpusGenError, match="version"):
            read_manifest(tmp_path)

    def test_malformed_family_rejected(self, corpus):
        out, _ = corpus
        doc = json.loads(
            (out / "manifest.json").read_text(encoding="utf-8")
        )
        del doc["families"][0]["params"]
        (out / "manifest.json").write_text(
            json.dumps(doc), encoding="utf-8"
        )
        with pytest.raises(CorpusGenError, match="malformed family"):
            read_manifest(out)

    def test_unknown_machine_lists_presets(self):
        with pytest.raises(CorpusGenError, match="unknown machine preset"):
            resolve_machine("cray1")

    def test_family_kind_param_mismatch(self):
        with pytest.raises(CorpusGenError, match="needs DslParams"):
            FamilySpec("x", 1, "dsl", GenParams())


class TestVerifyCorpus:
    def test_missing_file_names_loop_and_path(self, corpus):
        out, manifest = corpus
        victim = manifest.loops[2]
        (out / victim.file).unlink()
        problems = verify_corpus(out)["problems"]
        assert len(problems) == 1
        assert victim.name in problems[0]
        assert victim.file in problems[0]
        assert "cannot read" in problems[0]

    def test_corrupt_file_names_loop_and_path(self, corpus):
        out, manifest = corpus
        victim = manifest.loops[4]
        path = out / victim.file
        path.write_text(path.read_text() + "# tampered\n", encoding="utf-8")
        problems = verify_corpus(out)["problems"]
        assert len(problems) == 1
        assert victim.name in problems[0]
        assert "checksum" in problems[0]

    def test_unparsable_file_reported(self, corpus):
        out, manifest = corpus
        victim = manifest.loops[0]
        bad = "dep 0 99\n"
        path = out / victim.file
        path.write_text(bad, encoding="utf-8")
        doc = json.loads((out / "manifest.json").read_text())
        from repro.corpusgen import sha256_text

        doc["loops"][0]["sha256"] = sha256_text(bad)
        (out / "manifest.json").write_text(json.dumps(doc))
        problems = verify_corpus(out)["problems"]
        assert len(problems) == 1
        assert victim.name in problems[0]
        assert "parse" in problems[0]


class TestRegenerate:
    def test_refuses_on_checksum_drift(self, corpus, tmp_path):
        out, manifest = corpus
        drifted = Manifest(
            seed=manifest.seed,
            machine=manifest.machine,
            families=manifest.families,
            loops=[
                manifest.loops[0].__class__(
                    **{**manifest.loops[0].to_json_dict(),
                       "sha256": "0" * 64}
                ),
                *manifest.loops[1:],
            ],
        )
        with pytest.raises(CorpusGenError, match="drifted"):
            regenerate_corpus(drifted, tmp_path / "rebuilt")

    def test_refuses_unknown_family(self, corpus, tmp_path):
        out, manifest = corpus
        doc = json.loads((out / "manifest.json").read_text())
        doc["loops"][0]["family"] = "ghost"
        (out / "manifest.json").write_text(json.dumps(doc))
        with pytest.raises(CorpusGenError, match="unknown family"):
            regenerate_from(out, tmp_path / "rebuilt")


class TestBatchManifestLoading:
    def test_batch_follows_manifest_order(self, corpus):
        out, manifest = corpus
        sources = manifest_sources(out)
        assert [s.name for s in sources] == [
            r.name for r in manifest.loops
        ]
        report = run_batch([out], resolve_machine("powerpc604"),
                           jobs=1, time_limit_per_t=10.0)
        assert [e.name for e in report.entries] == [
            r.name for r in manifest.loops
        ]
        assert all(e.error is None for e in report.entries)

    def test_missing_file_is_per_loop_error(self, corpus):
        out, manifest = corpus
        victim = manifest.loops[1]
        (out / victim.file).unlink()
        report = run_batch([out], resolve_machine("powerpc604"),
                           jobs=1, time_limit_per_t=10.0)
        entry = next(e for e in report.entries if e.name == victim.name)
        assert entry.error is not None
        assert victim.file in entry.error
        assert "cannot read" in entry.error
        # The rest of the corpus still schedules.
        others = [e for e in report.entries if e.name != victim.name]
        assert all(e.error is None for e in others)

    def test_checksum_mismatch_is_per_loop_error(self, corpus):
        out, manifest = corpus
        victim = manifest.loops[3]
        path = out / victim.file
        path.write_text(path.read_text() + "op zz add\n", encoding="utf-8")
        report = run_batch([out], resolve_machine("powerpc604"),
                           jobs=1, time_limit_per_t=10.0)
        entry = next(e for e in report.entries if e.name == victim.name)
        assert entry.error is not None
        assert "checksum" in entry.error
        assert victim.name in entry.error or victim.file in entry.error
        assert "repro gen" in entry.error  # remediation hint
