"""Exhaustive correctness tests for the at-most-k encodings.

Every encoding is checked semantically: for each assignment of the
*input* literals, the encoded CNF (with auxiliary variables projected
out by the solver) must be satisfiable iff the assignment respects the
bound.  Small n makes full enumeration cheap and leaves no corner
untested.
"""

import itertools

import pytest

from repro.sat.cardinality import (
    ENCODINGS,
    at_most_k,
    at_most_one,
    exactly_one,
)
from repro.sat.cnf import Cnf
from repro.sat.solver import SAT, CdclSolver


def _holds(cnf, inputs, bits):
    """Is the CNF satisfiable with the input literals pinned to bits?"""
    assumptions = [
        lit if bit else -lit for lit, bit in zip(inputs, bits)
    ]
    solver = CdclSolver(cnf.num_vars, cnf.clauses)
    return solver.solve(assumptions=assumptions).status == SAT


def _fresh(n):
    cnf = Cnf()
    return cnf, [cnf.new_var() for _ in range(n)]


class TestAtMostK:
    @pytest.mark.parametrize("encoding", sorted(ENCODINGS))
    @pytest.mark.parametrize("n,k", [
        (1, 1), (2, 1), (3, 1), (3, 2), (4, 2), (5, 2), (5, 3), (6, 4),
    ])
    def test_exhaustive_semantics(self, encoding, n, k):
        cnf, inputs = _fresh(n)
        at_most_k(cnf, inputs, k, encoding=encoding)
        for bits in itertools.product([False, True], repeat=n):
            assert _holds(cnf, inputs, bits) == (sum(bits) <= k), (
                f"{encoding}: n={n} k={k} bits={bits}"
            )

    def test_k_zero_forces_all_false(self):
        cnf, inputs = _fresh(3)
        assert at_most_k(cnf, inputs, 0) == "trivial"
        for bits in itertools.product([False, True], repeat=3):
            assert _holds(cnf, inputs, bits) == (sum(bits) == 0)

    def test_negative_k_is_unsat(self):
        cnf, inputs = _fresh(2)
        assert at_most_k(cnf, inputs, -1) == "trivial"
        solver = CdclSolver(cnf.num_vars, cnf.clauses)
        assert solver.solve().status != SAT

    def test_slack_bound_adds_nothing(self):
        cnf, inputs = _fresh(3)
        before = cnf.num_clauses
        assert at_most_k(cnf, inputs, 3) == "trivial"
        assert cnf.num_clauses == before

    def test_unknown_encoding_rejected(self):
        cnf, inputs = _fresh(3)
        with pytest.raises(ValueError, match="unknown cardinality"):
            at_most_k(cnf, inputs, 1, encoding="bdd")

    def test_auto_picks_a_real_encoding(self):
        cnf, inputs = _fresh(6)
        used = at_most_k(cnf, inputs, 3, encoding="auto")
        assert used in ENCODINGS or used in ("pairwise", "trivial")


class TestAtMostOne:
    @pytest.mark.parametrize("n", [2, 3, 5, 8])
    def test_exhaustive(self, n):
        cnf, inputs = _fresh(n)
        at_most_one(cnf, inputs)
        for bits in itertools.product([False, True], repeat=n):
            assert _holds(cnf, inputs, bits) == (sum(bits) <= 1)


class TestExactlyOne:
    @pytest.mark.parametrize("n", [1, 2, 4, 6])
    def test_exhaustive(self, n):
        cnf, inputs = _fresh(n)
        exactly_one(cnf, inputs)
        for bits in itertools.product([False, True], repeat=n):
            assert _holds(cnf, inputs, bits) == (sum(bits) == 1)

    def test_empty_is_unsat(self):
        cnf = Cnf()
        exactly_one(cnf, [])
        solver = CdclSolver(cnf.num_vars, cnf.clauses)
        assert solver.solve().status != SAT
