"""Unit tests for the pure-python CDCL core.

The solver is differential-tested against brute-force enumeration on
random 3-SAT near the phase transition, and against the canonical
pigeonhole family for UNSAT (no polynomial resolution proof exists, so
any shortcut bug shows up as a wrong SAT answer, not a slow one).
"""

import itertools
import random

import pytest

from repro.sat.solver import SAT, UNKNOWN, UNSAT, CdclSolver


def _brute_force(num_vars, clauses):
    """Exhaustive satisfiability check for tiny formulas."""
    for bits in itertools.product([False, True], repeat=num_vars):
        model = (None,) + bits  # 1-based
        if all(
            any(model[abs(l)] == (l > 0) for l in clause)
            for clause in clauses
        ):
            return True
    return False


def _check_model(clauses, model):
    assert all(
        any(model[abs(l)] == (l > 0) for l in clause)
        for clause in clauses
    )


def _pigeonhole(holes):
    """PHP(holes+1, holes): pigeons+1 into holes — classically UNSAT."""
    pigeons = holes + 1
    var = lambda p, h: p * holes + h + 1  # noqa: E731
    clauses = []
    for p in range(pigeons):
        clauses.append([var(p, h) for h in range(holes)])
    for h in range(holes):
        for p1 in range(pigeons):
            for p2 in range(p1 + 1, pigeons):
                clauses.append([-var(p1, h), -var(p2, h)])
    return pigeons * holes, clauses


class TestBasics:
    def test_empty_formula_is_sat(self):
        result = CdclSolver(0, []).solve()
        assert result.status == SAT
        assert bool(result)

    def test_empty_clause_is_unsat(self):
        result = CdclSolver(1, [[]]).solve()
        assert result.status == UNSAT
        assert not bool(result)

    def test_unit_propagation_only(self):
        result = CdclSolver(3, [[1], [-1, 2], [-2, 3]]).solve()
        assert result.status == SAT
        assert result.model[1] and result.model[2] and result.model[3]
        assert result.stats.decisions == 0

    def test_contradictory_units(self):
        result = CdclSolver(1, [[1], [-1]]).solve()
        assert result.status == UNSAT

    def test_duplicate_and_tautological_clauses(self):
        # [1, 1] collapses to a unit; [1, -1] is dropped as a tautology.
        result = CdclSolver(2, [[1, 1], [1, -1], [-1, 2]]).solve()
        assert result.status == SAT
        assert result.model[1] and result.model[2]

    def test_solver_is_resolvable_twice(self):
        solver = CdclSolver(2, [[1, 2]])
        assert solver.solve().status == SAT
        assert solver.solve().status == SAT


class TestPigeonhole:
    @pytest.mark.parametrize("holes", [2, 3, 4])
    def test_php_is_unsat(self, holes):
        num_vars, clauses = _pigeonhole(holes)
        result = CdclSolver(num_vars, clauses).solve()
        assert result.status == UNSAT
        if holes >= 3:
            # A genuine resolution refutation was needed.
            assert result.stats.conflicts > 0
            assert result.stats.learned_clauses > 0

    def test_php_sat_when_one_pigeon_removed(self):
        num_vars, clauses = _pigeonhole(4)
        # Drop pigeon 0's "somewhere" clause: remaining 4 fit in 4.
        result = CdclSolver(num_vars, clauses[1:]).solve()
        assert result.status == SAT


class TestRandomDifferential:
    def test_random_3sat_matches_brute_force(self):
        rng = random.Random(20260807)
        for trial in range(60):
            n = rng.randint(4, 9)
            m = int(n * rng.uniform(2.5, 5.5))
            clauses = [
                [
                    v * rng.choice([-1, 1])
                    for v in rng.sample(range(1, n + 1), 3)
                ]
                for _ in range(m)
            ]
            expected = _brute_force(n, clauses)
            result = CdclSolver(n, clauses).solve()
            assert (result.status == SAT) == expected, (
                f"trial {trial}: n={n} m={m}"
            )
            if result.status == SAT:
                _check_model(clauses, result.model)


class TestAssumptions:
    @pytest.fixture
    def solver(self):
        # x1 -> x2, x2 -> x3; all free otherwise.
        return CdclSolver(3, [[-1, 2], [-2, 3]])

    def test_assumptions_pin_literals(self, solver):
        result = solver.solve(assumptions=[1])
        assert result.status == SAT
        assert result.model[1] and result.model[2] and result.model[3]

    def test_negative_assumptions(self, solver):
        result = solver.solve(assumptions=[-3])
        assert result.status == SAT
        assert not result.model[1] and not result.model[2]

    def test_conflicting_assumptions_flagged(self, solver):
        result = solver.solve(assumptions=[1, -3])
        assert result.status == UNSAT
        assert result.assumption_conflict
        # The formula itself is still satisfiable afterwards.
        assert solver.solve().status == SAT

    def test_out_of_range_assumption_rejected(self, solver):
        with pytest.raises(ValueError, match="out of range"):
            solver.solve(assumptions=[4])


class TestBudgets:
    def test_conflict_limit_yields_unknown(self):
        num_vars, clauses = _pigeonhole(6)
        result = CdclSolver(num_vars, clauses).solve(conflict_limit=5)
        assert result.status == UNKNOWN
        assert result.model is None

    def test_zero_time_limit_yields_unknown_or_answer(self):
        # An already-expired budget must return promptly, never hang.
        num_vars, clauses = _pigeonhole(5)
        result = CdclSolver(num_vars, clauses).solve(time_limit=1e-9)
        assert result.status in (UNKNOWN, UNSAT)


class TestPhaseHints:
    def test_hints_steer_first_model(self):
        # Fully unconstrained: the first decision follows the saved
        # phase, so hints pick which model comes out.
        hinted = CdclSolver(
            2, [[1, 2]], phase_hints={1: True, 2: False}
        ).solve()
        assert hinted.status == SAT
        assert hinted.model[1] and not hinted.model[2]
        opposite = CdclSolver(
            2, [[1, 2]], phase_hints={1: False, 2: True}
        ).solve()
        assert opposite.status == SAT
        assert not opposite.model[1] and opposite.model[2]
