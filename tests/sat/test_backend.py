"""The ``backend="sat"`` entry point, differentially against the ILP
backends.

Agreement is structural (every decoded model is re-checked against the
ILP rows before being returned), so these tests focus on the status
surface: SAT and the ILP backends must return the same
feasible/infeasible verdict per (loop, T), and the Solution metadata
(stats, budget clamps, warm-start short-circuit) must round-trip.
"""

import pytest

from repro.core.bounds import lower_bounds, modulo_feasible_t
from repro.core.formulation import Formulation, FormulationOptions
from repro.core.scheduler import AttemptConfig, attempt_period
from repro.core.verify import verify_schedule
from repro.ddg.generators import suite
from repro.ddg.kernels import motivating_example
from repro.ilp import Model
from repro.ilp.errors import SolverError
from repro.ilp.solution import SolveStatus
from repro.ilp.solve import set_process_time_budget, solve
from repro.machine.presets import motivating_machine
from repro.sat.backend import (
    SAT_CARD_ENV,
    encode_stats,
    reset_encode_stats,
    solve_formulation,
)
from repro.sat.errors import SatEncodeError


@pytest.fixture
def machine():
    return motivating_machine()


@pytest.fixture(autouse=True)
def _clean_budget():
    yield
    set_process_time_budget(None)


def _formulation(ddg, machine, t_period, **options):
    f = Formulation(
        ddg, machine, t_period, FormulationOptions(**options)
    )
    f.build()
    return f


class TestStatusSurface:
    def test_infeasible_period_maps_to_infeasible(self, machine):
        f = _formulation(motivating_example(), machine, 3)
        solution = solve(f.model, backend="sat")
        assert solution.status == SolveStatus.INFEASIBLE
        assert solution.backend == "sat"

    def test_feasible_period_maps_to_optimal(self, machine):
        f = _formulation(motivating_example(), machine, 4)
        solution = solve(f.model, backend="sat")
        assert solution.status == SolveStatus.OPTIMAL
        assert solution.values

    def test_phase_stats_recorded(self, machine):
        f = _formulation(motivating_example(), machine, 4)
        solution = solve(f.model, backend="sat")
        for key in (
            "sat_encode_seconds",
            "sat_search_seconds",
            "sat_decode_seconds",
            "sat_vars",
            "sat_clauses",
            "sat_conflicts",
            "sat_learned_clauses",
        ):
            assert key in solution.stats, key

    def test_bare_model_rejected(self):
        m = Model("bare")
        x = m.add_var("x", lb=0, ub=1, integer=True)
        m.add(x >= 1)
        m.minimize(x)
        with pytest.raises(SolverError, match="bare"):
            solve(m, backend="sat")

    def test_non_feasibility_objective_rejected(self, machine):
        f = _formulation(
            motivating_example(), machine, 4, objective="min_sum_t"
        )
        with pytest.raises((SatEncodeError, SolverError),
                           match="feasibility-only"):
            solve(f.model, backend="sat")


class TestAttemptPeriodIntegration:
    @pytest.fixture(autouse=True)
    def _cold_contexts(self):
        # A warm SweepContext from earlier tests can settle T=3 via a
        # recycled cut before any backend runs (backend stays "");
        # these tests are about the sat backend actually answering.
        from repro.core.incremental import clear_contexts

        clear_contexts()
        yield
        clear_contexts()

    def test_attempt_carries_backend_and_verifies(self, machine):
        outcome = attempt_period(
            motivating_example(), machine, 4,
            AttemptConfig(backend="sat"),
        )
        assert outcome.attempt.status == "optimal"
        assert outcome.attempt.backend == "sat"
        verify_schedule(outcome.schedule)

    def test_infeasible_attempt(self, machine):
        outcome = attempt_period(
            motivating_example(), machine, 3,
            AttemptConfig(backend="sat"),
        )
        assert outcome.attempt.status == "infeasible"
        assert outcome.attempt.backend == "sat"


class TestDifferentialAgainstIlp:
    @pytest.mark.parametrize("ilp_backend", ["auto", "bnb"])
    def test_verdicts_agree_on_seeded_suite(self, machine, ilp_backend):
        checked = 0
        for ddg in suite(6, machine, seed=604):
            bounds = lower_bounds(ddg, machine)
            for t in range(bounds.t_lb, bounds.t_lb + 3):
                if not modulo_feasible_t(ddg, machine, t):
                    continue
                f = _formulation(ddg, machine, t)
                sat = solve(f.model, backend="sat", time_limit=30.0)
                ilp = solve(
                    f.model, backend=ilp_backend, time_limit=30.0
                )
                assert (
                    sat.status.has_solution == ilp.status.has_solution
                ), f"{ddg.name} T={t}: sat={sat.status} ilp={ilp.status}"
                checked += 1
                break  # first admissible T per loop keeps this fast
        assert checked >= 4

    @pytest.mark.parametrize("card", ["sequential", "totalizer"])
    def test_card_env_changes_encoding_not_verdict(
        self, machine, card, monkeypatch
    ):
        ddg = motivating_example()
        baseline = {}
        for t in (3, 4):
            f = _formulation(ddg, machine, t)
            baseline[t] = solve(f.model, backend="sat").status
        monkeypatch.setenv(SAT_CARD_ENV, card)
        for t in (3, 4):
            f = _formulation(ddg, machine, t)
            solution = solve(f.model, backend="sat")
            assert solution.status == baseline[t], f"card={card} T={t}"

    def test_bad_card_env_raises(self, machine, monkeypatch):
        monkeypatch.setenv(SAT_CARD_ENV, "bogus")
        f = _formulation(motivating_example(), machine, 4)
        with pytest.raises((SatEncodeError, SolverError)):
            solve(f.model, backend="sat")


class TestWarmStartAndMemo:
    def test_valid_start_short_circuits(self, machine):
        f = _formulation(motivating_example(), machine, 4)
        incumbent = solve(f.model, backend="sat")
        assert incumbent.status == SolveStatus.OPTIMAL
        again = solve(
            f.model, backend="sat", mip_start=incumbent.values
        )
        assert again.status == SolveStatus.OPTIMAL
        assert again.stats.get("sat_warm_shortcircuit") == 1.0

    def test_invalid_start_still_solves(self, machine):
        f = _formulation(motivating_example(), machine, 4)
        bogus = {var: 0.0 for var in f.model.variables}
        solution = solve(f.model, backend="sat", mip_start=bogus)
        assert solution.status == SolveStatus.OPTIMAL
        assert "sat_warm_shortcircuit" not in solution.stats

    def test_encoding_memoized_per_formulation(self, machine):
        reset_encode_stats()
        f = _formulation(motivating_example(), machine, 4)
        solve_formulation(f)
        solve_formulation(f)
        stats = encode_stats()
        assert stats["encodes"] == 1
        assert stats["memo_hits"] == 1


class TestBudgetClamp:
    def test_process_budget_recorded_on_solution(self, machine):
        f = _formulation(motivating_example(), machine, 4)
        set_process_time_budget(5.0)
        solution = solve(f.model, backend="sat", time_limit=60.0)
        assert solution.effective_time_limit == 5.0
        assert solution.time_limit_clamped

    def test_unclamped_limit_not_flagged(self, machine):
        f = _formulation(motivating_example(), machine, 4)
        solution = solve(f.model, backend="sat", time_limit=60.0)
        assert solution.effective_time_limit == 60.0
        assert not solution.time_limit_clamped

    def test_clamp_flows_into_attempt_stats(self, machine):
        set_process_time_budget(5.0)
        outcome = attempt_period(
            motivating_example(), machine, 4,
            AttemptConfig(backend="sat", time_limit=60.0),
        )
        stats = outcome.attempt.model_stats
        assert stats.get("effective_time_limit") == 5.0
        assert stats.get("time_limit_clamped") == 1.0
