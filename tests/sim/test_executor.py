"""Tests for the cycle-accurate replay simulator."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import schedule_loop
from repro.core.schedule import Schedule, greedy_mapping
from repro.ddg.generators import GeneratorConfig, random_ddg
from repro.ddg.kernels import motivating_example
from repro.machine.presets import motivating_machine, powerpc604
from repro.sim import simulate


@pytest.fixture
def schedule_b():
    ddg = motivating_example()
    machine = motivating_machine()
    starts = [0, 1, 3, 5, 7, 11]
    colors = greedy_mapping(ddg, machine, starts, 4)
    return Schedule(ddg=ddg, machine=machine, t_period=4,
                    starts=starts, colors=colors)


@pytest.fixture
def schedule_a():
    """The §2 Schedule A: T=3 starts with no fixed mapping."""
    ddg = motivating_example()
    machine = motivating_machine()
    return Schedule(ddg=ddg, machine=machine, t_period=3,
                    starts=[0, 1, 3, 5, 7, 11], colors={})


class TestFixedMapping:
    def test_valid_schedule_clean_run(self, schedule_b):
        report = simulate(schedule_b, iterations=10)
        assert report.ok
        assert not report.violations

    def test_instance_units_recorded(self, schedule_b):
        report = simulate(schedule_b, iterations=3)
        assert report.instance_units[(2, 0)] == schedule_b.colors[2]
        assert len(report.instance_units) == 3 * 6

    def test_missing_mapping_reported(self, schedule_a):
        report = simulate(schedule_a, iterations=2)
        assert not report.ok
        assert "no fixed FU assignment" in report.first_violation()

    def test_dependence_violation_detected(self, schedule_b):
        schedule_b.starts[2] = 1  # before i0 completes
        report = simulate(schedule_b, iterations=2)
        assert not report.ok
        assert any("before" in v for v in report.violations)

    def test_hazard_detected_when_colors_corrupted(self, schedule_b):
        schedule_b.colors[4] = schedule_b.colors[2]
        report = simulate(schedule_b, iterations=4)
        assert not report.ok
        assert any("hazard" in v for v in report.violations)

    def test_stop_at_first(self, schedule_b):
        schedule_b.colors[4] = schedule_b.colors[2]
        report = simulate(schedule_b, iterations=4, stop_at_first=True)
        assert len(report.violations) == 1


class TestDynamicMapping:
    def test_schedule_a_runs_dynamically(self, schedule_a):
        """Table 1's point: T=3 executes with run-time FU selection."""
        report = simulate(schedule_a, iterations=15, dynamic_mapping=True)
        assert report.ok

    def test_schedule_a_alternates_units(self, schedule_a):
        """No per-op fixed unit exists, so some op must migrate."""
        report = simulate(schedule_a, iterations=15, dynamic_mapping=True)
        migrated = False
        for op_index in (2, 3, 4):
            units = {
                copy for (op, _), copy in report.instance_units.items()
                if op == op_index
            }
            if len(units) > 1:
                migrated = True
        assert migrated

    def test_dynamic_fails_below_capacity(self, schedule_a):
        """At T=2 even dynamic selection cannot keep up (T_res=3)."""
        squeezed = Schedule(
            ddg=schedule_a.ddg, machine=schedule_a.machine, t_period=2,
            starts=schedule_a.starts, colors={},
        )
        report = simulate(squeezed, iterations=10, dynamic_mapping=True)
        assert not report.ok
        assert any("no free" in v for v in report.violations)


class TestMetrics:
    def test_cycles_and_ii(self, schedule_b):
        report = simulate(schedule_b, iterations=10)
        assert report.cycles == 9 * 4 + schedule_b.span
        assert report.achieved_ii == pytest.approx(report.cycles / 10)

    def test_ii_converges_to_t(self, schedule_b):
        big = simulate(schedule_b, iterations=200)
        assert big.achieved_ii == pytest.approx(4.0, abs=0.1)


@settings(max_examples=15, deadline=None)
@given(st.integers(0, 10_000))
def test_property_ilp_schedules_simulate_cleanly(seed):
    """Property: modulo-verified ILP schedules replay without violations
    at absolute-cycle granularity (cross-check of the wrap arithmetic)."""
    machine = powerpc604()
    ddg = random_ddg(
        random.Random(seed), machine, GeneratorConfig(min_ops=2, max_ops=8)
    )
    result = schedule_loop(ddg, machine, max_extra=30)
    if result.schedule is None:
        return
    report = simulate(result.schedule, iterations=10)
    assert report.ok, report.first_violation()
