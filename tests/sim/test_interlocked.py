"""Tests for the dynamic-issue (interlocked hardware) simulator."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import schedule_loop
from repro.ddg import Ddg
from repro.ddg.generators import GeneratorConfig, random_ddg
from repro.ddg.kernels import motivating_example
from repro.machine.presets import clean_machine, motivating_machine, powerpc604
from repro.sim import fixed_assignment_cost, run_interlocked


class TestBasics:
    def test_single_op_rate_on_single_unit(self):
        machine = powerpc604()
        g = Ddg("one")
        g.add_op("a", "branch")  # BPU has exactly one copy
        report = run_interlocked(g, machine, iterations=16)
        assert report.steady_ii == pytest.approx(1.0)

    def test_dual_unit_superscalar_rate(self):
        """With two SCIUs and no dependences the hardware dual-issues:
        the sustained II drops to ~0.5 iterations/cycle."""
        machine = powerpc604()
        g = Ddg("one")
        g.add_op("a", "add")
        report = run_interlocked(g, machine, iterations=32)
        assert report.steady_ii == pytest.approx(0.5, abs=0.1)

    def test_recurrence_limits_rate(self):
        machine = powerpc604()
        g = Ddg("rec")
        g.add_op("a", "fadd")
        g.add_dep("a", "a", distance=1)
        report = run_interlocked(g, machine, iterations=16)
        assert report.steady_ii == pytest.approx(3.0)  # fadd latency

    def test_blocking_unit_limits_rate(self):
        machine = powerpc604()
        g = Ddg("div")
        g.add_op("d", "div")
        report = run_interlocked(g, machine, iterations=12)
        assert report.steady_ii == pytest.approx(20.0)

    def test_dependences_respected_in_trace(self):
        machine = powerpc604()
        g = Ddg("chain")
        a = g.add_op("a", "load")
        b = g.add_op("b", "fadd")
        g.add_dep(a, b)
        report = run_interlocked(g, machine, iterations=8)
        for q in range(8):
            assert (
                report.starts[(1, q)] >= report.starts[(0, q)] + 2
            )

    def test_intra_cycle_rejected(self):
        machine = powerpc604()
        g = Ddg("bad")
        g.add_op("a", "add")
        g.add_op("b", "add")
        g.add_dep("a", "b")
        g.add_dep("b", "a")
        with pytest.raises(ValueError, match="cycle"):
            run_interlocked(g, machine, iterations=4)

    def test_bad_priority_rejected(self):
        machine = powerpc604()
        g = Ddg("one")
        g.add_op("a", "add")
        with pytest.raises(ValueError, match="permutation"):
            run_interlocked(g, machine, priority=[0, 1])

    def test_steady_ii_needs_iterations(self):
        machine = powerpc604()
        g = Ddg("one")
        g.add_op("a", "add")
        report = run_interlocked(g, machine, iterations=2)
        with pytest.raises(ValueError, match="iterations"):
            report.steady_ii


class TestFixedAssignmentCost:
    def test_motivating_example_gap_is_one_cycle(self):
        """The §2 headline, quantified: run-time FU selection sustains
        II=3 where fixed assignment needs T=4."""
        machine = motivating_machine()
        ddg = motivating_example()
        fixed = schedule_loop(ddg, machine)
        assert fixed.achieved_t == 4
        dynamic_ii, cost = fixed_assignment_cost(
            ddg, machine, fixed.achieved_t, iterations=48
        )
        assert dynamic_ii == pytest.approx(3.0, abs=0.2)
        assert cost == pytest.approx(1.0, abs=0.2)

    def test_no_gap_on_clean_machines(self):
        """Clean pipelines: mapping is free, so dynamic issue cannot
        beat the rate-optimal fixed schedule."""
        machine = clean_machine()
        g = Ddg("fan")
        for i in range(4):
            g.add_op(f"a{i}", "fadd")
        fixed = schedule_loop(g, machine)
        dynamic_ii, cost = fixed_assignment_cost(
            g, machine, fixed.achieved_t, iterations=48
        )
        assert cost == pytest.approx(0.0, abs=0.2)


@settings(max_examples=12, deadline=None)
@given(st.integers(0, 10_000))
def test_property_dynamic_ii_within_envelope(seed):
    """The greedy dynamic II is sandwiched between the recurrence bound
    and the no-pipelining makespan.  (Greedy issue is myopic, so it may
    lose to the *optimal* fixed schedule on some loops — only the
    envelope is guaranteed.)"""
    from repro.baselines import list_schedule
    from repro.ddg.analysis import t_dep

    machine = powerpc604()
    ddg = random_ddg(
        random.Random(seed), machine, GeneratorConfig(min_ops=2, max_ops=7)
    )
    report = run_interlocked(ddg, machine, iterations=40)
    sequential = list_schedule(ddg, machine)
    # Recurrences bind dynamic hardware too, but only through the exact
    # cycle *ratio*, which T_dep rounds up — and multi-issue can push II
    # below 1 on recurrence-free loops, so the bound is T_dep - 1.
    assert report.steady_ii >= t_dep(ddg, machine) - 1.001
    assert report.steady_ii <= sequential.effective_ii + 0.5
