"""Unit tests for the functional (value-level) schedule executor."""

import pytest

from repro.core import schedule_loop
from repro.frontend.errors import FrontendError
from repro.frontend.lower import compile_loop_semantics
from repro.machine.presets import powerpc604
from repro.sim.functional import execute_dataflow


def _compile_and_schedule(source, name="f"):
    compiled = compile_loop_semantics(source, name=name)
    result = schedule_loop(compiled.ddg, powerpc604(), max_extra=30)
    assert result.schedule is not None
    return compiled, result.schedule


class TestOperandResolution:
    def test_recurrence_seed_used_before_warmup(self):
        """s = s + 1 reads the seed on iteration 0, then op results."""
        compiled, schedule = _compile_and_schedule(
            "for i:\n    s = s + 1\n    out[i] = s\n"
        )
        outcome = execute_dataflow(
            compiled, schedule, {"out": [0.0] * 6}, {"s": 10.0}, 4
        )
        assert outcome.arrays["out"][:4] == [11.0, 12.0, 13.0, 14.0]

    def test_invariant_scalar(self):
        compiled, schedule = _compile_and_schedule(
            "for i:\n    out[i] = x[i] * alpha\n"
        )
        outcome = execute_dataflow(
            compiled, schedule,
            {"x": [1.0, 2.0, 3.0, 4.0, 5.0], "out": [0.0] * 5},
            {"alpha": 3.0}, 4,
        )
        assert outcome.arrays["out"][:4] == [3.0, 6.0, 9.0, 12.0]

    def test_missing_invariant_raises(self):
        compiled, schedule = _compile_and_schedule(
            "for i:\n    out[i] = x[i] * alpha\n"
        )
        with pytest.raises(FrontendError, match="seed"):
            execute_dataflow(
                compiled, schedule, {"x": [1.0] * 5, "out": [0.0] * 5},
                {}, 2,
            )

    def test_carried_const_seed_then_const(self):
        """y reads prev-iteration x, where x is the constant 7: seed on
        iteration 0, 7.0 afterwards."""
        compiled, schedule = _compile_and_schedule(
            "for i:\n    out[i] = x + a[i]\n    x = 7\n"
        )
        outcome = execute_dataflow(
            compiled, schedule,
            {"a": [0.0] * 6, "out": [0.0] * 6}, {"x": 100.0}, 3,
        )
        assert outcome.arrays["out"][:3] == [100.0, 7.0, 7.0]

    def test_values_recorded_per_instance(self):
        compiled, schedule = _compile_and_schedule(
            "for i:\n    out[i] = a[i] + 1\n"
        )
        outcome = execute_dataflow(
            compiled, schedule,
            {"a": [5.0, 6.0, 7.0, 8.0], "out": [0.0] * 4}, {}, 3,
        )
        add_index = next(
            i for i, op in enumerate(compiled.ddg.ops)
            if op.op_class == "fadd"
        )
        assert outcome.values[(add_index, 1)] == 7.0


class TestMemoryModel:
    def test_out_of_range_writes_dropped(self):
        compiled, schedule = _compile_and_schedule(
            "for i:\n    a[i+2] = b[i]\n"
        )
        outcome = execute_dataflow(
            compiled, schedule,
            {"a": [0.0, 0.0], "b": [1.0, 2.0, 3.0]}, {}, 3,
        )
        assert outcome.arrays["a"] == [0.0, 0.0]

    def test_input_arrays_not_mutated(self):
        compiled, schedule = _compile_and_schedule(
            "for i:\n    a[i] = a[i] + 1\n"
        )
        original = {"a": [1.0, 1.0, 1.0, 1.0, 1.0]}
        outcome = execute_dataflow(compiled, schedule, original, {}, 3)
        assert original["a"] == [1.0] * 5
        assert outcome.arrays["a"][:3] == [2.0, 2.0, 2.0]
