"""Tests for the command-line interface."""

import pytest

from repro.cli import main
from repro.ddg.builders import serialize_ddg
from repro.ddg.kernels import dot_product


class TestList:
    def test_lists_kernels_and_machines(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "motivating" in out
        assert "powerpc604" in out


class TestSchedule:
    def test_kernel_by_name(self, capsys):
        code = main([
            "schedule", "--kernel", "motivating", "--machine", "motivating",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "T_lb=3" in out
        assert "-> T=4" in out
        assert "K = [0, 0, 0, 1, 1, 2]'" in out

    def test_ddg_file(self, tmp_path, capsys):
        path = tmp_path / "loop.ddg"
        path.write_text(serialize_ddg(dot_product()), encoding="utf-8")
        code = main([
            "schedule", "--ddg", str(path), "--machine", "powerpc604",
        ])
        assert code == 0
        assert "dotprod" in capsys.readouterr().out

    def test_requires_input(self):
        with pytest.raises(SystemExit):
            main(["schedule", "--machine", "motivating"])

    def test_assembly_flag(self, capsys):
        main([
            "schedule", "--kernel", "dotprod", "--machine", "powerpc604",
            "--assembly",
        ])
        out = capsys.readouterr().out
        assert "KERNEL:" in out

    def test_listing_flag(self, capsys):
        main([
            "schedule", "--kernel", "dotprod", "--machine", "powerpc604",
            "--listing", "3",
        ])
        out = capsys.readouterr().out
        assert "Iter 2" in out

    def test_compare_heuristic_flag(self, capsys):
        main([
            "schedule", "--kernel", "daxpy", "--machine", "powerpc604",
            "--compare-heuristic",
        ])
        out = capsys.readouterr().out
        assert "heuristic (iterative modulo)" in out

    def test_bnb_backend(self, capsys):
        code = main([
            "schedule", "--kernel", "dotprod", "--machine", "powerpc604",
            "--backend", "bnb",
        ])
        assert code == 0

    def test_source_with_classes_and_machine_file(self, capsys):
        import pathlib

        root = pathlib.Path(__file__).resolve().parent.parent / "examples"
        code = main([
            "schedule",
            "--source", str(root / "loops" / "fir.loop"),
            "--machine-file", str(root / "dsp.machine"),
            "--classes", "add=mac,mul=mac",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "T_lb=5" in out

    def test_bad_classes_rejected(self):
        with pytest.raises(SystemExit, match="op=class"):
            main([
                "schedule", "--source", "whatever.loop",
                "--classes", "nonsense",
            ])

    def test_machine_file(self, tmp_path, capsys):
        from repro.machine.io import serialize_machine
        from repro.machine.presets import motivating_machine

        path = tmp_path / "m.machine"
        path.write_text(serialize_machine(motivating_machine()),
                        encoding="utf-8")
        code = main([
            "schedule", "--kernel", "motivating",
            "--machine-file", str(path),
        ])
        assert code == 0
        assert "-> T=4" in capsys.readouterr().out

    def test_explain_flag(self, capsys):
        main([
            "schedule", "--kernel", "motivating", "--machine",
            "motivating", "--explain",
        ])
        out = capsys.readouterr().out
        assert "T = 3: fixed FU assignment (coloring)" in out


class TestScheduleExtras:
    def test_registers_flag(self, capsys):
        main([
            "schedule", "--kernel", "dotprod", "--machine", "powerpc604",
            "--registers",
        ])
        out = capsys.readouterr().out
        assert "register pressure" in out
        assert "MaxLive" in out

    def test_export_lp(self, tmp_path, capsys):
        path = tmp_path / "model.lp"
        main([
            "schedule", "--kernel", "dotprod", "--machine", "powerpc604",
            "--export-lp", str(path),
        ])
        text = path.read_text(encoding="utf-8")
        assert "Subject To" in text
        assert "General" in text


class TestAnalyzeCommand:
    def test_motivating_fp_analysis(self, capsys):
        assert main(["analyze", "--machine", "motivating"]) == 0
        out = capsys.readouterr().out
        assert "forbidden latencies: [1]" in out
        assert "MAL:                 2" in out

    def test_clean_machine(self, capsys):
        main(["analyze", "--machine", "clean"])
        out = capsys.readouterr().out
        assert "clean:               True" in out


class TestMotivatingCommand:
    def test_full_report(self, capsys):
        assert main(["motivating"]) == 0
        out = capsys.readouterr().out
        assert "all §2 claims hold: True" in out


class TestCorpusCommand:
    def test_dump_and_reschedule(self, tmp_path, capsys):
        out = tmp_path / "corpus"
        code = main([
            "corpus", "--out", str(out), "--count", "5", "--seed", "2",
        ])
        assert code == 0
        files = sorted(out.glob("*.ddg"))
        assert len(files) == 5
        assert "wrote 5 loops" in capsys.readouterr().out
        # Round-trip: schedule one dumped loop from disk.
        code = main([
            "schedule", "--ddg", str(files[0]), "--machine", "powerpc604",
        ])
        assert code == 0

    def test_deterministic(self, tmp_path):
        out1, out2 = tmp_path / "a", tmp_path / "b"
        main(["corpus", "--out", str(out1), "--count", "3", "--seed", "9"])
        main(["corpus", "--out", str(out2), "--count", "3", "--seed", "9"])
        for f1, f2 in zip(sorted(out1.iterdir()), sorted(out2.iterdir())):
            assert f1.read_text() == f2.read_text()


class TestSuiteCommand:
    def test_small_suite(self, capsys):
        code = main([
            "suite", "--count", "8", "--seed", "3", "--time-limit", "5",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "Table 4" in out


class TestBackendRosterValidation:
    """``--backends`` is validated at the CLI boundary (PR 9)."""

    def _race(self, roster):
        return main([
            "race", "--kernel", "dotprod", "--machine", "powerpc604",
            "--backend", "portfolio", "--backends", roster,
            "--time-limit", "5",
        ])

    def test_unknown_backend_rejected(self):
        with pytest.raises(SystemExit) as err:
            self._race("highs,gurobi")
        assert "unknown backend 'gurobi'" in str(err.value)
        assert "choose from: highs, bnb, sat" in str(err.value)

    def test_duplicate_backend_rejected(self):
        with pytest.raises(SystemExit) as err:
            self._race("bnb,bnb")
        assert "lists 'bnb' twice" in str(err.value)

    def test_empty_roster_rejected(self):
        with pytest.raises(SystemExit) as err:
            self._race(" , ")
        assert "at least one backend" in str(err.value)

    def test_batch_shares_the_validation(self, tmp_path):
        path = tmp_path / "loop.ddg"
        path.write_text(serialize_ddg(dot_product()))
        with pytest.raises(SystemExit) as err:
            main([
                "batch", str(path), "--machine", "powerpc604",
                "--backend", "portfolio", "--backends", "cplex",
            ])
        assert "unknown backend 'cplex'" in str(err.value)

    def test_single_entry_roster_demotes_to_plain_race(self, capsys):
        # A one-backend "portfolio" is just that backend: no portfolio
        # fan-out, but the roster still validates and the named solver
        # runs.  (--no-warmstart so the solve reaches the backend at
        # all instead of settling on the heuristic.)
        code = main([
            "race", "--kernel", "dotprod", "--machine", "powerpc604",
            "--backend", "portfolio", "--backends", "bnb",
            "--time-limit", "5", "--no-warmstart",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "[bnb]" in out
        assert "portfolio [" not in out

    def test_explicit_roster_portfolio_races(self, capsys):
        code = main([
            "race", "--kernel", "dotprod", "--machine", "powerpc604",
            "--backend", "portfolio", "--backends", "highs,bnb",
            "--time-limit", "5", "--no-warmstart",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "portfolio [highs, bnb]" in out
