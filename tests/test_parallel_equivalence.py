"""Differential tests: sequential sweep vs. multiprocess period race.

For every loop in ``corpus/``, :func:`repro.parallel.race_periods` must
return the identical achieved period and the identical
``is_rate_optimal_proven`` flag as :func:`repro.core.schedule_loop` —
the racer is a pure wall-clock optimization, never a semantic change.

The corpus-wide sweeps (and everything under the pure-python ``bnb``
backend) are marked ``slow`` and excluded from the default tier-1 run;
a small smoke subset always runs.
"""

import pathlib

import pytest

from repro.core import schedule_loop, verify_schedule
from repro.corpusgen import default_families, generate_corpus
from repro.ddg.builders import parse_ddg
from repro.ddg.generators import GenParams
from repro.machine.presets import coreblocks, powerpc604
from repro.parallel import race_periods, run_batch
from repro.parallel.cache import clear_caches
from repro.store.tiering import clear_tiers

CORPUS_DIR = pathlib.Path(__file__).resolve().parent.parent / "corpus"
FILES = sorted(CORPUS_DIR.glob("*.ddg"))
SMOKE_FILES = FILES[:4]

#: Loops whose ILPs stay small enough for the pure-python solver.
BNB_MAX_OPS = 8


@pytest.fixture(scope="module")
def machine():
    return powerpc604()


def _assert_equivalent(path, machine, backend, time_limit):
    ddg = parse_ddg(path.read_text(encoding="utf-8"))
    seq = schedule_loop(
        ddg, machine, backend=backend, time_limit_per_t=time_limit,
        max_extra=30,
    )
    par = race_periods(
        ddg, machine, backend=backend, time_limit_per_t=time_limit,
        max_extra=30, jobs=2,
    )
    assert par.achieved_t == seq.achieved_t, path.name
    assert par.is_rate_optimal_proven == seq.is_rate_optimal_proven, path.name
    if par.schedule is not None:
        verify_schedule(par.schedule)
    # The proof obligation rests on the same periods in both drivers:
    # every admissible period below the winner was dispatched, none
    # sits in a "cancelled" limbo.
    if par.schedule is not None:
        below = [
            a for a in par.attempts if a.t_period < par.achieved_t
        ]
        assert all(a.status != "cancelled" for a in below)


@pytest.mark.parametrize("path", SMOKE_FILES, ids=lambda p: p.stem)
def test_equivalence_smoke_highs(path, machine):
    _assert_equivalent(path, machine, "highs", 10.0)


@pytest.mark.slow
@pytest.mark.parametrize("path", FILES, ids=lambda p: p.stem)
def test_equivalence_corpus_highs(path, machine):
    _assert_equivalent(path, machine, "highs", 10.0)


@pytest.mark.slow
@pytest.mark.parametrize("path", FILES, ids=lambda p: p.stem)
def test_equivalence_corpus_bnb(path, machine):
    ddg = parse_ddg(path.read_text(encoding="utf-8"))
    if ddg.num_ops > BNB_MAX_OPS:
        pytest.skip(
            f"{path.name}: {ddg.num_ops} ops is beyond the pure-python "
            "solver's practical size"
        )
    _assert_equivalent(path, machine, "bnb", 20.0)


# ---------------------------------------------------------------------------
# Generated-corpus differential: sequential sweep vs. period race vs.
# store-warmed batch must all report the same achieved period and the
# same proven-optimality flag.  The sample is the seeded 50-loop corpus
# the issue pins (master seed 604, mixed families); a small slice runs
# in tier-1, the full sample and the ``bnb`` backend are ``slow``.
# ---------------------------------------------------------------------------

GEN_SAMPLE_SEED = 604
GEN_SAMPLE_SIZE = 50


def _generated_sample(machine):
    return generate_corpus(
        GEN_SAMPLE_SEED, machine,
        default_families(GEN_SAMPLE_SIZE, base=GenParams(max_ops=12)),
    )


@pytest.fixture
def fresh_store_state():
    clear_tiers()
    clear_caches()
    yield
    clear_tiers()
    clear_caches()


def _timed_out_below_winner(result):
    """True when a sub-winner period attempt died on the wall clock.

    The proven-optimality flag is then legitimately load-dependent: one
    driver may prove T-1 infeasible inside the limit while another,
    racing several periods on the same cores, times out on it.
    """
    if result.achieved_t is None:
        return True
    return any(
        a.status == "time_limit" and a.t_period < result.achieved_t
        for a in result.attempts
    )


def _assert_triple_equivalent(ddg, machine, backend, time_limit, store_root):
    seq = schedule_loop(
        ddg, machine, backend=backend, time_limit_per_t=time_limit,
        max_extra=30,
    )
    par = race_periods(
        ddg, machine, backend=backend, time_limit_per_t=time_limit,
        max_extra=30, jobs=2,
    )
    assert par.achieved_t == seq.achieved_t, ddg.name
    if not (_timed_out_below_winner(seq) or _timed_out_below_winner(par)):
        assert par.is_rate_optimal_proven == seq.is_rate_optimal_proven, \
            ddg.name
    if par.schedule is not None:
        verify_schedule(par.schedule)
    # Third leg: batch through a cold store, then again through the
    # now-warm store.  The cold run must agree with the sequential
    # sweep; the warm run replays whatever the cold run published, so
    # it must agree with the cold entry bit-for-bit on the flags.
    cold = warm = None
    for leg in ("cold", "warm"):
        report = run_batch(
            [ddg], machine, backend=backend, jobs=1,
            time_limit_per_t=time_limit, max_extra=30, store=store_root,
        )
        entry = report.entries[0]
        assert entry.error is None, (ddg.name, leg, entry.error)
        assert entry.result.achieved_t == seq.achieved_t, (ddg.name, leg)
        if leg == "cold":
            cold = entry.result
        else:
            warm = entry.result
    if not (_timed_out_below_winner(seq) or _timed_out_below_winner(cold)):
        assert cold.is_rate_optimal_proven == seq.is_rate_optimal_proven, \
            ddg.name
    if warm.schedule is not None and warm.store.hit:
        assert warm.is_rate_optimal_proven == cold.is_rate_optimal_proven, \
            ddg.name


def test_generated_differential_smoke(machine, tmp_path,
                                      fresh_store_state):
    for ddg in _generated_sample(machine)[:5]:
        _assert_triple_equivalent(
            ddg, machine, "highs", 10.0, tmp_path / "store"
        )


@pytest.mark.slow
@pytest.mark.parametrize("preset", ["powerpc604", "coreblocks"])
def test_generated_differential_full_highs(preset, tmp_path,
                                           fresh_store_state):
    mach = {"powerpc604": powerpc604, "coreblocks": coreblocks}[preset]()
    for ddg in _generated_sample(mach):
        _assert_triple_equivalent(
            ddg, mach, "highs", 10.0, tmp_path / "store"
        )


@pytest.mark.slow
def test_generated_differential_full_bnb(machine, tmp_path,
                                         fresh_store_state):
    for ddg in _generated_sample(machine):
        if ddg.num_ops > BNB_MAX_OPS:
            continue
        _assert_triple_equivalent(
            ddg, machine, "bnb", 20.0, tmp_path / "store"
        )
