"""Differential tests: sequential sweep vs. multiprocess period race.

For every loop in ``corpus/``, :func:`repro.parallel.race_periods` must
return the identical achieved period and the identical
``is_rate_optimal_proven`` flag as :func:`repro.core.schedule_loop` —
the racer is a pure wall-clock optimization, never a semantic change.

The corpus-wide sweeps (and everything under the pure-python ``bnb``
backend) are marked ``slow`` and excluded from the default tier-1 run;
a small smoke subset always runs.
"""

import pathlib

import pytest

from repro.core import schedule_loop, verify_schedule
from repro.ddg.builders import parse_ddg
from repro.machine.presets import powerpc604
from repro.parallel import race_periods

CORPUS_DIR = pathlib.Path(__file__).resolve().parent.parent / "corpus"
FILES = sorted(CORPUS_DIR.glob("*.ddg"))
SMOKE_FILES = FILES[:4]

#: Loops whose ILPs stay small enough for the pure-python solver.
BNB_MAX_OPS = 8


@pytest.fixture(scope="module")
def machine():
    return powerpc604()


def _assert_equivalent(path, machine, backend, time_limit):
    ddg = parse_ddg(path.read_text(encoding="utf-8"))
    seq = schedule_loop(
        ddg, machine, backend=backend, time_limit_per_t=time_limit,
        max_extra=30,
    )
    par = race_periods(
        ddg, machine, backend=backend, time_limit_per_t=time_limit,
        max_extra=30, jobs=2,
    )
    assert par.achieved_t == seq.achieved_t, path.name
    assert par.is_rate_optimal_proven == seq.is_rate_optimal_proven, path.name
    if par.schedule is not None:
        verify_schedule(par.schedule)
    # The proof obligation rests on the same periods in both drivers:
    # every admissible period below the winner was dispatched, none
    # sits in a "cancelled" limbo.
    if par.schedule is not None:
        below = [
            a for a in par.attempts if a.t_period < par.achieved_t
        ]
        assert all(a.status != "cancelled" for a in below)


@pytest.mark.parametrize("path", SMOKE_FILES, ids=lambda p: p.stem)
def test_equivalence_smoke_highs(path, machine):
    _assert_equivalent(path, machine, "highs", 10.0)


@pytest.mark.slow
@pytest.mark.parametrize("path", FILES, ids=lambda p: p.stem)
def test_equivalence_corpus_highs(path, machine):
    _assert_equivalent(path, machine, "highs", 10.0)


@pytest.mark.slow
@pytest.mark.parametrize("path", FILES, ids=lambda p: p.stem)
def test_equivalence_corpus_bnb(path, machine):
    ddg = parse_ddg(path.read_text(encoding="utf-8"))
    if ddg.num_ops > BNB_MAX_OPS:
        pytest.skip(
            f"{path.name}: {ddg.num_ops} ops is beyond the pure-python "
            "solver's practical size"
        )
    _assert_equivalent(path, machine, "bnb", 20.0)
