"""Unit tests for the machine-sensitivity sweep harness."""

import random

import pytest

from repro.ddg.generators import GeneratorConfig, random_ddg
from repro.experiments.sweep import SweepPoint, SweepResult, fp_mem_sweep
from repro.machine.presets import motivating_machine


@pytest.fixture(scope="module")
def loops():
    rng = random.Random(5)
    machine = motivating_machine()
    config = GeneratorConfig(
        min_ops=2, max_ops=5,
        class_weights={"fadd": 0.4, "load": 0.35, "store": 0.25},
    )
    return [random_ddg(rng, machine, config, name=f"s{i}")
            for i in range(6)]


class TestSweep:
    def test_grid_covered(self, loops):
        result = fp_mem_sweep(loops, fp_range=(1, 2), mem_range=(1,),
                              max_extra=20)
        assert len(result.points) == 2
        assert result.point(1, 1).fp_units == 1
        with pytest.raises(KeyError):
            result.point(9, 9)

    def test_all_scheduled_with_generous_budget(self, loops):
        result = fp_mem_sweep(loops, fp_range=(1, 2), mem_range=(1,),
                              max_extra=20)
        assert all(p.scheduled == len(loops) for p in result.points)

    def test_monotone(self, loops):
        result = fp_mem_sweep(loops, fp_range=(1, 2, 3), mem_range=(1,),
                              max_extra=20)
        assert result.monotone_in_fp()

    def test_monotone_detects_violations(self):
        result = SweepResult(points=[
            SweepPoint(1, 1, 5, mean_t=3.0, mean_t_lb=3.0),
            SweepPoint(2, 1, 5, mean_t=4.0, mean_t_lb=3.0),
        ])
        assert not result.monotone_in_fp()

    def test_render(self, loops):
        result = fp_mem_sweep(loops, fp_range=(1,), mem_range=(1,),
                              max_extra=20)
        text = result.render()
        assert "mean T" in text
        assert "E19" in text

    def test_gap_property(self):
        point = SweepPoint(1, 1, 5, mean_t=4.5, mean_t_lb=4.0)
        assert point.mean_gap == pytest.approx(0.5)
