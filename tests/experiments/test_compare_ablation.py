"""Tests for the E10 comparison and E11/E12 ablation harnesses."""

import pytest

from repro.ddg.generators import suite
from repro.ddg.kernels import motivating_example
from repro.experiments.ablation import (
    cleaned_variant,
    counting_vs_coloring,
    hazard_ablation,
)
from repro.experiments.compare import run_compare
from repro.machine.presets import motivating_machine, powerpc604


@pytest.fixture(scope="module")
def corpus():
    return suite(12, powerpc604(), seed=13)


class TestCompare:
    def test_ilp_dominates(self, corpus):
        comparison = run_compare(corpus, powerpc604(), time_limit_per_t=5.0)
        assert comparison.ilp_never_worse

    def test_speedup_positive(self, corpus):
        comparison = run_compare(corpus, powerpc604(), time_limit_per_t=5.0)
        assert comparison.mean_speedup_vs_sequential >= 1.0

    def test_render(self, corpus):
        comparison = run_compare(
            corpus[:4], powerpc604(), time_limit_per_t=5.0
        )
        text = comparison.render()
        assert "ILP never worse" in text


class TestCountingVsColoring:
    def test_motivating_gap_witnessed(self):
        rows = counting_vs_coloring(
            [motivating_example()], motivating_machine()
        )
        row = rows[0]
        assert row.t_counting == 3
        assert row.t_full == 4
        assert row.has_gap
        assert row.gap_witnessed

    def test_no_false_gaps_on_corpus(self, corpus):
        """Whenever a gap is reported, the witness must confirm it."""
        machine = powerpc604()
        rows = counting_vs_coloring(corpus, machine, time_limit_per_t=5.0)
        for row in rows:
            if row.has_gap:
                assert row.gap_witnessed
            if row.t_counting is not None and row.t_full is not None:
                assert row.t_full >= row.t_counting


class TestHazardAblation:
    def test_cleaned_variant_is_clean(self):
        idealized = cleaned_variant(motivating_machine())
        assert idealized.is_clean
        # Same counts and latencies.
        assert idealized.fu_type("FP").count == 2
        assert idealized.latency("fadd") == 2

    def test_motivating_hazard_costs_a_cycle(self):
        summary = hazard_ablation(
            [motivating_example()], motivating_machine()
        )
        row = summary.rows[0]
        # Unclean: T=4.  Idealized clean FP pipeline: T=3 becomes valid.
        assert row.t_unclean == 4
        assert row.t_clean == 3
        assert row.hazard_cost == 1

    def test_hazards_never_help(self, corpus):
        summary = hazard_ablation(corpus, powerpc604(), time_limit_per_t=5.0)
        assert summary.never_negative

    def test_render(self):
        summary = hazard_ablation(
            [motivating_example()], motivating_machine()
        )
        assert "hazard cost" in summary.render()
