"""Tests for the Table 4 / Table 5 harnesses on a small corpus."""

import pytest

from repro.ddg.generators import suite
from repro.experiments.table4 import PAPER_TABLE4, run_table4
from repro.experiments.table5 import run_table5
from repro.machine.presets import powerpc604


@pytest.fixture(scope="module")
def corpus():
    return suite(30, powerpc604(), seed=7)


@pytest.fixture(scope="module")
def table4(corpus):
    return run_table4(corpus, powerpc604(), time_limit_per_t=5.0)


class TestTable4:
    def test_every_loop_accounted(self, table4, corpus):
        assert table4.scheduled + table4.unscheduled == len(corpus)

    def test_majority_at_t_lb(self, table4):
        """The paper's headline shape: ~96% of scheduled loops at T_lb."""
        assert table4.fraction_at_t_lb >= 0.8

    def test_bucket_arithmetic(self, table4):
        for bucket in table4.buckets.values():
            assert bucket.loops >= 1
            assert bucket.mean_nodes > 0

    def test_render_mentions_t_lb(self, table4):
        text = table4.render()
        assert "T = T_lb" in text
        assert "paper: 96.0%" in text

    def test_paper_reference_rows(self):
        assert PAPER_TABLE4[0] == (735, 6)
        assert PAPER_TABLE4[2] == (20, 16)
        assert PAPER_TABLE4[4] == (11, 17)

    def test_results_retained(self, table4, corpus):
        assert len(table4.results) == len(corpus)

    def test_unscheduled_bucket_rendering(self):
        from repro.core.bounds import LowerBounds
        from repro.core.scheduler import SchedulingResult
        from repro.experiments.table4 import Table4

        table = Table4()
        table.add(
            SchedulingResult(
                loop_name="stuck", bounds=LowerBounds(2, 2),
                attempts=[], schedule=None,
            ),
            num_nodes=12,
        )
        assert table.unscheduled == 1
        assert table.scheduled == 0
        assert table.fraction_at_t_lb == 0.0
        assert "(not within budget)" in table.render()


class TestTable5:
    def test_counts(self, table4, corpus):
        table5 = run_table5(table4.results)
        assert table5.total_loops == len(corpus)
        assert table5.scheduled == table4.scheduled

    def test_budget_buckets_monotone(self, table4):
        table5 = run_table5(table4.results)
        within10 = table5.solved_within.get(10.0, 0)
        within30 = table5.solved_within.get(30.0, 0)
        assert within10 <= within30

    def test_histogram_partitions(self, table4, corpus):
        table5 = run_table5(table4.results)
        assert sum(table5.histogram.values()) == len(corpus)

    def test_render(self, table4):
        text = run_table5(table4.results).render()
        assert "solved within" in text
        assert "histogram" in text
