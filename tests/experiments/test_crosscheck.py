"""Tests for the four-way cross-validation harness."""

import random

import pytest

from repro.ddg.generators import GeneratorConfig, random_ddg
from repro.ddg.kernels import all_kernels
from repro.experiments.crosscheck import cross_check
from repro.machine.presets import motivating_machine, powerpc604


class TestKernels:
    def test_all_kernels_consistent(self):
        machine = powerpc604()
        small = [k for k in all_kernels() if k.num_ops <= 9]
        report = cross_check(small, machine, time_limit_per_t=10.0)
        assert report.all_consistent, report.problems()

    def test_motivating_machine_consistent(self):
        from repro.ddg.kernels import motivating_example

        report = cross_check(
            [motivating_example()], motivating_machine(),
        )
        assert report.all_consistent, report.problems()
        row = report.rows[0]
        assert row.highs_t == row.bnb_t == row.enum_t == 4

    def test_render_mentions_verdict(self):
        from repro.ddg.kernels import dot_product

        report = cross_check([dot_product()], powerpc604())
        assert "ALL CONSISTENT" in report.render()


class TestRandomCorpus:
    def test_random_loops_consistent(self):
        machine = powerpc604()
        rng = random.Random(77)
        loops = [
            random_ddg(rng, machine, GeneratorConfig(min_ops=2, max_ops=6),
                       name=f"xc{i}")
            for i in range(8)
        ]
        report = cross_check(loops, machine, time_limit_per_t=10.0)
        assert report.all_consistent, report.problems()
