"""Tests for the §2 motivating-example experiment (E1–E6)."""

import pytest

from repro.experiments import motivating


@pytest.fixture(scope="module")
def artifacts():
    return motivating.run()


class TestStoryline:
    def test_all_paper_claims_hold(self, artifacts):
        assert artifacts.consistent_with_paper

    def test_bounds(self, artifacts):
        assert (artifacts.t_dep, artifacts.t_res, artifacts.t_lb) == (2, 3, 3)

    def test_schedule_a_exists_and_runs_dynamically(self, artifacts):
        assert artifacts.schedule_a is not None
        assert artifacts.schedule_a.t_period == 3
        assert artifacts.schedule_a_dynamic_ok

    def test_schedule_a_has_no_fixed_mapping(self, artifacts):
        assert not artifacts.schedule_a_fixed_mappable

    def test_full_ilp_rejects_t3(self, artifacts):
        assert artifacts.t3_with_mapping_infeasible

    def test_schedule_b_matches_paper_period_and_k(self, artifacts):
        schedule = artifacts.schedule_b
        assert schedule.t_period == 4
        assert schedule.k_vector == [0, 0, 0, 1, 1, 2]

    def test_rate_optimality(self, artifacts):
        assert artifacts.rate_optimal_proven


class TestFigure4:
    def test_arcs_cover_fp_ops_only(self, artifacts):
        arcs = motivating.circular_arcs(artifacts.schedule_b, "FP")
        assert set(arcs) == {2, 3, 4}
        # Each fadd occupies 4 cells (1 + 1 + 2 stage uses).
        assert all(len(cells) == 4 for cells in arcs.values())

    def test_overlap_forces_distinct_units(self, artifacts):
        edges = motivating.overlap_edges(artifacts.schedule_b, "FP")
        colors = artifacts.schedule_b.colors
        for i, j in edges:
            assert colors[i] != colors[j]

    def test_render_mentions_overlaps(self, artifacts):
        text = motivating.render_arcs(artifacts.schedule_b, "FP")
        assert "overlap edges:" in text


class TestReport:
    def test_report_contains_all_sections(self):
        text = motivating.report()
        for section in (
            "Figure 1", "Table 1", "Table 2", "Figure 2", "Figure 4",
        ):
            assert section in text
        assert "all §2 claims hold: True" in text
