"""Golden-output tests: key renderings are pinned exactly.

These guard the user-visible artifacts (the §2 reconstruction and the
Figure 2/3 displays) against accidental drift — any intentional change
to schedules or formatting must update these strings consciously.
"""

from repro.core import periodic, schedule_loop
from repro.ddg.kernels import motivating_example
from repro.ddg.render import ascii_ddg
from repro.machine.presets import motivating_machine


def test_golden_motivating_ddg():
    assert ascii_ddg(motivating_example(), motivating_machine()) == (
        "loop motivating (6 ops, 6 deps)\n"
        "  i0: load (lat 3) -> i2[m=0]\n"
        "  i1: load (lat 3) -> i3[m=0]\n"
        "  i2: fadd (lat 2) -> i3[m=0], i2[m=1]\n"
        "  i3: fadd (lat 2) -> i4[m=0]\n"
        "  i4: fadd (lat 2) -> i5[m=0]\n"
        "  i5: store (lat 1)"
    )


def test_golden_fp_reservation_table():
    table = motivating_machine().reservation_for("fadd")
    assert table.render("FP") == (
        "FP\n"
        "          0  1  2\n"
        "Stage  1  1  0  0\n"
        "Stage  2  0  1  0\n"
        "Stage  3  0  1  1"
    )


def test_golden_paper_tka():
    """The published Schedule B vectors, rendered (Figure 3)."""
    text = periodic.format_tka(
        [0, 1, 3, 5, 7, 11], 4, [f"i{i}" for i in range(6)]
    )
    assert text == (
        "T = [0, 1, 3, 5, 7, 11]'\n"
        "K = [0, 0, 0, 1, 1, 2]'\n"
        "A (4 x 6), columns = i0, i1, i2, i3, i4, i5:\n"
        "  t=0: [1 0 0 0 0 0]\n"
        "  t=1: [0 1 0 1 0 0]\n"
        "  t=2: [0 0 0 0 0 0]\n"
        "  t=3: [0 0 1 0 1 1]"
    )


def test_golden_min_sum_t_schedule_is_stable():
    """HiGHS is deterministic: the min-sum-t Schedule B never moves.

    Pinned to the cold solve: the warm-start cutoff row steers HiGHS to
    a different (equally optimal, sum=26) vertex.
    """
    result = schedule_loop(
        motivating_example(), motivating_machine(), objective="min_sum_t",
        warmstart=False,
    )
    schedule = result.schedule
    assert schedule.starts == [0, 1, 3, 5, 7, 10]
    assert schedule.k_vector == [0, 0, 0, 1, 1, 2]
    assert schedule.colors[2] != schedule.colors[4]


def test_golden_kernel_rendering():
    result = schedule_loop(
        motivating_example(), motivating_machine(), objective="min_sum_t",
        warmstart=False,
    )
    text = result.schedule.render_kernel()
    assert text.splitlines()[0] == (
        "kernel of 'motivating': T=4, span=11, stages=3"
    )
    assert "  slot 0: i0/MEM0(+0)" in text
