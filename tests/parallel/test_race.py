"""Unit tests for the multiprocess period racer."""

import pytest

from repro.core import schedule_loop, verify_schedule
from repro.core.errors import SchedulingError
from repro.core.scheduler import AttemptConfig, attempt_period
from repro.ddg import Ddg
from repro.ddg.kernels import motivating_example
from repro.machine.presets import (
    motivating_machine,
    nonpipelined_machine,
    powerpc604,
)
from repro.parallel import race_periods
from repro.parallel.race import CANCELLED


@pytest.fixture(scope="module")
def machine():
    return motivating_machine()


class TestAttemptPeriod:
    """The shared per-attempt body both drivers funnel through."""

    def test_infeasible_period(self, machine):
        outcome = attempt_period(motivating_example(), machine, 3)
        assert outcome.schedule is None
        assert outcome.attempt.status == "infeasible"

    def test_feasible_period_verifies(self, machine):
        outcome = attempt_period(motivating_example(), machine, 4)
        assert outcome.schedule is not None
        assert outcome.attempt.status in ("optimal", "feasible")
        verify_schedule(outcome.schedule)

    def test_modulo_infeasible_period(self):
        machine = nonpipelined_machine(div_units=2, div_time=4)
        g = Ddg("single")
        g.add_op("d", "div")
        outcome = attempt_period(g, machine, 2)
        assert outcome.attempt.status == "modulo_infeasible"
        assert outcome.schedule is None

    def test_config_is_picklable(self):
        import pickle

        config = AttemptConfig(backend="highs", time_limit=5.0)
        assert pickle.loads(pickle.dumps(config)) == config


class TestRaceMatchesSequential:
    def test_motivating_loop(self, machine):
        seq = schedule_loop(motivating_example(), machine)
        par = race_periods(motivating_example(), machine, jobs=2)
        assert par.achieved_t == seq.achieved_t == 4
        assert par.is_rate_optimal_proven and seq.is_rate_optimal_proven
        assert par.bounds == seq.bounds
        verify_schedule(par.schedule)

    def test_inline_path_identical(self, machine):
        seq = schedule_loop(motivating_example(), machine)
        par = race_periods(motivating_example(), machine, jobs=1)
        assert par.achieved_t == seq.achieved_t
        assert [
            (a.t_period, a.status) for a in par.attempts
        ] == [(a.t_period, a.status) for a in seq.attempts]

    def test_counting_only_relaxation(self, machine):
        par = race_periods(
            motivating_example(), machine, mapping=False, jobs=2
        )
        assert par.achieved_t == 3
        assert not par.schedule.has_complete_mapping

    def test_modulo_skips_recorded(self):
        machine = nonpipelined_machine(div_units=2, div_time=4)
        g = Ddg("single")
        g.add_op("d", "div")
        par = race_periods(g, machine, jobs=2)
        seq = schedule_loop(g, machine)
        assert par.achieved_t == seq.achieved_t == 4
        skipped = [
            a.t_period for a in par.attempts
            if a.status == "modulo_infeasible"
        ]
        assert skipped == [2, 3]

    def test_repair_modulo(self):
        from repro.machine import Machine, ReservationTable

        machine = Machine("sparse")
        machine.add_fu_type(
            "X", count=1, table=ReservationTable([[1, 0, 1], [0, 1, 0]])
        )
        machine.add_op_class("op", "X", latency=3)
        g = Ddg("solo")
        g.add_op("a", "op")
        seq = schedule_loop(g, machine, repair_modulo=True)
        par = race_periods(g, machine, repair_modulo=True, jobs=2)
        # T=2 violates the modulo constraint but delay insertion
        # recovers it — in both drivers.
        assert seq.achieved_t == par.achieved_t == 2
        repaired = [a for a in par.attempts if a.repaired]
        assert repaired and repaired[0].t_period == 2

    def test_unrepairable_periods_stay_skipped(self):
        machine = nonpipelined_machine(div_units=2, div_time=4)
        g = Ddg("single")
        g.add_op("d", "div")
        seq = schedule_loop(g, machine, repair_modulo=True)
        par = race_periods(g, machine, repair_modulo=True, jobs=2)
        assert par.achieved_t == seq.achieved_t == 4
        assert [
            (a.t_period, a.status)
            for a in par.attempts if a.t_period <= 4
        ] == [(a.t_period, a.status) for a in seq.attempts]


class TestRaceBookkeeping:
    def test_attempts_sorted_by_period(self, machine):
        par = race_periods(motivating_example(), machine, jobs=3)
        periods = [a.t_period for a in par.attempts]
        assert periods == sorted(periods)

    def test_periods_beyond_winner_cancelled_or_resolved(self, machine):
        # warmstart=False: the heuristic would cap the candidate range
        # at its II, leaving no periods beyond the winner to cancel.
        par = race_periods(
            motivating_example(), machine, jobs=2, max_extra=10,
            warmstart=False,
        )
        beyond = [a for a in par.attempts if a.t_period > par.achieved_t]
        # Every candidate period appears exactly once in the log.
        assert len(par.attempts) == 11
        for attempt in beyond:
            assert attempt.status in (
                CANCELLED, "optimal", "feasible", "modulo_infeasible",
            )

    def test_no_cancellations_below_winner(self, machine):
        par = race_periods(motivating_example(), machine, jobs=4)
        below = [a for a in par.attempts if a.t_period < par.achieved_t]
        assert all(a.status != CANCELLED for a in below)

    def test_budget_exhausted_returns_none_schedule(self, machine):
        par = race_periods(
            motivating_example(), machine, max_extra=0, jobs=2
        )
        assert par.schedule is None
        assert par.achieved_t is None
        assert not par.is_rate_optimal_proven

    def test_bad_jobs_rejected(self, machine):
        with pytest.raises(SchedulingError, match="jobs must be >= 1"):
            race_periods(motivating_example(), machine, jobs=0)

    def test_bad_max_extra_rejected(self, machine):
        with pytest.raises(SchedulingError, match="max_extra"):
            race_periods(motivating_example(), machine, max_extra=-1)

    def test_window_of_one_still_wins(self, machine):
        par = race_periods(
            motivating_example(), machine, jobs=2, window=1
        )
        assert par.achieved_t == 4
        assert par.is_rate_optimal_proven


class TestRaceOnRealMachine:
    def test_ppc_loop(self):
        machine = powerpc604()
        g = Ddg("mixed")
        g.add_op("ld", "load")
        g.add_op("m", "fmul")
        g.add_op("a", "fadd")
        g.add_op("st", "store")
        g.add_dep("ld", "m")
        g.add_dep("m", "a")
        g.add_dep("a", "st")
        g.add_dep("a", "a", distance=1)
        seq = schedule_loop(g, machine)
        par = race_periods(g, machine, jobs=2)
        assert par.achieved_t == seq.achieved_t
        assert par.is_rate_optimal_proven == seq.is_rate_optimal_proven
        verify_schedule(par.schedule)
