"""Tests for the per-process bounds/formulation LRU caches."""

import pytest

from repro.core.bounds import lower_bounds
from repro.core.formulation import FormulationOptions
from repro.ddg.builders import parse_ddg, serialize_ddg
from repro.ddg.kernels import motivating_example
from repro.machine.presets import motivating_machine, powerpc604
from repro.parallel import cache


@pytest.fixture(autouse=True)
def fresh_caches():
    cache.clear_caches()
    yield
    cache.clear_caches()


class TestLruCache:
    def test_basic_roundtrip(self):
        lru = cache.LruCache(maxsize=2)
        lru.put("a", 1)
        assert lru.get("a") == 1
        assert lru.get("b") is None
        assert lru.hits == 1 and lru.misses == 1

    def test_eviction_is_lru(self):
        lru = cache.LruCache(maxsize=2)
        lru.put("a", 1)
        lru.put("b", 2)
        lru.get("a")          # refresh a; b is now least-recent
        lru.put("c", 3)
        assert lru.get("b") is None
        assert lru.get("a") == 1
        assert lru.get("c") == 3

    def test_bad_maxsize(self):
        with pytest.raises(ValueError, match="maxsize"):
            cache.LruCache(maxsize=0)

    def test_pop_removes_without_counting(self):
        lru = cache.LruCache(maxsize=2)
        lru.put("a", 1)
        assert lru.pop("a") == 1
        assert lru.pop("a") is None
        assert lru.hits == 0 and lru.misses == 0
        assert lru.get("a") is None  # really gone: this is the only miss
        assert lru.misses == 1


class TestDigests:
    def test_ddg_digest_is_content_based(self):
        ddg = motivating_example()
        clone = parse_ddg(serialize_ddg(ddg))
        assert cache.ddg_digest(ddg) == cache.ddg_digest(clone)

    def test_ddg_digest_distinguishes(self):
        ddg = motivating_example()
        other = ddg.copy()
        other.add_dep(0, 5)
        assert cache.ddg_digest(ddg) != cache.ddg_digest(other)

    def test_machine_digest_distinguishes(self):
        assert cache.machine_digest(motivating_machine()) != (
            cache.machine_digest(powerpc604())
        )
        assert cache.machine_digest(motivating_machine(fp_units=2)) != (
            cache.machine_digest(motivating_machine(fp_units=3))
        )

    def test_machine_digest_stable(self):
        assert cache.machine_digest(powerpc604()) == cache.machine_digest(
            powerpc604()
        )

    def test_machine_digest_ignores_display_name(self):
        # Regression: the digest once folded in ``machine.name``, so two
        # identical machines loaded under different file names could not
        # share cache entries (or store keys).
        from repro.machine.machine import Machine
        from repro.machine.reservation import ReservationTable

        def build(name):
            m = Machine(name)
            m.add_fu_type("FP", count=2, table=ReservationTable.clean(2))
            m.add_op_class("fadd", "FP", latency=2)
            return m

        assert cache.machine_digest(build("alpha")) == cache.machine_digest(
            build("beta")
        )


class TestCachedLowerBounds:
    def test_matches_uncached(self):
        ddg, machine = motivating_example(), motivating_machine()
        assert cache.cached_lower_bounds(ddg, machine) == lower_bounds(
            ddg, machine
        )

    def test_second_call_hits(self):
        ddg, machine = motivating_example(), motivating_machine()
        cache.cached_lower_bounds(ddg, machine)
        before = cache.cache_stats()["bounds"]["hits"]
        # A *different object* with identical content still hits.
        clone = parse_ddg(serialize_ddg(ddg))
        cache.cached_lower_bounds(clone, machine)
        assert cache.cache_stats()["bounds"]["hits"] == before + 1


class TestCachedFormulation:
    def test_reuse_and_resolve(self):
        ddg, machine = motivating_example(), motivating_machine()
        first = cache.cached_formulation(ddg, machine, 4)
        again = cache.cached_formulation(ddg, machine, 4)
        assert first is again
        # A cached formulation still solves and extracts correctly.
        solution = first.solve()
        assert solution.status.has_solution
        schedule = first.extract(solution)
        assert schedule.t_period == 4

    def test_distinct_periods_distinct_entries(self):
        ddg, machine = motivating_example(), motivating_machine()
        assert cache.cached_formulation(ddg, machine, 4) is not (
            cache.cached_formulation(ddg, machine, 5)
        )

    def test_options_partition_the_cache(self):
        ddg, machine = motivating_example(), motivating_machine()
        plain = cache.cached_formulation(ddg, machine, 4)
        relaxed = cache.cached_formulation(
            ddg, machine, 4, FormulationOptions(mapping=False)
        )
        assert plain is not relaxed
