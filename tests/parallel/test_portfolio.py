"""(period x backend) portfolio racing: rosters, kill semantics, v7
report surface.

The portfolio must be a pure performance move: whatever roster races,
the achieved II and the rate-optimality proof must match the
single-backend drivers, and the only observable difference is *who*
produced each verdict (the per-attempt ``backend`` tag) plus the
kill/cancel accounting.
"""

import multiprocessing
import random

import pytest

from repro.core import schedule_loop, verify_schedule
from repro.core.errors import SchedulingError
from repro.ddg.builders import serialize_ddg
from repro.ddg.generators import GeneratorConfig, random_ddg
from repro.ddg.kernels import motivating_example
from repro.machine.presets import motivating_machine, powerpc604
from repro.parallel import (
    PORTFOLIO_BACKENDS,
    default_portfolio,
    race_periods,
    run_batch,
)
from repro.parallel.batch import REPORT_VERSION, load_report
from repro.parallel.race import CANCELLED, _validate_roster


@pytest.fixture
def machine():
    return motivating_machine()


@pytest.fixture
def ddg():
    return motivating_example()


def _no_stray_children():
    return [
        p for p in multiprocessing.active_children()
        if "race" in (p.name or "").lower() or p.daemon
    ]


class TestRoster:
    def test_portfolio_backends_are_known(self):
        assert "auto" not in PORTFOLIO_BACKENDS
        assert set(PORTFOLIO_BACKENDS) == {"highs", "bnb", "sat"}

    def test_default_roster_feasibility_includes_sat(self):
        roster = default_portfolio("feasibility")
        assert "sat" in roster
        assert "bnb" in roster

    def test_default_roster_other_objective_excludes_sat(self):
        assert "sat" not in default_portfolio("min_sum_t")

    def test_empty_roster_rejected(self):
        with pytest.raises(SchedulingError, match=">= 1 backend"):
            _validate_roster((), "feasibility")

    def test_unknown_backend_rejected(self):
        with pytest.raises(SchedulingError, match="unknown"):
            _validate_roster(("highs", "cplex"), "feasibility")

    def test_duplicate_backend_rejected(self):
        with pytest.raises(SchedulingError, match="twice"):
            _validate_roster(("bnb", "bnb"), "feasibility")

    def test_sat_with_optimization_objective_rejected(self):
        with pytest.raises(SchedulingError, match="feasibility"):
            _validate_roster(("highs", "sat"), "min_sum_t")

    def test_schedule_loop_refuses_portfolio(self, ddg, machine):
        with pytest.raises(SchedulingError, match="racing driver"):
            schedule_loop(ddg, machine, backend="portfolio")


class TestRacePortfolio:
    @pytest.mark.parametrize("jobs", [1, 4])
    def test_matches_single_backend(self, ddg, machine, jobs):
        seq = schedule_loop(ddg, machine)
        par = race_periods(
            ddg, machine, jobs=jobs, backends=("highs", "bnb", "sat")
        )
        assert par.achieved_t == seq.achieved_t == 4
        assert par.is_rate_optimal_proven == seq.is_rate_optimal_proven
        verify_schedule(par.schedule)
        assert not _no_stray_children()

    def test_portfolio_stats_shape(self, ddg, machine):
        result = race_periods(
            ddg, machine, jobs=4, backends=("highs", "bnb", "sat"),
            warmstart=False,
        )
        port = result.portfolio
        assert port is not None
        assert port["backends"] == ["highs", "bnb", "sat"]
        assert port["winner_backend"] in ("highs", "bnb", "sat")
        assert port["killed_running"] >= 0
        assert port["cancelled_queued"] >= 0

    def test_cells_are_per_period_per_backend(self, ddg, machine):
        result = race_periods(
            ddg, machine, jobs=4, backends=("highs", "bnb"),
            warmstart=False,
        )
        cells = [(a.t_period, a.backend) for a in result.attempts
                 if a.backend]
        assert len(cells) == len(set(cells))
        # The settled winning period has a verdict from one backend and
        # a loser record from the other.
        t_won = result.schedule.t_period
        statuses = {
            a.backend: a.status for a in result.attempts
            if a.t_period == t_won and a.backend
        }
        assert len(statuses) == 2
        assert sorted(statuses) == ["bnb", "highs"]

    def test_losers_marked_cancelled_not_failed(self, ddg, machine):
        result = race_periods(
            ddg, machine, jobs=4, backends=("highs", "bnb", "sat"),
            warmstart=False,
        )
        cancelled = [
            a for a in result.attempts if a.status == CANCELLED
        ]
        assert cancelled  # somebody lost
        assert all(a.failure is None for a in cancelled)

    def test_backend_portfolio_uses_default_roster(self, ddg, machine):
        result = race_periods(
            ddg, machine, jobs=2, backend="portfolio"
        )
        assert result.portfolio is not None
        assert result.portfolio["backends"] == list(
            default_portfolio("feasibility")
        )
        assert result.achieved_t == 4

    def test_single_name_roster_degenerates(self, ddg, machine):
        result = race_periods(
            ddg, machine, jobs=2, backends=("bnb",)
        )
        assert result.portfolio is None
        assert result.achieved_t == 4
        backends = {a.backend for a in result.attempts if a.backend}
        assert backends <= {"bnb"}

    def test_proof_survives_portfolio_losers(self, ddg, machine):
        # T=3 is proven infeasible by whichever backend answers first;
        # its cancelled siblings must not retract the proof.
        result = race_periods(
            ddg, machine, jobs=4, backends=("highs", "bnb", "sat"),
            warmstart=False,
        )
        assert result.achieved_t == 4
        assert result.is_rate_optimal_proven


class TestBatchPortfolio:
    @pytest.fixture
    def corpus(self, tmp_path):
        machine = powerpc604()
        rng = random.Random(11)
        config = GeneratorConfig(min_ops=2, max_ops=6)
        paths = []
        for i in range(4):
            g = random_ddg(rng, machine, config, name=f"p{i}")
            path = tmp_path / f"p{i}.ddg"
            path.write_text(serialize_ddg(g), encoding="utf-8")
            paths.append(path)
        return machine, paths

    @pytest.mark.parametrize("jobs", [1, 4])
    def test_matches_single_backend_batch(self, corpus, jobs):
        machine, paths = corpus
        single = run_batch(paths, machine, jobs=1)
        port = run_batch(
            paths, machine, jobs=jobs,
            backends=("highs", "bnb", "sat"),
        )
        assert port.failed == 0
        for a, b in zip(single.entries, port.entries):
            assert a.name == b.name
            assert (
                a.result.achieved_t == b.result.achieved_t
            ), a.name
        assert not _no_stray_children()

    def test_report_portfolio_surface(self, corpus, tmp_path):
        machine, paths = corpus
        report = run_batch(
            paths, machine, jobs=4, backends=("highs", "bnb", "sat"),
        )
        doc = report.to_json_dict()
        assert doc["report_version"] == REPORT_VERSION == 8

        agg = doc["portfolio"]
        assert agg["raced"] == len(paths)
        assert sum(agg["wins"].values()) == len(paths)
        assert set(agg["wins"]) <= {"highs", "bnb", "sat"}

        for entry in doc["entries"]:
            port = entry["portfolio"]
            assert port["backends"] == ["highs", "bnb", "sat"]
            assert port["winner_backend"] in ("highs", "bnb", "sat")
            losers = port["losers"]
            assert set(losers) | {port["winner_backend"]} == {
                "highs", "bnb", "sat"
            }
            assert any(
                "backend" in a for a in entry["attempts"]
            )

        out = tmp_path / "report.json"
        report.save_json(out)
        loaded = load_report(out)
        assert loaded.to_json_dict()["portfolio"] == agg

    def test_render_mentions_portfolio(self, corpus):
        machine, paths = corpus
        report = run_batch(
            paths, machine, jobs=1, backends=("highs", "bnb"),
        )
        assert "portfolio:" in report.render()

    def test_single_backend_report_has_no_portfolio(self, corpus):
        machine, paths = corpus
        report = run_batch(paths, machine, jobs=1)
        doc = report.to_json_dict()
        assert "portfolio" not in doc
        assert all("portfolio" not in e for e in doc["entries"])
