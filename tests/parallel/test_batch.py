"""Tests for the corpus batch runner, its JSON report and the CLI."""

import json
import pathlib
import random

import pytest

from repro.cli import main
from repro.ddg.generators import GeneratorConfig, random_ddg
from repro.machine.presets import powerpc604
from repro.parallel import collect_sources, run_batch
from repro.parallel.batch import REPORT_VERSION

CORPUS_DIR = pathlib.Path(__file__).resolve().parent.parent.parent / "corpus"
FILES = sorted(CORPUS_DIR.glob("*.ddg"))
SUBSET = FILES[:6]


@pytest.fixture(scope="module")
def machine():
    return powerpc604()


@pytest.fixture(scope="module")
def report(machine):
    return run_batch(SUBSET, machine, jobs=2, time_limit_per_t=10.0)


class TestRunBatch:
    def test_deterministic_input_ordering(self, report):
        assert [e.source for e in report.entries] == [
            str(p) for p in SUBSET
        ]

    def test_all_scheduled(self, report):
        assert report.scheduled == len(SUBSET)
        assert report.failed == 0
        for entry in report.entries:
            assert entry.result.schedule is not None
            assert entry.result.achieved_t >= entry.result.bounds.t_lb

    def test_matches_sequential_jobs1(self, machine, report):
        seq = run_batch(SUBSET, machine, jobs=1, time_limit_per_t=10.0)
        for par_entry, seq_entry in zip(report.entries, seq.entries):
            assert par_entry.name == seq_entry.name
            assert (
                par_entry.result.achieved_t
                == seq_entry.result.achieved_t
            )
            assert (
                par_entry.result.is_rate_optimal_proven
                == seq_entry.result.is_rate_optimal_proven
            )

    def test_directory_expansion(self, machine):
        sources = collect_sources([CORPUS_DIR])
        assert sources == FILES

    def test_in_memory_ddgs(self, machine):
        rng = random.Random(7)
        loops = [
            random_ddg(rng, machine, GeneratorConfig(min_ops=2, max_ops=6),
                       name=f"mem{i}")
            for i in range(3)
        ]
        rep = run_batch(loops, machine, jobs=1)
        assert [e.name for e in rep.entries] == ["mem0", "mem1", "mem2"]
        assert all(e.source == "<memory>" for e in rep.entries)

    def test_bad_loop_isolated(self, machine, tmp_path):
        good = SUBSET[0]
        bad = tmp_path / "broken.ddg"
        bad.write_text("op x no_such_class\n", encoding="utf-8")
        rep = run_batch([good, bad], machine, jobs=2)
        assert rep.failed == 1
        assert rep.entries[0].error is None
        assert rep.entries[1].error is not None
        assert "no_such_class" in rep.entries[1].error

    def test_bad_jobs_rejected(self, machine):
        with pytest.raises(ValueError, match="jobs must be >= 1"):
            run_batch(SUBSET, machine, jobs=0)


class TestJsonReport:
    def test_schema(self, report):
        doc = json.loads(report.to_json())
        assert doc["report_version"] == REPORT_VERSION
        assert doc["machine"] == "powerpc604"
        assert doc["loops"] == len(SUBSET)
        assert doc["scheduled"] == len(SUBSET)
        entry = doc["entries"][0]
        for key in (
            "name", "source", "num_ops", "t_dep", "t_res", "t_lb",
            "achieved_t", "delta_from_lb", "is_rate_optimal_proven",
            "seconds", "attempts",
        ):
            assert key in entry, key
        attempt = entry["attempts"][0]
        assert set(attempt) == {
            "t", "status", "backend", "seconds", "nodes", "repaired",
            "model", "bound", "gap", "warm_started",
        }
        warmstart = entry["warmstart"]
        for key in (
            "enabled", "heuristic_ii", "heuristic_mii",
            "heuristic_seconds", "placements", "ilp_solves",
            "skipped_all_ilp",
        ):
            assert key in warmstart, key
        # Heuristic-settled attempts carry no model; check the stats
        # schema on any attempt that actually built an ILP.
        solved = [
            a
            for e in doc["entries"]
            for a in e["attempts"]
            if a["status"] not in ("heuristic", "modulo_infeasible")
        ]
        for model in (a["model"] for a in solved):
            for key in (
                "variables", "constraints", "nonzeros",
                "eliminated_variables", "eliminated_constraints",
                "eliminated_nonzeros", "presolve_seconds",
                "build_seconds", "lower_seconds", "solve_seconds",
                "total_seconds",
            ):
                assert key in model, key

    def test_delta_consistency(self, report):
        doc = report.to_json_dict()
        for entry in doc["entries"]:
            assert (
                entry["delta_from_lb"]
                == entry["achieved_t"] - entry["t_lb"]
            )
            assert entry["delta_from_lb"] >= 0

    def test_render_mentions_every_loop(self, report):
        text = report.render()
        for entry in report.entries:
            assert entry.name in text


class TestLostCellProvenance:
    """v8: degraded entries carry taxonomy for every lost period cell."""

    def _result(self, degraded):
        from repro.core.bounds import LowerBounds
        from repro.core.scheduler import ScheduleAttempt, SchedulingResult
        from repro.supervision.records import CRASH, FailureRecord

        attempts = [
            ScheduleAttempt(t_period=4, status="crash", backend="highs",
                            failure=FailureRecord(
                                kind=CRASH, attempt=2, retries=1,
                                elapsed=0.5, detail="exit code 70")),
            ScheduleAttempt(t_period=4, status="cancelled", backend="sat"),
            ScheduleAttempt(t_period=5, status="optimal", backend="bnb"),
        ]
        return SchedulingResult(
            loop_name="ex", bounds=LowerBounds(t_dep=4, t_res=3),
            attempts=attempts, degraded=degraded,
        )

    def test_lost_cells_cover_failures_and_cancellations(self):
        lost = self._result(degraded=True).lost_cells()
        assert lost == [
            {"t": 4, "backend": "highs", "kind": "crash",
             "detail": "exit code 70"},
            {"t": 4, "backend": "sat", "kind": "cancelled", "detail": ""},
        ]

    def test_degraded_entry_emits_lost_cells(self):
        from repro.parallel.batch import BatchEntry

        entry = BatchEntry(name="ex", source="<memory>", num_ops=3,
                           result=self._result(degraded=True))
        doc = entry.to_json_dict()
        assert doc["degraded"] is True
        assert [c["kind"] for c in doc["lost_cells"]] == [
            "crash", "cancelled",
        ]
        assert json.loads(json.dumps(doc))["lost_cells"] == doc["lost_cells"]

    def test_clean_entry_omits_lost_cells(self):
        from repro.parallel.batch import BatchEntry

        entry = BatchEntry(name="ex", source="<memory>", num_ops=3,
                           result=self._result(degraded=False))
        assert "lost_cells" not in entry.to_json_dict()


class TestBatchCli:
    def test_batch_subcommand(self, tmp_path, capsys):
        out = tmp_path / "report.json"
        code = main([
            "batch", str(SUBSET[0]), str(SUBSET[1]),
            "--jobs", "2", "--time-limit", "10", "--out", str(out),
        ])
        assert code == 0
        doc = json.loads(out.read_text(encoding="utf-8"))
        assert doc["loops"] == 2 and doc["scheduled"] == 2
        captured = capsys.readouterr().out
        assert "2 loop(s): 2 scheduled" in captured

    def test_batch_json_to_stdout(self, capsys):
        code = main([
            "batch", str(SUBSET[0]), "--jobs", "1", "--json",
            "--time-limit", "10",
        ])
        assert code == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["loops"] == 1

    def test_batch_directory(self, tmp_path, capsys):
        loop_dir = tmp_path / "loops"
        loop_dir.mkdir()
        for path in SUBSET[:2]:
            (loop_dir / path.name).write_text(
                path.read_text(encoding="utf-8"), encoding="utf-8"
            )
        code = main(["batch", str(loop_dir), "--jobs", "1",
                     "--time-limit", "10"])
        assert code == 0
        assert "2 loop(s)" in capsys.readouterr().out

    def test_race_subcommand(self, capsys):
        code = main([
            "race", "--kernel", "motivating", "--machine", "motivating",
            "--jobs", "2",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "-> T=4" in out
        assert "T=3: infeasible" in out


class TestStoreReporting:
    @pytest.fixture()
    def warm_report(self, machine, tmp_path):
        from repro.store.tiering import clear_tiers

        store = tmp_path / "store"
        clear_tiers()
        cold = run_batch(SUBSET[:3], machine, jobs=1,
                         time_limit_per_t=10.0, store=store)
        clear_tiers()
        warm = run_batch(SUBSET[:3], machine, jobs=1,
                         time_limit_per_t=10.0, store=store)
        clear_tiers()
        return cold, warm

    def test_v5_entries_carry_store_and_schedule(self, warm_report):
        cold, warm = warm_report
        for report, expect_hit in ((cold, False), (warm, True)):
            doc = report.to_json_dict()
            assert doc["report_version"] == REPORT_VERSION
            for entry in doc["entries"]:
                assert "schedule" in entry
                store = entry["store"]
                assert set(store) == {
                    "hit", "tier", "verified", "evicted", "published",
                    "seconds",
                }
                assert store["hit"] is expect_hit

    def test_store_summary_counts_hits(self, warm_report):
        cold, warm = warm_report
        assert cold.store_hits == 0
        assert cold.store_summary()["published"] == 3
        summary = warm.store_summary()
        assert summary["consulted"] == 3
        assert summary["hits"] == 3
        assert summary["published"] == 0
        assert warm.store_hits == 3

    def test_cache_summary_present_and_rendered(self, warm_report):
        _, warm = warm_report
        summary = warm.cache_summary()
        assert summary is not None and summary["processes"] >= 1
        text = warm.render()
        assert "3 disk" in text
        assert "lru hits across" in text

    def test_no_store_no_summary(self, report):
        assert report.store_summary() is None
        assert report.store_hits == 0


class TestLoaderCompat:
    def test_current_version_round_trips(self, report, tmp_path):
        from repro.parallel import load_report

        path = tmp_path / "report.json"
        report.save_json(path)
        loaded = load_report(path)
        assert loaded.version == REPORT_VERSION
        assert loaded.scheduled == report.scheduled
        assert loaded.failed == 0
        assert [e.name for e in loaded.entries] == [
            e.name for e in report.entries
        ]
        # Raw entries still feed the render path.
        assert loaded.entries[0].name in loaded.render()

    def _downgrade(self, report, version):
        doc = report.to_json_dict()
        doc["report_version"] = version
        doc.pop("store", None)
        doc.pop("cache", None)
        for entry in doc["entries"]:
            entry.pop("store", None)
            entry.pop("schedule", None)
        return doc

    @pytest.mark.parametrize("version", [3, 4])
    def test_pre_v5_documents_load(self, report, version):
        from repro.parallel.batch import BatchReport

        doc = self._downgrade(report, version)
        loaded = BatchReport.from_json_dict(doc)
        assert loaded.version == version
        assert loaded.scheduled == report.scheduled
        assert loaded.store_summary() is None
        assert loaded.cache_summary() is None
        # table5 runs off raw entries regardless of version.
        from repro.experiments.table5 import run_table5_from_batch

        table = run_table5_from_batch(loaded)
        assert table.total_loops == len(SUBSET)

    def test_too_old_document_rejected(self, report):
        from repro.parallel.batch import BatchReport

        doc = self._downgrade(report, 2)
        with pytest.raises(ValueError, match="too old"):
            BatchReport.from_json_dict(doc)


class TestExperimentIntegration:
    def test_table4_via_batch_runner(self, machine):
        from repro.ddg.generators import suite
        from repro.experiments.table4 import run_table4

        loops = suite(6, machine, seed=11)
        seq = run_table4(loops, machine, time_limit_per_t=10.0)
        par = run_table4(loops, machine, time_limit_per_t=10.0, jobs=2)
        assert {d: b.loops for d, b in par.buckets.items()} == {
            d: b.loops for d, b in seq.buckets.items()
        }
        assert par.unscheduled == seq.unscheduled

    def test_table5_from_batch_report(self, report):
        from repro.experiments.table5 import run_table5_from_batch

        table = run_table5_from_batch(report)
        assert table.total_loops == len(SUBSET)
        assert table.scheduled == len(SUBSET)
        assert "Table 5" in table.render()
