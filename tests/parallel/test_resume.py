"""Checkpoint/resume for batch runs, and healthy-run equivalence.

The acceptance bar: a batch killed mid-corpus and resumed from its
journal must produce a report equivalent to an uninterrupted run (same
per-loop outcomes; wall-clock timings excluded).
"""

import json
import random

import pytest

from repro.cli import main
from repro.ddg.builders import serialize_ddg
from repro.ddg.generators import GeneratorConfig, random_ddg
from repro.machine.presets import powerpc604
from repro.parallel import run_batch
from repro.supervision import JournalError, faults
from repro.supervision.faults import ENV_VAR
from repro.supervision.journal import read_journal
from repro.supervision.records import SupervisionPolicy

#: JSON keys that hold wall-clock measurements, not outcomes.
TIME_KEYS = frozenset({
    "seconds", "total_seconds", "presolve_seconds", "build_seconds",
    "lower_seconds", "solve_seconds", "heuristic_seconds", "elapsed",
})


def scrubbed(doc):
    """Deep-copy ``doc`` with every timing field zeroed.

    The report-level ``cache`` aggregate is dropped too: LRU hit/miss
    counters are cumulative per process, so they legitimately differ
    between a resumed run (fewer loops scheduled) and a fresh one.
    """
    if isinstance(doc, dict):
        return {
            key: (0 if key in TIME_KEYS else scrubbed(value))
            for key, value in doc.items()
            if key != "cache"
        }
    if isinstance(doc, list):
        return [scrubbed(item) for item in doc]
    return doc


@pytest.fixture(autouse=True)
def _clean_fault_state(monkeypatch):
    monkeypatch.delenv(ENV_VAR, raising=False)
    faults.reset()
    yield
    faults.reset()


@pytest.fixture
def machine():
    return powerpc604()


@pytest.fixture
def corpus(tmp_path, machine):
    rng = random.Random(5)
    config = GeneratorConfig(min_ops=2, max_ops=6)
    paths = []
    for i in range(4):
        ddg = random_ddg(rng, machine, config, name=f"t{i}")
        path = tmp_path / f"t{i}.ddg"
        path.write_text(serialize_ddg(ddg), encoding="utf-8")
        paths.append(path)
    return paths


class TestJournalWriting:
    def test_journal_records_every_loop(self, corpus, machine, tmp_path):
        journal = tmp_path / "run.jsonl"
        run_batch(corpus, machine, jobs=1, time_limit_per_t=10.0,
                  journal=journal)
        header, entries = read_journal(journal)
        assert header["machine"] == machine.name
        assert header["loops"] == len(corpus)
        assert len(entries) == len(corpus)

    def test_journal_digest_guards_settings(self, corpus, machine,
                                            tmp_path):
        journal = tmp_path / "run.jsonl"
        run_batch(corpus[:1], machine, jobs=1, time_limit_per_t=10.0,
                  journal=journal)
        with pytest.raises(JournalError, match="different settings"):
            run_batch(corpus[:1], machine, jobs=1, time_limit_per_t=5.0,
                      journal=journal)


class TestResume:
    def test_resume_reruns_only_unfinished_loops(
        self, corpus, machine, tmp_path
    ):
        journal = tmp_path / "run.jsonl"
        # Phase 1: a "killed" run that only covered half the corpus.
        partial = run_batch(corpus[:2], machine, jobs=1,
                            time_limit_per_t=10.0, journal=journal)
        # Phase 2: resume over the full corpus.
        resumed = run_batch(corpus, machine, jobs=1,
                            time_limit_per_t=10.0, resume=journal)
        # Carried entries are byte-identical to what phase 1 recorded
        # (timings included: they were not re-run).
        for old, new in zip(partial.entries, resumed.entries[:2]):
            assert new.raw is not None, "entry should be carried over"
            assert new.to_json_dict() == old.to_json_dict()
        # And the full report is outcome-equivalent to a fresh run.
        fresh = run_batch(corpus, machine, jobs=1, time_limit_per_t=10.0)
        assert scrubbed(resumed.to_json_dict()) == scrubbed(
            fresh.to_json_dict()
        )

    def test_failed_entries_are_retried_on_resume(
        self, corpus, machine, tmp_path, monkeypatch
    ):
        journal = tmp_path / "run.jsonl"
        monkeypatch.setenv(ENV_VAR, "crash@batch:loop=t2")
        wounded = run_batch(
            corpus, machine, jobs=2, time_limit_per_t=10.0,
            journal=journal,
            policy=SupervisionPolicy(max_retries=0),
        )
        assert wounded.failed == 1
        monkeypatch.delenv(ENV_VAR)
        faults.reset()
        healed = run_batch(corpus, machine, jobs=1,
                           time_limit_per_t=10.0, resume=journal)
        assert healed.failed == 0
        assert healed.scheduled == len(corpus)
        # The journal now carries the successful re-run (later wins).
        _, entries = read_journal(journal)
        (t2_key,) = [k for k in entries if k.endswith("::t2")]
        assert entries[t2_key]["entry"].get("error") is None
        # Outcome-equivalent to a run that never saw the fault.
        fresh = run_batch(corpus, machine, jobs=1, time_limit_per_t=10.0)
        assert scrubbed(healed.to_json_dict()) == scrubbed(
            fresh.to_json_dict()
        )

    def test_resume_against_changed_settings_refused(
        self, corpus, machine, tmp_path
    ):
        journal = tmp_path / "run.jsonl"
        run_batch(corpus[:1], machine, jobs=1, time_limit_per_t=10.0,
                  journal=journal)
        with pytest.raises(JournalError, match="different settings"):
            run_batch(corpus[:1], machine, jobs=1, time_limit_per_t=5.0,
                      resume=journal)

    def test_truncated_journal_line_reruns_that_loop(
        self, corpus, machine, tmp_path
    ):
        journal = tmp_path / "run.jsonl"
        run_batch(corpus[:2], machine, jobs=1, time_limit_per_t=10.0,
                  journal=journal)
        # Tear the last record mid-line, as a kill mid-append would.
        text = journal.read_text(encoding="utf-8")
        journal.write_text(text[:-40], encoding="utf-8")
        resumed = run_batch(corpus[:2], machine, jobs=1,
                            time_limit_per_t=10.0, resume=journal)
        assert resumed.scheduled == 2
        carried = [e for e in resumed.entries if e.raw is not None]
        assert len(carried) == 1  # only the intact record was reused


class TestHealthyRunEquivalence:
    def test_supervision_guards_do_not_change_results(
        self, corpus, machine
    ):
        relaxed = run_batch(corpus, machine, jobs=2,
                            time_limit_per_t=10.0)
        guarded = run_batch(
            corpus, machine, jobs=2, time_limit_per_t=10.0,
            policy=SupervisionPolicy(deadline=120.0, grace=10.0,
                                     max_retries=1),
        )
        assert scrubbed(relaxed.to_json_dict()) == scrubbed(
            guarded.to_json_dict()
        )

    def test_supervised_sequential_matches_inline(self, machine, corpus):
        from repro.core import schedule_loop
        from repro.ddg.builders import parse_ddg

        ddg = parse_ddg(corpus[0].read_text(encoding="utf-8"))
        inline = schedule_loop(ddg, machine, time_limit_per_t=10.0)
        supervised = schedule_loop(
            ddg, machine, time_limit_per_t=10.0,
            supervision=SupervisionPolicy(deadline=120.0),
        )
        assert (supervised.schedule.t_period
                == inline.schedule.t_period)
        assert (supervised.is_rate_optimal_proven
                == inline.is_rate_optimal_proven)
        assert [a.status for a in supervised.attempts] == [
            a.status for a in inline.attempts
        ]


class TestLoaderDiagnostics:
    def test_unreadable_corpus_file_isolated(self, corpus, machine,
                                             tmp_path):
        bad = tmp_path / "garbled.ddg"
        bad.write_bytes(b"\xff\xfe\x00garbage")
        report = run_batch([corpus[0], bad], machine, jobs=1,
                           time_limit_per_t=10.0)
        assert report.failed == 1
        entry = report.entries[1]
        assert "cannot read corpus file" in entry.error
        assert "garbled" in entry.error
        assert str(bad) in entry.error

    def test_parse_error_names_loop_and_path(self, corpus, machine,
                                             tmp_path):
        bad = tmp_path / "broken.ddg"
        bad.write_text("op x no_such_class\n", encoding="utf-8")
        report = run_batch([bad], machine, jobs=1, time_limit_per_t=10.0)
        entry = report.entries[0]
        assert entry.error is not None
        assert "'broken'" in entry.error
        assert str(bad) in entry.error

    def test_cli_rejects_unparsable_ddg(self, tmp_path):
        bad = tmp_path / "bad.ddg"
        bad.write_text("not a ddg", encoding="utf-8")
        with pytest.raises(SystemExit, match="cannot parse DDG file"):
            main(["schedule", "--ddg", str(bad)])

    def test_cli_rejects_bad_machine_file(self, tmp_path):
        bad = tmp_path / "bad.machine"
        bad.write_text("frobnicate everything", encoding="utf-8")
        with pytest.raises(SystemExit, match="cannot load machine file"):
            main(["schedule", "--kernel", "motivating",
                  "--machine-file", str(bad)])


class TestBatchCliJournal:
    def test_journal_and_resume_flags(self, corpus, machine, tmp_path,
                                      capsys):
        journal = tmp_path / "run.jsonl"
        out = tmp_path / "report.json"
        code = main([
            "batch", str(corpus[0]), str(corpus[1]),
            "--machine", machine.name, "--jobs", "1",
            "--time-limit", "10", "--journal", str(journal),
        ])
        assert code == 0
        assert journal.exists()
        code = main([
            "batch", str(corpus[0]), str(corpus[1]), str(corpus[2]),
            "--machine", machine.name, "--jobs", "1",
            "--time-limit", "10", "--resume", str(journal),
            "--out", str(out),
        ])
        assert code == 0
        capsys.readouterr()
        doc = json.loads(out.read_text(encoding="utf-8"))
        assert doc["loops"] == 3
        assert doc["scheduled"] == 3
        _, entries = read_journal(journal)
        assert len(entries) == 3

    def test_supervision_flags_accepted(self, corpus, machine, capsys):
        code = main([
            "batch", str(corpus[0]), "--machine", machine.name,
            "--jobs", "1", "--time-limit", "10",
            "--deadline", "60", "--retries", "1", "--memory-mb", "2048",
        ])
        assert code == 0
        assert "1 loop(s): 1 scheduled" in capsys.readouterr().out
