"""Tests for the loop DSL tokenizer."""

import pytest

from repro.frontend.errors import FrontendError
from repro.frontend import lexer


def kinds(source):
    return [t.kind for t in lexer.tokenize(source) if t.kind != lexer.END]


class TestTokens:
    def test_header(self):
        assert kinds("for i:") == [
            lexer.FOR, lexer.NAME, lexer.COLON, lexer.NEWLINE,
        ]

    def test_assignment(self):
        tokens = lexer.tokenize("x = a[i] + 2.5")
        texts = [t.text for t in tokens[:-1]]
        assert texts == ["x", "=", "a", "[", "i", "]", "+", "2.5", "\n"]

    def test_operators(self):
        ops = [t for t in lexer.tokenize("a*b/c-d+e") if t.kind == lexer.OP]
        assert [t.text for t in ops] == ["*", "/", "-", "+"]

    def test_comments_stripped(self):
        assert kinds("x = 1 # note") == [
            lexer.NAME, lexer.EQUALS, lexer.NUMBER, lexer.NEWLINE,
        ]

    def test_underscore_names(self):
        token = lexer.tokenize("_tmp_1 = 0")[0]
        assert token.kind == lexer.NAME
        assert token.text == "_tmp_1"

    def test_for_keyword_only_exact(self):
        token = lexer.tokenize("fortune = 1")[0]
        assert token.kind == lexer.NAME

    def test_numbers(self):
        tokens = [t for t in lexer.tokenize("a = 12 + 3.75")
                  if t.kind == lexer.NUMBER]
        assert [t.text for t in tokens] == ["12", "3.75"]

    def test_line_and_column_tracked(self):
        tokens = lexer.tokenize("a = 1\nbb = 2")
        second_line = [t for t in tokens if t.line == 2]
        assert second_line[0].text == "bb"
        assert second_line[0].column == 1

    def test_bad_character(self):
        with pytest.raises(FrontendError, match="line 1.*'@'"):
            lexer.tokenize("x = a @ b")

    def test_blank_lines_produce_no_tokens(self):
        assert kinds("\n\n") == []
