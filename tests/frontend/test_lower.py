"""Tests for AST -> DDG lowering (def-use + memory dependences)."""

import pytest

from repro.core import schedule_loop, verify_schedule
from repro.ddg.analysis import t_dep
from repro.frontend import FrontendError, OpClassMap, compile_loop
from repro.machine.presets import clean_machine, powerpc604


def deps_of(ddg):
    return {
        (ddg.ops[d.src].name, ddg.ops[d.dst].name, d.distance, d.kind)
        for d in ddg.deps
    }


class TestInstructionSelection:
    def test_ops_per_construct(self):
        g = compile_loop("for i:\n    c[i] = a[i] * b[i] + 2\n")
        classes = sorted(op.op_class for op in g.ops)
        assert classes == ["fadd", "fmul", "load", "load", "store"]

    def test_operator_classes(self):
        g = compile_loop("for i:\n    x = a[i] / b[i] - c[i]\n")
        assert {op.op_class for op in g.ops} == {"load", "fdiv", "fadd"}

    def test_custom_class_map(self):
        classes = OpClassMap(add="add", sub="add", mul="mul", div="div")
        g = compile_loop("for i:\n    c[i] = a[i] * 2 + 1\n",
                         classes=classes)
        assert {op.op_class for op in g.ops} == {"load", "mul", "add",
                                                 "store"}

    def test_constants_generate_nothing(self):
        g = compile_loop("for i:\n    c[i] = 1 + 2\n")
        # one add (constants fold into operands), one store
        assert g.num_ops == 2

    def test_pure_copy_generates_nothing(self):
        g = compile_loop("for i:\n    x = a[i]\n    c[i] = x\n")
        assert sorted(op.op_class for op in g.ops) == ["load", "store"]

    def test_empty_lowering_rejected(self):
        with pytest.raises(FrontendError, match="no operations"):
            compile_loop("for i:\n    x = y\n")


class TestScalarDependences:
    def test_straightline_flow(self):
        g = compile_loop("for i:\n    t = a[i] + 1\n    c[i] = t * 2\n")
        assert ("t0", "t1", 0, "flow") in deps_of(g)

    def test_reduction_self_loop(self):
        g = compile_loop("for i:\n    s = s + a[i]\n    c[i] = s\n")
        assert ("t0", "t0", 1, "flow") in deps_of(g)

    def test_cross_statement_recurrence(self):
        """u reads v from the previous iteration, v is defined later."""
        g = compile_loop(
            "for i:\n    u = v * 2\n    v = u + a[i]\n    c[i] = v\n"
        )
        edges = deps_of(g)
        assert ("t0", "t1", 0, "flow") in edges  # u -> v same iter
        assert ("t1", "t0", 1, "flow") in edges  # v -> u next iter

    def test_invariant_scalar_no_dep(self):
        g = compile_loop("for i:\n    c[i] = a[i] * alpha\n")
        assert all(d.distance == 0 for d in g.deps)
        assert g.num_deps == 2  # load->mul, mul->store

    def test_read_after_redefinition_uses_same_iteration(self):
        g = compile_loop(
            "for i:\n    t = a[i] + 1\n    u = t * 2\n    c[i] = u\n"
        )
        edges = deps_of(g)
        assert ("t0", "t1", 0, "flow") in edges
        assert not any(d.distance == 1 for d in g.deps)

    def test_copy_aliases_previous_iteration_value(self):
        """x = s before s's def: x holds the previous iteration's s."""
        g = compile_loop(
            "for i:\n    x = s\n    s = a[i] + s\n    c[i] = x\n"
        )
        # store of x depends on s's def at distance 1.
        edges = deps_of(g)
        assert ("t0", "st_c_0", 1, "flow") in edges


class TestMemoryDependences:
    def test_flow_recurrence(self):
        g = compile_loop("for i:\n    d[i+1] = d[i] * 0.5\n")
        assert ("st_d_0", "ld_d_0", 1, "mem-flow") in deps_of(g)

    def test_same_iteration_flow(self):
        g = compile_loop("for i:\n    a[i] = b[i] + 1\n    c[i] = a[i]\n")
        # The load of a[i] is the first (and only) ld_a_* op.
        assert ("st_a_0", "ld_a_0", 0, "mem-flow") in deps_of(g)

    def test_anti_dependence(self):
        g = compile_loop("for i:\n    x = a[i+1] * 2\n    a[i] = x\n")
        # read a[i+1] in iter j, written in iter j+1: anti distance 1.
        assert ("ld_a_0", "st_a_0", 1, "mem-anti") in deps_of(g)

    def test_anti_dependence_latency_one(self):
        g = compile_loop("for i:\n    x = a[i+1] * 2\n    a[i] = x\n")
        anti = [d for d in g.deps if d.kind == "mem-anti"]
        assert anti and all(d.latency == 1 for d in anti)

    def test_output_dependence(self):
        g = compile_loop("for i:\n    a[i+1] = b[i]\n    a[i] = c[i]\n")
        edges = deps_of(g)
        assert ("st_a_0", "st_a_1", 1, "mem-output") in edges

    def test_unrelated_arrays_independent(self):
        g = compile_loop("for i:\n    a[i] = x[i]\n    b[i] = y[i]\n")
        assert not any(d.kind.startswith("mem-") for d in g.deps)

    def test_load_load_no_dep(self):
        g = compile_loop("for i:\n    c[i] = a[i] + a[i-1]\n")
        assert not any(d.kind.startswith("mem-") for d in g.deps)

    def test_far_distance(self):
        g = compile_loop("for i:\n    d[i+3] = d[i] + 1\n")
        flow = [d for d in g.deps if d.kind == "mem-flow"]
        assert flow[0].distance == 3


class TestEndToEnd:
    def test_first_sum_t_dep_through_memory(self):
        """x[i] = x[i-1] + y[i] carried through memory costs the full
        store (1) + reload (2) + add (3) round trip: T_dep = 6.  (The
        hand-built LL11 kernel forwards through a register and gets 3 —
        the front end performs no store-to-load forwarding.)"""
        machine = powerpc604()
        g = compile_loop("for i:\n    x[i] = x[i-1] + y[i]\n")
        assert t_dep(g, machine) == 6

    def test_register_carried_form_is_faster(self):
        """Rewriting the recurrence through a scalar recovers T_dep=3."""
        machine = powerpc604()
        g = compile_loop("for i:\n    s = s + y[i]\n    x[i] = s\n")
        assert t_dep(g, machine) == 3

    def test_compiled_loops_schedule_and_verify(self):
        machine = powerpc604()
        sources = [
            "for i:\n    s = s + a[i] * b[i]\n",
            "for i:\n    y[i] = y[i] + alpha * x[i]\n",
            "for i:\n    d[i+1] = (d[i] + e[i]) * 0.5\n",
            "for i:\n    t = a[i] - b[i-2]\n    c[i] = t / 3\n",
        ]
        for source in sources:
            g = compile_loop(source)
            result = schedule_loop(g, machine)
            assert result.schedule is not None, source
            verify_schedule(result.schedule)

    def test_integer_map_on_clean_machine(self):
        machine = clean_machine()
        classes = OpClassMap(add="add", sub="add", mul="mul", div="mul")
        g = compile_loop("for i:\n    c[i] = a[i] * 3 + b[i]\n",
                         classes=classes)
        result = schedule_loop(g, machine)
        assert result.schedule is not None
        verify_schedule(result.schedule)
