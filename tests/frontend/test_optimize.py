"""Tests for load CSE and store-to-load forwarding."""

import pytest

from repro.core import schedule_loop, verify_schedule
from repro.ddg.analysis import t_dep
from repro.frontend import compile_loop
from repro.frontend.optimize import forward_stores, optimize
from repro.machine.presets import powerpc604


class TestLoadCse:
    def test_duplicate_loads_collapse(self):
        g = compile_loop("for i:\n    c[i] = a[i] * a[i]\n")
        loads = [op for op in g.ops if op.op_class == "load"]
        assert len(loads) == 1

    def test_different_offsets_stay(self):
        g = compile_loop("for i:\n    c[i] = a[i] * a[i-1]\n")
        loads = [op for op in g.ops if op.op_class == "load"]
        assert len(loads) == 2

    def test_store_invalidates_cache(self):
        g = compile_loop(
            "for i:\n    x = a[i]\n    a[i] = x + 1\n    c[i] = a[i]\n"
        )
        loads = [op for op in g.ops if op.op_class == "load"]
        assert len(loads) == 2  # reload after the store

    def test_cse_can_be_disabled(self):
        g = compile_loop("for i:\n    c[i] = a[i] * a[i]\n", cse=False)
        loads = [op for op in g.ops if op.op_class == "load"]
        assert len(loads) == 2

    def test_cross_statement_reuse(self):
        g = compile_loop(
            "for i:\n    x = a[i] + 1\n    y = a[i] + 2\n    c[i] = x * y\n"
        )
        loads = [op for op in g.ops if op.op_class == "load"]
        assert len(loads) == 1


class TestForwarding:
    def test_memory_recurrence_becomes_register_recurrence(self):
        machine = powerpc604()
        g = compile_loop("for i:\n    x[i] = x[i-1] + y[i]\n")
        assert t_dep(g, machine) == 6  # store + reload + add
        forwarded = optimize(g)
        assert t_dep(forwarded, machine) == 3  # just the add

    def test_forward_flag_on_compile(self):
        machine = powerpc604()
        g = compile_loop("for i:\n    x[i] = x[i-1] + y[i]\n",
                         forward=True)
        assert t_dep(g, machine) == 3

    def test_dead_load_removed(self):
        g = compile_loop("for i:\n    x[i] = x[i-1] + y[i]\n")
        forwarded = optimize(g)
        load_names = [op.name for op in forwarded.ops
                      if op.op_class == "load"]
        assert all(not name.startswith("ld_x") for name in load_names)

    def test_store_kept_for_memory_state(self):
        forwarded = optimize(
            compile_loop("for i:\n    x[i] = x[i-1] + y[i]\n")
        )
        assert any(op.op_class == "store" for op in forwarded.ops)

    def test_same_iteration_forwarding(self):
        """a[i] written then read in one iteration forwards at m=0."""
        g = compile_loop(
            "for i:\n    a[i] = b[i] + 1\n    c[i] = a[i] * 2\n"
        )
        forwarded = optimize(g)
        # The reload of a[i] disappears; the add feeds the mul directly.
        loads = [op.name for op in forwarded.ops if op.op_class == "load"]
        assert loads == ["ld_b_0"]
        edges = {
            (forwarded.ops[d.src].name, forwarded.ops[d.dst].name,
             d.distance)
            for d in forwarded.deps if d.kind == "flow"
        }
        assert ("t0", "t1", 0) in edges

    def test_multiple_writers_not_forwarded(self):
        """Two stores reaching one load leave it alone (safety)."""
        g = compile_loop(
            "for i:\n    d[i+1] = a[i]\n    d[i+2] = b[i]\n"
            "    c[i] = d[i]\n"
        )
        forwarded = optimize(g)
        loads = [op.name for op in forwarded.ops if op.op_class == "load"]
        assert any(name.startswith("ld_d") for name in loads)

    def test_forwarded_loops_schedule_and_verify(self):
        machine = powerpc604()
        sources = [
            "for i:\n    x[i] = x[i-1] + y[i]\n",
            "for i:\n    a[i] = b[i] + 1\n    c[i] = a[i] * 2\n",
            "for i:\n    d[i+1] = (d[i] + e[i]) * 0.5\n",
        ]
        for source in sources:
            plain = compile_loop(source)
            forwarded = compile_loop(source, forward=True)
            result_plain = schedule_loop(plain, machine)
            result_fwd = schedule_loop(forwarded, machine)
            verify_schedule(result_fwd.schedule)
            # Forwarding never slows the loop down.
            assert result_fwd.achieved_t <= result_plain.achieved_t

    def test_no_op_when_nothing_to_forward(self):
        g = compile_loop("for i:\n    c[i] = a[i] + b[i]\n")
        assert forward_stores(g).num_ops == g.num_ops
