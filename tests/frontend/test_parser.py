"""Tests for the loop DSL parser."""

import pytest

from repro.frontend.ast_nodes import ArrayRef, BinOp, Const, ScalarRef
from repro.frontend.errors import FrontendError
from repro.frontend.parser import parse_loop


class TestStructure:
    def test_header_and_body(self):
        ast = parse_loop("for i:\n    x = 1\n    y = 2\n", name="demo")
        assert ast.induction == "i"
        assert ast.name == "demo"
        assert len(ast.body) == 2

    def test_missing_for(self):
        with pytest.raises(FrontendError, match="expected 'for'"):
            parse_loop("x = 1")

    def test_missing_colon(self):
        with pytest.raises(FrontendError, match="expected ':'"):
            parse_loop("for i\n x = 1")

    def test_empty_body(self):
        with pytest.raises(FrontendError, match="empty"):
            parse_loop("for i:\n")

    def test_lines_tracked(self):
        ast = parse_loop("for i:\n\n    x = 1\n")
        assert ast.body[0].line == 3


class TestTargets:
    def test_scalar_target(self):
        ast = parse_loop("for i:\n x = 1")
        assert ast.body[0].target == ScalarRef("x")

    def test_array_target(self):
        ast = parse_loop("for i:\n a[i+2] = 1")
        assert ast.body[0].target == ArrayRef("a", 2)

    def test_negative_offset(self):
        ast = parse_loop("for i:\n a[i-3] = 1")
        assert ast.body[0].target == ArrayRef("a", -3)

    def test_plain_induction_index(self):
        ast = parse_loop("for i:\n a[i] = 1")
        assert ast.body[0].target == ArrayRef("a", 0)

    def test_wrong_index_variable(self):
        with pytest.raises(FrontendError, match="induction variable"):
            parse_loop("for i:\n a[j] = 1")

    def test_constant_index_rejected(self):
        with pytest.raises(FrontendError, match="affine"):
            parse_loop("for i:\n a[3] = 1")

    def test_fractional_offset_rejected(self):
        with pytest.raises(FrontendError, match="integral"):
            parse_loop("for i:\n a[i+1.5] = 1")


class TestExpressions:
    def test_precedence(self):
        ast = parse_loop("for i:\n x = a + b * c")
        expr = ast.body[0].expr
        assert isinstance(expr, BinOp) and expr.op == "+"
        assert isinstance(expr.right, BinOp) and expr.right.op == "*"

    def test_left_associativity(self):
        ast = parse_loop("for i:\n x = a - b - c")
        expr = ast.body[0].expr
        assert expr.op == "-"
        assert isinstance(expr.left, BinOp)
        assert expr.left.op == "-"

    def test_parentheses(self):
        ast = parse_loop("for i:\n x = (a + b) * c")
        expr = ast.body[0].expr
        assert expr.op == "*"
        assert isinstance(expr.left, BinOp) and expr.left.op == "+"

    def test_unary_minus_constant_folds(self):
        ast = parse_loop("for i:\n x = -2")
        assert ast.body[0].expr == Const(-2.0)

    def test_unary_minus_expression(self):
        ast = parse_loop("for i:\n x = -y")
        expr = ast.body[0].expr
        assert expr.op == "-" and expr.left == Const(0.0)

    def test_array_reads_in_expr(self):
        ast = parse_loop("for i:\n x = a[i-1] / b[i+1]")
        expr = ast.body[0].expr
        assert expr.left == ArrayRef("a", -1)
        assert expr.right == ArrayRef("b", 1)

    def test_garbage_in_expression(self):
        with pytest.raises(FrontendError, match="unexpected"):
            parse_loop("for i:\n x = + )")

    def test_missing_rparen(self):
        with pytest.raises(FrontendError, match="'\\)'"):
            parse_loop("for i:\n x = (a + b")

    def test_str_roundtrips_readably(self):
        ast = parse_loop("for i:\n x = a[i+1] * 2")
        assert str(ast.body[0]) == "x = (a[i+1] * 2)"
