"""Unit tests for the reference interpreter."""

import pytest

from repro.frontend.errors import FrontendError
from repro.frontend.interp import run_loop
from repro.frontend.parser import parse_loop


def _run(source, arrays=None, scalars=None, iterations=4):
    arrays = {k: list(v) for k, v in (arrays or {}).items()}
    scalars = dict(scalars or {})
    run_loop(parse_loop(source), arrays, scalars, iterations)
    return arrays, scalars


class TestArithmetic:
    def test_constant_store(self):
        arrays, _ = _run("for i:\n    a[i] = 2 + 3\n",
                         {"a": [0.0] * 6})
        assert arrays["a"][:4] == [5.0] * 4

    def test_precedence(self):
        _, scalars = _run("for i:\n    x = 2 + 3 * 4\n", iterations=1)
        assert scalars["x"] == 14.0

    def test_division_by_zero_is_zero(self):
        _, scalars = _run("for i:\n    x = 1 / 0\n", iterations=1)
        assert scalars["x"] == 0.0

    def test_unary_minus(self):
        _, scalars = _run("for i:\n    x = -3 + 1\n", iterations=1)
        assert scalars["x"] == -2.0


class TestScalars:
    def test_reduction(self):
        _, scalars = _run(
            "for i:\n    s = s + a[i]\n",
            {"a": [1.0, 2.0, 3.0, 4.0]},
            {"s": 0.0},
        )
        assert scalars["s"] == 10.0

    def test_uninitialized_scalar_raises(self):
        with pytest.raises(FrontendError, match="before initialization"):
            _run("for i:\n    x = y + 1\n")

    def test_copy_semantics(self):
        _, scalars = _run(
            "for i:\n    x = s\n    s = s + 1\n",
            scalars={"s": 0.0}, iterations=3,
        )
        # After 3 iterations: x holds s before the last increment.
        assert scalars["s"] == 3.0
        assert scalars["x"] == 2.0


class TestArrays:
    def test_offsets(self):
        arrays, _ = _run(
            "for i:\n    b[i] = a[i+1]\n",
            {"a": [10.0, 20.0, 30.0, 40.0, 50.0],
             "b": [0.0] * 5},
        )
        assert arrays["b"][:4] == [20.0, 30.0, 40.0, 50.0]

    def test_out_of_range_reads_zero(self):
        arrays, _ = _run(
            "for i:\n    b[i] = a[i-2]\n",
            {"a": [7.0] * 4, "b": [1.0] * 4},
        )
        assert arrays["b"][:2] == [0.0, 0.0]
        assert arrays["b"][2:4] == [7.0, 7.0]

    def test_out_of_range_writes_ignored(self):
        arrays, _ = _run(
            "for i:\n    a[i+3] = 1\n",
            {"a": [0.0, 0.0]}, iterations=2,
        )
        assert arrays["a"] == [0.0, 0.0]

    def test_memory_recurrence(self):
        arrays, _ = _run(
            "for i:\n    d[i+1] = d[i] * 2\n",
            {"d": [1.0, 0.0, 0.0, 0.0, 0.0]},
        )
        assert arrays["d"] == [1.0, 2.0, 4.0, 8.0, 16.0]

    def test_same_iteration_store_then_load(self):
        arrays, _ = _run(
            "for i:\n    a[i] = b[i] + 1\n    c[i] = a[i] * 2\n",
            {"a": [0.0] * 4, "b": [1.0, 2.0, 3.0, 4.0],
             "c": [0.0] * 4},
        )
        assert arrays["c"] == [4.0, 6.0, 8.0, 10.0]
