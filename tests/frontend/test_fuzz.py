"""Grammar-directed fuzzing of the whole front-end-to-schedule path.

Generates random (syntactically valid) loop bodies, compiles them, and
pushes every compilable one through bounds, the ILP, verification and
functional replay against the interpreter.  Nothing in the path may
crash, and semantics must be preserved.
"""

import random

import pytest

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import schedule_loop, verify_schedule
from repro.frontend import FrontendError, compile_loop
from repro.frontend.interp import run_loop
from repro.frontend.lower import compile_loop_semantics
from repro.frontend.parser import parse_loop
from repro.machine.presets import powerpc604
from repro.sim.functional import execute_dataflow

ARRAYS = ("a", "b", "c", "d")
SCALARS = ("s", "u", "v")
OPS = ("+", "-", "*", "/")


def _random_source(rng: random.Random) -> str:
    """A random loop body over a small vocabulary."""
    lines = ["for i:"]
    defined_scalars = set()
    for _ in range(rng.randint(1, 5)):
        target_is_array = rng.random() < 0.6
        expr = _random_expr(rng, defined_scalars, depth=rng.randint(1, 2))
        if target_is_array:
            array = rng.choice(ARRAYS)
            offset = rng.randint(-1, 2)
            suffix = "" if offset == 0 else f"{offset:+d}"
            lines.append(f"    {array}[i{suffix}] = {expr}")
        else:
            scalar = rng.choice(SCALARS)
            defined_scalars.add(scalar)
            lines.append(f"    {scalar} = {expr}")
    return "\n".join(lines) + "\n"


def _random_expr(rng, defined_scalars, depth) -> str:
    if depth == 0:
        kind = rng.random()
        if kind < 0.4:
            array = rng.choice(ARRAYS)
            offset = rng.randint(-2, 2)
            suffix = "" if offset == 0 else f"{offset:+d}"
            return f"{array}[i{suffix}]"
        if kind < 0.7:
            return rng.choice(SCALARS)
        return f"{rng.randint(1, 5)}"
    left = _random_expr(rng, defined_scalars, depth - 1)
    right = _random_expr(rng, defined_scalars, depth - 1)
    return f"({left} {rng.choice(OPS)} {right})"


@settings(max_examples=40, deadline=None)
@given(st.integers(0, 1_000_000))
def test_property_fuzzed_sources_never_crash_the_pipeline(seed):
    rng = random.Random(seed)
    source = _random_source(rng)
    machine = powerpc604()
    try:
        ddg = compile_loop(source)
    except FrontendError:
        return  # e.g. lowers to nothing
    result = schedule_loop(ddg, machine, max_extra=30,
                           time_limit_per_t=10.0)
    if result.schedule is None:
        return
    verify_schedule(result.schedule)


@settings(max_examples=25, deadline=None)
@given(st.integers(0, 1_000_000))
def test_property_fuzzed_sources_preserve_semantics(seed):
    rng = random.Random(seed)
    source = _random_source(rng)
    machine = powerpc604()
    try:
        compiled = compile_loop_semantics(source)
    except FrontendError:
        return
    result = schedule_loop(compiled.ddg, machine, max_extra=30,
                           time_limit_per_t=10.0)
    if result.schedule is None:
        return
    verify_schedule(result.schedule)

    iterations = 5
    arrays = {
        name: [round(rng.uniform(-3, 3), 3)
               for _ in range(iterations + 5)]
        for name in ARRAYS
    }
    seeds = {name: round(rng.uniform(-2, 2), 3) for name in SCALARS}
    reference = {k: list(v) for k, v in arrays.items()}
    run_loop(parse_loop(source), reference, dict(seeds), iterations)
    outcome = execute_dataflow(
        compiled, result.schedule, arrays, dict(seeds), iterations
    )
    for name in ARRAYS:
        assert outcome.arrays[name] == pytest.approx(reference[name]), (
            source
        )



