"""Tests for the exhaustive scheduling+mapping search."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import schedule_loop, verify_schedule
from repro.ddg.generators import GeneratorConfig, random_ddg
from repro.ddg.kernels import KERNELS, motivating_example
from repro.enumerative import enumerative_schedule_loop, search_at_period
from repro.machine.presets import motivating_machine, powerpc604


class TestMotivatingExample:
    def test_t3_proven_infeasible(self):
        outcome = search_at_period(
            motivating_example(), motivating_machine(), 3
        )
        assert outcome.feasible is False
        assert outcome.nodes > 0

    def test_t4_feasible_and_verified(self):
        outcome = search_at_period(
            motivating_example(), motivating_machine(), 4
        )
        assert outcome.feasible is True
        assert outcome.schedule.t_period == 4

    def test_driver_matches_ilp(self):
        enumerated = enumerative_schedule_loop(
            motivating_example(), motivating_machine()
        )
        assert enumerated.achieved_t == 4
        assert enumerated.proven
        assert enumerated.delta_from_lb == 1


class TestOnKernels:
    @pytest.mark.parametrize(
        "name", [k for k in sorted(KERNELS) if k not in ("spice", "ll1")]
    )
    def test_agrees_with_ilp(self, name):
        """The two exact methods must find the same optimal T."""
        machine = powerpc604()
        ddg = KERNELS[name]()
        ilp = schedule_loop(ddg, machine)
        enumerated = enumerative_schedule_loop(
            ddg, machine, time_limit_per_t=20.0
        )
        assert enumerated.achieved_t == ilp.achieved_t
        verify_schedule(enumerated.schedule)


class TestBudget:
    def test_timeout_reported_not_infeasible(self):
        """An absurdly small budget must not claim infeasibility."""
        machine = powerpc604()
        ddg = KERNELS["spice"]()
        outcome = search_at_period(ddg, machine, 5, time_limit=0.0)
        assert outcome.feasible is None

    def test_driver_not_proven_after_timeout(self):
        machine = powerpc604()
        ddg = KERNELS["spice"]()
        result = enumerative_schedule_loop(
            ddg, machine, time_limit_per_t=0.0, max_extra=1
        )
        assert result.achieved_t is None
        assert not result.proven


@settings(max_examples=15, deadline=None)
@given(st.integers(0, 10_000))
def test_property_enumeration_matches_ilp(seed):
    """Property: on random small loops the search and the ILP agree on
    the optimal initiation interval (both exact methods)."""
    machine = powerpc604()
    ddg = random_ddg(
        random.Random(seed), machine,
        GeneratorConfig(min_ops=2, max_ops=6),
    )
    ilp = schedule_loop(ddg, machine, max_extra=6)
    enumerated = enumerative_schedule_loop(
        ddg, machine, time_limit_per_t=10.0, max_extra=6
    )
    assert enumerated.achieved_t == ilp.achieved_t
    if enumerated.schedule is not None:
        verify_schedule(enumerated.schedule)
