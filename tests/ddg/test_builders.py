"""Tests for the DDG text format."""

import pytest

from repro.ddg import DdgError
from repro.ddg.builders import parse_ddg, serialize_ddg
from repro.ddg.kernels import KERNELS


EXAMPLE = """
# dot product
loop dotprod
op i0 load
op i1 load
op i2 fmul
op i3 fadd
dep i0 i2
dep i1 i2 0
dep i2 i3 0 flow
dep i3 i3 1 flow
"""


class TestParse:
    def test_basic(self):
        g = parse_ddg(EXAMPLE)
        assert g.name == "dotprod"
        assert g.num_ops == 4
        assert g.num_deps == 4

    def test_default_distance_zero(self):
        g = parse_ddg(EXAMPLE)
        assert g.deps[0].distance == 0

    def test_comments_and_blanks_ignored(self):
        g = parse_ddg("op a load\n\n# note\nop b fadd # trailing\ndep a b\n")
        assert g.num_ops == 2

    def test_unknown_directive(self):
        with pytest.raises(DdgError, match="line 1.*unknown directive"):
            parse_ddg("node a load")

    def test_op_arity_error(self):
        with pytest.raises(DdgError, match="line 1"):
            parse_ddg("op a")

    def test_dep_bad_distance(self):
        with pytest.raises(DdgError, match="line 3"):
            parse_ddg("op a load\nop b load\ndep a b one")

    def test_dep_unknown_op(self):
        with pytest.raises(DdgError, match="unknown op name"):
            parse_ddg("op a load\ndep a zz")

    def test_duplicate_loop_directive(self):
        with pytest.raises(DdgError, match="duplicate 'loop'"):
            parse_ddg("loop a\nloop b\nop x load")

    def test_empty_input(self):
        with pytest.raises(DdgError, match="no ops"):
            parse_ddg("# nothing\n")

    def test_line_numbers_in_errors(self):
        with pytest.raises(DdgError, match="line 4"):
            parse_ddg("loop l\nop a load\nop b load\ndep a b -1")


class TestRoundTrip:
    def test_serialize_parse_identity(self):
        original = parse_ddg(EXAMPLE)
        rebuilt = parse_ddg(serialize_ddg(original))
        assert rebuilt.name == original.name
        assert [(o.name, o.op_class) for o in rebuilt.ops] == [
            (o.name, o.op_class) for o in original.ops
        ]
        assert [
            (d.src, d.dst, d.distance, d.kind) for d in rebuilt.deps
        ] == [(d.src, d.dst, d.distance, d.kind) for d in original.deps]

    @pytest.mark.parametrize("kernel_name", sorted(KERNELS))
    def test_all_kernels_round_trip(self, kernel_name):
        original = KERNELS[kernel_name]()
        rebuilt = parse_ddg(serialize_ddg(original))
        assert rebuilt.num_ops == original.num_ops
        assert rebuilt.num_deps == original.num_deps
