"""Tests for the DDG data structure."""

import pytest

from repro.ddg import Ddg, DdgError


@pytest.fixture
def graph():
    g = Ddg("g")
    g.add_op("a", "load")
    g.add_op("b", "fadd")
    g.add_op("c", "store")
    g.add_dep("a", "b")
    g.add_dep("b", "c", distance=0)
    g.add_dep("b", "b", distance=1)
    return g


class TestOps:
    def test_indices_sequential(self, graph):
        assert [op.index for op in graph.ops] == [0, 1, 2]

    def test_duplicate_name_rejected(self, graph):
        with pytest.raises(DdgError, match="duplicate"):
            graph.add_op("a", "load")

    def test_contains(self, graph):
        assert "a" in graph
        assert "z" not in graph

    def test_op_lookup_by_name_index_and_op(self, graph):
        by_name = graph.op("b")
        assert graph.op(1) is by_name
        assert graph.op(by_name) is by_name

    def test_unknown_name(self, graph):
        with pytest.raises(DdgError, match="unknown op name"):
            graph.op("zz")

    def test_index_out_of_range(self, graph):
        with pytest.raises(DdgError, match="out of range"):
            graph.op(99)

    def test_foreign_op_rejected(self, graph):
        other = Ddg("other")
        foreign = other.add_op("x", "load")
        with pytest.raises(DdgError, match="different DDG"):
            graph.add_dep(foreign, "a")

    def test_bad_reference_type(self, graph):
        with pytest.raises(DdgError, match="cannot resolve"):
            graph.op(3.14)  # type: ignore[arg-type]

    def test_iteration(self, graph):
        assert [op.name for op in graph] == ["a", "b", "c"]


class TestDeps:
    def test_counts(self, graph):
        assert graph.num_deps == 3

    def test_negative_distance_rejected(self, graph):
        with pytest.raises(DdgError, match=">= 0"):
            graph.add_dep("a", "c", distance=-1)

    def test_zero_distance_self_loop_rejected(self, graph):
        with pytest.raises(DdgError, match="same iteration"):
            graph.add_dep("a", "a", distance=0)

    def test_positive_distance_self_loop_ok(self, graph):
        dep = graph.add_dep("c", "c", distance=2)
        assert dep.distance == 2

    def test_successors(self, graph):
        succ = graph.successors("b")
        names = sorted(op.name for op, _ in succ)
        assert names == ["b", "c"]

    def test_predecessors(self, graph):
        pred = graph.predecessors("b")
        names = sorted(op.name for op, _ in pred)
        assert names == ["a", "b"]

    def test_kind_label(self, graph):
        dep = graph.add_dep("a", "c", kind="anti")
        assert dep.kind == "anti"


class TestQueries:
    def test_classes_used_in_order(self, graph):
        assert graph.classes_used() == ["load", "fadd", "store"]

    def test_latencies(self, graph):
        from repro.machine.presets import motivating_machine

        machine = motivating_machine()
        assert graph.latencies(machine) == [3, 2, 1]

    def test_validate_against_unknown_class(self, graph):
        from repro.machine import MachineError
        from repro.machine.presets import nonpipelined_machine

        with pytest.raises(MachineError):
            graph.validate_against(nonpipelined_machine())

    def test_to_networkx(self, graph):
        nxg = graph.to_networkx()
        assert nxg.number_of_nodes() == 3
        assert nxg.number_of_edges() == 3

    def test_to_networkx_with_latencies(self, graph):
        from repro.machine.presets import motivating_machine

        nxg = graph.to_networkx(motivating_machine())
        assert nxg.nodes[0]["latency"] == 3

    def test_copy_is_deep_enough(self, graph):
        clone = graph.copy("clone")
        clone.add_op("d", "load")
        assert graph.num_ops == 3
        assert clone.num_ops == 4
        assert clone.name == "clone"

    def test_parallel_edges_preserved(self, graph):
        graph.add_dep("a", "b", distance=1)
        assert graph.num_deps == 4
        assert graph.to_networkx().number_of_edges() == 4
