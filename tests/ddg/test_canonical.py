"""Canonical DDG digests: isomorphism invariance and separation."""

import random

import pytest

from repro.ddg import kernels
from repro.ddg.builders import parse_ddg
from repro.ddg.canonical import (
    CanonicalizationError,
    canonical_digest,
    canonical_form,
    canonical_order,
    canonical_text,
)
from repro.ddg.errors import DdgError
from repro.ddg.generators import suite
from repro.ddg.graph import Ddg
from repro.ddg.transforms import scrambled
from repro.machine.presets import powerpc604


def _all_kernels():
    return [factory() for factory in kernels.KERNELS.values()]


class TestInvariance:
    def test_scramble_preserves_digest_on_all_kernels(self):
        rng = random.Random(20260806)
        for ddg in _all_kernels():
            digest = canonical_digest(ddg)
            for _ in range(3):
                copy = scrambled(ddg, rng)
                assert canonical_digest(copy) == digest, ddg.name

    def test_scramble_preserves_digest_on_synthetic_corpus(self):
        machine = powerpc604()
        rng = random.Random(7)
        for ddg in suite(25, machine, seed=99):
            form = canonical_form(ddg)
            assert not form.fallback
            copy = scrambled(ddg, rng)
            assert canonical_form(copy).text == form.text

    def test_canonical_text_identical_across_isomorphs(self):
        ddg = kernels.livermore_kernel5()
        text = canonical_text(ddg)
        copy = scrambled(ddg, random.Random(3))
        assert canonical_text(copy) == text

    def test_order_is_a_permutation(self):
        ddg = kernels.spice_like()
        order = canonical_order(ddg)
        assert sorted(order) == list(range(ddg.num_ops))


class TestSeparation:
    def test_latency_override_changes_digest(self):
        base = kernels.motivating_example()
        changed = base.copy()
        dep = changed.deps[0]
        original = dep.latency if dep.latency is not None else 0
        changed.deps[0] = type(dep)(
            src=dep.src, dst=dep.dst, distance=dep.distance,
            kind=dep.kind, latency=original + 5,
        )
        assert canonical_digest(changed) != canonical_digest(base)

    def test_distance_change_changes_digest(self):
        base = kernels.motivating_example()
        changed = base.copy()
        dep = changed.deps[-1]
        changed.deps[-1] = type(dep)(
            src=dep.src, dst=dep.dst, distance=dep.distance + 1,
            kind=dep.kind, latency=dep.latency,
        )
        assert canonical_digest(changed) != canonical_digest(base)

    def test_op_class_change_changes_digest(self):
        base = kernels.motivating_example()
        changed = Ddg(base.name)
        for op in base.ops:
            cls = "fmul" if op.index == 2 else op.op_class
            changed.add_op(op.name, cls)
        for dep in base.deps:
            changed.add_dep(dep.src, dep.dst, dep.distance, dep.kind,
                            dep.latency)
        assert canonical_digest(changed) != canonical_digest(base)

    def test_extra_edge_changes_digest(self):
        base = kernels.dot_product()
        changed = base.copy()
        changed.add_dep(0, base.num_ops - 1, distance=3)
        assert canonical_digest(changed) != canonical_digest(base)

    def test_kind_label_does_not_change_digest(self):
        # The dependence kind never enters the scheduling constraints
        # (see Ddg.dep_latencies), so it must not split cache entries.
        base = kernels.dot_product()
        changed = base.copy()
        dep = changed.deps[0]
        changed.deps[0] = type(dep)(
            src=dep.src, dst=dep.dst, distance=dep.distance,
            kind="renamed_kind", latency=dep.latency,
        )
        assert canonical_digest(changed) == canonical_digest(base)


class TestCanonicalText:
    def test_round_trips_through_parser(self):
        for ddg in _all_kernels():
            text = canonical_text(ddg)
            parsed = parse_ddg(text)
            assert parsed.num_ops == ddg.num_ops
            assert parsed.num_deps == ddg.num_deps
            # The canonical text of canonical text is a fixed point.
            assert canonical_text(parsed) == text

    def test_parse_gives_canonical_order(self):
        # Ops in the canonical text are already in canonical order, so
        # re-canonicalizing the parsed graph yields the identity.
        ddg = kernels.daxpy()
        parsed = parse_ddg(canonical_text(ddg))
        assert canonical_order(parsed) == list(range(parsed.num_ops))


class TestFallback:
    def _symmetric(self, n: int) -> Ddg:
        # n identical disconnected ops: maximally symmetric, the worst
        # case for tie-branching (every placement level is an n-way tie).
        ddg = Ddg("symmetric")
        for i in range(n):
            ddg.add_op(f"x{i}", "fadd")
        return ddg

    def test_budget_exhaustion_raises(self):
        with pytest.raises(CanonicalizationError, match="budget"):
            canonical_order(self._symmetric(30), budget=50)

    def test_fallback_digest_is_prefixed_and_identity_ordered(self):
        form = canonical_form(self._symmetric(40))
        assert form.fallback
        assert form.digest.startswith("raw-")
        assert form.order == list(range(40))

    def test_fallback_never_false_hits(self):
        # Two structurally identical but differently-named symmetric
        # graphs get *different* fallback digests — the fallback loses
        # hits, never correctness.
        a = self._symmetric(40)
        b = Ddg("symmetric")
        for i in range(40):
            b.add_op(f"y{i}", "fadd")
        assert canonical_form(a).digest != canonical_form(b).digest

    def test_empty_ddg_rejected(self):
        with pytest.raises(DdgError):
            canonical_order(Ddg("empty"))
