"""Seed-stability regression: golden DDG text for pinned seeds.

Each golden file under ``tests/data/golden_gen/`` pins the *exact*
serialized output of one (seed, params, machine) tuple.  If any of
these tests fail, the generator's sampling sequence drifted — which
silently invalidates every published corpus manifest (``repro gen
--from-manifest`` would refuse to regenerate them).  Never "fix" a
failure by regenerating the golden file unless you have consciously
decided to break manifest compatibility; bump ``MANIFEST_VERSION`` and
say so in the changelog if you do.
"""

import pathlib
import random

import pytest

from repro.corpusgen.dslgen import DslParams, dsl_ddg
from repro.ddg.builders import serialize_ddg
from repro.ddg.generators import (
    GenParams,
    adversarial_params,
    parameterized_ddg,
)
from repro.machine.presets import by_name

GOLDEN_DIR = pathlib.Path(__file__).resolve().parent.parent / "data" / \
    "golden_gen"

#: (file stem, machine preset, kind, params, derived seed string).
CASES = [
    (
        "guaranteed_ppc604", "powerpc604", "ddg",
        GenParams(), "golden:guaranteed:0",
    ),
    (
        "adversarial_coreblocks", "coreblocks", "ddg",
        adversarial_params(), "golden:adversarial:0",
    ),
    (
        "mem_geometric_ppc604", "powerpc604", "ddg",
        GenParams(profile="mem", distance_dist="geometric", cycles=2,
                  cycle_depth=3, min_ops=6),
        "golden:mem:0",
    ),
    (
        "dsl_deep_unclean", "deep-unclean", "dsl",
        DslParams(), "golden:dsl:0",
    ),
]


@pytest.mark.parametrize(
    "stem,preset,kind,params,seed", CASES, ids=[c[0] for c in CASES]
)
def test_golden_seed_stability(stem, preset, kind, params, seed):
    machine = by_name(preset)
    rng = random.Random(seed)
    if kind == "dsl":
        ddg = dsl_ddg(rng, machine, params, stem)
    else:
        ddg = parameterized_ddg(rng, machine, params, stem)
    golden = (GOLDEN_DIR / f"{stem}.ddg").read_text(encoding="utf-8")
    assert serialize_ddg(ddg) == golden, (
        f"generator output for {stem} drifted from the golden pin — "
        "published corpus manifests would no longer regenerate"
    )


def test_goldens_have_no_strays():
    pinned = {c[0] for c in CASES}
    on_disk = {p.stem for p in GOLDEN_DIR.glob("*.ddg")}
    assert on_disk == pinned
