"""Tests for the synthetic loop generators."""

import random

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ddg import DdgError
from repro.ddg.analysis import t_dep
from repro.ddg.builders import parse_ddg, serialize_ddg
from repro.ddg.canonical import canonical_digest
from repro.ddg.generators import (
    ADVERSARIAL_DEFAULTS,
    DEFAULT_WEIGHTS,
    DISTANCE_DISTS,
    MODES,
    PROFILES,
    GeneratorConfig,
    GenParams,
    adversarial_params,
    parameterized_ddg,
    random_ddg,
    suite,
    suite1066,
)
from repro.ddg.transforms import scrambled
from repro.machine.presets import coreblocks, deep_unclean, powerpc604


@pytest.fixture(scope="module")
def machine():
    return powerpc604()


class TestRandomDdg:
    def test_deterministic_for_seed(self, machine):
        a = random_ddg(random.Random(7), machine)
        b = random_ddg(random.Random(7), machine)
        assert [(o.name, o.op_class) for o in a.ops] == [
            (o.name, o.op_class) for o in b.ops
        ]
        assert [(d.src, d.dst, d.distance) for d in a.deps] == [
            (d.src, d.dst, d.distance) for d in b.deps
        ]

    def test_size_bounds_respected(self, machine):
        config = GeneratorConfig(min_ops=3, max_ops=6)
        rng = random.Random(1)
        for _ in range(50):
            g = random_ddg(rng, machine, config)
            assert 3 <= g.num_ops <= 6

    def test_explicit_num_ops(self, machine):
        g = random_ddg(random.Random(0), machine, num_ops=12)
        assert g.num_ops == 12

    def test_connected(self, machine):
        rng = random.Random(3)
        for _ in range(20):
            g = random_ddg(rng, machine)
            undirected = g.to_networkx().to_undirected()
            assert nx.is_connected(undirected)

    def test_classes_valid_on_machine(self, machine):
        rng = random.Random(5)
        g = random_ddg(rng, machine, num_ops=20)
        g.validate_against(machine)

    def test_always_schedulable(self, machine):
        """Every generated loop must admit some periodic schedule."""
        rng = random.Random(11)
        for _ in range(30):
            g = random_ddg(rng, machine)
            assert t_dep(g, machine) >= 1  # raises on 0-distance cycles

    def test_rejects_bad_num_ops(self, machine):
        with pytest.raises(DdgError):
            random_ddg(random.Random(0), machine, num_ops=0)

    def test_rejects_unusable_weights(self, machine):
        config = GeneratorConfig(class_weights={"vectorfma": 1.0})
        with pytest.raises(DdgError, match="none of the configured"):
            random_ddg(random.Random(0), machine, config)

    def test_weights_filtered_to_machine(self):
        from repro.machine.presets import motivating_machine

        machine = motivating_machine()
        rng = random.Random(2)
        g = random_ddg(rng, machine, num_ops=15)
        used = set(g.classes_used())
        assert used <= {"load", "store", "fadd", "fmul"}


class TestSuite:
    def test_suite_count_and_names(self, machine):
        loops = suite(25, machine, seed=9)
        assert len(loops) == 25
        assert loops[0].name == "loop0000"
        assert loops[24].name == "loop0024"

    def test_suite_reproducible(self, machine):
        a = suite(10, machine, seed=3)
        b = suite(10, machine, seed=3)
        assert all(
            x.num_ops == y.num_ops and x.num_deps == y.num_deps
            for x, y in zip(a, b)
        )

    def test_different_seeds_differ(self, machine):
        a = suite(10, machine, seed=1)
        b = suite(10, machine, seed=2)
        assert any(x.num_ops != y.num_ops for x, y in zip(a, b))

    def test_suite1066_size(self, machine):
        loops = suite1066(machine)
        assert len(loops) == 1066

    def test_suite1066_size_distribution(self, machine):
        """Mean size should sit in the paper's small-loop regime (~6)."""
        loops = suite1066(machine)
        mean = sum(g.num_ops for g in loops) / len(loops)
        assert 4.0 <= mean <= 10.0

    def test_default_weights_sum_close_to_one(self):
        assert abs(sum(DEFAULT_WEIGHTS.values()) - 1.0) < 0.05


class TestGenParams:
    def test_defaults_validate(self):
        GenParams().validate()

    def test_adversarial_defaults_validate(self):
        adversarial_params().validate()
        assert adversarial_params().mode == "adversarial"

    def test_adversarial_overrides(self):
        p = adversarial_params(max_ops=12, profile="mem")
        assert p.max_ops == 12 and p.profile == "mem"
        assert p.cycles == ADVERSARIAL_DEFAULTS["cycles"]

    @pytest.mark.parametrize(
        "bad",
        [
            dict(mode="chaotic"),
            dict(distance_dist="zipf"),
            dict(profile="gpu"),
            dict(min_ops=0),
            dict(min_ops=9, max_ops=3),
            dict(cycles=-1),
            dict(cycle_depth=0),
            dict(max_distance=0),
        ],
    )
    def test_validate_rejects(self, bad):
        with pytest.raises(DdgError):
            GenParams(**bad).validate()

    def test_json_round_trip(self):
        p = adversarial_params(cycle_depth=2, size_p=0.3)
        assert GenParams.from_json_dict(p.to_json_dict()) == p

    def test_from_json_rejects_unknown_keys(self):
        doc = GenParams().to_json_dict()
        doc["quantum"] = True
        with pytest.raises(DdgError, match="unknown generator parameter"):
            GenParams.from_json_dict(doc)

    def test_profiles_cover_modes_and_dists(self):
        assert set(MODES) == {"guaranteed", "adversarial"}
        assert "uniform" in DISTANCE_DISTS
        for weights in PROFILES.values():
            assert weights and all(w > 0 for w in weights.values())


def _zero_distance_dag(g):
    intra = nx.DiGraph()
    intra.add_nodes_from(range(g.num_ops))
    intra.add_edges_from(
        (d.src, d.dst) for d in g.deps if d.distance == 0
    )
    return nx.is_directed_acyclic_graph(intra)


class TestParameterizedDdg:
    def test_deterministic_for_seed(self, machine):
        p = GenParams()
        a = parameterized_ddg(random.Random("s:guaranteed:0"), machine, p)
        b = parameterized_ddg(random.Random("s:guaranteed:0"), machine, p)
        assert serialize_ddg(a) == serialize_ddg(b)

    def test_size_bounds(self, machine):
        p = GenParams(min_ops=5, max_ops=9)
        rng = random.Random(0)
        for _ in range(40):
            g = parameterized_ddg(rng, machine, p)
            assert 5 <= g.num_ops <= 9

    def test_guaranteed_connected_no_parallel_edges(self, machine):
        rng = random.Random(17)
        p = GenParams(cycles=2, cycle_depth=3)
        for _ in range(30):
            g = parameterized_ddg(rng, machine, p)
            assert nx.is_connected(g.to_networkx().to_undirected())
            seen = set()
            for d in g.deps:
                assert (d.src, d.dst) not in seen
                seen.add((d.src, d.dst))

    def test_back_edges_carry_distance(self, machine):
        rng = random.Random(23)
        for mode in MODES:
            p = (GenParams(cycles=3, cycle_depth=4) if mode == "guaranteed"
                 else adversarial_params())
            for _ in range(25):
                g = parameterized_ddg(rng, machine, p)
                for d in g.deps:
                    if d.src >= d.dst:
                        assert d.distance >= 1
                assert _zero_distance_dag(g)

    def test_validates_against_machine(self, machine):
        rng = random.Random(5)
        for p in (GenParams(), adversarial_params()):
            parameterized_ddg(rng, machine, p).validate_against(machine)

    def test_profiles_restrict_class_mix(self, machine):
        rng = random.Random(31)
        p = GenParams(profile="mem", min_ops=20, max_ops=30)
        g = parameterized_ddg(rng, machine, p)
        assert set(g.classes_used()) <= set(PROFILES["mem"])

    def test_profiles_filtered_to_machine(self):
        rng = random.Random(8)
        machine = deep_unclean()
        p = GenParams(profile="fp", min_ops=16, max_ops=24)
        g = parameterized_ddg(rng, machine, p)
        assert set(g.classes_used()) <= set(machine.op_classes)

    def test_unit_distance_dist(self, machine):
        p = GenParams(distance_dist="unit", cycles=4, cycle_depth=2)
        rng = random.Random(13)
        for _ in range(20):
            g = parameterized_ddg(rng, machine, p)
            for d in g.deps:
                if d.distance:
                    assert d.distance == 1

    def test_distance_bounded(self, machine):
        for dist in DISTANCE_DISTS:
            p = GenParams(distance_dist=dist, max_distance=2, cycles=4)
            rng = random.Random(29)
            for _ in range(15):
                g = parameterized_ddg(rng, machine, p)
                assert all(d.distance <= 2 for d in g.deps)

    def test_guaranteed_finite_t_dep(self, machine):
        rng = random.Random(41)
        p = GenParams(cycles=2, cycle_depth=3)
        for _ in range(30):
            g = parameterized_ddg(rng, machine, p)
            assert t_dep(g, machine) >= 1

    def test_adversarial_multi_edges_survive_round_trip(self, machine):
        rng = random.Random(3)
        p = adversarial_params(multi_edge_prob=0.6)
        found_parallel = False
        for _ in range(10):
            g = parameterized_ddg(rng, machine, p)
            pairs = [(d.src, d.dst) for d in g.deps]
            found_parallel |= len(pairs) != len(set(pairs))
            assert serialize_ddg(parse_ddg(serialize_ddg(g))) == \
                serialize_ddg(g)
        assert found_parallel

    def test_adversarial_can_disconnect(self):
        machine = coreblocks()
        rng = random.Random(7)
        p = adversarial_params(disconnect_prob=0.9, cycles=0,
                               edge_prob=0.0, min_ops=8, max_ops=8)
        disconnected = any(
            not nx.is_connected(
                parameterized_ddg(rng, machine, p).to_networkx()
                .to_undirected()
            )
            for _ in range(10)
        )
        assert disconnected

    def test_rejects_invalid_params(self, machine):
        with pytest.raises(DdgError):
            parameterized_ddg(
                random.Random(0), machine, GenParams(mode="nope")
            )


@settings(max_examples=20, deadline=None)
@given(st.integers(0, 100000), st.sampled_from(MODES))
def test_property_parameterized_well_formed(seed, mode):
    """Property: both modes parse, canonicalize and stay acyclic."""
    machine = powerpc604()
    p = GenParams() if mode == "guaranteed" else adversarial_params()
    g = parameterized_ddg(random.Random(seed), machine, p)
    assert _zero_distance_dag(g)
    round_tripped = parse_ddg(serialize_ddg(g))
    assert canonical_digest(round_tripped) == canonical_digest(g)
    assert canonical_digest(
        scrambled(g, random.Random(seed + 1))
    ) == canonical_digest(g)


@settings(max_examples=25, deadline=None)
@given(st.integers(0, 100000))
def test_property_no_zero_distance_cycles(seed):
    """Property: generated DDGs never contain a 0-distance cycle."""
    machine = powerpc604()
    g = random_ddg(random.Random(seed), machine)
    intra = nx.DiGraph()
    intra.add_nodes_from(range(g.num_ops))
    intra.add_edges_from(
        (d.src, d.dst) for d in g.deps if d.distance == 0
    )
    assert nx.is_directed_acyclic_graph(intra)
