"""Tests for the synthetic loop generators."""

import random

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ddg import DdgError
from repro.ddg.analysis import t_dep
from repro.ddg.generators import (
    DEFAULT_WEIGHTS,
    GeneratorConfig,
    random_ddg,
    suite,
    suite1066,
)
from repro.machine.presets import powerpc604


@pytest.fixture(scope="module")
def machine():
    return powerpc604()


class TestRandomDdg:
    def test_deterministic_for_seed(self, machine):
        a = random_ddg(random.Random(7), machine)
        b = random_ddg(random.Random(7), machine)
        assert [(o.name, o.op_class) for o in a.ops] == [
            (o.name, o.op_class) for o in b.ops
        ]
        assert [(d.src, d.dst, d.distance) for d in a.deps] == [
            (d.src, d.dst, d.distance) for d in b.deps
        ]

    def test_size_bounds_respected(self, machine):
        config = GeneratorConfig(min_ops=3, max_ops=6)
        rng = random.Random(1)
        for _ in range(50):
            g = random_ddg(rng, machine, config)
            assert 3 <= g.num_ops <= 6

    def test_explicit_num_ops(self, machine):
        g = random_ddg(random.Random(0), machine, num_ops=12)
        assert g.num_ops == 12

    def test_connected(self, machine):
        rng = random.Random(3)
        for _ in range(20):
            g = random_ddg(rng, machine)
            undirected = g.to_networkx().to_undirected()
            assert nx.is_connected(undirected)

    def test_classes_valid_on_machine(self, machine):
        rng = random.Random(5)
        g = random_ddg(rng, machine, num_ops=20)
        g.validate_against(machine)

    def test_always_schedulable(self, machine):
        """Every generated loop must admit some periodic schedule."""
        rng = random.Random(11)
        for _ in range(30):
            g = random_ddg(rng, machine)
            assert t_dep(g, machine) >= 1  # raises on 0-distance cycles

    def test_rejects_bad_num_ops(self, machine):
        with pytest.raises(DdgError):
            random_ddg(random.Random(0), machine, num_ops=0)

    def test_rejects_unusable_weights(self, machine):
        config = GeneratorConfig(class_weights={"vectorfma": 1.0})
        with pytest.raises(DdgError, match="none of the configured"):
            random_ddg(random.Random(0), machine, config)

    def test_weights_filtered_to_machine(self):
        from repro.machine.presets import motivating_machine

        machine = motivating_machine()
        rng = random.Random(2)
        g = random_ddg(rng, machine, num_ops=15)
        used = set(g.classes_used())
        assert used <= {"load", "store", "fadd", "fmul"}


class TestSuite:
    def test_suite_count_and_names(self, machine):
        loops = suite(25, machine, seed=9)
        assert len(loops) == 25
        assert loops[0].name == "loop0000"
        assert loops[24].name == "loop0024"

    def test_suite_reproducible(self, machine):
        a = suite(10, machine, seed=3)
        b = suite(10, machine, seed=3)
        assert all(
            x.num_ops == y.num_ops and x.num_deps == y.num_deps
            for x, y in zip(a, b)
        )

    def test_different_seeds_differ(self, machine):
        a = suite(10, machine, seed=1)
        b = suite(10, machine, seed=2)
        assert any(x.num_ops != y.num_ops for x, y in zip(a, b))

    def test_suite1066_size(self, machine):
        loops = suite1066(machine)
        assert len(loops) == 1066

    def test_suite1066_size_distribution(self, machine):
        """Mean size should sit in the paper's small-loop regime (~6)."""
        loops = suite1066(machine)
        mean = sum(g.num_ops for g in loops) / len(loops)
        assert 4.0 <= mean <= 10.0

    def test_default_weights_sum_close_to_one(self):
        assert abs(sum(DEFAULT_WEIGHTS.values()) - 1.0) < 0.05


@settings(max_examples=25, deadline=None)
@given(st.integers(0, 100000))
def test_property_no_zero_distance_cycles(seed):
    """Property: generated DDGs never contain a 0-distance cycle."""
    machine = powerpc604()
    g = random_ddg(random.Random(seed), machine)
    intra = nx.DiGraph()
    intra.add_nodes_from(range(g.num_ops))
    intra.add_edges_from(
        (d.src, d.dst) for d in g.deps if d.distance == 0
    )
    assert nx.is_directed_acyclic_graph(intra)
