"""Tests for dependence analysis (T_dep, critical cycles)."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ddg import Ddg, DdgError
from repro.ddg import analysis
from repro.ddg.generators import GeneratorConfig, random_ddg
from repro.ddg.kernels import motivating_example
from repro.machine.presets import clean_machine, motivating_machine, powerpc604


@pytest.fixture
def machine():
    return motivating_machine()


class TestTDep:
    def test_acyclic_is_one(self, machine):
        g = Ddg()
        g.add_op("a", "load")
        g.add_op("b", "fadd")
        g.add_dep("a", "b")
        assert analysis.t_dep(g, machine) == 1

    def test_self_loop(self, machine):
        g = Ddg()
        g.add_op("a", "fadd")  # latency 2
        g.add_dep("a", "a", distance=1)
        assert analysis.t_dep(g, machine) == 2

    def test_self_loop_with_distance_two(self, machine):
        g = Ddg()
        g.add_op("a", "fadd")
        g.add_dep("a", "a", distance=2)
        assert analysis.t_dep(g, machine) == 1  # ceil(2/2)

    def test_two_node_cycle(self, machine):
        g = Ddg()
        g.add_op("a", "fadd")
        g.add_op("b", "fadd")
        g.add_dep("a", "b")
        g.add_dep("b", "a", distance=1)
        # cycle latency 4, distance 1 -> T_dep 4
        assert analysis.t_dep(g, machine) == 4

    def test_ceiling_rounding(self, machine):
        g = Ddg()
        g.add_op("a", "fadd")
        g.add_op("b", "fadd")
        g.add_op("c", "fadd")
        g.add_dep("a", "b")
        g.add_dep("b", "c")
        g.add_dep("c", "a", distance=2)
        # latency 6 over distance 2 -> exactly 3
        assert analysis.t_dep(g, machine) == 3

    def test_max_over_cycles(self, machine):
        g = Ddg()
        g.add_op("a", "fadd")
        g.add_op("b", "load")  # latency 3
        g.add_dep("a", "a", distance=1)       # ratio 2
        g.add_dep("b", "b", distance=1)       # ratio 3
        assert analysis.t_dep(g, machine) == 3

    def test_motivating_example_is_two(self, machine):
        assert analysis.t_dep(motivating_example(), machine) == 2

    def test_zero_distance_cycle_rejected(self, machine):
        g = Ddg()
        g.add_op("a", "fadd")
        g.add_op("b", "fadd")
        g.add_dep("a", "b")
        g.add_dep("b", "a", distance=0)
        with pytest.raises(DdgError, match="distance 0"):
            analysis.t_dep(g, machine)

    def test_empty_ddg_rejected(self, machine):
        with pytest.raises(DdgError, match="empty"):
            analysis.t_dep(Ddg(), machine)


class TestFeasibility:
    def test_feasible_at_t_dep_infeasible_below(self, machine):
        g = motivating_example()
        bound = analysis.t_dep(g, machine)
        assert analysis.dependence_feasible(g, machine, bound)
        assert not analysis.dependence_feasible(g, machine, bound - 1)

    def test_nonpositive_period_infeasible(self, machine):
        assert not analysis.dependence_feasible(
            motivating_example(), machine, 0
        )


class TestCriticalCycle:
    def test_acyclic_returns_none(self, machine):
        g = Ddg()
        g.add_op("a", "load")
        assert analysis.critical_cycle(g, machine) is None

    def test_motivating_self_loop(self, machine):
        cycle = analysis.critical_cycle(motivating_example(), machine)
        assert cycle == [2]  # the self-loop on i2

    def test_cycle_achieves_bound(self, machine):
        g = Ddg()
        g.add_op("a", "fadd")
        g.add_op("b", "fadd")
        g.add_dep("a", "b")
        g.add_dep("b", "a", distance=1)
        cycle = analysis.critical_cycle(g, machine)
        latency, distance = analysis.cycle_ratio(g, machine, cycle)
        bound = analysis.t_dep(g, machine)
        assert -(-latency // distance) == bound

    def test_cycle_ratio_rejects_non_cycle(self, machine):
        g = Ddg()
        g.add_op("a", "fadd")
        g.add_op("b", "fadd")
        g.add_dep("a", "b")
        with pytest.raises(DdgError, match="no dependence"):
            analysis.cycle_ratio(g, machine, [0, 1])


class TestStructure:
    def test_has_recurrence(self, machine):
        assert analysis.has_recurrence(motivating_example())
        g = Ddg()
        g.add_op("a", "load")
        g.add_op("b", "fadd")
        g.add_dep("a", "b")
        assert not analysis.has_recurrence(g)

    def test_sccs(self):
        g = motivating_example()
        sccs = analysis.strongly_connected_components(g)
        assert [2] in sccs
        assert sum(len(s) for s in sccs) == g.num_ops


@settings(max_examples=30, deadline=None)
@given(st.integers(0, 10_000))
def test_property_t_dep_is_threshold(seed):
    """Property: T_dep is the exact feasibility threshold on random DDGs."""
    rng = random.Random(seed)
    machine = powerpc604()
    ddg = random_ddg(rng, machine, GeneratorConfig(min_ops=2, max_ops=8))
    bound = analysis.t_dep(ddg, machine)
    assert analysis.dependence_feasible(ddg, machine, bound)
    if bound > 1:
        assert not analysis.dependence_feasible(ddg, machine, bound - 1)
    assert analysis.dependence_feasible(ddg, machine, bound + 5)


@settings(max_examples=20, deadline=None)
@given(st.integers(0, 10_000))
def test_property_critical_cycle_certifies_bound(seed):
    """Property: the returned critical cycle's ratio rounds up to T_dep."""
    rng = random.Random(seed)
    machine = clean_machine()
    ddg = random_ddg(rng, machine, GeneratorConfig(min_ops=3, max_ops=8))
    bound = analysis.t_dep(ddg, machine)
    cycle = analysis.critical_cycle(ddg, machine)
    if bound > 1:
        assert cycle is not None
        latency, distance = analysis.cycle_ratio(ddg, machine, cycle)
        assert distance >= 1
        assert -(-latency // distance) == bound
