"""Tests for DDG transformations (unrolling, composition)."""

import pytest

from repro.core import schedule_loop, verify_schedule
from repro.ddg import Ddg, DdgError
from repro.ddg.analysis import t_dep
from repro.ddg.kernels import dot_product, livermore_kernel11, motivating_example
from repro.ddg.transforms import concatenate, rename_ops, unroll
from repro.machine.presets import powerpc604


class TestUnrollStructure:
    def test_factor_one_is_copy(self):
        g = motivating_example()
        u = unroll(g, 1)
        assert u.num_ops == g.num_ops
        assert u is not g

    def test_op_count_scales(self):
        g = motivating_example()
        u = unroll(g, 3)
        assert u.num_ops == 18
        assert u.num_deps == 18

    def test_rejects_bad_factor(self):
        with pytest.raises(DdgError):
            unroll(motivating_example(), 0)

    def test_names_are_suffixed(self):
        u = unroll(dot_product(), 2)
        assert "acc__u0" in u
        assert "acc__u1" in u

    def test_intra_deps_stay_within_copy(self):
        """Original m=0 edges never cross unroll copies."""
        g = dot_product()
        original_intra = {
            (g.ops[d.src].name, g.ops[d.dst].name)
            for d in g.deps if d.distance == 0
        }
        u = unroll(g, 2)
        for dep in u.deps:
            src_base, _, src_copy = u.ops[dep.src].name.partition("__u")
            dst_base, _, dst_copy = u.ops[dep.dst].name.partition("__u")
            if (src_base, dst_base) in original_intra:
                assert src_copy == dst_copy
                assert dep.distance == 0

    def test_carried_dep_rewiring(self):
        """A self-loop (m=1) unrolled by 2 becomes a cross-copy chain:
        copy0 -> copy1 at distance 0, copy1 -> copy0 at distance 1."""
        g = livermore_kernel11()  # add has a self-loop m=1
        u = unroll(g, 2)
        cross = [
            (u.ops[d.src].name, u.ops[d.dst].name, d.distance)
            for d in u.deps
            if u.ops[d.src].name.startswith("add")
            and u.ops[d.dst].name.startswith("add")
        ]
        assert ("add__u0", "add__u1", 0) in cross
        assert ("add__u1", "add__u0", 1) in cross


class TestUnrollSemantics:
    def test_t_dep_scales_linearly(self):
        """Unrolling k times multiplies the recurrence bound by k (the
        critical cycle's latency grows k-fold, distance unchanged)."""
        machine = powerpc604()
        g = livermore_kernel11()
        base = t_dep(g, machine)
        for factor in (2, 3):
            assert t_dep(unroll(g, factor), machine) == base * factor

    def test_unrolled_schedules_and_verifies(self):
        machine = powerpc604()
        u = unroll(dot_product(), 2)
        result = schedule_loop(u, machine)
        assert result.schedule is not None
        verify_schedule(result.schedule)

    def test_per_original_iteration_rate_not_worse(self):
        """T(unrolled)/k <= T(base): unrolling never hurts the rate."""
        machine = powerpc604()
        g = dot_product()
        base = schedule_loop(g, machine).achieved_t
        unrolled = schedule_loop(unroll(g, 2), machine, max_extra=20)
        assert unrolled.achieved_t is not None
        assert unrolled.achieved_t / 2 <= base


class TestComposition:
    def test_rename(self):
        g = rename_ops(dot_product(), "x_")
        assert "x_acc" in g
        assert g.num_deps == dot_product().num_deps

    def test_concatenate_disjoint(self):
        merged = concatenate(dot_product(), livermore_kernel11())
        assert merged.num_ops == (
            dot_product().num_ops + livermore_kernel11().num_ops
        )
        assert "a_acc" in merged and "b_add" in merged

    def test_concatenated_schedulable(self):
        machine = powerpc604()
        merged = concatenate(dot_product(), livermore_kernel11())
        result = schedule_loop(merged, machine)
        assert result.schedule is not None
        verify_schedule(result.schedule)
