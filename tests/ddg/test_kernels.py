"""Tests for the hand-built kernels."""

import pytest

from repro.ddg import analysis
from repro.ddg.kernels import (
    KERNELS,
    all_kernels,
    by_name,
    dot_product,
    livermore_kernel5,
    livermore_kernel11,
    motivating_example,
)
from repro.machine.presets import motivating_machine, powerpc604


class TestRegistry:
    def test_by_name(self):
        assert by_name("dotprod").name == "dotprod"

    def test_unknown_kernel(self):
        with pytest.raises(KeyError, match="unknown kernel"):
            by_name("fft")

    def test_all_kernels_nonempty(self):
        kernels = all_kernels()
        assert len(kernels) == len(KERNELS)
        assert all(k.num_ops >= 3 for k in kernels)

    @pytest.mark.parametrize("name", sorted(KERNELS))
    def test_kernels_valid_on_ppc604(self, name):
        KERNELS[name]().validate_against(powerpc604())

    @pytest.mark.parametrize("name", sorted(KERNELS))
    def test_kernels_schedulable(self, name):
        machine = powerpc604()
        ddg = KERNELS[name]()
        assert analysis.t_dep(ddg, machine) >= 1


class TestMotivatingExample:
    def test_shape(self):
        g = motivating_example()
        assert g.num_ops == 6
        assert g.num_deps == 6
        assert [op.name for op in g.ops] == [f"i{i}" for i in range(6)]

    def test_self_loop_on_i2(self):
        g = motivating_example()
        self_loops = [d for d in g.deps if d.src == d.dst]
        assert len(self_loops) == 1
        assert self_loops[0].src == 2
        assert self_loops[0].distance == 1

    def test_t_dep_matches_paper(self):
        assert analysis.t_dep(
            motivating_example(), motivating_machine()
        ) == 2

    def test_published_schedule_b_satisfies_dependences(self):
        """The paper's T=[0,1,3,5,7,11] at T=4 respects every edge."""
        g = motivating_example()
        machine = motivating_machine()
        starts = [0, 1, 3, 5, 7, 11]
        lat = g.latencies(machine)
        for dep in g.deps:
            assert (
                starts[dep.dst] - starts[dep.src]
                >= lat[dep.src] - 4 * dep.distance
            )


class TestRecurrences:
    def test_dotprod_reduction(self):
        machine = powerpc604()
        # fadd latency 3, self-loop distance 1 -> T_dep = 3.
        assert analysis.t_dep(dot_product(), machine) == 3

    def test_ll5_recurrence_bound(self):
        machine = powerpc604()
        # sub (3) -> mul (3) -> sub, distance 1 -> T_dep = 6.
        assert analysis.t_dep(livermore_kernel5(), machine) == 6

    def test_ll11_prefix_sum(self):
        machine = powerpc604()
        assert analysis.t_dep(livermore_kernel11(), machine) == 3

    def test_newton_divide_recurrence(self):
        """f(3) -> div(18) -> upd(3) -> f at distance 1: T_dep = 24."""
        from repro.ddg.kernels import newton_step

        machine = powerpc604()
        assert analysis.t_dep(newton_step(), machine) == 24

    def test_matmul_address_recurrences_are_cheap(self):
        """The address adds self-loop at latency 1; the fadd reduction
        dominates: T_dep = 3."""
        from repro.ddg.kernels import matmul_inner

        machine = powerpc604()
        assert analysis.t_dep(matmul_inner(), machine) == 3


class TestStreamingKernels:
    def test_ll12_is_acyclic(self):
        from repro.ddg.kernels import livermore_kernel12

        machine = powerpc604()
        assert analysis.t_dep(livermore_kernel12(), machine) == 1
        assert not analysis.has_recurrence(livermore_kernel12())

    def test_fir_tap_count_scales_ops(self):
        from repro.ddg.kernels import fir_filter

        assert fir_filter(taps=2).num_ops == 2 * 2 + 1 + 1
        assert fir_filter(taps=6).num_ops == 6 * 2 + 5 + 1

    def test_fir_resource_bound(self):
        """4-tap FIR: 4 muls + 3 adds on one FPU -> T_res = 7."""
        from repro.core.bounds import lower_bounds
        from repro.ddg.kernels import fir_filter

        machine = powerpc604()
        bounds = lower_bounds(fir_filter(4), machine)
        assert bounds.t_res == 7

    def test_ll2_anti_dependence_present(self):
        from repro.ddg.kernels import livermore_kernel2

        g = livermore_kernel2()
        anti = [d for d in g.deps if d.kind == "mem-anti"]
        assert len(anti) == 1
        assert anti[0].latency == 1
        assert anti[0].distance == 1
