"""Tests for DDG text renderings."""

from repro.ddg.kernels import motivating_example
from repro.ddg.render import ascii_ddg, to_dot
from repro.machine.presets import motivating_machine


class TestAscii:
    def test_mentions_every_op(self):
        g = motivating_example()
        text = ascii_ddg(g)
        for op in g.ops:
            assert op.name in text

    def test_latencies_with_machine(self):
        text = ascii_ddg(motivating_example(), motivating_machine())
        assert "(lat 3)" in text and "(lat 2)" in text

    def test_distances_annotated(self):
        text = ascii_ddg(motivating_example())
        assert "i2[m=1]" in text

    def test_header_counts(self):
        text = ascii_ddg(motivating_example())
        assert "(6 ops, 6 deps)" in text


class TestDot:
    def test_valid_digraph_structure(self):
        dot = to_dot(motivating_example())
        assert dot.startswith('digraph "motivating"')
        assert dot.rstrip().endswith("}")

    def test_carried_edges_dashed(self):
        dot = to_dot(motivating_example())
        assert "style=dashed" in dot
        assert 'label="m=1"' in dot

    def test_latency_labels_with_machine(self):
        dot = to_dot(motivating_example(), motivating_machine())
        assert "(d=3)" in dot

    def test_edge_count(self):
        g = motivating_example()
        dot = to_dot(g)
        assert dot.count("->") == g.num_deps
