"""Tests for corpus statistics."""

import pytest

from repro.ddg import Ddg
from repro.ddg.generators import suite
from repro.ddg.kernels import all_kernels
from repro.ddg.stats import corpus_stats, size_percentiles
from repro.machine.presets import powerpc604


@pytest.fixture(scope="module")
def corpus():
    return suite(60, powerpc604(), seed=4)


class TestCorpusStats:
    def test_counts(self, corpus):
        stats = corpus_stats(corpus)
        assert stats.count == 60
        assert stats.min_ops <= stats.mean_ops <= stats.max_ops

    def test_histogram_partitions(self, corpus):
        stats = corpus_stats(corpus)
        assert sum(stats.size_histogram.values()) == 60

    def test_class_mix_sums_to_one(self, corpus):
        stats = corpus_stats(corpus)
        assert sum(stats.class_mix.values()) == pytest.approx(1.0)

    def test_recurrence_fraction_in_range(self, corpus):
        stats = corpus_stats(corpus)
        assert 0.0 <= stats.recurrence_fraction <= 1.0
        # The generator plants ~1 recurrence per loop: most have one.
        assert stats.recurrence_fraction >= 0.5

    def test_render(self, corpus):
        text = corpus_stats(corpus).render()
        assert "size histogram" in text
        assert "class mix" in text

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            corpus_stats([])

    def test_kernels_stats(self):
        stats = corpus_stats(all_kernels())
        assert stats.count == 15
        assert stats.recurrence_fraction > 0.4

    def test_single_loop(self):
        g = Ddg("one")
        g.add_op("a", "load")
        stats = corpus_stats([g])
        assert stats.mean_ops == 1.0
        assert stats.class_mix == {"load": 1.0}


class TestPercentiles:
    def test_monotone(self, corpus):
        p50, p90, p99 = size_percentiles(corpus)
        assert p50 <= p90 <= p99

    def test_paper_regime(self):
        """The 1066-loop stand-in stays in the small-loop regime the
        paper reports (median well under 10 ops)."""
        from repro.ddg.generators import suite1066

        corpus = suite1066(powerpc604())
        p50, p90, _ = size_percentiles(corpus)
        assert p50 <= 8
        assert p90 <= 20
