"""Shared helpers: run a ServeDaemon on a background event loop."""

import asyncio
import threading

import pytest

from repro.serve.client import ServeClient
from repro.serve.config import ServeConfig
from repro.serve.daemon import ServeDaemon


class DaemonThread:
    """Host one daemon incarnation on its own asyncio loop + thread.

    Tests drive it through :class:`ServeClient` over real HTTP, and may
    also reach into ``self.daemon`` (breaker, stats) for white-box
    assertions — everything on the daemon side is thread-safe.
    """

    def __init__(self, config: ServeConfig) -> None:
        self.daemon = ServeDaemon(config)
        self._ready = threading.Event()
        self._thread = threading.Thread(
            target=self._run, name="daemon-under-test", daemon=True
        )

    def _run(self) -> None:
        asyncio.run(self._main())

    async def _main(self) -> None:
        await self.daemon.start()
        self._ready.set()
        await self.daemon._stopped.wait()

    def start(self) -> ServeClient:
        self._thread.start()
        if not self._ready.wait(timeout=30):
            raise RuntimeError("daemon failed to start in 30s")
        return ServeClient("127.0.0.1", self.daemon.port)

    def stop(self, timeout: float = 30.0) -> None:
        client = ServeClient("127.0.0.1", self.daemon.port, timeout=5.0)
        try:
            client.drain()
        except Exception:
            pass  # already halted
        self._thread.join(timeout=timeout)


@pytest.fixture
def daemon_factory(monkeypatch):
    """Yield a factory; every daemon it makes is drained at teardown."""
    monkeypatch.setenv("REPRO_FSYNC", "off")  # tmpfs-speed journals
    running = []

    def make(**overrides) -> DaemonThread:
        overrides.setdefault("port", 0)
        overrides.setdefault("workers", 2)
        overrides.setdefault("time_limit", 5.0)
        host = DaemonThread(ServeConfig(**overrides))
        running.append(host)
        return host

    yield make
    for host in running:
        host.stop()
