"""Unit tests for the serve accepted/done journal."""

import json

import pytest

from repro.serve.journal import (
    SERVE_JOURNAL_VERSION,
    ServeJournal,
    read_serve_journal,
    unfinished_jobs,
)
from repro.supervision.journal import JournalError

REQUEST = {"ddg": "loop x { }", "machine": "powerpc604",
           "backend": "auto", "objective": "min_sum_t",
           "time_limit": 5.0, "warmstart": True}


class TestRoundTrip:
    def test_header_then_events(self, tmp_path):
        path = tmp_path / "serve.jsonl"
        with ServeJournal(path, digest="abc") as journal:
            journal.accepted("j1", client="c", key="k1", request=REQUEST)
            journal.done("j1", "done", entry={"achieved_t": 4})
        header, accepted, done = read_serve_journal(path)
        assert header["journal_version"] == SERVE_JOURNAL_VERSION
        assert header["config_digest"] == "abc"
        assert accepted["j1"]["request"] == REQUEST
        assert done["j1"]["entry"] == {"achieved_t": 4}

    def test_reopen_appends_without_second_header(self, tmp_path):
        path = tmp_path / "serve.jsonl"
        with ServeJournal(path, digest="abc") as journal:
            journal.accepted("j1", client="c", key="k", request=REQUEST)
        with ServeJournal(path, digest="abc") as journal:
            journal.done("j1", "done", entry={})
        lines = path.read_text().splitlines()
        headers = [l for l in lines if "journal_version" in l]
        assert len(headers) == 1
        assert unfinished_jobs(path) == {}

    def test_digest_mismatch_refuses(self, tmp_path):
        path = tmp_path / "serve.jsonl"
        ServeJournal(path, digest="abc").close()
        with pytest.raises(JournalError):
            ServeJournal(path, digest="different")


class TestResumeSet:
    def test_accepted_without_done_is_unfinished(self, tmp_path):
        path = tmp_path / "serve.jsonl"
        with ServeJournal(path, digest="d") as journal:
            journal.accepted("j1", client="c", key="k1", request=REQUEST)
            journal.accepted("j2", client="c", key="k2", request=REQUEST)
            journal.done("j1", "done", entry={})
        pending = unfinished_jobs(path)
        assert set(pending) == {"j2"}
        assert pending["j2"]["request"] == REQUEST

    def test_failed_done_lines_count_as_finished(self, tmp_path):
        path = tmp_path / "serve.jsonl"
        with ServeJournal(path, digest="d") as journal:
            journal.accepted("j1", client="c", key="k", request=REQUEST)
            journal.done("j1", "failed", error="boom",
                         failure={"kind": "crash"})
        assert unfinished_jobs(path) == {}
        _, _, done = read_serve_journal(path)
        assert done["j1"]["failure"]["kind"] == "crash"


class TestCorruption:
    def test_torn_tail_is_ignored(self, tmp_path):
        path = tmp_path / "serve.jsonl"
        with ServeJournal(path, digest="d") as journal:
            journal.accepted("j1", client="c", key="k", request=REQUEST)
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"event": "done", "job": "j1", "sta')  # torn
        header, accepted, done = read_serve_journal(path)
        assert header is not None
        assert "j1" in accepted and "j1" not in done
        assert set(unfinished_jobs(path)) == {"j1"}

    def test_unknown_version_raises(self, tmp_path):
        path = tmp_path / "serve.jsonl"
        path.write_text(json.dumps(
            {"journal_version": 99, "kind": "serve"}) + "\n")
        with pytest.raises(JournalError):
            read_serve_journal(path)

    def test_missing_file_is_empty(self, tmp_path):
        header, accepted, done = read_serve_journal(
            tmp_path / "absent.jsonl")
        assert header is None and not accepted and not done
