"""End-to-end daemon tests: real HTTP, real supervised workers.

Each test boots a private daemon on an ephemeral port via the
``daemon_factory`` fixture and drives it with :class:`ServeClient`.
White-box assertions (breaker state, stats counters) go straight to
the in-process daemon object, which is thread-safe by design.
"""

import time

import pytest

from repro.ddg.builders import serialize_ddg
from repro.ddg.kernels import daxpy, dot_product, livermore_kernel1
from repro.serve.client import ServeError
from repro.serve.config import ServeConfig
from repro.serve.journal import ServeJournal, read_serve_journal
from repro.supervision.journal import config_digest

MACHINE = "powerpc604"

DOT = serialize_ddg(dot_product())
DAXPY = serialize_ddg(daxpy())
LK1 = serialize_ddg(livermore_kernel1())


class TestSubmitPoll:
    def test_submit_then_wait_reaches_done(self, daemon_factory):
        client = daemon_factory().start()
        response = client.submit(DOT, MACHINE, backend="auto")
        doc = client.wait_for(response["job"], timeout=60)
        assert doc["state"] == "done"
        entry = doc["entry"]
        assert entry["schedule"] is not None
        assert entry["achieved_t"] >= entry["t_lb"]
        assert entry["winner_backend"] == "auto"

    def test_healthz_and_stats_shape(self, daemon_factory):
        client = daemon_factory().start()
        assert client.healthz() == {"ok": True, "draining": False}
        snap = client.stats()
        assert snap["queue"]["capacity"] == 64
        assert snap["mode"] == "running"
        assert "counters" in snap and "breakers" in snap

    def test_unknown_job_is_404(self, daemon_factory):
        client = daemon_factory().start()
        with pytest.raises(ServeError) as err:
            client.job("no-such-job")
        assert err.value.status == 404

    def test_bad_requests_are_400(self, daemon_factory):
        client = daemon_factory().start()
        for status, _ in (
            client.submit_raw("", MACHINE),
            client.submit_raw("not a ddg at all", MACHINE),
            client.submit_raw(DOT, "no-such-machine"),
            client.submit_raw(DOT, MACHINE, backend="no-such-backend"),
        ):
            assert status == 400

    def test_portfolio_submit_names_a_winner(self, daemon_factory):
        client = daemon_factory().start()
        response = client.submit(DOT, MACHINE, backend="portfolio")
        doc = client.wait_for(response["job"], timeout=60)
        assert doc["state"] == "done"
        assert doc["entry"]["winner_backend"] in ("highs", "bnb", "sat")


class TestCoalescing:
    def test_identical_submissions_share_one_solve(self, daemon_factory):
        host = daemon_factory()
        client = host.start()
        first = client.submit(DOT, MACHINE, backend="auto")
        second = client.submit(DOT, MACHINE, backend="auto")
        assert second["coalesced_with"] == first["job"]
        done_first = client.wait_for(first["job"], timeout=60)
        done_second = client.wait_for(second["job"], timeout=10)
        assert done_first["state"] == done_second["state"] == "done"
        assert done_first["entry"]["achieved_t"] == \
            done_second["entry"]["achieved_t"]
        assert host.daemon.stats.count("coalesced") == 1

    def test_different_requests_do_not_coalesce(self, daemon_factory):
        client = daemon_factory().start()
        first = client.submit(DOT, MACHINE, backend="auto")
        second = client.submit(DAXPY, MACHINE, backend="auto")
        assert "coalesced_with" not in second
        assert first["job"] != second["job"]


class TestAdmissionControl:
    def test_rate_limit_returns_429_with_retry_after(self, daemon_factory):
        client = daemon_factory(rate=0.001, burst=2).start()
        client.submit(DOT, MACHINE, client="bursty")
        client.submit(DOT, MACHINE, client="bursty")
        status, body = client.submit_raw(DOT, MACHINE, client="bursty")
        assert status == 429
        assert body["retry_after"] >= 1
        # Buckets are per client: a different caller is unaffected.
        status, _ = client.submit_raw(DOT, MACHINE, client="other")
        assert status == 200

    def test_full_queue_sheds_with_429(self, daemon_factory, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "hang@solve:seconds=30")
        host = daemon_factory(
            workers=1, queue_depth=1, deadline=20.0, drain_grace=0.2,
        )
        client = host.start()
        client.submit(DOT, MACHINE, backend="auto")
        deadline = time.monotonic() + 5
        while len(host.daemon.queue) and time.monotonic() < deadline:
            time.sleep(0.05)  # let the dispatcher claim the first job
        client.submit(DAXPY, MACHINE, backend="auto")  # fills the queue
        status, body = client.submit_raw(LK1, MACHINE, backend="auto")
        assert status == 429
        assert "queue" in body["error"]
        assert host.daemon.stats.count("shed") == 1


class TestDrain:
    def test_drain_refuses_new_work_and_stops(self, daemon_factory):
        host = daemon_factory(drain_grace=10.0)
        client = host.start()
        accepted = client.submit(DOT, MACHINE, backend="auto")
        client.drain()
        assert client.healthz()["draining"] is True
        status, body = client.submit_raw(DAXPY, MACHINE)
        assert status == 503
        assert "draining" in body["error"]
        # The accepted job still finishes inside the grace window.
        doc = client.wait_for(accepted["job"], timeout=60)
        assert doc["state"] == "done"
        host._thread.join(timeout=30)
        assert not host._thread.is_alive()
        assert host.daemon._mode == "halted"


class TestJournalResume:
    def _seed_interrupted_journal(self, path, config):
        """Write what a SIGKILLed daemon leaves: accepted, no done."""
        digest = config_digest("serve", **config.digest_settings())
        with ServeJournal(path, digest) as journal:
            journal.accepted(
                "orphan0001ab", client="survivor", key="k-orphan",
                request={
                    "ddg": DOT, "machine": MACHINE, "backend": "auto",
                    "objective": "feasibility", "time_limit": 5.0,
                    "warmstart": True,
                },
            )

    def test_interrupted_job_finishes_after_restart(
        self, daemon_factory, tmp_path
    ):
        journal = tmp_path / "serve.jsonl"
        config = ServeConfig(time_limit=5.0)
        self._seed_interrupted_journal(journal, config)
        host = daemon_factory(journal=str(journal), time_limit=5.0)
        client = host.start()
        # The poller that outlived the "crash" still gets its answer,
        # under the original job id.
        doc = client.wait_for("orphan0001ab", timeout=60)
        assert doc["state"] == "done"
        assert doc["entry"]["achieved_t"] >= 1
        assert host.daemon.stats.count("resumed") == 1
        _, accepted, done = read_serve_journal(journal)
        assert "orphan0001ab" in done

    def test_finished_jobs_survive_restart_for_polling(
        self, daemon_factory, tmp_path
    ):
        journal = tmp_path / "serve.jsonl"
        first = daemon_factory(journal=str(journal), time_limit=5.0)
        client = first.start()
        job_id = client.submit(DOT, MACHINE, backend="auto")["job"]
        done = client.wait_for(job_id, timeout=60)
        first.stop()
        second = daemon_factory(journal=str(journal), time_limit=5.0)
        client = second.start()
        replay = client.job(job_id)
        assert replay["state"] == "done"
        assert replay["entry"]["achieved_t"] == \
            done["entry"]["achieved_t"]


class TestBreakerConfinement:
    """A crashing backend is tripped out; the rest keep serving."""

    def test_tripped_backend_is_confined_then_probed(
        self, daemon_factory, monkeypatch
    ):
        monkeypatch.setenv("REPRO_FAULTS", "crash@attempt:backend=bnb")
        host = daemon_factory(
            breaker_threshold=1, breaker_cooldown=2.0, max_retries=0,
        )
        client = host.start()

        # 1. The faulted backend crashes its job and trips the breaker.
        # (warmstart off: the heuristic pre-pass would otherwise settle
        # the loop before any ILP attempt fires the fault site.)
        failed = client.submit(DOT, MACHINE, backend="bnb",
                               warmstart=False)
        doc = client.wait_for(failed["job"], timeout=60)
        assert doc["state"] == "failed"
        assert doc["failure"]["kind"] == "crash"
        assert host.daemon.breaker.state("bnb") == "open"

        # 2. Direct submissions to it are refused up front (503).
        status, body = client.submit_raw(DOT, MACHINE, backend="bnb")
        assert status == 503
        assert body["retry_after"] >= 1
        assert host.daemon.stats.count("breaker_rejected") == 1

        # 3. Portfolio jobs drop it from the roster and still serve.
        survived = client.submit(DAXPY, MACHINE, backend="portfolio")
        doc = client.wait_for(survived["job"], timeout=60)
        assert doc["state"] == "done"
        assert doc["entry"]["winner_backend"] != "bnb"
        assert client.stats()["breakers"]["bnb"]["state"] == "open"

        # 4. After the cooldown it re-enters half-open for one probe...
        time.sleep(2.1)
        assert host.daemon.breaker.allows("bnb")
        assert host.daemon.breaker.state("bnb") == "half_open"
        assert "bnb" in host.daemon.breaker.filter_roster(
            ("highs", "bnb", "sat")
        )

        # 5. ...and the still-crashing probe re-opens it immediately.
        probe = client.submit(LK1, MACHINE, backend="bnb",
                              warmstart=False)
        doc = client.wait_for(probe["job"], timeout=60)
        assert doc["state"] == "failed"
        assert host.daemon.breaker.state("bnb") == "open"
