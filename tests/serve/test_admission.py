"""Unit tests for admission control: token buckets and fair queueing."""

from repro.serve.admission import FairQueue, TokenBucket


class FakeClock:
    def __init__(self, now: float = 0.0) -> None:
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestTokenBucket:
    def test_burst_then_refusal(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=1.0, burst=3, clock=clock)
        assert bucket.take() is None
        assert bucket.take() is None
        assert bucket.take() is None
        wait = bucket.take()
        assert wait is not None and wait > 0

    def test_refills_at_rate(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=2.0, burst=2, clock=clock)
        assert bucket.take() is None
        assert bucket.take() is None
        assert bucket.take() is not None
        clock.advance(0.5)  # 2/s * 0.5s = one token back
        assert bucket.take() is None
        assert bucket.take() is not None

    def test_retry_after_is_time_to_next_token(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=4.0, burst=1, clock=clock)
        assert bucket.take() is None
        wait = bucket.take()
        assert wait is not None
        assert abs(wait - 0.25) < 1e-9

    def test_never_exceeds_burst(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=10.0, burst=2, clock=clock)
        clock.advance(100.0)  # long idle must not bank extra tokens
        assert bucket.take() is None
        assert bucket.take() is None
        assert bucket.take() is not None


class TestFairQueue:
    def test_fifo_for_one_client(self):
        queue = FairQueue(depth=8)
        for i in range(4):
            assert queue.push(i, client="a")
        assert [queue.pop() for _ in range(4)] == [0, 1, 2, 3]

    def test_depth_bound_sheds(self):
        queue = FairQueue(depth=2)
        assert queue.push("x", client="a")
        assert queue.push("y", client="a")
        assert not queue.push("z", client="a")  # full: load-shed signal
        assert len(queue) == 2

    def test_interleaves_equal_weight_clients(self):
        queue = FairQueue(depth=16)
        for i in range(3):
            queue.push(("a", i), client="a")
        for i in range(3):
            queue.push(("b", i), client="b")
        order = [queue.pop() for _ in range(6)]
        # A burst from one client must not starve the other: each
        # client's items alternate rather than draining a first.
        first_three = order[:3]
        assert {item[0] for item in first_three} == {"a", "b"}

    def test_weight_biases_service(self):
        queue = FairQueue(depth=32)
        for i in range(6):
            queue.push(("heavy", i), client="heavy", weight=3)
            queue.push(("light", i), client="light", weight=1)
        order = [queue.pop() for _ in range(8)]
        heavy = sum(1 for item in order if item[0] == "heavy")
        light = sum(1 for item in order if item[0] == "light")
        assert heavy > light

    def test_pop_empty_returns_none(self):
        queue = FairQueue(depth=4)
        assert queue.pop() is None
        queue.push("x", client="a")
        assert queue.pop() == "x"
        assert queue.pop() is None
