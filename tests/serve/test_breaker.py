"""Unit tests for the per-backend circuit breaker."""

from repro.serve.breaker import CircuitBreaker


class FakeClock:
    def __init__(self, now: float = 0.0) -> None:
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestTripping:
    def test_starts_closed_and_allows(self):
        breaker = CircuitBreaker()
        assert breaker.allows("highs")
        assert breaker.state("highs") == "closed"

    def test_trips_after_threshold_consecutive_failures(self):
        breaker = CircuitBreaker(threshold=3, clock=FakeClock())
        breaker.record_failure("highs", "crash")
        breaker.record_failure("highs", "crash")
        assert breaker.allows("highs")
        breaker.record_failure("highs", "hang")
        assert breaker.state("highs") == "open"
        assert not breaker.allows("highs")

    def test_success_resets_the_consecutive_count(self):
        breaker = CircuitBreaker(threshold=3, clock=FakeClock())
        breaker.record_failure("highs", "crash")
        breaker.record_failure("highs", "crash")
        breaker.record_success("highs")
        breaker.record_failure("highs", "crash")
        breaker.record_failure("highs", "crash")
        assert breaker.allows("highs")  # never hit 3 in a row

    def test_backends_are_independent(self):
        breaker = CircuitBreaker(threshold=1, clock=FakeClock())
        breaker.record_failure("sat", "crash")
        assert not breaker.allows("sat")
        assert breaker.allows("highs")
        assert breaker.allows("bnb")


class TestCooldown:
    def test_half_opens_after_cooldown(self):
        clock = FakeClock()
        breaker = CircuitBreaker(threshold=1, cooldown=10.0, clock=clock)
        breaker.record_failure("highs", "crash")
        assert not breaker.allows("highs")
        clock.advance(9.9)
        assert not breaker.allows("highs")
        clock.advance(0.2)
        assert breaker.allows("highs")  # one probe permitted
        assert breaker.state("highs") == "half_open"

    def test_half_open_success_closes(self):
        clock = FakeClock()
        breaker = CircuitBreaker(threshold=1, cooldown=5.0, clock=clock)
        breaker.record_failure("highs", "crash")
        clock.advance(6.0)
        assert breaker.allows("highs")
        breaker.record_success("highs")
        assert breaker.state("highs") == "closed"
        assert breaker.allows("highs")

    def test_half_open_failure_reopens_immediately(self):
        clock = FakeClock()
        breaker = CircuitBreaker(threshold=3, cooldown=5.0, clock=clock)
        for _ in range(3):
            breaker.record_failure("highs", "crash")
        clock.advance(6.0)
        assert breaker.allows("highs")  # half-open probe
        breaker.record_failure("highs", "crash")
        # A single half-open failure re-opens; no need for `threshold`
        # fresh failures.
        assert breaker.state("highs") == "open"
        assert not breaker.allows("highs")

    def test_retry_after_counts_down(self):
        clock = FakeClock()
        breaker = CircuitBreaker(threshold=1, cooldown=10.0, clock=clock)
        breaker.record_failure("highs", "crash")
        assert breaker.retry_after("highs") == 10.0
        clock.advance(4.0)
        assert abs(breaker.retry_after("highs") - 6.0) < 1e-9
        clock.advance(10.0)
        assert breaker.retry_after("highs") == 0.0


class TestRosterAndSnapshot:
    def test_filter_roster_drops_open_backends(self):
        clock = FakeClock()
        breaker = CircuitBreaker(threshold=1, cooldown=5.0, clock=clock)
        breaker.record_failure("bnb", "oom")
        assert breaker.filter_roster(("highs", "bnb", "sat")) == \
            ("highs", "sat")
        clock.advance(6.0)
        # Cooldown elapsed: bnb is probe-eligible again.
        assert breaker.filter_roster(("highs", "bnb", "sat")) == \
            ("highs", "bnb", "sat")

    def test_snapshot_reports_state_and_taxonomy(self):
        clock = FakeClock()
        breaker = CircuitBreaker(threshold=2, cooldown=10.0, clock=clock)
        breaker.record_success("highs")
        breaker.record_failure("sat", "hang")
        breaker.record_failure("sat", "hang")
        snap = breaker.snapshot()
        assert snap["highs"]["state"] == "closed"
        assert snap["sat"]["state"] == "open"
        assert snap["sat"]["consecutive_failures"] == 2
        assert snap["sat"]["last_failure_kind"] == "hang"
        assert snap["sat"]["retry_after"] == 10.0
