"""Shared fixtures for the test suite."""

import random

import pytest

from repro.ddg.generators import GeneratorConfig, random_ddg
from repro.ddg.kernels import motivating_example
from repro.machine.presets import (
    clean_machine,
    motivating_machine,
    nonpipelined_machine,
    powerpc604,
    unclean_demo_machine,
)


@pytest.fixture
def motivating():
    return motivating_machine()


@pytest.fixture
def clean():
    return clean_machine()

@pytest.fixture
def nonpipelined():
    return nonpipelined_machine()


@pytest.fixture
def ppc604():
    return powerpc604()


@pytest.fixture
def unclean_demo():
    return unclean_demo_machine()


@pytest.fixture
def motivating_ddg():
    return motivating_example()


@pytest.fixture
def small_corpus(ppc604):
    """Ten small reproducible loops on the PowerPC-604 model."""
    rng = random.Random(42)
    config = GeneratorConfig(min_ops=2, max_ops=10)
    return [
        random_ddg(rng, ppc604, config, name=f"t{i}") for i in range(10)
    ]
