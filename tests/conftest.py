"""Shared fixtures for the test suite."""

import random

import pytest

from repro.corpusgen import default_families, generate_corpus
from repro.ddg.generators import GeneratorConfig, random_ddg
from repro.ddg.kernels import motivating_example
from repro.machine.presets import (
    clean_machine,
    coreblocks,
    deep_unclean,
    motivating_machine,
    nonpipelined_machine,
    powerpc604,
    unclean_demo_machine,
)


@pytest.fixture
def motivating():
    return motivating_machine()


@pytest.fixture
def clean():
    return clean_machine()

@pytest.fixture
def nonpipelined():
    return nonpipelined_machine()


@pytest.fixture
def ppc604():
    return powerpc604()


@pytest.fixture
def unclean_demo():
    return unclean_demo_machine()


@pytest.fixture
def motivating_ddg():
    return motivating_example()


@pytest.fixture
def small_corpus(ppc604):
    """Ten small reproducible loops on the PowerPC-604 model."""
    rng = random.Random(42)
    config = GeneratorConfig(min_ops=2, max_ops=10)
    return [
        random_ddg(rng, ppc604, config, name=f"t{i}") for i in range(10)
    ]


@pytest.fixture
def coreblocks_machine():
    return coreblocks()


@pytest.fixture
def deep_unclean_machine():
    return deep_unclean()


@pytest.fixture(params=["coreblocks", "deep-unclean"])
def hazard_machine(request):
    """Each of the hazard-heavy presets in turn (parameterized)."""
    return {"coreblocks": coreblocks, "deep-unclean": deep_unclean}[
        request.param
    ]()


@pytest.fixture
def corpus_factory():
    """Factory for seeded in-memory generated corpora.

    ``corpus_factory(count=..., seed=..., machine=..., mode=...)``
    returns the same loops ``repro gen`` would emit for those knobs —
    the in-memory face of the corpus generator.
    """
    def make(count=12, seed=42, machine=None, mode="mixed",
             profile="scalar", **family_kwargs):
        machine = machine or powerpc604()
        families = default_families(
            count, mode=mode, profile=profile, **family_kwargs
        )
        return generate_corpus(seed, machine, families)

    return make
