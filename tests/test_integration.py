"""Cross-module integration and end-to-end property tests.

These tie the whole stack together: generator -> bounds -> ILP ->
extraction -> independent verifier -> cycle-accurate simulator, plus
cross-backend agreement and heuristic dominance, on randomized loops.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import (
    MappingError,
    lower_bounds,
    schedule_loop,
    verify_schedule,
)
from repro.baselines import iterative_modulo_schedule, list_schedule
from repro.core.schedule import greedy_mapping
from repro.ddg.generators import GeneratorConfig, random_ddg, suite
from repro.machine.presets import (
    clean_machine,
    motivating_machine,
    powerpc604,
    unclean_demo_machine,
)
from repro.sim import simulate


class TestPublicApi:
    def test_quickstart_flow(self):
        """The README quickstart, as a test."""
        from repro import kernels, presets

        machine = presets.motivating_machine()
        loop = kernels.motivating_example()
        result = schedule_loop(loop, machine)
        assert result.schedule is not None
        assert "motivating" in result.summary()

    def test_version(self):
        import repro

        assert repro.__version__ == "1.0.0"


class TestFullStackOnCorpus:
    @pytest.fixture(scope="class")
    def corpus(self):
        return suite(20, powerpc604(), seed=20)

    def test_schedule_verify_simulate(self, corpus):
        machine = powerpc604()
        scheduled = 0
        for ddg in corpus:
            result = schedule_loop(ddg, machine, time_limit_per_t=5.0)
            if result.schedule is None:
                continue
            scheduled += 1
            verify_schedule(result.schedule)
            report = simulate(result.schedule, iterations=8)
            assert report.ok, (ddg.name, report.first_violation())
        assert scheduled >= len(corpus) * 3 // 4

    def test_t_never_below_bounds(self, corpus):
        machine = powerpc604()
        for ddg in corpus[:10]:
            result = schedule_loop(ddg, machine, time_limit_per_t=5.0)
            if result.achieved_t is not None:
                assert result.achieved_t >= result.bounds.t_lb


class TestBackendAgreement:
    @settings(max_examples=10, deadline=None)
    @given(st.integers(0, 10_000))
    def test_property_backends_agree_on_achieved_t(self, seed):
        machine = unclean_demo_machine()
        ddg = random_ddg(
            random.Random(seed), machine,
            GeneratorConfig(min_ops=2, max_ops=5,
                            class_weights={"op": 1.0}),
        )
        highs = schedule_loop(ddg, machine, backend="highs", max_extra=12)
        bnb = schedule_loop(ddg, machine, backend="bnb", max_extra=12)
        assert highs.achieved_t == bnb.achieved_t


class TestUncleanDemoMachine:
    def test_single_unclean_unit_serializes(self):
        """On one FU with table [[1,0,1],[0,1,0]], two independent ops
        can still dovetail: the ILP should find the interleaving."""
        machine = unclean_demo_machine()
        from repro.ddg import Ddg

        g = Ddg("two")
        g.add_op("a", "op")
        g.add_op("b", "op")
        result = schedule_loop(g, machine)
        assert result.schedule is not None
        verify_schedule(result.schedule)
        # stage-0 usage: 2 cells per op -> T_res = 4.
        assert result.bounds.t_res == 4

    def test_greedy_vs_ilp_gap_exists_somewhere(self):
        """The coloring ILP must beat greedy mapping on the §2 instance —
        regression test that the phenomenon stays reproducible."""
        machine = motivating_machine()
        from repro.ddg.kernels import motivating_example

        ddg = motivating_example()
        counting = schedule_loop(ddg, machine, mapping=False)
        assert counting.achieved_t == 3
        with pytest.raises(MappingError):
            greedy_mapping(
                ddg, machine, counting.schedule.starts, 3
            )


class TestHeuristicsIntegration:
    @settings(max_examples=10, deadline=None)
    @given(st.integers(0, 10_000))
    def test_property_ordering_ilp_heuristic_sequential(self, seed):
        """T_lb <= T_ilp <= II_heuristic and T_ilp <= II_sequential."""
        machine = clean_machine()
        ddg = random_ddg(
            random.Random(seed), machine,
            GeneratorConfig(min_ops=2, max_ops=8),
        )
        bounds = lower_bounds(ddg, machine)
        ilp = schedule_loop(ddg, machine, max_extra=30)
        heuristic = iterative_modulo_schedule(ddg, machine)
        sequential = list_schedule(ddg, machine)
        if ilp.achieved_t is None:
            return
        assert bounds.t_lb <= ilp.achieved_t
        assert ilp.achieved_t <= sequential.effective_ii
        if heuristic.achieved_ii is not None:
            assert ilp.achieved_t <= heuristic.achieved_ii
