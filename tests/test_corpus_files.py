"""Regression tests over the checked-in corpus/ directory."""

import pathlib

import pytest

from repro.core import schedule_loop, verify_schedule
from repro.ddg.builders import parse_ddg, serialize_ddg
from repro.ddg.generators import suite
from repro.machine.presets import powerpc604
from repro.sim import simulate

CORPUS_DIR = pathlib.Path(__file__).resolve().parent.parent / "corpus"
FILES = sorted(CORPUS_DIR.glob("*.ddg"))


@pytest.fixture(scope="module")
def machine():
    return powerpc604()


def test_corpus_present():
    assert len(FILES) == 24


def test_generator_reproduces_files_exactly(machine):
    """Seed 1995 must regenerate the checked-in corpus byte-for-byte;
    a mismatch means the generator's output silently changed."""
    regenerated = suite(24, machine, seed=1995)
    for path, ddg in zip(FILES, regenerated):
        assert path.read_text(encoding="utf-8") == serialize_ddg(ddg), (
            f"{path.name} drifted from the generator's output"
        )


@pytest.mark.parametrize("path", FILES, ids=lambda p: p.stem)
def test_corpus_loop_schedules(path, machine):
    ddg = parse_ddg(path.read_text(encoding="utf-8"))
    result = schedule_loop(ddg, machine, time_limit_per_t=10.0,
                           max_extra=30)
    assert result.schedule is not None, path.name
    verify_schedule(result.schedule)
    report = simulate(result.schedule, iterations=6)
    assert report.ok, (path.name, report.first_violation())
