"""End-to-end semantic validation: scheduled loops compute the same
values as the sequential reference interpreter.

This is the library's strongest correctness statement: source is
compiled (dependence analysis), scheduled by the ILP (aggressive
reordering + software pipelining), then replayed *at the scheduled
cycles* against a timed memory model — and the final memory must match
running the source loop sequentially, for random inputs.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import schedule_loop, verify_schedule
from repro.frontend import compile_loop
from repro.frontend.interp import run_loop
from repro.frontend.lower import compile_loop_semantics
from repro.frontend.parser import parse_loop
from repro.machine.presets import powerpc604
from repro.sim.functional import execute_dataflow

SOURCES = {
    "sdot": "for i:\n    s = s + x[i] * y[i]\n    out[i] = s\n",
    "daxpy": "for i:\n    y[i] = y[i] + alpha * x[i]\n",
    "smooth": "for i:\n    d[i+1] = (d[i] + e[i]) * 0.5\n",
    "shift": "for i:\n    b[i] = a[i+2] - a[i]\n    a[i+1] = b[i] * 0.25\n",
    "chain": (
        "for i:\n    t = p[i] / 2\n    u = t - q[i]\n"
        "    r[i] = u * u\n"
    ),
    "carried": (
        "for i:\n    w = v * 0.5 + a[i]\n    v = w + 1\n    c[i] = w\n"
    ),
}

ARRAY_NAMES = ("x", "y", "out", "d", "e", "a", "b", "p", "q", "r", "c")
SCALARS = {"s": 0.0, "alpha": 1.5, "v": 2.0}
ITERATIONS = 6
ARRAY_LEN = ITERATIONS + 4


def _run_both(name: str, source: str, seed: int):
    rng = random.Random(seed)
    arrays = {
        array: [round(rng.uniform(-4, 4), 3) for _ in range(ARRAY_LEN)]
        for array in ARRAY_NAMES
    }
    machine = powerpc604()

    # Sequential reference.
    reference = {k: list(v) for k, v in arrays.items()}
    scalars_ref = dict(SCALARS)
    run_loop(parse_loop(source, name), reference, scalars_ref, ITERATIONS)

    # Compile, schedule rate-optimally, verify, replay functionally.
    compiled = compile_loop_semantics(source, name=name)
    result = schedule_loop(compiled.ddg, machine, max_extra=30)
    assert result.schedule is not None, name
    verify_schedule(result.schedule)
    outcome = execute_dataflow(
        compiled, result.schedule, arrays, dict(SCALARS), ITERATIONS
    )
    return reference, outcome.arrays


@pytest.mark.parametrize("name", sorted(SOURCES))
def test_scheduled_execution_matches_reference(name):
    reference, scheduled = _run_both(name, SOURCES[name], seed=1)
    for array in ARRAY_NAMES:
        assert scheduled[array] == pytest.approx(reference[array]), (
            name, array,
        )


@settings(max_examples=20, deadline=None)
@given(
    st.sampled_from(sorted(SOURCES)),
    st.integers(0, 10_000),
)
def test_property_semantics_preserved_on_random_inputs(name, seed):
    reference, scheduled = _run_both(name, SOURCES[name], seed=seed)
    for array in ARRAY_NAMES:
        assert scheduled[array] == pytest.approx(reference[array]), (
            name, array,
        )


def test_compile_variants_agree_semantically():
    """CSE on/off must not change computed values."""
    source = SOURCES["shift"]
    machine = powerpc604()
    results = []
    for cse in (True, False):
        compiled = compile_loop_semantics(source, name="shift", cse=cse)
        outcome = schedule_loop(compiled.ddg, machine, max_extra=30)
        rng = random.Random(3)
        arrays = {
            array: [rng.uniform(-2, 2) for _ in range(ARRAY_LEN)]
            for array in ARRAY_NAMES
        }
        run = execute_dataflow(
            compiled, outcome.schedule, arrays, dict(SCALARS), ITERATIONS
        )
        results.append(run.arrays)
    for array in ARRAY_NAMES:
        assert results[0][array] == pytest.approx(results[1][array])


def test_mismatched_schedule_rejected():
    compiled = compile_loop_semantics(SOURCES["daxpy"], name="daxpy")
    other = compile_loop(SOURCES["daxpy"], name="daxpy")
    machine = powerpc604()
    result = schedule_loop(other, machine)
    from repro.frontend.errors import FrontendError

    with pytest.raises(FrontendError, match="different DDG"):
        execute_dataflow(
            compiled, result.schedule, {}, dict(SCALARS), 2
        )
