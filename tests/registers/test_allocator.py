"""Tests for the cyclic-interval register allocator."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import VerificationError, schedule_loop
from repro.core.schedule import Schedule, greedy_mapping
from repro.ddg import Ddg
from repro.ddg.generators import GeneratorConfig, random_ddg
from repro.ddg.kernels import KERNELS, motivating_example
from repro.machine.presets import motivating_machine, powerpc604
from repro.registers import (
    allocate_registers,
    max_live,
    unroll_factor,
    validate_allocation,
    value_ranges,
)


@pytest.fixture
def schedule_b():
    ddg = motivating_example()
    machine = motivating_machine()
    starts = [0, 1, 3, 5, 7, 11]
    colors = greedy_mapping(ddg, machine, starts, 4)
    return Schedule(ddg=ddg, machine=machine, t_period=4,
                    starts=starts, colors=colors)


class TestValueRanges:
    def test_one_range_per_producing_op(self, schedule_b):
        producers = {v.producer for v in value_ranges(schedule_b)}
        # i5 (store) produces nothing; ops with zero-span values drop out.
        assert 5 not in producers

    def test_consumers_merge(self):
        """One producer with two consumers yields one range ending at
        the later consumer."""
        machine = powerpc604()
        g = Ddg("fan")
        a = g.add_op("a", "fadd")
        b = g.add_op("b", "fadd")
        c = g.add_op("c", "fadd")
        g.add_dep(a, b)
        g.add_dep(a, c)
        schedule = Schedule(ddg=g, machine=machine, t_period=3,
                            starts=[0, 3, 8], colors={0: 0, 1: 0, 2: 0})
        ranges = value_ranges(schedule)
        mine = [v for v in ranges if v.producer == 0]
        assert len(mine) == 1
        assert mine[0].last_use == 8


class TestAllocation:
    def test_schedule_b_allocates(self, schedule_b):
        allocation = allocate_registers(schedule_b)
        assert allocation.num_registers >= max_live(schedule_b)
        assert allocation.unroll == unroll_factor(schedule_b)

    def test_within_twice_maxlive(self, schedule_b):
        """First-fit circular-arc coloring stays under 2*MaxLive."""
        allocation = allocate_registers(schedule_b)
        assert allocation.num_registers <= max(1, 2 * max_live(schedule_b))

    def test_long_lifetime_gets_rotated_copies(self):
        machine = powerpc604()
        g = Ddg("slack")
        g.add_op("a", "add")
        g.add_op("b", "add")
        g.add_dep("a", "b")
        schedule = Schedule(ddg=g, machine=machine, t_period=2,
                            starts=[0, 9], colors={0: 0, 1: 0})
        allocation = allocate_registers(schedule)
        assert allocation.unroll == 4
        # The four in-flight copies need four distinct registers.
        registers = {
            allocation.assignment[(0, copy)] for copy in range(4)
        }
        assert len(registers) == 4

    def test_register_budget_enforced(self):
        machine = powerpc604()
        g = Ddg("slack")
        g.add_op("a", "add")
        g.add_op("b", "add")
        g.add_dep("a", "b")
        schedule = Schedule(ddg=g, machine=machine, t_period=2,
                            starts=[0, 9], colors={0: 0, 1: 0})
        with pytest.raises(VerificationError, match="available"):
            allocate_registers(schedule, max_registers=2)

    def test_render_lists_values(self, schedule_b):
        allocation = allocate_registers(schedule_b)
        text = allocation.render()
        assert "register allocation" in text
        assert "i2" in text

    def test_register_names(self, schedule_b):
        allocation = allocate_registers(schedule_b)
        name = allocation.register_name(2, 0)
        assert name.startswith("r")


class TestValidator:
    def test_catches_tampered_assignment(self, schedule_b):
        allocation = allocate_registers(schedule_b)
        if allocation.num_registers < 2:
            pytest.skip("needs two registers to collide")
        # Force every value into register 0.
        for key in allocation.assignment:
            allocation.assignment[key] = 0
        with pytest.raises(VerificationError, match="holds two values"):
            validate_allocation(allocation)


class TestOnKernels:
    @pytest.mark.parametrize("name", sorted(KERNELS))
    def test_all_kernels_allocate(self, name):
        machine = powerpc604()
        result = schedule_loop(KERNELS[name](), machine)
        allocation = allocate_registers(result.schedule)
        # A perfectly tight schedule can need zero registers (every
        # value consumed the cycle it is produced); the invariant is
        # consistency with MaxLive, not a particular count.
        assert allocation.num_registers >= max_live(result.schedule)
        validate_allocation(allocation)


@settings(max_examples=15, deadline=None)
@given(st.integers(0, 10_000))
def test_property_allocations_valid_and_bounded(seed):
    """Property: allocation validates and sits in [MaxLive, 2*MaxLive]."""
    machine = powerpc604()
    ddg = random_ddg(
        random.Random(seed), machine, GeneratorConfig(min_ops=2, max_ops=8)
    )
    result = schedule_loop(ddg, machine, max_extra=30)
    if result.schedule is None:
        return
    allocation = allocate_registers(result.schedule)
    lower = max_live(result.schedule)
    assert lower <= allocation.num_registers <= max(1, 2 * lower)
