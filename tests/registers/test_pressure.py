"""Tests for register/buffer pressure analysis."""

import pytest

from repro.core import FormulationOptions, Formulation, schedule_loop
from repro.core.schedule import Schedule, greedy_mapping
from repro.ddg import Ddg
from repro.ddg.kernels import motivating_example
from repro.machine.presets import motivating_machine, powerpc604
from repro.registers import (
    buffer_requirements,
    lifetimes,
    max_live,
    total_buffers,
    unroll_factor,
)


@pytest.fixture
def schedule_b():
    ddg = motivating_example()
    machine = motivating_machine()
    starts = [0, 1, 3, 5, 7, 11]
    colors = greedy_mapping(ddg, machine, starts, 4)
    return Schedule(ddg=ddg, machine=machine, t_period=4,
                    starts=starts, colors=colors)


class TestLifetimes:
    def test_count_matches_deps(self, schedule_b):
        assert len(lifetimes(schedule_b)) == schedule_b.ddg.num_deps

    def test_flow_edge_spans(self, schedule_b):
        lives = {(l.producer, l.consumer): l for l in lifetimes(schedule_b)}
        # i0 (load@0, lat 3) -> i2 (@3): defined at 3, used at 3.
        assert lives[(0, 2)].span == 0
        # i2 (fadd@3, lat 2) -> i3 (@5): defined at 5, used at 5.
        assert lives[(2, 3)].span == 0
        # i4 (@7, lat 2) -> i5 (@11): defined at 9, used at 11.
        assert lives[(4, 5)].span == 2

    def test_loop_carried_lifetime(self, schedule_b):
        lives = {(l.producer, l.consumer, l.distance): l
                 for l in lifetimes(schedule_b)}
        # Self-loop on i2 (m=1): defined at 5, used at 3 + 4 = 7.
        self_loop = lives[(2, 2, 1)]
        assert self_loop.define_time == 5
        assert self_loop.last_use == 7
        assert self_loop.span == 2


class TestBuffers:
    def test_all_at_least_one(self, schedule_b):
        assert all(v >= 1 for v in buffer_requirements(schedule_b).values())

    def test_slack_edges_cost_more(self, schedule_b):
        buffers = buffer_requirements(schedule_b)
        # i1@1 -> i3@5: issue-to-use 4 cycles = exactly one period.
        deps = schedule_b.ddg.deps
        idx = next(i for i, d in enumerate(deps)
                   if (d.src, d.dst) == (1, 3))
        assert buffers[idx] == 1
        # i4@7 -> i5@11: 4 cycles -> 1 buffer; self-loop i2: 4+... = 2?
        self_idx = next(i for i, d in enumerate(deps) if d.src == d.dst)
        # issue-to-use = t_i2 + T*1 - t_i2 = 4 -> ceil(4/4) = 1.
        assert buffers[self_idx] == 1

    def test_total(self, schedule_b):
        assert total_buffers(schedule_b) == sum(
            buffer_requirements(schedule_b).values()
        )

    def test_min_buffers_objective_not_worse(self):
        """A min_buffers solution never uses more buffers than a
        feasibility solution at the same T."""
        ddg = motivating_example()
        machine = motivating_machine()
        plain = Formulation(ddg, machine, 4)
        plain_schedule = plain.extract(plain.solve())
        tuned = Formulation(
            ddg, machine, 4, FormulationOptions(objective="min_buffers")
        )
        tuned_schedule = tuned.extract(tuned.solve())
        assert total_buffers(tuned_schedule) <= total_buffers(plain_schedule)


class TestMaxLive:
    def test_nonnegative_and_bounded(self, schedule_b):
        peak = max_live(schedule_b)
        assert 0 <= peak <= schedule_b.ddg.num_deps * 3

    def test_zero_span_values_dont_count(self):
        machine = powerpc604()
        g = Ddg("chain")
        g.add_op("a", "add")
        g.add_op("b", "add")
        g.add_dep("a", "b")
        schedule = Schedule(ddg=g, machine=machine, t_period=1,
                            starts=[0, 1], colors={0: 0, 1: 0})
        assert max_live(schedule) == 0

    def test_long_lifetime_raises_pressure(self):
        machine = powerpc604()
        g = Ddg("slack")
        g.add_op("a", "add")
        g.add_op("b", "add")
        g.add_dep("a", "b")
        schedule = Schedule(ddg=g, machine=machine, t_period=2,
                            starts=[0, 9], colors={0: 0, 1: 0})
        # Value live [1, 9): 8 cycles over period 2 -> 4 copies in flight.
        assert max_live(schedule) == 4


class TestUnrollFactor:
    def test_tight_schedule_needs_no_unroll(self, schedule_b):
        assert unroll_factor(schedule_b) == 1

    def test_stretched_schedule_needs_unroll(self):
        machine = powerpc604()
        g = Ddg("slack")
        g.add_op("a", "add")
        g.add_op("b", "add")
        g.add_dep("a", "b")
        schedule = Schedule(ddg=g, machine=machine, t_period=2,
                            starts=[0, 9], colors={0: 0, 1: 0})
        assert unroll_factor(schedule) == 4

    def test_every_ilp_schedule_has_finite_factor(self):
        machine = powerpc604()
        result = schedule_loop(motivating_example(), machine)
        assert unroll_factor(result.schedule) >= 1
