"""Metamorphic cross-checks: the static verifier vs the replay simulator.

The modulo-arithmetic verifier (:mod:`repro.core.verify`) and the
absolute-time simulator (:mod:`repro.sim`) are independent
implementations of the same legality definition, so on any schedule
whose fields are *domain-valid* (non-negative starts, in-range colors)
they must agree:

    verify_schedule passes  <=>  simulate reports no violation

We take ILP schedules for random loops, apply random domain-preserving
mutations (start perturbations, color swaps/reassignments), and assert
the equivalence each time.  This is the strongest guard against modulo
wrap-around bugs in either implementation.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import VerificationError, schedule_loop, verify_schedule
from repro.ddg.generators import GeneratorConfig, random_ddg
from repro.machine.presets import motivating_machine, powerpc604
from repro.sim import simulate


def _mutate(rng: random.Random, schedule) -> None:
    """Apply one random domain-preserving mutation in place."""
    kind = rng.choice(("bump_start", "reassign_color", "swap_colors"))
    n = schedule.ddg.num_ops
    if kind == "bump_start":
        victim = rng.randrange(n)
        delta = rng.choice((-2, -1, 1, 2, schedule.t_period))
        schedule.starts[victim] = max(0, schedule.starts[victim] + delta)
    elif kind == "reassign_color":
        victim = rng.randrange(n)
        fu = schedule.machine.fu_type_of(
            schedule.ddg.ops[victim].op_class
        )
        schedule.colors[victim] = rng.randrange(fu.count)
    else:
        a, b = rng.randrange(n), rng.randrange(n)
        fu_a = schedule.machine.fu_type_of(schedule.ddg.ops[a].op_class)
        fu_b = schedule.machine.fu_type_of(schedule.ddg.ops[b].op_class)
        if fu_a.name == fu_b.name:
            schedule.colors[a], schedule.colors[b] = (
                schedule.colors[b], schedule.colors[a],
            )


def _agree(schedule) -> None:
    """Assert verifier and simulator agree on this schedule."""
    horizon = schedule.num_software_stages + 6
    try:
        verify_schedule(schedule)
        verdict = True
    except VerificationError as exc:
        verdict = False
        reason = str(exc)
    report = simulate(schedule, iterations=horizon)
    if verdict:
        assert report.ok, (
            f"verifier accepted but simulator found: "
            f"{report.first_violation()}"
        )
    else:
        assert not report.ok, (
            f"verifier rejected ({reason}) but simulation was clean"
        )


@settings(max_examples=30, deadline=None)
@given(st.integers(0, 100_000))
def test_property_verifier_equals_simulator(seed):
    rng = random.Random(seed)
    machine = powerpc604()
    ddg = random_ddg(rng, machine, GeneratorConfig(min_ops=2, max_ops=8))
    result = schedule_loop(ddg, machine, max_extra=30)
    if result.schedule is None:
        return
    schedule = result.schedule
    _agree(schedule)  # pristine schedules agree trivially
    for _ in range(4):
        _mutate(rng, schedule)
        _agree(schedule)


@settings(max_examples=20, deadline=None)
@given(st.integers(0, 100_000))
def test_property_agreement_on_unclean_machine(seed):
    """Same equivalence where the structural hazards actually bite."""
    rng = random.Random(seed)
    machine = motivating_machine()
    config = GeneratorConfig(
        min_ops=2, max_ops=6,
        class_weights={"fadd": 0.4, "fmul": 0.2, "load": 0.25,
                       "store": 0.15},
    )
    ddg = random_ddg(rng, machine, config)
    result = schedule_loop(ddg, machine, max_extra=30)
    if result.schedule is None:
        return
    schedule = result.schedule
    for _ in range(5):
        _mutate(rng, schedule)
        _agree(schedule)


def test_known_disagreement_domains_are_guarded():
    """Out-of-domain fields (negative starts, out-of-range colors) are
    the verifier's job alone — document that the equivalence is scoped
    to domain-valid schedules."""
    machine = motivating_machine()
    from repro.ddg.kernels import motivating_example
    from repro.core.schedule import Schedule, greedy_mapping

    ddg = motivating_example()
    starts = [0, 1, 3, 5, 7, 11]
    colors = greedy_mapping(ddg, machine, starts, 4)
    schedule = Schedule(ddg=ddg, machine=machine, t_period=4,
                        starts=starts, colors=colors)
    schedule.colors[2] = 99  # out of range: verifier rejects...
    with pytest.raises(VerificationError, match="unit"):
        verify_schedule(schedule)
    # ...while the simulator happily opens a phantom unit - by design.
    assert simulate(schedule, iterations=6).ok
