"""Tests for reservation tables and their modulo arithmetic."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.machine import MachineError, ReservationTable


class TestConstruction:
    def test_basic(self):
        table = ReservationTable([[1, 0], [0, 1]])
        assert table.num_stages == 2
        assert table.length == 2

    def test_rejects_empty(self):
        with pytest.raises(MachineError):
            ReservationTable([])

    def test_rejects_non_binary(self):
        with pytest.raises(MachineError, match="0 or 1"):
            ReservationTable([[2, 0]])

    def test_rejects_all_zero(self):
        with pytest.raises(MachineError, match="at least one"):
            ReservationTable([[0, 0], [0, 0]])

    def test_rejects_1d(self):
        with pytest.raises(MachineError):
            ReservationTable([1, 0])  # type: ignore[list-item]

    def test_matrix_is_readonly(self):
        table = ReservationTable([[1, 0]])
        with pytest.raises(ValueError):
            table.matrix[0, 0] = 0

    def test_clean_constructor(self):
        table = ReservationTable.clean(3)
        assert (table.matrix == np.eye(3, dtype=int)).all()
        assert table.is_clean

    def test_clean_rejects_zero_depth(self):
        with pytest.raises(MachineError):
            ReservationTable.clean(0)

    def test_non_pipelined_constructor(self):
        table = ReservationTable.non_pipelined(4)
        assert table.num_stages == 1
        assert table.length == 4
        assert table.stage_usage_counts() == [4]

    def test_from_rows(self):
        table = ReservationTable.from_rows([1, 0, 0], [0, 1, 0], [0, 1, 1])
        assert table.stage_cycles(2) == [1, 2]

    def test_equality_and_hash(self):
        a = ReservationTable([[1, 0], [0, 1]])
        b = ReservationTable([[1, 0], [0, 1]])
        c = ReservationTable([[1, 1]])
        assert a == b and hash(a) == hash(b)
        assert a != c


class TestQueries:
    def test_uses(self):
        table = ReservationTable([[1, 0, 1]])
        assert table.uses(0, 0)
        assert not table.uses(0, 1)
        assert table.uses(0, 2)
        assert not table.uses(0, 99)  # out of range is simply unused

    def test_stage_usage_counts(self):
        table = ReservationTable.from_rows([1, 0, 0], [0, 1, 0], [0, 1, 1])
        assert table.stage_usage_counts() == [1, 1, 2]
        assert table.max_stage_usage == 2

    def test_usage_offsets(self):
        table = ReservationTable.from_rows([1, 0], [0, 1])
        assert table.usage_offsets() == [(0, 0), (1, 1)]


class TestHazards:
    def test_clean_pipeline_no_forbidden(self):
        assert ReservationTable.clean(5).forbidden_latencies() == set()

    def test_non_pipelined_forbids_all_shorter(self):
        table = ReservationTable.non_pipelined(4)
        assert table.forbidden_latencies() == {1, 2, 3}

    def test_motivating_fp_table(self):
        # Figure 2's FP pipeline: stage 3 busy at cycles 1 and 2.
        table = ReservationTable.from_rows([1, 0, 0], [0, 1, 0], [0, 1, 1])
        assert table.forbidden_latencies() == {1}
        assert not table.is_clean

    def test_sparse_hazard(self):
        table = ReservationTable([[1, 0, 0, 1]])
        assert table.forbidden_latencies() == {3}

    def test_modulo_feasible(self):
        table = ReservationTable([[1, 0, 0, 1]])  # forbidden latency 3
        assert not table.modulo_feasible(1)
        assert not table.modulo_feasible(3)
        assert table.modulo_feasible(2)
        assert table.modulo_feasible(4)

    def test_modulo_feasible_rejects_bad_period(self):
        with pytest.raises(MachineError):
            ReservationTable.clean(1).modulo_feasible(0)

    def test_clean_always_modulo_feasible(self):
        table = ReservationTable.clean(4)
        assert all(table.modulo_feasible(t) for t in range(1, 10))

    def test_non_pipelined_feasible_only_at_busy_or_more(self):
        table = ReservationTable.non_pipelined(4)
        assert [t for t in range(1, 9) if table.modulo_feasible(t)] == [
            4, 5, 6, 7, 8,
        ]


class TestModuloWrap:
    def test_paper_figure2b(self):
        """The paper's Figure 2(b): the FP table wrapped to T=2."""
        table = ReservationTable.from_rows([1, 0, 0], [0, 1, 0], [0, 1, 1])
        wrapped = table.modulo_table(2)
        assert wrapped.tolist() == [[1, 0], [0, 1], [1, 1]]

    def test_identity_when_t_ge_length(self):
        table = ReservationTable.from_rows([1, 0], [0, 1])
        assert (table.modulo_table(4)[:, :2] == table.matrix).all()
        assert (table.modulo_table(4)[:, 2:] == 0).all()

    def test_counts_exceed_one_when_infeasible(self):
        table = ReservationTable([[1, 0, 1]])
        wrapped = table.modulo_table(2)
        assert wrapped[0, 0] == 2  # cycles 0 and 2 both land on slot 0

    def test_extend_to_pads_zero_columns(self):
        table = ReservationTable.from_rows([1, 0], [0, 1])
        extended = table.extend_to(5)
        assert extended.length == 5
        assert (extended.matrix[:, 2:] == 0).all()
        assert extended.forbidden_latencies() == table.forbidden_latencies()

    def test_extend_to_noop_when_longer(self):
        table = ReservationTable.non_pipelined(6)
        assert table.extend_to(3) is table

    def test_modulo_table_rejects_bad_period(self):
        with pytest.raises(MachineError):
            ReservationTable.clean(1).modulo_table(0)


class TestRender:
    def test_render_has_stage_rows(self):
        text = ReservationTable.clean(2).render("title")
        assert "title" in text
        assert "Stage  1" in text and "Stage  2" in text

    def test_repr_roundtrippable_shape(self):
        assert repr(ReservationTable([[1, 0]])) == "ReservationTable(10)"


@st.composite
def tables(draw):
    stages = draw(st.integers(1, 4))
    length = draw(st.integers(1, 6))
    rows = [
        [draw(st.integers(0, 1)) for _ in range(length)]
        for _ in range(stages)
    ]
    if not any(any(row) for row in rows):
        rows[0][0] = 1
    return ReservationTable(rows)


@settings(max_examples=60, deadline=None)
@given(tables(), st.integers(1, 8))
def test_modulo_feasibility_iff_wrap_is_binary(table, t_period):
    """Property: modulo_feasible(T) <=> the wrapped table is 0/1."""
    wrapped = table.modulo_table(t_period)
    assert table.modulo_feasible(t_period) == bool((wrapped <= 1).all())


@settings(max_examples=60, deadline=None)
@given(tables())
def test_total_usage_preserved_by_wrap(table):
    """Property: wrapping never loses or creates stage-usage cells."""
    wrapped = table.modulo_table(3)
    assert wrapped.sum() == table.matrix.sum()


@settings(max_examples=60, deadline=None)
@given(tables())
def test_forbidden_latencies_rule_out_their_divisors(table):
    """Property: a period equal to (or dividing) a forbidden latency is
    modulo-infeasible."""
    for latency in table.forbidden_latencies():
        assert not table.modulo_feasible(latency)
        for divisor in range(1, latency + 1):
            if latency % divisor == 0:
                assert not table.modulo_feasible(divisor)
