"""Tests for machine descriptions (FU types, op classes)."""

import pytest

from repro.machine import FuType, Machine, MachineError, OpClass, ReservationTable


@pytest.fixture
def machine():
    m = Machine("toy")
    m.add_fu_type("FP", count=2,
                  table=ReservationTable.from_rows([1, 0], [0, 1]))
    m.add_fu_type("MEM", count=1, table=ReservationTable.clean(3))
    m.add_op_class("fadd", "FP", latency=2)
    m.add_op_class("load", "MEM", latency=3)
    return m


class TestConstruction:
    def test_duplicate_fu_type_rejected(self, machine):
        with pytest.raises(MachineError, match="duplicate FU"):
            machine.add_fu_type("FP", 1, ReservationTable.clean(1))

    def test_duplicate_op_class_rejected(self, machine):
        with pytest.raises(MachineError, match="duplicate op class"):
            machine.add_op_class("fadd", "FP", 1)

    def test_unknown_fu_type_rejected(self, machine):
        with pytest.raises(MachineError, match="unknown FU type"):
            machine.add_op_class("mul", "VEC", 2)

    def test_zero_count_rejected(self):
        with pytest.raises(MachineError, match="count >= 1"):
            FuType("X", 0, ReservationTable.clean(1))

    def test_zero_latency_rejected(self):
        with pytest.raises(MachineError, match="latency >= 1"):
            OpClass("x", "FU", 0)


class TestLookups:
    def test_latency(self, machine):
        assert machine.latency("fadd") == 2
        assert machine.latency("load") == 3

    def test_unknown_class(self, machine):
        with pytest.raises(MachineError, match="unknown op class"):
            machine.op_class("div")

    def test_unknown_fu(self, machine):
        with pytest.raises(MachineError, match="unknown FU type"):
            machine.fu_type("VEC")

    def test_fu_type_of(self, machine):
        assert machine.fu_type_of("fadd").name == "FP"
        assert machine.fu_type_of("load").count == 1

    def test_reservation_default_is_fu_table(self, machine):
        assert machine.reservation_for("fadd") == machine.fu_type("FP").table

    def test_reservation_per_class_override(self, machine):
        override = ReservationTable.non_pipelined(5)
        machine.add_op_class("fdiv", "FP", latency=5, table=override)
        assert machine.reservation_for("fdiv") == override
        # Other classes unaffected.
        assert machine.reservation_for("fadd") == machine.fu_type("FP").table

    def test_classes_on(self, machine):
        assert [c.name for c in machine.classes_on("FP")] == ["fadd"]

    def test_stage_count_union(self, machine):
        machine.add_op_class(
            "big", "MEM", latency=1,
            table=ReservationTable.clean(5),
        )
        assert machine.stage_count("MEM") == 5
        assert machine.stage_count("FP") == 2


class TestProperties:
    def test_is_clean_true(self, machine):
        assert machine.is_clean

    def test_is_clean_false_with_hazard(self, machine):
        machine.add_op_class(
            "fdiv", "FP", latency=4,
            table=ReservationTable.non_pipelined(4),
        )
        assert not machine.is_clean

    def test_validate_ok(self, machine):
        machine.validate()

    def test_validate_empty_machine(self):
        with pytest.raises(MachineError, match="no FU types"):
            Machine("empty").validate()

    def test_validate_no_classes(self):
        m = Machine("no-classes")
        m.add_fu_type("X", 1, ReservationTable.clean(1))
        with pytest.raises(MachineError, match="no op classes"):
            m.validate()

    def test_render_lists_everything(self, machine):
        text = machine.render()
        assert "FP" in text and "fadd" in text and "x2" in text
