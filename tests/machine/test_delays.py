"""Tests for delay insertion (modulo-infeasible period repair)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.machine import Machine, MachineError, ReservationTable
from repro.machine.delays import delayed_machine, insert_delays
from repro.machine.presets import nonpipelined_machine


class TestInsertDelays:
    def test_compatible_table_untouched(self):
        table = ReservationTable.clean(3)
        outcome = insert_delays(table, 2)
        assert outcome.total_delay == 0
        assert outcome.table == table
        assert outcome.latency_penalty == 0

    def test_classic_repair(self):
        """[[1,0,1]] forbids latency 2; at T=2 the second use collides
        (cycles 0 and 2 are equal mod 2) — one delay fixes it."""
        table = ReservationTable([[1, 0, 1]])
        assert not table.modulo_feasible(2)
        outcome = insert_delays(table, 2)
        assert outcome is not None
        assert outcome.table.modulo_feasible(2)
        assert outcome.total_delay >= 1

    def test_latency_penalty_counts_last_column(self):
        table = ReservationTable([[1, 0, 1]])
        outcome = insert_delays(table, 2)
        assert outcome.latency_penalty == outcome.column_shifts[-1]
        assert outcome.latency_penalty >= 1

    def test_usage_count_preserved(self):
        table = ReservationTable([[1, 1, 0, 1], [0, 1, 0, 0]])
        outcome = insert_delays(table, 3)
        if outcome is not None:
            assert outcome.table.matrix.sum() == table.matrix.sum()

    def test_pigeonhole_impossible(self):
        """A stage used 4 times can never fit into T=3 slots."""
        table = ReservationTable.non_pipelined(4)
        assert insert_delays(table, 3) is None

    def test_budget_exhaustion(self):
        table = ReservationTable([[1, 1]])
        # T=1 impossible for a twice-used stage (pigeonhole again).
        assert insert_delays(table, 1) is None

    def test_rejects_bad_period(self):
        with pytest.raises(MachineError):
            insert_delays(ReservationTable.clean(1), 0)

    def test_flow_order_preserved(self):
        """Shifts are non-decreasing: columns never reorder."""
        table = ReservationTable([[1, 0, 0, 1], [0, 1, 1, 0]])
        outcome = insert_delays(table, 3)
        if outcome is not None:
            shifts = outcome.column_shifts
            assert all(a <= b for a, b in zip(shifts, shifts[1:]))


class TestDelayedMachine:
    def test_nonpipelined_divider_at_awkward_period(self):
        machine = nonpipelined_machine(div_units=2, div_time=4)
        # T=6: forbidden latencies {1,2,3}; 6 % 3 == 0 -> infeasible...
        # actually 3 % 6 != 0, check T=3: 3 is forbidden.
        assert not machine.reservation_for("div").modulo_feasible(3)
        patched = delayed_machine(machine, 3)
        # A 1x4 all-ones stage can never fit mod 3 (4 uses > 3 slots).
        assert patched is None

    def test_sparse_hazard_machine_repairable(self):
        machine = Machine("sparse")
        machine.add_fu_type("X", count=1,
                            table=ReservationTable([[1, 0, 1]]))
        machine.add_op_class("op", "X", latency=3)
        patched = machine_at = delayed_machine(machine, 2)
        assert machine_at is not None
        assert patched.reservation_for("op").modulo_feasible(2)
        # Latency grew by the repair penalty.
        assert patched.latency("op") >= 4

    def test_per_class_tables_patched(self):
        machine = Machine("multi")
        machine.add_fu_type("X", count=1, table=ReservationTable.clean(1))
        machine.add_op_class("fast", "X", latency=1)
        machine.add_op_class("slow", "X", latency=3,
                             table=ReservationTable([[1, 0, 1]]))
        patched = delayed_machine(machine, 2)
        assert patched is not None
        assert patched.reservation_for("slow").modulo_feasible(2)
        assert patched.latency("fast") == 1  # clean class untouched


@st.composite
def tables(draw):
    stages = draw(st.integers(1, 3))
    length = draw(st.integers(1, 5))
    rows = [
        [draw(st.integers(0, 1)) for _ in range(length)]
        for _ in range(stages)
    ]
    if not any(any(row) for row in rows):
        rows[0][0] = 1
    return ReservationTable(rows)


@settings(max_examples=50, deadline=None)
@given(tables(), st.integers(1, 6))
def test_property_repairs_are_valid(table, t_period):
    """Property: any returned repair is actually T-compatible, keeps the
    usage mass, and only ever moves columns later."""
    outcome = insert_delays(table, t_period)
    if outcome is None:
        return
    assert outcome.table.modulo_feasible(t_period)
    assert outcome.table.matrix.sum() == table.matrix.sum()
    assert outcome.latency_penalty >= 0


@settings(max_examples=50, deadline=None)
@given(tables(), st.integers(1, 6))
def test_property_feasibility_detected(table, t_period):
    """Property: pigeonhole-impossible cases return None; compatible
    tables return zero delay."""
    outcome = insert_delays(table, t_period)
    if table.max_stage_usage > t_period:
        assert outcome is None
    elif table.modulo_feasible(t_period):
        assert outcome is not None and outcome.total_delay == 0
