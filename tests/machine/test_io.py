"""Tests for the machine text format."""

import pytest

from repro.machine import MachineError
from repro.machine.io import load_machine, parse_machine, serialize_machine
from repro.machine.presets import motivating_machine, powerpc604

EXAMPLE = """
# a DSP-ish core
machine dsp
fu MAC count=2 cost=2.0
  row 1 0 0 0
  row 0 1 1 0
  row 0 0 0 1
fu AGU count=2 clean=2
class mac  MAC latency=4
class div  MAC latency=6 nonpipelined=6
class load AGU latency=2
class store AGU latency=1 row=1
"""


class TestParse:
    def test_basic(self):
        machine = parse_machine(EXAMPLE)
        assert machine.name == "dsp"
        assert machine.fu_type("MAC").count == 2
        assert machine.fu_type("MAC").cost == 2.0
        assert machine.latency("mac") == 4

    def test_explicit_rows(self):
        machine = parse_machine(EXAMPLE)
        table = machine.fu_type("MAC").table
        assert table.matrix.tolist() == [
            [1, 0, 0, 0], [0, 1, 1, 0], [0, 0, 0, 1],
        ]
        assert not table.is_clean  # stage 2 busy twice

    def test_clean_shorthand(self):
        machine = parse_machine(EXAMPLE)
        assert machine.fu_type("AGU").table.is_clean

    def test_class_overrides(self):
        machine = parse_machine(EXAMPLE)
        assert machine.reservation_for("div").length == 6
        assert machine.reservation_for("store").length == 1
        # mac uses the FU default table.
        assert machine.reservation_for("mac").length == 4

    def test_machine_schedules(self):
        from repro.core import schedule_loop, verify_schedule
        from repro.ddg import Ddg

        machine = parse_machine(EXAMPLE)
        g = Ddg("t")
        g.add_op("a", "load")
        g.add_op("b", "mac")
        g.add_dep("a", "b")
        result = schedule_loop(g, machine)
        verify_schedule(result.schedule)

    def test_missing_machine_directive(self):
        with pytest.raises(MachineError, match="machine"):
            parse_machine("fu X count=1 clean=1")

    def test_fu_without_table(self):
        with pytest.raises(MachineError, match="reservation table"):
            parse_machine("machine m\nfu X count=1\nclass c X latency=1")

    def test_unknown_option(self):
        with pytest.raises(MachineError, match="unknown option"):
            parse_machine("machine m\nfu X count=1 clean=1 widgets=3\n"
                          "class c X latency=1")

    def test_row_outside_fu(self):
        with pytest.raises(MachineError, match="outside"):
            parse_machine("machine m\nrow 1 0")

    def test_bad_value(self):
        with pytest.raises(MachineError, match="line 2"):
            parse_machine("machine m\nfu X count=two clean=1")


class TestRoundTrip:
    def test_serialize_parse_identity(self):
        original = parse_machine(EXAMPLE)
        rebuilt = parse_machine(serialize_machine(original))
        assert rebuilt.name == original.name
        for name, fu in original.fu_types.items():
            assert rebuilt.fu_type(name).count == fu.count
            assert rebuilt.fu_type(name).table == fu.table
        for name, cls in original.op_classes.items():
            assert rebuilt.latency(name) == cls.latency
            assert rebuilt.reservation_for(name) == (
                original.reservation_for(name)
            )

    def test_presets_round_trip_when_expressible(self):
        # motivating machine: no per-class override tables.
        machine = motivating_machine()
        rebuilt = parse_machine(serialize_machine(machine))
        assert rebuilt.fu_type("FP").table == machine.fu_type("FP").table

    def test_ppc604_round_trips(self):
        """All 604 overrides are single-row (blocking) tables, which the
        format expresses inline."""
        machine = powerpc604()
        rebuilt = parse_machine(serialize_machine(machine))
        assert rebuilt.reservation_for("div").length == 20

    def test_load_from_file(self, tmp_path):
        path = tmp_path / "m.machine"
        path.write_text(EXAMPLE, encoding="utf-8")
        machine = load_machine(path)
        assert machine.name == "dsp"
