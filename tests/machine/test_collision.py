"""Tests for collision vectors, state diagrams and MAL."""

from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.machine import ReservationTable
from repro.machine.collision import (
    analyze,
    build_state_diagram,
    greedy_cycle,
    initial_collision_vector,
    mal_bound,
    minimum_average_latency,
)
from repro.machine.errors import MachineError


class TestCollisionVector:
    def test_clean_pipe_empty_vector(self):
        assert initial_collision_vector(ReservationTable.clean(1)) == ()
        assert initial_collision_vector(ReservationTable.clean(4)) == (
            0, 0, 0,
        )

    def test_non_pipelined_all_ones(self):
        table = ReservationTable.non_pipelined(4)
        assert initial_collision_vector(table) == (1, 1, 1)

    def test_motivating_fp(self):
        table = ReservationTable.from_rows([1, 0, 0], [0, 1, 0], [0, 1, 1])
        assert initial_collision_vector(table) == (1, 0)

    def test_sparse_table(self):
        table = ReservationTable([[1, 0, 0, 1]])
        assert initial_collision_vector(table) == (0, 0, 1)


class TestStateDiagram:
    def test_clean_single_state(self):
        diagram = build_state_diagram(ReservationTable.clean(3))
        assert diagram.num_states >= 1
        # Latency 1 always permissible and self-looping for clean pipes.
        assert diagram.transitions[diagram.initial][1] == diagram.initial

    def test_non_pipelined_only_drain(self):
        diagram = build_state_diagram(ReservationTable.non_pipelined(3))
        moves = diagram.transitions[diagram.initial]
        assert list(moves) == [3]  # only the drain transition

    def test_permissible_latencies_sorted(self):
        table = ReservationTable([[1, 0, 0, 1]])
        diagram = build_state_diagram(table)
        perms = diagram.permissible_latencies(diagram.initial)
        assert perms == sorted(perms)
        assert 3 not in perms  # forbidden latency


class TestGreedyCycleAndMal:
    def test_clean(self):
        assert greedy_cycle(ReservationTable.clean(5)) == [1]
        assert minimum_average_latency(ReservationTable.clean(5)) == 1

    def test_non_pipelined(self):
        table = ReservationTable.non_pipelined(4)
        assert greedy_cycle(table) == [4]
        assert minimum_average_latency(table) == 4

    def test_motivating_fp_mal_two(self):
        table = ReservationTable.from_rows([1, 0, 0], [0, 1, 0], [0, 1, 1])
        assert greedy_cycle(table) == [2]
        assert minimum_average_latency(table) == 2

    def test_kogge_classic_example(self):
        """Table with forbidden latencies {2} allows the 1,3 cycle? No:
        usage [[1,0,1]] forbids 2, greedy issues at 1 then adapts."""
        table = ReservationTable([[1, 0, 1]])
        mal = minimum_average_latency(table)
        # Busiest stage used twice -> MAL >= 2; latency pattern (1,3)
        # averages 2 and is collision-free, so MAL == 2.
        assert mal == 2

    def test_mal_can_beat_greedy(self):
        """Classic: greedy is not always optimal.  Forbidden {1, 5}:
        greedy takes 2,2,... hitting 4? construct and compare bounds."""
        table = ReservationTable([[1, 1, 0, 0, 0, 1]])
        mal = minimum_average_latency(table)
        greedy = greedy_cycle(table)
        greedy_avg = Fraction(sum(greedy), len(greedy))
        assert mal <= greedy_avg
        assert mal >= table.max_stage_usage


class TestMalBound:
    def test_reduces_to_stage_bound_for_clean(self):
        table = ReservationTable.clean(3)
        assert mal_bound(6, 2, table) == 3  # ceil(6 * 1 / 2)

    def test_non_pipelined(self):
        table = ReservationTable.non_pipelined(4)
        assert mal_bound(3, 1, table) == 12
        assert mal_bound(3, 2, table) == 6

    def test_zero_ops(self):
        assert mal_bound(0, 1, ReservationTable.clean(1)) == 1

    def test_rejects_bad_args(self):
        with pytest.raises(MachineError):
            mal_bound(1, 0, ReservationTable.clean(1))


class TestAnalyze:
    def test_report_keys(self):
        report = analyze(ReservationTable.non_pipelined(3))
        assert report["forbidden_latencies"] == [1, 2]
        assert report["mal"] == 3
        assert report["greedy_cycle"] == [3]
        assert not report["is_clean"]

    def test_clean_report(self):
        report = analyze(ReservationTable.clean(2))
        assert report["is_clean"]
        assert report["mal"] == 1


@st.composite
def tables(draw):
    stages = draw(st.integers(1, 3))
    length = draw(st.integers(1, 5))
    rows = [
        [draw(st.integers(0, 1)) for _ in range(length)]
        for _ in range(stages)
    ]
    if not any(any(row) for row in rows):
        rows[0][0] = 1
    return ReservationTable(rows)


@settings(max_examples=50, deadline=None)
@given(tables())
def test_property_mal_sandwich(table):
    """Classical bounds: max stage usage <= MAL <= greedy average."""
    mal = minimum_average_latency(table)
    greedy = greedy_cycle(table)
    greedy_avg = Fraction(sum(greedy), len(greedy))
    assert Fraction(table.max_stage_usage) <= mal <= greedy_avg


@settings(max_examples=50, deadline=None)
@given(tables())
def test_property_greedy_cycle_is_collision_free(table):
    """Replaying the greedy cycle never collides on any stage."""
    cycle = greedy_cycle(table)
    issue_times = [0]
    for _ in range(3):  # a few rounds of the cycle
        for latency in cycle:
            issue_times.append(issue_times[-1] + latency)
    cells = set()
    for start in issue_times:
        for stage, offset in table.usage_offsets():
            cell = (stage, start + offset)
            assert cell not in cells
            cells.add(cell)
