"""Tests for the preset machine models."""

import pytest

from repro.machine import presets


class TestRegistry:
    def test_all_presets_instantiate_and_validate(self):
        for name in presets.PRESETS:
            machine = presets.by_name(name)
            machine.validate()

    def test_unknown_name(self):
        with pytest.raises(KeyError, match="unknown machine preset"):
            presets.by_name("pentium")


class TestMotivating:
    def test_fp_table_matches_figure2(self):
        machine = presets.motivating_machine()
        table = machine.reservation_for("fadd")
        assert table.matrix.tolist() == [[1, 0, 0], [0, 1, 0], [0, 1, 1]]

    def test_fp_hazard_forbids_back_to_back(self):
        machine = presets.motivating_machine()
        assert machine.reservation_for("fadd").forbidden_latencies() == {1}

    def test_counts(self):
        machine = presets.motivating_machine()
        assert machine.fu_type("FP").count == 2
        assert machine.fu_type("MEM").count == 1

    def test_latencies(self):
        machine = presets.motivating_machine()
        assert machine.latency("load") == 3
        assert machine.latency("fadd") == 2
        assert machine.latency("store") == 1

    def test_not_clean(self):
        assert not presets.motivating_machine().is_clean

    def test_configurable_unit_counts(self):
        machine = presets.motivating_machine(fp_units=3, mem_units=2)
        assert machine.fu_type("FP").count == 3
        assert machine.fu_type("MEM").count == 2


class TestClean:
    def test_is_clean(self):
        assert presets.clean_machine().is_clean

    def test_has_common_classes(self):
        machine = presets.clean_machine()
        for cls in ("add", "load", "store", "fadd", "fmul"):
            assert cls in machine.op_classes


class TestNonpipelined:
    def test_divide_blocks_unit(self):
        machine = presets.nonpipelined_machine(div_time=4)
        table = machine.reservation_for("div")
        assert table.forbidden_latencies() == {1, 2, 3}

    def test_mapping_is_nontrivial(self):
        machine = presets.nonpipelined_machine()
        assert machine.fu_type("DIV").count == 2


class TestCydra5:
    def test_long_memory_latency(self):
        machine = presets.cydra5()
        assert machine.latency("load") == 17
        assert machine.fu_type("MEM").count == 2

    def test_blocking_divide(self):
        machine = presets.cydra5()
        table = machine.reservation_for("fdiv")
        assert not table.is_clean
        assert table.length == 21

    def test_kernels_schedule_on_it(self):
        from repro.core import schedule_loop, verify_schedule
        from repro.ddg.kernels import dot_product

        machine = presets.cydra5()
        result = schedule_loop(dot_product(), machine)
        assert result.schedule is not None
        verify_schedule(result.schedule)
        # Deep memory latency shows up in the span, not the rate.
        assert result.achieved_t == result.bounds.t_lb
        assert result.schedule.span >= 17


class TestPowerPc604:
    def test_six_fu_types(self):
        machine = presets.powerpc604()
        assert set(machine.fu_types) == {
            "SCIU", "MCIU", "FPU", "LSU", "BPU",
        }
        assert machine.fu_type("SCIU").count == 2

    def test_divides_are_blocking(self):
        machine = presets.powerpc604()
        assert not machine.reservation_for("div").is_clean
        assert not machine.reservation_for("fdiv").is_clean
        assert machine.reservation_for("fdiv").length == 18

    def test_pipelined_classes_are_clean(self):
        machine = presets.powerpc604()
        for cls in ("add", "mul", "fadd", "fmul", "load", "store"):
            assert machine.reservation_for(cls).is_clean

    def test_latencies_match_604_summary(self):
        machine = presets.powerpc604()
        assert machine.latency("add") == 1
        assert machine.latency("mul") == 4
        assert machine.latency("fadd") == 3
        assert machine.latency("load") == 2
        assert machine.latency("div") == 20


class TestCoreblocks:
    def test_registered_and_valid(self):
        machine = presets.by_name("coreblocks")
        machine.validate()
        assert machine.name == "coreblocks"

    def test_multiplier_has_busy_recombination_stage(self):
        table = presets.coreblocks().reservation_for("mul")
        assert table.matrix.tolist() == [
            [1, 0, 0, 0], [0, 1, 0, 0], [0, 0, 1, 1],
        ]
        assert not table.is_clean

    def test_divider_blocks_for_ten_cycles(self):
        table = presets.coreblocks().reservation_for("div")
        assert table.forbidden_latencies() == set(range(1, 10))

    def test_store_holds_lsu_two_cycles(self):
        machine = presets.coreblocks()
        assert not machine.reservation_for("store").is_clean
        assert machine.reservation_for("load").is_clean

    def test_not_clean(self):
        assert not presets.coreblocks().is_clean

    def test_generated_int_loops_schedule_on_it(self):
        import random

        from repro.core import schedule_loop, verify_schedule
        from repro.ddg.generators import GenParams, parameterized_ddg

        machine = presets.coreblocks()
        params = GenParams(profile="int", max_ops=10)
        rng = random.Random("presets:coreblocks:0")
        for _ in range(3):
            ddg = parameterized_ddg(rng, machine, params)
            result = schedule_loop(ddg, machine, max_extra=20)
            assert result.schedule is not None
            verify_schedule(result.schedule)


class TestDeepUnclean:
    def test_registered_and_valid(self):
        machine = presets.by_name("deep-unclean")
        machine.validate()
        assert machine.name == "deep-unclean"

    def test_fpu_revisits_a_stage(self):
        table = presets.deep_unclean().reservation_for("fadd")
        # Stage 2 is used at cycles 2 and 4 -> forbidden latency 2.
        assert 2 in table.forbidden_latencies()
        assert not table.is_clean

    def test_fdiv_nonpipelined(self):
        table = presets.deep_unclean().reservation_for("fdiv")
        assert table.forbidden_latencies() == set(range(1, 12))

    def test_mem_port_shared_stage(self):
        machine = presets.deep_unclean()
        assert not machine.reservation_for("load").is_clean

    def test_mixed_stage_count_classes_presolve(self):
        """Regression: store's 1-stage table rides the 2-stage MEM unit.

        Presolve's pair classifier used to index past the end of the
        narrower per-class table (IndexError); missing stages must be
        treated as unused, exactly as the formulation treats them.
        """
        from repro.core import schedule_loop, verify_schedule
        from repro.ddg.graph import Ddg

        machine = presets.deep_unclean()
        ddg = Ddg("mixed_stages")
        ddg.add_op("ld", "load")
        ddg.add_op("st", "store")
        ddg.add_op("ld2", "load")
        ddg.add_dep(0, 1)
        ddg.add_dep(1, 2, distance=1)
        result = schedule_loop(ddg, machine, max_extra=10)
        assert result.schedule is not None
        verify_schedule(result.schedule)

    def test_not_clean(self):
        assert not presets.deep_unclean().is_clean

    def test_kernels_schedule_on_it(self):
        from repro.core import schedule_loop, verify_schedule
        from repro.ddg.kernels import dot_product

        result = schedule_loop(dot_product(), presets.deep_unclean())
        assert result.schedule is not None
        verify_schedule(result.schedule)
