"""SupervisedExecutor: crash recovery, deadline kills, OOM, retry, abort.

Worker task bodies live at module level so they pickle under the fork
and spawn start methods alike.  Deadlines and backoffs are kept tiny so
the whole file runs in seconds.
"""

import os
import time

import pytest

from repro.supervision.executor import (
    CANCELLED,
    DONE,
    FAILED,
    SupervisedExecutor,
)
from repro.supervision.records import (
    CRASH,
    HANG,
    INTERRUPTED,
    OOM,
    SOLVER_ERROR,
    SupervisionPolicy,
)


def _double(x):
    return x * 2


def _crash():
    os._exit(3)


def _sleep(seconds):
    time.sleep(seconds)
    return "slept"


def _raise_memory_error():
    raise MemoryError("boom")


def _raise_value_error():
    raise ValueError("bad model")


def _allocate(mb):
    block = bytearray(mb << 20)
    block[::4096] = b"x" * len(block[::4096])
    return len(block)


def _crash_once(path):
    """Crash on the first call, succeed on the retry (marker file)."""
    if not os.path.exists(path):
        with open(path, "w", encoding="utf-8") as handle:
            handle.write("seen")
        os._exit(3)
    return "recovered"


def _drain(executor):
    finished = []
    while executor.outstanding():
        finished.extend(executor.poll(timeout=5.0))
    finished.extend(executor.poll(timeout=0.0))
    return finished


FAST_RETRY = SupervisionPolicy(max_retries=1, backoff=0.01)
NO_RETRY = SupervisionPolicy(max_retries=0)


class TestResults:
    def test_result_delivery_and_tags(self):
        with SupervisedExecutor(max_workers=2) as executor:
            tasks = [
                executor.submit(_double, i, tag=f"job{i}") for i in range(5)
            ]
            finished = _drain(executor)
        assert len(finished) == 5
        for task in tasks:
            assert task.state == DONE
            assert task.failure is None
            assert task.result == 2 * int(task.tag[3:])

    def test_worker_reuse_keeps_pool_small(self):
        with SupervisedExecutor(max_workers=1) as executor:
            for i in range(4):
                executor.submit(_double, i)
            _drain(executor)
            assert len(executor._workers) == 1

    def test_poll_timeout_returns_empty(self):
        with SupervisedExecutor(max_workers=1) as executor:
            task = executor.submit(_sleep, 30.0)
            assert executor.poll(timeout=0.05) == []
            assert not task.finished

    def test_submit_after_shutdown_rejected(self):
        executor = SupervisedExecutor(max_workers=1)
        executor.shutdown()
        with pytest.raises(RuntimeError, match="shut down"):
            executor.submit(_double, 1)

    def test_bad_max_workers_rejected(self):
        with pytest.raises(ValueError, match="max_workers"):
            SupervisedExecutor(max_workers=0)


class TestCrash:
    def test_crash_fails_only_its_task(self):
        with SupervisedExecutor(max_workers=2, policy=NO_RETRY) as executor:
            bad = executor.submit(_crash)
            good = executor.submit(_double, 21)
            _drain(executor)
        assert bad.state == FAILED
        assert bad.failure.kind == CRASH
        assert "exit code 3" in bad.failure.detail
        assert good.state == DONE and good.result == 42

    def test_crash_retried_up_to_max_retries(self):
        with SupervisedExecutor(
            max_workers=1, policy=FAST_RETRY
        ) as executor:
            task = executor.submit(_crash)
            _drain(executor)
        assert task.failure.kind == CRASH
        assert task.failure.attempt == 2  # initial try + 1 retry
        assert task.failure.retries == 1

    def test_retry_recovers_after_transient_crash(self, tmp_path):
        marker = tmp_path / "crashed_once"
        with SupervisedExecutor(
            max_workers=1, policy=FAST_RETRY
        ) as executor:
            task = executor.submit(_crash_once, str(marker))
            _drain(executor)
        assert task.state == DONE
        assert task.result == "recovered"
        assert task.tries == 2


class TestHang:
    def test_hang_killed_within_deadline_plus_grace(self):
        policy = SupervisionPolicy(
            deadline=0.3, grace=0.2, max_retries=0
        )
        start = time.monotonic()
        with SupervisedExecutor(max_workers=1, policy=policy) as executor:
            task = executor.submit(_sleep, 60.0)
            _drain(executor)
        wall = time.monotonic() - start
        assert task.failure.kind == HANG
        assert "deadline" in task.failure.detail
        # Killed at ~0.5s; the 5s margin is pure scheduler slack.
        assert wall < 5.0

    def test_per_task_deadline_overrides_policy(self):
        policy = SupervisionPolicy(deadline=60.0, grace=0.2,
                                   max_retries=0)
        with SupervisedExecutor(max_workers=1, policy=policy) as executor:
            task = executor.submit(_sleep, 60.0, deadline=0.3)
            _drain(executor)
        assert task.failure.kind == HANG

    def test_explicit_none_deadline_unbounded(self):
        policy = SupervisionPolicy(deadline=0.2, grace=0.1,
                                   max_retries=0)
        with SupervisedExecutor(max_workers=1, policy=policy) as executor:
            task = executor.submit(_sleep, 0.6, deadline=None)
            _drain(executor)
        assert task.state == DONE
        assert task.result == "slept"


class TestMemoryAndErrors:
    def test_memory_error_is_oom_not_retried(self):
        with SupervisedExecutor(
            max_workers=1, policy=FAST_RETRY
        ) as executor:
            task = executor.submit(_raise_memory_error)
            _drain(executor)
        assert task.failure.kind == OOM
        assert task.failure.attempt == 1  # OOM is not retryable

    def test_task_exception_is_solver_error(self):
        with SupervisedExecutor(max_workers=1) as executor:
            task = executor.submit(_raise_value_error)
            _drain(executor)
        assert task.failure.kind == SOLVER_ERROR
        assert "ValueError: bad model" in task.failure.detail

    def test_rlimit_cap_turns_allocation_into_oom(self):
        policy = SupervisionPolicy(memory_mb=256, max_retries=0)
        with SupervisedExecutor(max_workers=1, policy=policy) as executor:
            task = executor.submit(_allocate, 1024)
            _drain(executor)
        assert task.state == FAILED
        # The allocation either raises MemoryError inside the worker
        # (oom) or the allocator aborts the process (crash); both mean
        # the cap held and the supervisor survived.
        assert task.failure.kind in (OOM, CRASH)


class TestAbortAndCancel:
    def test_abort_fails_running_and_pending(self):
        with SupervisedExecutor(max_workers=1) as executor:
            running = executor.submit(_sleep, 60.0)
            pending = executor.submit(_double, 1)
            executor.poll(timeout=0.2)  # ensure the first task started
            aborted = executor.abort(INTERRUPTED, "test abort")
            assert set(aborted) == {running, pending}
            for task in (running, pending):
                assert task.state == FAILED
                assert task.failure.kind == INTERRUPTED
            # abort() already delivered them; poll must not re-deliver.
            assert executor.poll(timeout=0.0) == []

    def test_abort_preserves_finished_results(self):
        with SupervisedExecutor(max_workers=1) as executor:
            done = executor.submit(_double, 5)
            _drain(executor)
            assert executor.abort() == []
            assert done.state == DONE and done.result == 10

    def test_cancel_pending_only(self):
        with SupervisedExecutor(max_workers=1) as executor:
            running = executor.submit(_sleep, 2.0)
            pending = executor.submit(_double, 1)
            executor.poll(timeout=0.2)
            assert executor.cancel(pending)
            assert pending.state == CANCELLED
            assert not executor.cancel(running)
            assert executor.outstanding() == 1


class TestKillTask:
    """Portfolio-loser reaping: bounded TERM->KILL, no zombies."""

    def test_kill_running_task(self):
        with SupervisedExecutor(max_workers=1) as executor:
            running = executor.submit(_sleep, 60.0)
            executor.poll(timeout=0.2)  # let it start
            start = time.time()
            assert executor.kill_task(running)
            assert time.time() - start < 5.0  # bounded escalation
            assert running.state == CANCELLED
            assert running.failure is None
            # The kill is not a failure: poll never re-delivers it.
            assert executor.poll(timeout=0.0) == []

    def test_kill_pending_task_cancels(self):
        with SupervisedExecutor(max_workers=1) as executor:
            executor.submit(_sleep, 2.0)
            pending = executor.submit(_double, 1)
            executor.poll(timeout=0.2)
            assert executor.kill_task(pending)
            assert pending.state == CANCELLED

    def test_kill_finished_task_refused(self):
        with SupervisedExecutor(max_workers=1) as executor:
            done = executor.submit(_double, 4)
            _drain(executor)
            assert not executor.kill_task(done)
            assert done.state == DONE and done.result == 8

    def test_kill_after_exit_race_keeps_result(self):
        """A task that finishes between verdict and escalation survives.

        The caller decides to kill while the worker's reply is already
        sitting unread in the pipe (the worker may even have exited —
        its pid could be reaped and reused).  ``kill_task`` must drain
        the reply, refuse the kill, keep the worker, and let ``poll``
        deliver the real result — never signal the stale pid.
        """
        with SupervisedExecutor(max_workers=1) as executor:
            task = executor.submit(_double, 21)
            # Start the task without letting the supervisor reap the
            # reply: drive dispatch via the internals, then wait for
            # the worker's answer to land in the pipe unread.
            executor._dispatch()
            (worker,) = executor._workers
            deadline = time.monotonic() + 5.0
            while not worker.conn.poll():
                assert time.monotonic() < deadline, "worker never replied"
                time.sleep(0.01)
            # The race window: task RUNNING, reply unread, kill issued.
            assert task.state == "running"
            assert not executor.kill_task(task)
            assert task.state == DONE
            assert task.result == 42
            assert task.failure is None
            # The worker was not killed: same process, still reusable.
            assert executor._workers == [worker]
            assert worker.process.is_alive()
            # poll() delivers the settled result exactly once.
            assert executor.poll(timeout=0.0) == [task]
            assert executor.poll(timeout=0.0) == []
            follow_up = executor.submit(_double, 4)
            _drain(executor)
            assert follow_up.result == 8

    def test_pool_survives_a_kill(self):
        with SupervisedExecutor(max_workers=1) as executor:
            victim = executor.submit(_sleep, 60.0)
            executor.poll(timeout=0.2)
            executor.kill_task(victim)
            follow_up = executor.submit(_double, 21)
            _drain(executor)
            assert follow_up.result == 42

    def test_no_live_children_after_kill_and_shutdown(self):
        executor = SupervisedExecutor(max_workers=2)
        try:
            victims = [executor.submit(_sleep, 60.0) for _ in range(2)]
            executor.poll(timeout=0.3)
            for victim in victims:
                executor.kill_task(victim)
        finally:
            executor.shutdown()
        assert executor.live_children() == []

    def test_no_live_children_after_plain_shutdown(self):
        executor = SupervisedExecutor(max_workers=2)
        try:
            executor.submit(_sleep, 60.0)
            executor.submit(_sleep, 60.0)
            executor.poll(timeout=0.3)
        finally:
            executor.shutdown()
        assert executor.live_children() == []
