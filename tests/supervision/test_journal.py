"""Batch journal: headers, appends, corrupt-line tolerance, resume keys."""

import json

import pytest

from repro.supervision.journal import (
    JOURNAL_VERSION,
    BatchJournal,
    JournalError,
    completed_entries,
    config_digest,
    entry_key,
    read_journal,
)

DIGEST = config_digest("machine-abc", backend="auto", time_limit=10.0)


def _write(path, seq, source, name, entry):
    with BatchJournal(path, DIGEST) as journal:
        journal.record(seq, source, name, entry)


class TestConfigDigest:
    def test_deterministic_and_order_independent(self):
        a = config_digest("m", backend="auto", time_limit=10.0)
        b = config_digest("m", time_limit=10.0, backend="auto")
        assert a == b

    def test_sensitive_to_every_setting(self):
        base = config_digest("m", backend="auto", time_limit=10.0)
        assert config_digest("m2", backend="auto", time_limit=10.0) != base
        assert config_digest("m", backend="bnb", time_limit=10.0) != base
        assert config_digest("m", backend="auto", time_limit=30.0) != base


class TestBatchJournal:
    def test_header_then_entries(self, tmp_path):
        path = tmp_path / "j.jsonl"
        _write(path, 0, "a.ddg", "a", {"name": "a"})
        lines = path.read_text(encoding="utf-8").splitlines()
        header = json.loads(lines[0])
        assert header["journal_version"] == JOURNAL_VERSION
        assert header["config_digest"] == DIGEST
        record = json.loads(lines[1])
        assert record == {
            "seq": 0, "source": "a.ddg", "name": "a",
            "entry": {"name": "a"},
        }

    def test_reopen_appends_without_second_header(self, tmp_path):
        path = tmp_path / "j.jsonl"
        _write(path, 0, "a.ddg", "a", {"name": "a"})
        _write(path, 1, "b.ddg", "b", {"name": "b"})
        lines = path.read_text(encoding="utf-8").splitlines()
        assert len(lines) == 3
        assert sum("journal_version" in line for line in lines) == 1

    def test_digest_mismatch_refused(self, tmp_path):
        path = tmp_path / "j.jsonl"
        _write(path, 0, "a.ddg", "a", {"name": "a"})
        with pytest.raises(JournalError, match="different settings"):
            BatchJournal(path, "other-digest")

    def test_version_mismatch_refused(self, tmp_path):
        path = tmp_path / "j.jsonl"
        path.write_text(
            json.dumps({"journal_version": 99, "config_digest": DIGEST})
            + "\n",
            encoding="utf-8",
        )
        with pytest.raises(JournalError, match="version"):
            read_journal(path)


class TestReadJournal:
    def test_later_line_wins(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with BatchJournal(path, DIGEST) as journal:
            journal.record(0, "a.ddg", "a", {"error": "crash"})
            journal.record(0, "a.ddg", "a", {"achieved_t": 4})
        _, entries = read_journal(path)
        assert entries[entry_key("a.ddg", "a")]["entry"] == {
            "achieved_t": 4
        }

    def test_truncated_trailing_line_skipped(self, tmp_path):
        path = tmp_path / "j.jsonl"
        _write(path, 0, "a.ddg", "a", {"achieved_t": 4})
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"seq": 1, "source": "b.ddg", "na')  # torn write
        header, entries = read_journal(path)
        assert header is not None
        assert list(entries) == [entry_key("a.ddg", "a")]

    def test_garbage_lines_skipped(self, tmp_path):
        path = tmp_path / "j.jsonl"
        _write(path, 0, "a.ddg", "a", {"achieved_t": 4})
        with open(path, "a", encoding="utf-8") as handle:
            handle.write("not json at all\n")
            handle.write('{"no_entry_field": true}\n')
        _, entries = read_journal(path)
        assert list(entries) == [entry_key("a.ddg", "a")]


class TestCompletedEntries:
    def test_failed_entries_dropped_for_retry(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with BatchJournal(path, DIGEST) as journal:
            journal.record(0, "a.ddg", "a", {"achieved_t": 4})
            journal.record(1, "b.ddg", "b", {"error": "crash", "failure":
                                             {"kind": "crash"}})
            # Budget exhausted but no error: a legitimate outcome.
            journal.record(2, "c.ddg", "c", {"achieved_t": None})
        _, done = completed_entries(path)
        assert set(done) == {
            entry_key("a.ddg", "a"), entry_key("c.ddg", "c")
        }
