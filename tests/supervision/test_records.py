"""Failure taxonomy and policy: validation, round-trips, derived knobs."""

import pickle

import pytest

from repro.supervision.records import (
    CRASH,
    FAILURE_KINDS,
    HANG,
    INTERRUPTED,
    OOM,
    RETRYABLE_KINDS,
    SOLVER_ERROR,
    FailureRecord,
    SupervisionPolicy,
)


class TestFailureRecord:
    def test_kinds_are_closed_set(self):
        assert set(FAILURE_KINDS) == {
            CRASH, HANG, OOM, SOLVER_ERROR, INTERRUPTED
        }
        assert set(RETRYABLE_KINDS) == {CRASH, HANG}

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown failure kind"):
            FailureRecord(kind="meltdown")

    @pytest.mark.parametrize("kind", FAILURE_KINDS)
    def test_json_round_trip(self, kind):
        record = FailureRecord(
            kind=kind, attempt=3, retries=2, elapsed=1.25,
            detail="worker died (exit code 70)",
        )
        clone = FailureRecord.from_json_dict(record.to_json_dict())
        assert clone == record

    def test_json_dict_schema(self):
        doc = FailureRecord(kind=CRASH).to_json_dict()
        assert set(doc) == {
            "kind", "attempt", "retries", "elapsed", "detail"
        }

    def test_summary_mentions_kind_and_detail(self):
        record = FailureRecord(kind=HANG, attempt=2, elapsed=3.5,
                               detail="killed after 3.5s")
        text = record.summary()
        assert "hang" in text
        assert "2 attempt(s)" in text
        assert "killed after 3.5s" in text

    def test_picklable(self):
        record = FailureRecord(kind=OOM, detail="cap hit")
        assert pickle.loads(pickle.dumps(record)) == record


class TestSupervisionPolicy:
    def test_defaults(self):
        policy = SupervisionPolicy()
        assert policy.deadline is None
        assert policy.max_retries == 2
        assert policy.memory_mb is None

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"deadline": 0.0},
            {"deadline": -1.0},
            {"grace": -0.1},
            {"memory_mb": 0},
            {"max_retries": -1},
            {"backoff": -0.5},
        ],
    )
    def test_bad_values_rejected(self, kwargs):
        with pytest.raises(ValueError):
            SupervisionPolicy(**kwargs)

    def test_retry_delay_doubles(self):
        policy = SupervisionPolicy(backoff=0.25)
        assert policy.retry_delay(0) == 0.0
        assert policy.retry_delay(1) == 0.25
        assert policy.retry_delay(2) == 0.5
        assert policy.retry_delay(3) == 1.0

    def test_kill_after_uses_task_deadline_over_policy(self):
        policy = SupervisionPolicy(deadline=10.0, grace=2.0)
        assert policy.kill_after(None) == 12.0
        assert policy.kill_after(1.0) == 3.0

    def test_kill_after_none_when_unbounded(self):
        assert SupervisionPolicy().kill_after(None) is None

    def test_frozen_and_picklable(self):
        policy = SupervisionPolicy(deadline=5.0, memory_mb=128)
        with pytest.raises(AttributeError):
            policy.deadline = 1.0
        assert pickle.loads(pickle.dumps(policy)) == policy
