"""Atomic writes and all-or-nothing journal appends."""

import json
import os

import pytest

from repro.supervision.atomicio import (
    AppendOnlyLines,
    atomic_write_json,
    atomic_write_text,
)


class TestAtomicWrite:
    def test_writes_content(self, tmp_path):
        target = tmp_path / "out.txt"
        atomic_write_text(target, "hello\n")
        assert target.read_text(encoding="utf-8") == "hello\n"

    def test_replaces_existing(self, tmp_path):
        target = tmp_path / "out.txt"
        target.write_text("old", encoding="utf-8")
        atomic_write_text(target, "new")
        assert target.read_text(encoding="utf-8") == "new"

    def test_no_tmp_file_left_behind(self, tmp_path):
        target = tmp_path / "out.txt"
        atomic_write_text(target, "x")
        assert os.listdir(tmp_path) == ["out.txt"]

    def test_failed_write_preserves_old_content(self, tmp_path):
        target = tmp_path / "out.json"
        target.write_text('{"ok": true}', encoding="utf-8")
        with pytest.raises(TypeError):
            atomic_write_json(target, {"bad": object()})
        assert json.loads(target.read_text(encoding="utf-8")) == {"ok": True}

    def test_json_newline_terminated(self, tmp_path):
        target = tmp_path / "out.json"
        atomic_write_json(target, {"a": 1})
        text = target.read_text(encoding="utf-8")
        assert text.endswith("\n")
        assert json.loads(text) == {"a": 1}


class TestAppendOnlyLines:
    def test_appends_across_handles(self, tmp_path):
        path = tmp_path / "log.jsonl"
        with AppendOnlyLines(path) as log:
            log.append("one")
        with AppendOnlyLines(path) as log:
            log.append("two")
        assert path.read_text(encoding="utf-8") == "one\ntwo\n"

    def test_rejects_embedded_newline(self, tmp_path):
        with AppendOnlyLines(tmp_path / "log.jsonl") as log:
            with pytest.raises(ValueError, match="newline"):
                log.append("a\nb")

    def test_close_is_idempotent(self, tmp_path):
        log = AppendOnlyLines(tmp_path / "log.jsonl")
        log.close()
        log.close()
