"""Atomic writes and all-or-nothing journal appends."""

import json
import os

import pytest

from repro.supervision import atomicio
from repro.supervision.atomicio import (
    AppendOnlyLines,
    atomic_write_json,
    atomic_write_text,
)


class TestAtomicWrite:
    def test_writes_content(self, tmp_path):
        target = tmp_path / "out.txt"
        atomic_write_text(target, "hello\n")
        assert target.read_text(encoding="utf-8") == "hello\n"

    def test_replaces_existing(self, tmp_path):
        target = tmp_path / "out.txt"
        target.write_text("old", encoding="utf-8")
        atomic_write_text(target, "new")
        assert target.read_text(encoding="utf-8") == "new"

    def test_no_tmp_file_left_behind(self, tmp_path):
        target = tmp_path / "out.txt"
        atomic_write_text(target, "x")
        assert os.listdir(tmp_path) == ["out.txt"]

    def test_failed_write_preserves_old_content(self, tmp_path):
        target = tmp_path / "out.json"
        target.write_text('{"ok": true}', encoding="utf-8")
        with pytest.raises(TypeError):
            atomic_write_json(target, {"bad": object()})
        assert json.loads(target.read_text(encoding="utf-8")) == {"ok": True}

    def test_json_newline_terminated(self, tmp_path):
        target = tmp_path / "out.json"
        atomic_write_json(target, {"a": 1})
        text = target.read_text(encoding="utf-8")
        assert text.endswith("\n")
        assert json.loads(text) == {"a": 1}


class TestAppendOnlyLines:
    def test_appends_across_handles(self, tmp_path):
        path = tmp_path / "log.jsonl"
        with AppendOnlyLines(path) as log:
            log.append("one")
        with AppendOnlyLines(path) as log:
            log.append("two")
        assert path.read_text(encoding="utf-8") == "one\ntwo\n"

    def test_rejects_embedded_newline(self, tmp_path):
        with AppendOnlyLines(tmp_path / "log.jsonl") as log:
            with pytest.raises(ValueError, match="newline"):
                log.append("a\nb")

    def test_close_is_idempotent(self, tmp_path):
        log = AppendOnlyLines(tmp_path / "log.jsonl")
        log.close()
        log.close()


class TestFsyncPolicy:
    def test_default_is_durable(self, monkeypatch):
        monkeypatch.delenv(atomicio.FSYNC_ENV, raising=False)
        assert atomicio.fsync_enabled()

    @pytest.mark.parametrize("value", ["off", "0", "no", "false", " OFF "])
    def test_disabling_spellings(self, monkeypatch, value):
        monkeypatch.setenv(atomicio.FSYNC_ENV, value)
        assert not atomicio.fsync_enabled()

    @pytest.mark.parametrize("value", ["on", "1", "yes", ""])
    def test_everything_else_stays_durable(self, monkeypatch, value):
        monkeypatch.setenv(atomicio.FSYNC_ENV, value)
        assert atomicio.fsync_enabled()

    def test_fsync_off_skips_the_syscall(self, tmp_path, monkeypatch):
        calls = []
        monkeypatch.setattr(atomicio.os, "fsync",
                            lambda fd: calls.append(fd))
        monkeypatch.setenv(atomicio.FSYNC_ENV, "off")
        atomicio.atomic_write_text(tmp_path / "a.txt", "x")
        with atomicio.AppendOnlyLines(tmp_path / "j.jsonl") as journal:
            journal.append("line")
        assert calls == []
        monkeypatch.setenv(atomicio.FSYNC_ENV, "on")
        atomicio.atomic_write_text(tmp_path / "b.txt", "y")
        assert len(calls) == 1

    def test_fsync_off_keeps_atomicity(self, tmp_path, monkeypatch):
        monkeypatch.setenv(atomicio.FSYNC_ENV, "off")
        path = tmp_path / "doc.json"
        atomicio.atomic_write_json(path, {"v": 1})
        atomicio.atomic_write_json(path, {"v": 2})
        assert json.loads(path.read_text()) == {"v": 2}
        assert list(tmp_path.glob("*.tmp")) == []


class TestUniqueTmpSuffix:
    def test_embeds_pid_and_never_repeats(self):
        import os as _os

        suffixes = {atomicio.unique_tmp_suffix() for _ in range(100)}
        assert len(suffixes) == 100
        assert all(s.startswith(f".{_os.getpid()}.") for s in suffixes)
        assert all(s.endswith(".tmp") for s in suffixes)

    def test_threads_never_collide(self):
        import threading as _threading

        seen, lock = [], _threading.Lock()

        def grab():
            for _ in range(200):
                suffix = atomicio.unique_tmp_suffix()
                with lock:
                    seen.append(suffix)

        threads = [_threading.Thread(target=grab) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(seen) == len(set(seen))
