"""Fault-spec grammar, match counters, and in-process fault behavior.

Only the faults that are safe to run in the test process itself are
fired here (hang with a tiny duration, simulated OOM, malformed).  The
crash fault and the supervised recovery paths are exercised end to end
in ``test_fault_matrix.py``.
"""

import time

import pytest

from repro.ilp.model import Model
from repro.ilp.solution import Solution, SolveStatus
from repro.supervision import faults
from repro.supervision.faults import (
    ENV_VAR,
    FaultSpec,
    FaultSpecError,
    parse_faults,
)


@pytest.fixture(autouse=True)
def _clean_fault_state(monkeypatch):
    monkeypatch.delenv(ENV_VAR, raising=False)
    faults.reset()
    yield
    faults.reset()


class TestParse:
    def test_empty(self):
        assert parse_faults("") == []

    def test_kind_only_defaults_to_any_site(self):
        (spec,) = parse_faults("crash")
        assert spec == FaultSpec(kind="crash", site="any")

    def test_full_clause(self):
        (spec,) = parse_faults(
            "hang@attempt:t=4:loop=dotprod:times=2:after=1:seconds=0.5"
        )
        assert spec.kind == "hang"
        assert spec.site == "attempt"
        assert dict(spec.match) == {"t": "4", "loop": "dotprod"}
        assert spec.times == 2
        assert spec.after == 1
        assert spec.seconds == 0.5

    def test_multiple_clauses(self):
        specs = parse_faults("crash@attempt, malformed@solve:times=1")
        assert [s.kind for s in specs] == ["crash", "malformed"]

    @pytest.mark.parametrize(
        "text",
        ["meltdown@attempt", "crash@nowhere", "crash@attempt:times",
         "hang@any:times=x"],
    )
    def test_bad_clause_rejected(self, text):
        with pytest.raises(FaultSpecError):
            parse_faults(text)


class TestMatching:
    def test_site_filter(self):
        spec = FaultSpec(kind="crash", site="attempt")
        assert spec.matches("attempt", {})
        assert not spec.matches("batch", {})
        assert FaultSpec(kind="crash", site="any").matches("batch", {})

    def test_context_filter_compares_as_strings(self):
        spec = FaultSpec(kind="crash", site="any", match=(("t", "4"),))
        assert spec.matches("attempt", {"t": 4})
        assert not spec.matches("attempt", {"t": 5})
        assert not spec.matches("attempt", {})


class TestCounters:
    def test_times_caps_firings(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "malformed@solve:times=2")
        assert faults.should_corrupt("solve")
        assert faults.should_corrupt("solve")
        assert not faults.should_corrupt("solve")

    def test_after_skips_first_matches(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "malformed@solve:after=2:times=1")
        assert not faults.should_corrupt("solve")
        assert not faults.should_corrupt("solve")
        assert faults.should_corrupt("solve")
        assert not faults.should_corrupt("solve")

    def test_env_change_resets_counters(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "malformed@solve:times=1")
        assert faults.should_corrupt("solve")
        monkeypatch.setenv(ENV_VAR, "malformed@solve:times=1:t=9")
        assert not faults.should_corrupt("solve")  # new spec, t mismatch
        assert faults.should_corrupt("solve", t=9)


class TestFire:
    def test_inert_without_env(self):
        faults.fire("attempt", loop="x", t=1)  # no-op

    def test_hang_sleeps_for_configured_seconds(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "hang@attempt:seconds=0.2:times=1")
        start = time.monotonic()
        faults.fire("attempt", loop="x", t=1)
        assert time.monotonic() - start >= 0.2

    def test_oom_raises_memory_error(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "oom@attempt:mb=16:times=1")
        with pytest.raises(MemoryError, match="simulated OOM"):
            faults.fire("attempt", loop="x", t=1)
        faults.fire("attempt", loop="x", t=1)  # times=1: second is a no-op


class TestCorruptSolution:
    def _solution(self, n=6):
        model = Model("m")
        variables = [model.add_binary(f"x{i}") for i in range(n)]
        values = {v: 1.0 for v in variables}
        return Solution(status=SolveStatus.OPTIMAL, values=values)

    def test_drops_half_and_makes_one_fractional(self):
        solution = self._solution(6)
        corrupted = faults.corrupt_solution(solution)
        assert len(corrupted.values) == 3
        fractional = [
            v for v in corrupted.values.values() if v != int(v)
        ]
        assert len(fractional) == 1

    def test_empty_solution_untouched(self):
        solution = Solution(status=SolveStatus.INFEASIBLE, values={})
        assert faults.corrupt_solution(solution) is solution
