"""Fault-injection matrix: {crash, hang, oom, malformed} x
{sequential, race, batch}.

Every cell arms a deterministic fault via ``REPRO_FAULTS`` and asserts
the driver turned it into a :class:`FailureRecord` (with the promised
retry counts and statuses) while still producing its best possible
answer — never an exception out of the driver.

Crash/hang/oom faults only fire in *worker processes* (the sequential
driver goes through its supervised runner, race/batch through the
supervised pool), so the test process itself is never killed.
"""

import random
import time

import pytest

from repro.core import lower_bounds, schedule_loop
from repro.core.scheduler import AttemptConfig, run_sweep
from repro.ddg.builders import serialize_ddg
from repro.ddg.generators import GeneratorConfig, random_ddg
from repro.ddg.kernels import motivating_example
from repro.machine.presets import motivating_machine, powerpc604
from repro.parallel import race_periods, run_batch
from repro.supervision import faults
from repro.supervision.faults import ENV_VAR
from repro.supervision.records import (
    CRASH,
    DEGRADED,
    HANG,
    INTERRUPTED,
    OOM,
    SOLVER_ERROR,
    SupervisionPolicy,
)
from repro.supervision.signals import clear_interrupt, request_interrupt

pytestmark = pytest.mark.faults

#: Fast-failure policy: one retry, near-zero backoff.
RETRY_ONE = SupervisionPolicy(max_retries=1, backoff=0.01)
NO_RETRY = SupervisionPolicy(max_retries=0)
#: Hang policy: kill 1.5s after dispatch (1.0 deadline + 0.5 grace).
HANG_KILL = SupervisionPolicy(deadline=1.0, grace=0.5, max_retries=0)


@pytest.fixture(autouse=True)
def _clean_fault_state(monkeypatch):
    monkeypatch.delenv(ENV_VAR, raising=False)
    faults.reset()
    clear_interrupt()
    yield
    faults.reset()
    clear_interrupt()


@pytest.fixture
def machine():
    return motivating_machine()


@pytest.fixture
def ddg():
    return motivating_example()


def _failed(result, kind):
    return [
        a for a in result.attempts
        if a.failure is not None and a.failure.kind == kind
    ]


class TestSequentialSupervised:
    """schedule_loop(..., supervision=policy) survives every fault."""

    def test_crash_retried_then_recorded_and_sweep_continues(
        self, monkeypatch, ddg, machine
    ):
        t_lb = lower_bounds(ddg, machine).t_lb
        monkeypatch.setenv(ENV_VAR, f"crash@attempt:t={t_lb}")
        result = schedule_loop(
            ddg, machine, time_limit_per_t=10.0, supervision=RETRY_ONE
        )
        (crashed,) = _failed(result, CRASH)
        assert crashed.t_period == t_lb
        assert crashed.status == CRASH
        assert crashed.failure.attempt == 2  # initial try + 1 retry
        assert crashed.failure.retries == 1
        assert result.schedule is not None
        assert result.schedule.t_period > t_lb
        # The crashed period was never proven infeasible.
        assert not result.is_rate_optimal_proven

    def test_hang_killed_within_deadline_plus_grace(
        self, monkeypatch, ddg, machine
    ):
        t_lb = lower_bounds(ddg, machine).t_lb
        monkeypatch.setenv(
            ENV_VAR, f"hang@attempt:t={t_lb}:seconds=60"
        )
        start = time.monotonic()
        result = schedule_loop(
            ddg, machine, time_limit_per_t=10.0, supervision=HANG_KILL
        )
        (hung,) = _failed(result, HANG)
        assert hung.t_period == t_lb
        # Deadline 1.0 + grace 0.5 => the kill lands around 1.5s; the
        # rest of the margin is supervisor poll slack, never the 60s.
        assert hung.failure.elapsed < 5.0
        assert time.monotonic() - start < 30.0
        assert result.schedule is not None

    def test_oom_recorded_without_retry(self, monkeypatch, ddg, machine):
        t_lb = lower_bounds(ddg, machine).t_lb
        monkeypatch.setenv(ENV_VAR, f"oom@attempt:t={t_lb}:mb=16")
        result = schedule_loop(
            ddg, machine, time_limit_per_t=10.0, supervision=RETRY_ONE
        )
        (oomed,) = _failed(result, OOM)
        assert oomed.failure.attempt == 1  # OOM is not retryable
        assert result.schedule is not None

    def test_malformed_solution_is_solver_error(
        self, monkeypatch, ddg, machine
    ):
        monkeypatch.setenv(ENV_VAR, "malformed@solve:times=1")
        result = schedule_loop(
            ddg, machine, time_limit_per_t=10.0, supervision=NO_RETRY,
            # min_sum_t forces a real ILP solve at the heuristic's II.
            objective="min_sum_t",
        )
        assert _failed(result, SOLVER_ERROR)
        assert result.schedule is not None

    def test_interrupt_degrades_to_heuristic_incumbent(
        self, ddg, machine
    ):
        request_interrupt()
        config = AttemptConfig(time_limit=10.0)
        result = run_sweep(ddg, machine, config, max_extra=10)
        assert result.degraded
        assert result.schedule is not None
        assert result.attempts[-1].status == DEGRADED


class TestRaceSupervised:
    """race_periods keeps racing through worker failures.

    Warm starts are disabled in the crash/hang/oom cells so more than
    one candidate reaches the pool: with a single dispatched period the
    race degenerates to its in-process sweep, where a crash fault would
    take down the test process itself.
    """

    def test_crash_does_not_abort_race(self, monkeypatch, ddg, machine):
        t_lb = lower_bounds(ddg, machine).t_lb
        monkeypatch.setenv(ENV_VAR, f"crash@attempt:t={t_lb}")
        result = race_periods(
            ddg, machine, jobs=2, time_limit_per_t=10.0,
            policy=RETRY_ONE, warmstart=False,
        )
        (crashed,) = _failed(result, CRASH)
        assert crashed.t_period == t_lb
        assert crashed.failure.attempt == 2
        assert result.schedule is not None
        assert result.schedule.t_period > t_lb
        # A winner above an unproven (crashed) period is degraded.
        assert result.degraded
        assert not result.is_rate_optimal_proven

    def test_hang_killed_and_race_continues(
        self, monkeypatch, ddg, machine
    ):
        t_lb = lower_bounds(ddg, machine).t_lb
        monkeypatch.setenv(
            ENV_VAR, f"hang@attempt:t={t_lb}:seconds=60"
        )
        policy = SupervisionPolicy(deadline=2.0, grace=0.5,
                                   max_retries=0)
        start = time.monotonic()
        result = race_periods(
            ddg, machine, jobs=2, time_limit_per_t=10.0, policy=policy,
            warmstart=False,
        )
        (hung,) = _failed(result, HANG)
        assert hung.failure.elapsed < 8.0
        assert time.monotonic() - start < 40.0
        assert result.schedule is not None

    def test_oom_recorded_and_race_continues(
        self, monkeypatch, ddg, machine
    ):
        t_lb = lower_bounds(ddg, machine).t_lb
        monkeypatch.setenv(ENV_VAR, f"oom@attempt:t={t_lb}:mb=16")
        result = race_periods(
            ddg, machine, jobs=2, time_limit_per_t=10.0,
            policy=NO_RETRY, warmstart=False,
        )
        assert _failed(result, OOM)
        assert result.schedule is not None

    def test_all_candidates_lost_settles_to_heuristic(
        self, monkeypatch, ddg, machine
    ):
        # min_sum_t keeps the heuristic's period in the dispatch list
        # (feasibility would settle it without a solve); crashing every
        # attempt leaves no winner, and the race must degrade to the
        # verified heuristic incumbent instead of raising.
        monkeypatch.setenv(ENV_VAR, "crash@attempt")
        result = race_periods(
            ddg, machine, jobs=2, time_limit_per_t=10.0,
            policy=NO_RETRY, objective="min_sum_t",
        )
        assert result.degraded
        assert result.schedule is not None
        assert result.attempts[-1].status == DEGRADED
        assert _failed(result, CRASH)


class TestBatchSupervised:
    """run_batch isolates every fault to its own loop."""

    @pytest.fixture
    def corpus(self, tmp_path):
        machine = powerpc604()
        rng = random.Random(3)
        config = GeneratorConfig(min_ops=2, max_ops=5)
        paths = []
        for i in range(3):
            ddg = random_ddg(rng, machine, config, name=f"t{i}")
            path = tmp_path / f"t{i}.ddg"
            path.write_text(serialize_ddg(ddg), encoding="utf-8")
            paths.append(path)
        return machine, paths

    def _entry(self, report, name):
        (entry,) = [e for e in report.entries if e.name == name]
        return entry

    def test_crash_retried_then_isolated(self, monkeypatch, corpus):
        machine, paths = corpus
        monkeypatch.setenv(ENV_VAR, "crash@batch:loop=t1")
        report = run_batch(
            paths, machine, jobs=2, time_limit_per_t=10.0,
            policy=RETRY_ONE,
        )
        failed = self._entry(report, "t1")
        assert failed.failure.kind == CRASH
        assert failed.failure.attempt == 2
        assert failed.failure.retries == 1
        assert "crash" in failed.error
        assert report.failed == 1
        assert self._entry(report, "t0").scheduled
        assert self._entry(report, "t2").scheduled

    def test_hang_killed_and_isolated(self, monkeypatch, corpus):
        machine, paths = corpus
        monkeypatch.setenv(ENV_VAR, "hang@batch:loop=t1:seconds=60")
        policy = SupervisionPolicy(deadline=5.0, grace=1.0,
                                   max_retries=0)
        start = time.monotonic()
        report = run_batch(
            paths, machine, jobs=2, time_limit_per_t=4.0, policy=policy
        )
        failed = self._entry(report, "t1")
        assert failed.failure.kind == HANG
        assert failed.failure.elapsed < 10.0
        assert time.monotonic() - start < 40.0
        assert report.scheduled == 2

    def test_oom_isolated(self, monkeypatch, corpus):
        machine, paths = corpus
        monkeypatch.setenv(ENV_VAR, "oom@batch:loop=t1:mb=16")
        report = run_batch(
            paths, machine, jobs=2, time_limit_per_t=10.0,
            policy=RETRY_ONE,
        )
        failed = self._entry(report, "t1")
        assert failed.failure.kind == OOM
        assert failed.failure.attempt == 1
        assert report.scheduled == 2

    def test_malformed_solution_isolated_inline(
        self, monkeypatch, corpus
    ):
        machine, paths = corpus
        # Inline (jobs=1) is safe for malformed: it never kills the
        # process, and a single shared counter makes it deterministic.
        monkeypatch.setenv(ENV_VAR, "malformed@solve:times=1")
        report = run_batch(
            paths, machine, jobs=1, time_limit_per_t=10.0,
            # Force ILP solves so the corrupted solution is consumed.
            warmstart=False,
        )
        assert report.failed >= 1
        assert any(
            e.error is not None and "loop" in e.error
            for e in report.entries
        )

    def test_interrupt_settles_remaining_loops(self, corpus):
        machine, paths = corpus
        request_interrupt()
        report = run_batch(paths, machine, jobs=1,
                           time_limit_per_t=10.0)
        assert report.failed == len(paths)
        for entry in report.entries:
            assert entry.failure.kind == INTERRUPTED


class TestPortfolioSupervised:
    """(period x backend) portfolio races survive per-cell faults.

    ``REPRO_FAULTS`` specs can target a single backend's cells
    (``crash@attempt:backend=bnb``): the faulted backend loses only its
    own (period, backend) cells while the sibling backends keep racing,
    so the loop still schedules — and still proves rate-optimality when
    a healthy sibling delivers every INFEASIBLE verdict.
    """

    ROSTER = ("highs", "bnb", "sat")

    def _cells(self, result, backend):
        return [a for a in result.attempts if a.backend == backend]

    def test_crashed_loser_does_not_affect_winner(
        self, monkeypatch, ddg, machine
    ):
        monkeypatch.setenv(ENV_VAR, "crash@attempt:backend=bnb")
        result = race_periods(
            ddg, machine, jobs=4, time_limit_per_t=10.0,
            policy=NO_RETRY, warmstart=False, backends=self.ROSTER,
        )
        assert result.schedule is not None
        assert result.achieved_t == 4
        # Every crash is confined to a bnb cell, recorded per-(T,backend).
        crashed = _failed(result, CRASH)
        assert crashed
        assert all(a.backend == "bnb" for a in crashed)
        cells = {(a.t_period, a.backend) for a in crashed}
        assert len(cells) == len(crashed)
        # Healthy siblings proved T=3 infeasible regardless.
        assert result.is_rate_optimal_proven
        assert result.portfolio["winner_backend"] in ("highs", "sat")

    def test_hung_loser_killed_and_winner_unaffected(
        self, monkeypatch, ddg, machine
    ):
        monkeypatch.setenv(
            ENV_VAR, "hang@attempt:backend=bnb:seconds=60"
        )
        policy = SupervisionPolicy(
            deadline=2.0, grace=0.5, max_retries=0
        )
        start = time.monotonic()
        result = race_periods(
            ddg, machine, jobs=4, time_limit_per_t=10.0,
            policy=policy, warmstart=False, backends=self.ROSTER,
        )
        assert time.monotonic() - start < 60.0
        assert result.schedule is not None
        assert result.achieved_t == 4
        # Hung bnb cells were either deadline-killed (HANG failure) or
        # reaped as losers once the period settled (cancelled).
        bnb = self._cells(result, "bnb")
        assert bnb
        assert all(
            a.status in (HANG, "cancelled") for a in bnb
        )
        hung = _failed(result, HANG)
        assert all(a.backend == "bnb" for a in hung)

    def test_whole_roster_crash_degrades_not_raises(
        self, monkeypatch, ddg, machine
    ):
        monkeypatch.setenv(ENV_VAR, "crash@attempt")
        result = race_periods(
            ddg, machine, jobs=4, time_limit_per_t=10.0,
            policy=NO_RETRY, objective="min_sum_t",
            backends=("highs", "bnb"),
        )
        assert result.degraded
        assert result.schedule is not None
        # The attempt log is (T, backend)-sorted, so the degraded
        # settle is not necessarily last as in single-backend races.
        assert any(a.status == DEGRADED for a in result.attempts)

    def test_degraded_winner_carries_lost_cell_taxonomy(
        self, monkeypatch, ddg, machine
    ):
        """v8 provenance: every lost period cell is accounted for.

        Crashing the whole roster forces a degraded settle; the report
        must then name each lost (T, backend) cell with its failure
        kind — including portfolio losers that were merely cancelled.
        """
        from repro.parallel.batch import BatchEntry

        monkeypatch.setenv(ENV_VAR, "crash@attempt")
        result = race_periods(
            ddg, machine, jobs=4, time_limit_per_t=10.0,
            policy=NO_RETRY, objective="min_sum_t",
            backends=("highs", "bnb"),
        )
        assert result.degraded
        lost = result.lost_cells()
        # Exactly the attempts without a verdict, one record each.
        expected = [
            a for a in result.attempts
            if a.failure is not None or a.status == "cancelled"
        ]
        assert len(lost) == len(expected) > 0
        assert {c["kind"] for c in lost} <= {
            CRASH, HANG, OOM, SOLVER_ERROR, INTERRUPTED, "cancelled",
        }
        assert CRASH in {c["kind"] for c in lost}
        for cell in lost:
            assert cell["t"] >= result.bounds.t_lb
            # "" marks a cell cancelled before it reached a backend.
            assert cell["backend"] in ("highs", "bnb", "")
        # The v8 report entry surfaces the same records verbatim.
        entry = BatchEntry(
            name=ddg.name, source="<memory>", num_ops=len(ddg.ops),
            result=result,
        ).to_json_dict()
        assert entry["degraded"] is True
        assert entry["lost_cells"] == lost

    def test_no_live_children_after_faulted_race(
        self, monkeypatch, ddg, machine
    ):
        import multiprocessing

        monkeypatch.setenv(ENV_VAR, "crash@attempt:backend=sat")
        before = set(multiprocessing.active_children())
        result = race_periods(
            ddg, machine, jobs=4, time_limit_per_t=10.0,
            policy=NO_RETRY, warmstart=False, backends=self.ROSTER,
        )
        assert result.schedule is not None
        leftover = [
            p for p in multiprocessing.active_children()
            if p not in before
        ]
        deadline = time.monotonic() + 5.0
        while leftover and time.monotonic() < deadline:
            time.sleep(0.05)
            leftover = [p for p in leftover if p.is_alive()]
        assert leftover == []
