"""On-disk store: sharding, atomicity, corruption tolerance, gc."""

import json
import os
import time

from repro.store.disk import ScheduleStore
from repro.store.keys import STORE_VERSION

KEY_A = "aa" + "0" * 62
KEY_B = "bb" + "1" * 62


def _entry(payload="x"):
    return {"store_version": STORE_VERSION, "payload": payload}


class TestRoundTrip:
    def test_write_read_delete(self, tmp_path):
        store = ScheduleStore(tmp_path / "store")
        assert store.read(KEY_A) is None
        store.write(KEY_A, _entry())
        assert store.read(KEY_A)["payload"] == "x"
        assert store.delete(KEY_A)
        assert store.read(KEY_A) is None
        assert not store.delete(KEY_A)

    def test_sharded_layout(self, tmp_path):
        store = ScheduleStore(tmp_path)
        store.write(KEY_A, _entry())
        assert (tmp_path / "aa" / f"{KEY_A}.json").is_file()

    def test_keys_and_entries_enumerate(self, tmp_path):
        store = ScheduleStore(tmp_path)
        store.write(KEY_A, _entry("a"))
        store.write(KEY_B, _entry("b"))
        assert sorted(store.keys()) == sorted([KEY_A, KEY_B])
        assert len(store) == 2
        assert {e["payload"] for _, e in store.entries()} == {"a", "b"}

    def test_last_writer_wins(self, tmp_path):
        store = ScheduleStore(tmp_path)
        store.write(KEY_A, _entry("first"))
        store.write(KEY_A, _entry("second"))
        assert store.read(KEY_A)["payload"] == "second"

    def test_no_leftover_tmp_files(self, tmp_path):
        store = ScheduleStore(tmp_path)
        store.write(KEY_A, _entry())
        leftovers = [p for p in tmp_path.rglob("*.tmp")]
        assert leftovers == []


class TestSuspicion:
    def test_corrupt_json_is_evicted_on_read(self, tmp_path):
        store = ScheduleStore(tmp_path)
        store.write(KEY_A, _entry())
        store.path_for(KEY_A).write_text("{ torn", encoding="utf-8")
        assert store.read(KEY_A) is None
        assert not store.path_for(KEY_A).exists()

    def test_non_object_root_is_evicted(self, tmp_path):
        store = ScheduleStore(tmp_path)
        path = store.path_for(KEY_A)
        path.parent.mkdir(parents=True)
        path.write_text(json.dumps([1, 2, 3]), encoding="utf-8")
        assert store.read(KEY_A) is None
        assert not path.exists()

    def test_version_mismatch_is_miss_without_eviction(self, tmp_path):
        store = ScheduleStore(tmp_path)
        store.write(KEY_A, {"store_version": STORE_VERSION + 1})
        assert store.read(KEY_A) is None
        assert store.path_for(KEY_A).exists()


class TestMaintenance:
    def test_stats(self, tmp_path):
        store = ScheduleStore(tmp_path)
        assert store.stats()["entries"] == 0
        store.write(KEY_A, _entry())
        stats = store.stats()
        assert stats["entries"] == 1 and stats["bytes"] > 0
        assert stats["oldest_mtime"] is not None

    def test_gc_by_age(self, tmp_path):
        store = ScheduleStore(tmp_path)
        store.write(KEY_A, _entry("old"))
        old = time.time() - 3600
        os.utime(store.path_for(KEY_A), (old, old))
        store.write(KEY_B, _entry("new"))
        outcome = store.gc(max_age=60)
        assert outcome["removed"] == 1 and outcome["kept"] == 1
        assert store.read(KEY_A) is None
        assert store.read(KEY_B) is not None

    def test_gc_by_size_drops_oldest_first(self, tmp_path):
        store = ScheduleStore(tmp_path)
        store.write(KEY_A, _entry("old"))
        old = time.time() - 100
        os.utime(store.path_for(KEY_A), (old, old))
        store.write(KEY_B, _entry("new"))
        outcome = store.gc(max_bytes=store.path_for(KEY_B).stat().st_size)
        assert outcome["removed"] == 1
        assert store.read(KEY_B) is not None
        assert store.read(KEY_A) is None

    def test_clear(self, tmp_path):
        store = ScheduleStore(tmp_path)
        store.write(KEY_A, _entry())
        store.write(KEY_B, _entry())
        assert store.clear() == 2
        assert len(store) == 0
