"""Two-writer stress: concurrent same-key publication must never tear.

PR 9 replaced the per-pid scratch suffix with a (pid, counter) suffix
precisely because two writers publishing the same key — two threads of
one daemon, or one process publishing twice back-to-back — could
otherwise truncate each other's scratch file mid-write.  These tests
hammer one key from many processes and many threads and assert every
read along the way sees a complete document.
"""

import json
import multiprocessing
import threading

from repro.store.disk import ScheduleStore
from repro.store.keys import STORE_VERSION

KEY = "cc" + "2" * 62
ROUNDS = 40


def _entry(writer, round_index):
    # A payload large enough that a torn write would be conspicuous.
    return {
        "store_version": STORE_VERSION,
        "writer": writer,
        "round": round_index,
        "bulk": "x" * 4096,
    }


def _hammer(root, writer, rounds, errors):
    try:
        store = ScheduleStore(root)
        for index in range(rounds):
            store.write(KEY, _entry(writer, index))
            seen = store.read(KEY)
            # Reads may interleave with the other writer, but must be
            # a whole document from *some* writer, never a hybrid.
            if seen is not None and len(seen.get("bulk", "")) != 4096:
                errors.append(f"{writer}: torn read at round {index}")
    except Exception as exc:  # pragma: no cover - failure reporting
        errors.append(f"{writer}: {type(exc).__name__}: {exc}")


class TestTwoWriterStress:
    def test_two_processes_same_key(self, tmp_path):
        root = tmp_path / "store"
        manager = multiprocessing.Manager()
        errors = manager.list()
        workers = [
            multiprocessing.Process(
                target=_hammer, args=(root, f"proc{i}", ROUNDS, errors)
            )
            for i in range(2)
        ]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join(timeout=100)
        assert all(worker.exitcode == 0 for worker in workers)
        assert list(errors) == []
        final = ScheduleStore(root).read(KEY)
        assert final is not None and len(final["bulk"]) == 4096

    def test_many_threads_same_key(self, tmp_path):
        root = tmp_path / "store"
        errors = []
        threads = [
            threading.Thread(
                target=_hammer, args=(root, f"thread{i}", ROUNDS, errors)
            )
            for i in range(6)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == []

    def test_no_scratch_files_survive(self, tmp_path):
        root = tmp_path / "store"
        errors = []
        _hammer(root, "solo", ROUNDS, errors)
        assert errors == []
        leftovers = list(root.rglob("*.tmp"))
        assert leftovers == []

    def test_shard_file_is_valid_json_after_the_dust_settles(
        self, tmp_path
    ):
        root = tmp_path / "store"
        errors = []
        threads = [
            threading.Thread(
                target=_hammer, args=(root, f"t{i}", ROUNDS, errors)
            )
            for i in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == []
        files = [p for p in root.rglob("*") if p.is_file()]
        assert files
        for path in files:
            doc = json.loads(path.read_text())
            assert doc["store_version"] == STORE_VERSION
