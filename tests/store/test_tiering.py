"""Tiered lookup: verify-on-read, eviction, publish policy, equivalence."""

import random

import pytest

from repro.core.scheduler import AttemptConfig, run_sweep, schedule_loop
from repro.ddg.kernels import daxpy, dot_product, motivating_example
from repro.ddg.transforms import scrambled
from repro.machine.presets import motivating_machine
from repro.parallel import cache
from repro.store import ScheduleStore, open_store
from repro.store.tiering import (
    clear_tiers,
    lookup,
    publish,
    tier_stats,
)


@pytest.fixture(autouse=True)
def fresh_state():
    clear_tiers()
    cache.clear_caches()
    yield
    clear_tiers()
    cache.clear_caches()


@pytest.fixture
def store(tmp_path):
    return ScheduleStore(tmp_path / "store")


@pytest.fixture
def machine():
    return motivating_machine()


CONFIG = AttemptConfig(time_limit=10.0)


class TestLookupTiers:
    def test_miss_then_disk_then_memory(self, store, machine):
        ddg = motivating_example()
        stored, stats = lookup(store, ddg, machine, CONFIG, 10)
        assert stored is None and not stats.hit

        result = run_sweep(ddg, machine, CONFIG, 10, store=store)
        assert result.store.published

        clear_tiers()  # drop the memory tier; disk survives
        stored, stats = lookup(store, ddg, machine, CONFIG, 10)
        assert stored is not None
        assert stats.tier == "disk" and stats.verified

        stored, stats = lookup(store, ddg, machine, CONFIG, 10)
        assert stored is not None and stats.tier == "memory"

    def test_hit_equals_cold_solve(self, store, machine):
        # The acceptance-criteria differential: same T, same verified
        # validity, same rate-optimality flag as the cold solve.
        for ddg in (motivating_example(), dot_product(), daxpy()):
            cold = run_sweep(ddg, machine, CONFIG, 10, store=store)
            clear_tiers()
            warm = run_sweep(ddg, machine, CONFIG, 10, store=store)
            assert warm.store.hit
            assert warm.achieved_t == cold.achieved_t
            assert warm.is_rate_optimal_proven == cold.is_rate_optimal_proven
            assert warm.bounds == cold.bounds
            assert [a.t_period for a in warm.attempts] == [
                a.t_period for a in cold.attempts
            ]
            from repro.core.verify import verify_schedule

            verify_schedule(warm.schedule)

    def test_isomorphic_variant_hits_and_verifies(self, store, machine):
        ddg = motivating_example()
        cold = run_sweep(ddg, machine, CONFIG, 10, store=store)
        variant = scrambled(ddg, random.Random(11))
        warm = run_sweep(variant, machine, CONFIG, 10, store=store)
        assert warm.store.hit
        assert warm.achieved_t == cold.achieved_t
        assert warm.loop_name == variant.name
        from repro.core.verify import verify_schedule

        verify_schedule(warm.schedule)

    def test_different_machine_misses(self, store, machine):
        ddg = motivating_example()
        run_sweep(ddg, machine, CONFIG, 10, store=store)
        other = motivating_machine(fp_units=3)
        stored, stats = lookup(store, ddg, other, CONFIG, 10)
        assert stored is None and not stats.hit

    def test_different_semantics_miss(self, store, machine):
        ddg = motivating_example()
        run_sweep(ddg, machine, CONFIG, 10, store=store)
        other = AttemptConfig(time_limit=10.0, objective="min_sum_t")
        stored, _ = lookup(store, ddg, machine, other, 10)
        assert stored is None

    def test_speed_knobs_still_hit(self, store, machine):
        ddg = motivating_example()
        run_sweep(ddg, machine, CONFIG, 10, store=store)
        clear_tiers()
        fast = AttemptConfig(time_limit=1.0, presolve=False,
                             warmstart=False, backend="bnb")
        stored, stats = lookup(store, ddg, machine, fast, 10)
        assert stored is not None and stats.hit


class TestVerifyOnRead:
    def _published(self, store, machine, ddg):
        result = run_sweep(ddg, machine, CONFIG, 10, store=store)
        assert result.store.published
        return result

    def test_tampered_starts_evict_and_fall_back(self, store, machine):
        import json

        ddg = motivating_example()
        cold = self._published(store, machine, ddg)
        key = cold.store.key
        entry = store.read(key)
        # Corrupt the payload in a structurally-valid way: collapse all
        # starts to cycle 0, violating every positive-latency dependence.
        starts = entry["result"]["schedule"]["starts"]
        entry["result"]["schedule"]["starts"] = [0] * len(starts)
        store.path_for(key).write_text(
            json.dumps(entry), encoding="utf-8"
        )
        clear_tiers()
        again = run_sweep(ddg, machine, CONFIG, 10, store=store)
        assert not again.store.hit
        assert again.store.evicted
        # ... and the cold solve re-published a good entry.
        assert again.store.published
        assert again.achieved_t == cold.achieved_t
        clear_tiers()
        stored, stats = lookup(store, ddg, machine, CONFIG, 10)
        assert stored is not None and stats.verified

    def test_stale_entry_for_changed_machine_content(self, store, machine):
        # Force a key collision with different machine content by
        # writing the entry under the *new* machine's key: text matches,
        # but verification against the new machine must reject it.
        ddg = motivating_example()
        cold = self._published(store, machine, ddg)
        entry = store.read(cold.store.key)
        weaker = motivating_machine(fp_units=1)
        weak_cfg = AttemptConfig(time_limit=10.0)
        _, weak_stats = lookup(store, ddg, weaker, weak_cfg, 10)
        store.write(weak_stats.key, entry)
        clear_tiers()
        cache.clear_caches()
        stored, stats = lookup(store, ddg, weaker, weak_cfg, 10)
        assert stored is None
        assert stats.evicted
        assert store.read(weak_stats.key) is None

    def test_text_mismatch_is_evicted(self, store, machine):
        import json

        ddg = motivating_example()
        cold = self._published(store, machine, ddg)
        entry = store.read(cold.store.key)
        entry["ddg"] = "loop canonical\nop o0 fadd\n"
        store.path_for(cold.store.key).write_text(
            json.dumps(entry), encoding="utf-8"
        )
        clear_tiers()
        stored, stats = lookup(store, ddg, machine, CONFIG, 10)
        assert stored is None and stats.evicted


class TestPublishPolicy:
    def test_degraded_results_are_not_published(self, store, machine):
        ddg = motivating_example()
        result = run_sweep(ddg, machine, CONFIG, 10)
        result.degraded = True
        assert not publish(store, ddg, machine, CONFIG, 10, result)
        assert len(store) == 0

    def test_unscheduled_results_are_not_published(self, store, machine):
        ddg = motivating_example()
        result = run_sweep(ddg, machine, CONFIG, 10)
        result.schedule = None
        assert not publish(store, ddg, machine, CONFIG, 10, result)

    def test_failed_attempts_block_publication(self, store, machine):
        from repro.supervision.records import FailureRecord

        ddg = motivating_example()
        result = run_sweep(ddg, machine, CONFIG, 10)
        result.attempts[0].failure = FailureRecord(
            kind="crash", detail="boom"
        )
        assert not publish(store, ddg, machine, CONFIG, 10, result)


class TestScheduleLoopAndOpenStore:
    def test_schedule_loop_accepts_path(self, tmp_path, machine):
        ddg = motivating_example()
        path = str(tmp_path / "s")
        cold = schedule_loop(ddg, machine, store=path,
                             time_limit_per_t=10.0)
        assert cold.store is not None and cold.store.published
        clear_tiers()
        warm = schedule_loop(ddg, machine, store=path,
                             time_limit_per_t=10.0)
        assert warm.store.hit

    def test_open_store_coercions(self, tmp_path):
        assert open_store(None) is None
        store = ScheduleStore(tmp_path)
        assert open_store(store) is store
        opened = open_store(str(tmp_path))
        assert isinstance(opened, ScheduleStore)

    def test_tier_stats_shape(self):
        stats = tier_stats()
        assert set(stats) == {"canonical", "entry"}
        for counters in stats.values():
            assert {"hits", "misses", "size"} <= set(counters)
