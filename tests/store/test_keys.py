"""Content-addressed key construction: canonical machine digests."""

from repro.core.scheduler import AttemptConfig
from repro.machine.machine import Machine
from repro.machine.presets import motivating_machine
from repro.machine.reservation import ReservationTable
from repro.store.keys import (
    canonical_machine_digest,
    config_fingerprint,
    store_key,
)


def _renamed_motivating() -> Machine:
    """The motivating machine with every name changed, content intact."""
    m = Machine("other-name")
    fp_table = ReservationTable.from_rows([1, 0, 0], [0, 1, 0], [0, 1, 1])
    m.add_fu_type("ALU_X", count=2, table=fp_table)
    m.add_fu_type("LSU_Y", count=1, table=ReservationTable.clean(3))
    # Op classes keep their names (the DDG references them); only the
    # machine/FU naming differs.
    m.add_op_class("fadd", "ALU_X", latency=2)
    m.add_op_class("fmul", "ALU_X", latency=2)
    m.add_op_class("load", "LSU_Y", latency=3)
    m.add_op_class("store", "LSU_Y", latency=1)
    return m


class TestCanonicalMachineDigest:
    def test_invariant_to_machine_and_fu_names(self):
        assert canonical_machine_digest(
            motivating_machine()
        ) == canonical_machine_digest(_renamed_motivating())

    def test_sensitive_to_fu_count(self):
        assert canonical_machine_digest(
            motivating_machine(fp_units=2)
        ) != canonical_machine_digest(motivating_machine(fp_units=3))

    def test_sensitive_to_latency(self):
        m = Machine("m")
        m.add_fu_type("FP", count=1, table=ReservationTable.clean(2))
        m.add_op_class("fadd", "FP", latency=2)
        n = Machine("m")
        n.add_fu_type("FP", count=1, table=ReservationTable.clean(2))
        n.add_op_class("fadd", "FP", latency=4)
        assert canonical_machine_digest(m) != canonical_machine_digest(n)

    def test_sensitive_to_binding_structure(self):
        # Two classes sharing one FU type compete for its copies; the
        # same classes on separate identical FU types do not.  The
        # digests must differ even though each class sees an identical
        # (count, table) locally.
        shared = Machine("shared")
        shared.add_fu_type("FU", count=1, table=ReservationTable.clean(2))
        shared.add_op_class("fadd", "FU", latency=2)
        shared.add_op_class("fmul", "FU", latency=2)
        split = Machine("split")
        split.add_fu_type("FU_A", count=1, table=ReservationTable.clean(2))
        split.add_fu_type("FU_B", count=1, table=ReservationTable.clean(2))
        split.add_op_class("fadd", "FU_A", latency=2)
        split.add_op_class("fmul", "FU_B", latency=2)
        assert canonical_machine_digest(shared) != canonical_machine_digest(
            split
        )


class TestFingerprintAndKey:
    def test_semantic_fields_partition_keys(self):
        base = AttemptConfig()
        fp = config_fingerprint(base, max_extra=10)
        for variant in (
            AttemptConfig(objective="min_sum_t"),
            AttemptConfig(mapping=False),
            AttemptConfig(repair_modulo=True),
        ):
            assert config_fingerprint(variant, 10) != fp
        assert config_fingerprint(base, 5) != fp

    def test_speed_knobs_do_not_partition_keys(self):
        # Backend, budget, presolve, warm-start change how fast the
        # answer arrives, not what it is (pinned by the differential
        # suites) — they stay out of the key.
        base = config_fingerprint(AttemptConfig(), 10)
        for variant in (
            AttemptConfig(backend="bnb"),
            AttemptConfig(time_limit=1.0),
            AttemptConfig(presolve=False),
            AttemptConfig(warmstart=False),
        ):
            assert config_fingerprint(variant, 10) == base

    def test_store_key_depends_on_all_parts(self):
        fp = config_fingerprint(AttemptConfig(), 10)
        key = store_key("d1", "m1", fp)
        assert store_key("d2", "m1", fp) != key
        assert store_key("d1", "m2", fp) != key
        assert store_key(
            "d1", "m1", config_fingerprint(AttemptConfig(), 4)
        ) != key
