"""Warming the store from batch reports and journals."""

import json
import pathlib

import pytest

from repro.core.scheduler import AttemptConfig
from repro.machine.presets import powerpc604
from repro.parallel import run_batch
from repro.parallel.cache import clear_caches
from repro.store import ScheduleStore
from repro.store.tiering import clear_tiers, lookup
from repro.store.warm import warm_store

CORPUS_DIR = pathlib.Path(__file__).resolve().parent.parent.parent / "corpus"
SUBSET = sorted(CORPUS_DIR.glob("*.ddg"))[:3]

CONFIG = AttemptConfig(time_limit=10.0)


@pytest.fixture(autouse=True)
def fresh_state():
    clear_tiers()
    clear_caches()
    yield
    clear_tiers()
    clear_caches()


@pytest.fixture(scope="module")
def machine():
    return powerpc604()


class TestWarmFromReport:
    def test_report_round_trip(self, tmp_path, machine):
        report = run_batch(SUBSET, machine, jobs=1, time_limit_per_t=10.0)
        report_path = tmp_path / "report.json"
        report.save_json(report_path)

        store = ScheduleStore(tmp_path / "store")
        outcome = warm_store(report_path, store, machine, CONFIG, 10)
        assert outcome["examined"] == len(SUBSET)
        assert outcome["published"] == len(SUBSET)
        assert outcome["skipped"] == {}
        assert len(store) == len(SUBSET)

        # The warmed entries must be genuine hits for a fresh run.
        clear_tiers()
        warmed = run_batch(SUBSET, machine, jobs=1,
                           time_limit_per_t=10.0,
                           store=store.root)
        assert all(
            e.result.store.hit for e in warmed.entries
        )

    def test_journal_round_trip(self, tmp_path, machine):
        journal = tmp_path / "batch.jsonl"
        run_batch(SUBSET, machine, jobs=1, time_limit_per_t=10.0,
                  journal=journal)
        store = ScheduleStore(tmp_path / "store")
        outcome = warm_store(journal, store, machine, CONFIG, 10)
        assert outcome["published"] == len(SUBSET)
        clear_tiers()
        from repro.ddg.builders import parse_ddg

        ddg = parse_ddg(SUBSET[0].read_text(encoding="utf-8"))
        stored, stats = lookup(store, ddg, machine, CONFIG, 10)
        assert stored is not None and stats.verified


class TestSkipReasons:
    def _report_doc(self, tmp_path, machine):
        report = run_batch(SUBSET[:1], machine, jobs=1,
                           time_limit_per_t=10.0)
        return report.to_json_dict()

    def _warm_doc(self, tmp_path, machine, doc):
        path = tmp_path / "doc.json"
        path.write_text(json.dumps(doc), encoding="utf-8")
        store = ScheduleStore(tmp_path / "store")
        return warm_store(path, store, machine, CONFIG, 10), store

    def test_error_entries_skip(self, tmp_path, machine):
        doc = self._report_doc(tmp_path, machine)
        doc["entries"][0]["error"] = "boom"
        outcome, store = self._warm_doc(tmp_path, machine, doc)
        assert outcome["skipped"] == {"error_entry": 1}
        assert len(store) == 0

    def test_pre_v5_entries_skip_without_schedule(self, tmp_path, machine):
        doc = self._report_doc(tmp_path, machine)
        del doc["entries"][0]["schedule"]
        outcome, _ = self._warm_doc(tmp_path, machine, doc)
        assert outcome["skipped"] == {"no_schedule": 1}

    def test_degraded_entries_skip(self, tmp_path, machine):
        doc = self._report_doc(tmp_path, machine)
        doc["entries"][0]["degraded"] = True
        outcome, _ = self._warm_doc(tmp_path, machine, doc)
        assert outcome["skipped"] == {"degraded": 1}

    def test_missing_source_skips(self, tmp_path, machine):
        doc = self._report_doc(tmp_path, machine)
        doc["entries"][0]["source"] = str(tmp_path / "gone.ddg")
        outcome, _ = self._warm_doc(tmp_path, machine, doc)
        assert outcome["skipped"] == {"source_missing": 1}

    def test_in_memory_source_skips(self, tmp_path, machine):
        doc = self._report_doc(tmp_path, machine)
        doc["entries"][0]["source"] = "<memory>"
        outcome, _ = self._warm_doc(tmp_path, machine, doc)
        assert outcome["skipped"] == {"in_memory_source": 1}

    def test_tampered_schedule_fails_verify(self, tmp_path, machine):
        doc = self._report_doc(tmp_path, machine)
        schedule = doc["entries"][0]["schedule"]
        schedule["starts"] = [0] * len(schedule["starts"])
        outcome, store = self._warm_doc(tmp_path, machine, doc)
        assert outcome["skipped"] == {"verify_failed": 1}
        assert len(store) == 0

    def test_source_resolved_relative_to_document(self, tmp_path, machine):
        doc = self._report_doc(tmp_path, machine)
        name = pathlib.Path(doc["entries"][0]["source"]).name
        (tmp_path / name).write_text(
            SUBSET[0].read_text(encoding="utf-8"), encoding="utf-8"
        )
        doc["entries"][0]["source"] = name
        outcome, _ = self._warm_doc(tmp_path, machine, doc)
        assert outcome["published"] == 1
