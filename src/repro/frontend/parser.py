"""Recursive-descent parser for the loop DSL.

Grammar::

    loop      := 'for' NAME ':' NEWLINE statement+
    statement := target '=' expr NEWLINE
    target    := NAME | NAME '[' index ']'
    expr      := term (('+' | '-') term)*
    term      := factor (('*' | '/') factor)*
    factor    := NUMBER | NAME | NAME '[' index ']' | '(' expr ')'
                 | '-' factor
    index     := NAME (('+' | '-') NUMBER)? | NUMBER

Array indices must be affine in the loop's induction variable (or a
plain constant, treated as offset relative to nothing — rejected, since
only induction-relative accesses carry analyzable distances).
"""

from __future__ import annotations

from typing import List, Union

from repro.frontend.ast_nodes import (
    ArrayRef,
    Assign,
    BinOp,
    Const,
    LoopAst,
    Operand,
    ScalarRef,
)
from repro.frontend.errors import FrontendError
from repro.frontend import lexer
from repro.frontend.lexer import Token


class _Parser:
    def __init__(self, tokens: List[Token]) -> None:
        self.tokens = tokens
        self.position = 0
        self.induction = ""

    # -- token plumbing --------------------------------------------------------
    def peek(self) -> Token:
        return self.tokens[self.position]

    def advance(self) -> Token:
        token = self.tokens[self.position]
        self.position += 1
        return token

    def expect(self, kind: str, what: str = "") -> Token:
        token = self.peek()
        if token.kind != kind:
            wanted = what or kind.lower()
            raise FrontendError(
                f"line {token.line}: expected {wanted}, got {token.text!r}"
            )
        return self.advance()

    def skip_newlines(self) -> None:
        while self.peek().kind == lexer.NEWLINE:
            self.advance()

    # -- grammar ------------------------------------------------------------------
    def parse_loop(self, name: str) -> LoopAst:
        self.skip_newlines()
        self.expect(lexer.FOR, "'for'")
        self.induction = self.expect(lexer.NAME, "induction variable").text
        self.expect(lexer.COLON, "':'")
        self.expect(lexer.NEWLINE, "newline after loop header")
        body: List[Assign] = []
        self.skip_newlines()
        while self.peek().kind not in (lexer.END,):
            body.append(self.parse_statement())
            self.skip_newlines()
        if not body:
            raise FrontendError("loop body is empty")
        return LoopAst(induction=self.induction, body=body, name=name)

    def parse_statement(self) -> Assign:
        name_token = self.expect(lexer.NAME, "assignment target")
        target: Union[ScalarRef, ArrayRef]
        if self.peek().kind == lexer.LBRACKET:
            target = self.parse_array_suffix(name_token)
        else:
            target = ScalarRef(name_token.text)
        self.expect(lexer.EQUALS, "'='")
        expr = self.parse_expr()
        self.expect(lexer.NEWLINE, "end of statement")
        return Assign(target=target, expr=expr, line=name_token.line)

    def parse_expr(self) -> Operand:
        node = self.parse_term()
        while self.peek().kind == lexer.OP and self.peek().text in "+-":
            op = self.advance().text
            node = BinOp(op, node, self.parse_term())
        return node

    def parse_term(self) -> Operand:
        node = self.parse_factor()
        while self.peek().kind == lexer.OP and self.peek().text in "*/":
            op = self.advance().text
            node = BinOp(op, node, self.parse_factor())
        return node

    def parse_factor(self) -> Operand:
        token = self.peek()
        if token.kind == lexer.OP and token.text == "-":
            self.advance()
            inner = self.parse_factor()
            if isinstance(inner, Const):
                return Const(-inner.value)
            return BinOp("-", Const(0.0), inner)
        if token.kind == lexer.NUMBER:
            self.advance()
            return Const(float(token.text))
        if token.kind == lexer.LPAREN:
            self.advance()
            node = self.parse_expr()
            self.expect(lexer.RPAREN, "')'")
            return node
        if token.kind == lexer.NAME:
            name_token = self.advance()
            if self.peek().kind == lexer.LBRACKET:
                return self.parse_array_suffix(name_token)
            return ScalarRef(name_token.text)
        raise FrontendError(
            f"line {token.line}: unexpected {token.text!r} in expression"
        )

    def parse_array_suffix(self, name_token: Token) -> ArrayRef:
        self.expect(lexer.LBRACKET)
        index_token = self.peek()
        if index_token.kind != lexer.NAME:
            raise FrontendError(
                f"line {index_token.line}: array index must be affine in "
                f"the induction variable (e.g. {name_token.text}[i+1])"
            )
        self.advance()
        if index_token.text != self.induction:
            raise FrontendError(
                f"line {index_token.line}: index variable "
                f"{index_token.text!r} is not the induction variable "
                f"{self.induction!r}"
            )
        offset = 0
        if self.peek().kind == lexer.OP and self.peek().text in "+-":
            sign = 1 if self.advance().text == "+" else -1
            magnitude = self.expect(lexer.NUMBER, "integer offset")
            if "." in magnitude.text:
                raise FrontendError(
                    f"line {magnitude.line}: array offset must be integral"
                )
            offset = sign * int(magnitude.text)
        self.expect(lexer.RBRACKET, "']'")
        return ArrayRef(name_token.text, offset)


def parse_loop(source: str, name: str = "loop") -> LoopAst:
    """Parse DSL ``source`` into a :class:`LoopAst`."""
    return _Parser(lexer.tokenize(source)).parse_loop(name)
