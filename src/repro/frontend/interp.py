"""Reference interpreter for the loop DSL.

Executes a parsed loop sequentially — the ground-truth semantics against
which the dataflow execution of the *compiled* DDG is validated
(:mod:`repro.sim.functional`).  Arrays are Python lists indexed by
``induction + offset``; out-of-range accesses read 0.0 and ignore
writes (loops touch a bounded window around the trip range, so the
comparison harness sizes arrays with a margin instead of modelling
boundary conditions).
"""

from __future__ import annotations

from typing import Dict, List

from repro.frontend.ast_nodes import (
    ArrayRef,
    Assign,
    BinOp,
    Const,
    LoopAst,
    Operand,
    ScalarRef,
)
from repro.frontend.errors import FrontendError


def run_loop(
    ast: LoopAst,
    arrays: Dict[str, List[float]],
    scalars: Dict[str, float],
    iterations: int,
) -> None:
    """Execute ``iterations`` iterations in place.

    ``arrays`` and ``scalars`` are mutated; scalars referenced before
    assignment must be pre-seeded (a missing one raises, mirroring the
    front end's loop-invariant/recurrence analysis expectations).
    """
    for i in range(iterations):
        for statement in ast.body:
            value = _eval(statement.expr, i, arrays, scalars)
            target = statement.target
            if isinstance(target, ScalarRef):
                scalars[target.name] = value
            else:
                _store(arrays, target, i, value)


def _eval(node: Operand, i: int, arrays, scalars) -> float:
    if isinstance(node, Const):
        return node.value
    if isinstance(node, ScalarRef):
        try:
            return scalars[node.name]
        except KeyError:
            raise FrontendError(
                f"scalar {node.name!r} read before initialization"
            ) from None
    if isinstance(node, ArrayRef):
        return _load(arrays, node, i)
    if isinstance(node, BinOp):
        left = _eval(node.left, i, arrays, scalars)
        right = _eval(node.right, i, arrays, scalars)
        if node.op == "+":
            return left + right
        if node.op == "-":
            return left - right
        if node.op == "*":
            return left * right
        if node.op == "/":
            return left / right if right != 0 else 0.0
        raise FrontendError(f"unknown operator {node.op!r}")
    raise FrontendError(f"cannot evaluate {node!r}")


def _load(arrays, ref: ArrayRef, i: int) -> float:
    data = arrays.setdefault(ref.name, [])
    index = i + ref.offset
    if 0 <= index < len(data):
        return data[index]
    return 0.0


def _store(arrays, ref: ArrayRef, i: int, value: float) -> None:
    data = arrays.setdefault(ref.name, [])
    index = i + ref.offset
    if 0 <= index < len(data):
        data[index] = value
