"""Lowering: loop AST -> dependence graph.

Pass structure:

1. **Instruction selection** — each :class:`BinOp` becomes one DDG op
   (class chosen by operator through :class:`OpClassMap`), each array
   read a ``load``, each array assignment a ``store``.  Pure scalar
   copies (``x = y``) generate no code; they alias.
2. **Scalar def-use** — a scalar read at a program point resolves to the
   most recent definition *above* it (distance 0) or, if none, to the
   scalar's last definition in the body at distance 1 (previous
   iteration).  Reads feeding the scalar's own defining op therefore
   close recurrence cycles (``s = s + t`` self-loops).  Scalars never
   defined in the body are loop invariants (no dependence).
3. **Memory dependence analysis** — for affine references ``A[i + k]``
   on one array, an access pair (W at ``k_w``, R at ``k_r``) touches the
   same address ``k_w - k_r`` iterations apart; flow (store->load), anti
   (load->store) and output (store->store) edges are emitted with that
   exact distance when it is >= 0 (or 0 with compatible program order).
   Anti and output edges carry a latency override of 1 — the second
   access need only *start* after the first.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

from repro.ddg.graph import Ddg
from repro.frontend.ast_nodes import (
    ArrayRef,
    Assign,
    BinOp,
    Const,
    LoopAst,
    Operand,
    ScalarRef,
)
from repro.frontend.errors import FrontendError
from repro.frontend.parser import parse_loop


@dataclass(frozen=True)
class OpClassMap:
    """Operator / access -> machine op-class mapping.

    Defaults target the FP-oriented presets (``powerpc604``,
    ``motivating``); pass a custom map to compile for other machines,
    e.g. ``OpClassMap(add="add", mul="mul", div="div")`` for integer
    code on the clean preset.
    """

    add: str = "fadd"
    sub: str = "fadd"
    mul: str = "fmul"
    div: str = "fdiv"
    load: str = "load"
    store: str = "store"

    def for_operator(self, operator: str) -> str:
        try:
            return {
                "+": self.add,
                "-": self.sub,
                "*": self.mul,
                "/": self.div,
            }[operator]
        except KeyError:
            raise FrontendError(f"unknown operator {operator!r}") from None


#: Where a value comes from: a DDG op, a previous-iteration scalar, a
#: constant, or a loop-invariant scalar.
@dataclass(frozen=True)
class _FromOp:
    op_index: int


@dataclass(frozen=True)
class _Carried:
    scalar: str


@dataclass(frozen=True)
class _ConstVal:
    value: float


_Value = Union[_FromOp, _Carried, _ConstVal, None]


@dataclass
class OperandSource:
    """Functional origin of one operand (for dataflow execution).

    ``kind`` is ``"const"`` (literal ``value``), ``"op"`` (result of
    ``op_index`` from ``distance`` iterations back; ``name`` holds the
    scalar whose pre-loop seed covers iterations before the recurrence
    warms up), ``"scalar"`` (loop-invariant read of ``name``), or
    ``"carried_const"`` (previous iteration's value of ``name``, which
    is the seed on iteration 0 and ``value`` afterwards).
    """

    kind: str
    value: float = 0.0
    op_index: int = -1
    distance: int = 0
    name: str = ""


@dataclass
class OpSemantics:
    """What an op computes (recorded at lowering for execution)."""

    kind: str  # "binop" | "load" | "store"
    operator: str = ""
    operands: List[OperandSource] = field(default_factory=list)
    array: str = ""
    offset: int = 0


@dataclass
class CompiledLoop:
    """A lowered loop plus per-op functional semantics and its AST."""

    ddg: Ddg
    semantics: Dict[int, OpSemantics]
    ast: "LoopAst"


@dataclass
class _MemAccess:
    array: str
    offset: int
    op_index: int
    position: int
    is_store: bool


@dataclass
class _Builder:
    ddg: Ddg
    classes: OpClassMap
    cse: bool = True
    scalar_value: Dict[str, _Value] = field(default_factory=dict)
    #: (consumer op, carried scalar name) pairs to resolve after the pass.
    carried_reads: List[Tuple[int, str]] = field(default_factory=list)
    accesses: List[_MemAccess] = field(default_factory=list)
    position: int = 0
    counters: Dict[str, int] = field(default_factory=dict)
    #: (array, offset) -> load op, valid until the array is stored to.
    load_cache: Dict[Tuple[str, int], int] = field(default_factory=dict)
    semantics: Dict[int, OpSemantics] = field(default_factory=dict)
    #: (op, operand slot, scalar) placeholders resolved after the pass.
    operand_fixups: List[Tuple[int, int, str]] = field(default_factory=list)

    def fresh_name(self, prefix: str) -> str:
        count = self.counters.get(prefix, 0)
        self.counters[prefix] = count + 1
        return f"{prefix}{count}"

    def connect(self, value: _Value, consumer: int) -> None:
        """Record the dependence feeding ``consumer`` from ``value``."""
        if isinstance(value, _FromOp):
            if value.op_index == consumer:
                raise FrontendError(
                    "internal: op cannot consume its own result"
                )
            self.ddg.add_dep(value.op_index, consumer)
        elif isinstance(value, _Carried):
            self.carried_reads.append((consumer, value.scalar))

    def source_of(self, value: _Value, consumer: int, slot: int) -> OperandSource:
        """Operand descriptor for ``value``; carried reads get a
        placeholder fixed up once the body's definitions are known."""
        if isinstance(value, _FromOp):
            return OperandSource(kind="op", op_index=value.op_index)
        if isinstance(value, _ConstVal):
            return OperandSource(kind="const", value=value.value)
        if isinstance(value, _Carried):
            self.operand_fixups.append((consumer, slot, value.scalar))
            return OperandSource(kind="scalar", name=value.scalar)
        raise FrontendError(f"cannot describe operand {value!r}")

    # -- expression lowering ---------------------------------------------------
    def lower_operand(self, node: Operand) -> _Value:
        if isinstance(node, Const):
            return _ConstVal(node.value)
        if isinstance(node, ScalarRef):
            if node.name in self.scalar_value:
                return self.scalar_value[node.name]
            # Read-before-def: previous iteration (resolved later) —
            # unless the scalar is never defined, then it is invariant.
            return _Carried(node.name)
        if isinstance(node, ArrayRef):
            return self.emit_load(node)
        if isinstance(node, BinOp):
            left = self.lower_operand(node.left)
            right = self.lower_operand(node.right)
            op_class = self.classes.for_operator(node.op)
            op = self.ddg.add_op(self.fresh_name("t"), op_class)
            self.connect(left, op.index)
            self.connect(right, op.index)
            self.semantics[op.index] = OpSemantics(
                kind="binop",
                operator=node.op,
                operands=[
                    self.source_of(left, op.index, 0),
                    self.source_of(right, op.index, 1),
                ],
            )
            return _FromOp(op.index)
        raise FrontendError(f"cannot lower {node!r}")

    def emit_load(self, ref: ArrayRef) -> _FromOp:
        cache_key = (ref.name, ref.offset)
        if self.cse and cache_key in self.load_cache:
            return _FromOp(self.load_cache[cache_key])
        op = self.ddg.add_op(
            self.fresh_name(f"ld_{ref.name}_"), self.classes.load
        )
        self.accesses.append(_MemAccess(
            array=ref.name, offset=ref.offset, op_index=op.index,
            position=self.position, is_store=False,
        ))
        if self.cse:
            self.load_cache[cache_key] = op.index
        self.semantics[op.index] = OpSemantics(
            kind="load", array=ref.name, offset=ref.offset
        )
        return _FromOp(op.index)

    # -- statements -------------------------------------------------------------------
    def lower_statement(self, statement: Assign) -> None:
        value = self.lower_operand(statement.expr)
        target = statement.target
        if isinstance(target, ScalarRef):
            # Pure copies alias; computed values define the scalar.
            self.scalar_value[target.name] = value
            return
        store = self.ddg.add_op(
            self.fresh_name(f"st_{target.name}_"),
            self.classes.store,
        )
        self.connect(value, store.index)
        self.semantics[store.index] = OpSemantics(
            kind="store", array=target.name, offset=target.offset,
            operands=[self.source_of(value, store.index, 0)],
        )
        self.accesses.append(_MemAccess(
            array=target.name, offset=target.offset, op_index=store.index,
            position=self.position, is_store=True,
        ))
        # A store invalidates cached loads of the same array.
        for key in [k for k in self.load_cache if k[0] == target.name]:
            del self.load_cache[key]

    # -- post passes -----------------------------------------------------------------------
    def resolve_carried_reads(self) -> None:
        for consumer, scalar in self.carried_reads:
            final = self.scalar_value.get(scalar)
            if final is None or isinstance(final, (_Carried, _ConstVal)):
                continue  # loop invariant, constant, or chained copy
            if final.op_index == consumer:
                self.ddg.add_dep(consumer, consumer, distance=1)
            else:
                self.ddg.add_dep(final.op_index, consumer, distance=1)
        for op_index, slot, scalar in self.operand_fixups:
            final = self.scalar_value.get(scalar)
            operands = self.semantics[op_index].operands
            if isinstance(final, _FromOp):
                operands[slot] = OperandSource(
                    kind="op", op_index=final.op_index, distance=1,
                    name=scalar,
                )
            elif isinstance(final, _ConstVal):
                operands[slot] = OperandSource(
                    kind="carried_const", value=final.value, name=scalar,
                )
            # None / chained-carried stay as invariant scalar reads.

    def add_memory_deps(self) -> None:
        by_array: Dict[str, List[_MemAccess]] = {}
        for access in self.accesses:
            by_array.setdefault(access.array, []).append(access)
        for accesses in by_array.values():
            for first in accesses:
                for second in accesses:
                    if first is second:
                        continue
                    self._maybe_mem_dep(first, second)

    def _maybe_mem_dep(self, a: _MemAccess, b: _MemAccess) -> None:
        """Emit the dependence a -> b if a's access precedes b's to the
        same address.  ``a`` precedes when the address written/read by
        ``a`` in iteration j is touched by ``b`` in iteration
        ``j + (a.offset - b.offset)`` — valid when that distance is > 0,
        or 0 with a earlier in program order."""
        if not a.is_store and not b.is_store:
            return  # load-load: no dependence
        distance = a.offset - b.offset
        if distance < 0 or (distance == 0 and a.position >= b.position):
            return
        if a.is_store and not b.is_store:
            kind, latency = "mem-flow", None
        elif not a.is_store and b.is_store:
            kind, latency = "mem-anti", 1
        else:
            kind, latency = "mem-output", 1
        if a.op_index == b.op_index:
            return
        self.ddg.add_dep(a.op_index, b.op_index, distance=distance,
                         kind=kind, latency=latency)



def _lower(ast: LoopAst, classes: Optional[OpClassMap], cse: bool) -> _Builder:
    builder = _Builder(
        ddg=Ddg(ast.name), classes=classes or OpClassMap(), cse=cse
    )
    for position, statement in enumerate(ast.body):
        builder.position = position
        builder.lower_statement(statement)
    builder.resolve_carried_reads()
    builder.add_memory_deps()
    if builder.ddg.num_ops == 0:
        raise FrontendError(
            "loop body lowers to no operations (only copies of invariants)"
        )
    return builder


def lower_loop(
    ast: LoopAst,
    classes: Optional[OpClassMap] = None,
    cse: bool = True,
) -> Ddg:
    """Lower a parsed loop to a DDG."""
    return _lower(ast, classes, cse).ddg


def compile_loop_semantics(
    source: str,
    name: str = "loop",
    classes: Optional[OpClassMap] = None,
    cse: bool = True,
) -> CompiledLoop:
    """Compile with per-op functional semantics attached.

    The result drives :func:`repro.sim.functional.execute_dataflow`,
    which replays a *schedule* value-by-value and compares against the
    sequential interpreter.  (Store-to-load forwarding is not supported
    here: :mod:`repro.frontend.optimize` rebuilds the DDG without
    semantics.)
    """
    ast = parse_loop(source, name)
    builder = _lower(ast, classes, cse)
    return CompiledLoop(ddg=builder.ddg, semantics=builder.semantics,
                        ast=ast)


def compile_loop(
    source: str,
    name: str = "loop",
    classes: Optional[OpClassMap] = None,
    cse: bool = True,
    forward: bool = False,
) -> Ddg:
    """Parse and lower DSL ``source`` into a dependence graph.

    ``cse`` collapses duplicate loads of one address at lowering time;
    ``forward`` additionally runs store-to-load forwarding
    (:mod:`repro.frontend.optimize`) so memory-carried recurrences turn
    into register-carried ones.
    """
    ddg = lower_loop(parse_loop(source, name), classes, cse=cse)
    if forward:
        from repro.frontend.optimize import optimize

        ddg = optimize(ddg)
    return ddg
