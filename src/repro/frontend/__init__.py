"""A small loop front end: C-like loop bodies -> dependence graphs.

The paper's 1066-loop corpus came from a testbed compiler that parsed
benchmark source and emitted DDGs.  This package plays that role for the
library: a lexer, a recursive-descent parser, and a lowering pass with
scalar def-use and affine memory-dependence analysis.

Input language (one statement per line inside a ``for`` header)::

    for i:
        t = a[i] * b[i]
        s = s + t            # scalar recurrence -> loop-carried dep
        c[i] = s
        d[i+1] = d[i] * 0.5  # memory recurrence at distance 1

Semantics that produce dependences:

* a scalar read *before* its definition in the body (including reads by
  its own defining statement, e.g. ``s = s + t``) refers to the previous
  iteration's value — a flow dependence of distance 1;
* array references must be affine in the induction variable
  (``name[i+k]``); store/load pairs on one array get flow/anti/output
  dependences with the exact iteration distance ``k_writer - k_reader``;
* operators map to machine op classes through an
  :class:`OpClassMap` (defaults match the PowerPC-604 preset).

Entry point: :func:`compile_loop`.
"""

from repro.frontend.errors import FrontendError
from repro.frontend.lower import OpClassMap, compile_loop

__all__ = ["FrontendError", "OpClassMap", "compile_loop"]
