"""AST node types for the loop DSL."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Union


@dataclass(frozen=True)
class Const:
    """A numeric literal."""

    value: float

    def __str__(self) -> str:
        return f"{self.value:g}"


@dataclass(frozen=True)
class ScalarRef:
    """A scalar variable read/write."""

    name: str

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class ArrayRef:
    """An affine array reference ``name[iv + offset]``."""

    name: str
    offset: int

    def __str__(self) -> str:
        if self.offset == 0:
            return f"{self.name}[i]"
        sign = "+" if self.offset > 0 else "-"
        return f"{self.name}[i{sign}{abs(self.offset)}]"


Operand = Union[Const, ScalarRef, ArrayRef, "BinOp"]


@dataclass(frozen=True)
class BinOp:
    """A binary arithmetic expression."""

    op: str  # one of + - * /
    left: Operand
    right: Operand

    def __str__(self) -> str:
        return f"({self.left} {self.op} {self.right})"


@dataclass(frozen=True)
class Assign:
    """One statement: ``target = expr``."""

    target: Union[ScalarRef, ArrayRef]
    expr: Operand
    line: int

    def __str__(self) -> str:
        return f"{self.target} = {self.expr}"


@dataclass(frozen=True)
class LoopAst:
    """A parsed loop: induction variable + body statements."""

    induction: str
    body: List[Assign]
    name: str = "loop"
