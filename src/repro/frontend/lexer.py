"""Tokenizer for the loop DSL."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List

from repro.frontend.errors import FrontendError

#: Token kinds.
NAME = "NAME"
NUMBER = "NUMBER"
OP = "OP"          # + - * /
EQUALS = "EQUALS"
LBRACKET = "LBRACKET"
RBRACKET = "RBRACKET"
LPAREN = "LPAREN"
RPAREN = "RPAREN"
COLON = "COLON"
NEWLINE = "NEWLINE"
FOR = "FOR"
END = "END"

_SINGLE = {
    "=": EQUALS,
    "[": LBRACKET,
    "]": RBRACKET,
    "(": LPAREN,
    ")": RPAREN,
    ":": COLON,
}
_OPERATORS = set("+-*/")


@dataclass(frozen=True)
class Token:
    kind: str
    text: str
    line: int
    column: int

    def __repr__(self) -> str:
        return f"Token({self.kind}, {self.text!r}, {self.line}:{self.column})"


def tokenize(source: str) -> List[Token]:
    """Tokenize ``source``; comments start with ``#``."""
    tokens: List[Token] = []
    for line_number, raw in enumerate(source.splitlines(), start=1):
        line = raw.split("#", 1)[0]
        tokens.extend(_tokenize_line(line, line_number))
        if tokens and tokens[-1].kind != NEWLINE:
            tokens.append(Token(NEWLINE, "\n", line_number, len(line) + 1))
    tokens.append(Token(END, "", len(source.splitlines()) + 1, 1))
    return tokens


def _tokenize_line(line: str, line_number: int) -> Iterator[Token]:
    position = 0
    length = len(line)
    while position < length:
        ch = line[position]
        column = position + 1
        if ch in " \t":
            position += 1
            continue
        if ch in _SINGLE:
            yield Token(_SINGLE[ch], ch, line_number, column)
            position += 1
            continue
        if ch in _OPERATORS:
            yield Token(OP, ch, line_number, column)
            position += 1
            continue
        if ch.isdigit() or (ch == "." and position + 1 < length
                            and line[position + 1].isdigit()):
            start = position
            seen_dot = False
            while position < length and (
                line[position].isdigit()
                or (line[position] == "." and not seen_dot)
            ):
                seen_dot = seen_dot or line[position] == "."
                position += 1
            yield Token(NUMBER, line[start:position], line_number, column)
            continue
        if ch.isalpha() or ch == "_":
            start = position
            while position < length and (
                line[position].isalnum() or line[position] == "_"
            ):
                position += 1
            text = line[start:position]
            kind = FOR if text == "for" else NAME
            yield Token(kind, text, line_number, column)
            continue
        raise FrontendError(
            f"line {line_number}, column {column}: "
            f"unexpected character {ch!r}"
        )
