"""Errors raised by the loop front end."""


class FrontendError(Exception):
    """Lexing, parsing or lowering failed; message carries line info."""
