"""Store-to-load forwarding over front-end DDGs.

Replaces value paths through memory with equivalent register paths: a
load whose address was written ``m`` iterations earlier gets its
consumers rewired to the stored value's producer at distance ``m``,
shrinking memory-carried recurrences (``x[i] = x[i-1] + y[i]`` drops
from the store+reload round trip to the bare add latency).  The store
itself always stays (memory must still be written); the load disappears
when nothing else reads it.

Safety conditions enforced:

* only loads with **exactly one** incoming ``mem-flow`` edge are
  forwarded (several writers would need most-recent-writer reasoning);
* a rewire that would create a zero-distance self-cycle is skipped;
* anti/output edges of a deleted load vanish with it — sound, because
  with no read left there is nothing for a later store to clobber.

(Load CSE lives in the front end itself — see
``compile_loop(..., cse=True)`` — where address offsets are known.)
"""

from __future__ import annotations

from typing import Dict, List, Set

from repro.ddg.graph import Ddg, Dep


def forward_stores(ddg: Ddg) -> Ddg:
    """One forwarding pass; returns a rewritten copy (input untouched)."""
    store_value: Dict[int, int] = {}
    for dep in ddg.deps:
        if dep.kind == "flow" and ddg.ops[dep.dst].op_class == "store":
            store_value[dep.dst] = dep.src

    incoming_mem_flow: Dict[int, List[int]] = {}
    for index, dep in enumerate(ddg.deps):
        if dep.kind == "mem-flow":
            incoming_mem_flow.setdefault(dep.dst, []).append(index)

    new_deps: List[Dep] = []
    drop_deps: Set[int] = set()
    fully_forwarded: Set[int] = set()
    for load, mem_edges in incoming_mem_flow.items():
        if ddg.ops[load].op_class != "load" or len(mem_edges) != 1:
            continue
        mem_dep = ddg.deps[mem_edges[0]]
        producer = store_value.get(mem_dep.src)
        if producer is None:
            continue  # store of a constant: nothing to forward
        all_rewired = True
        for out_index, out in enumerate(ddg.deps):
            if out.src != load or out.kind != "flow":
                continue
            total = mem_dep.distance + out.distance
            if producer == out.dst and total == 0:
                all_rewired = False
                continue
            new_deps.append(Dep(producer, out.dst, total, "flow", None))
            drop_deps.add(out_index)
        if all_rewired:
            fully_forwarded.add(load)

    if not new_deps:
        return ddg.copy()
    drop_ops = {
        load for load in fully_forwarded
        if not any(
            dep.src == load and dep.kind == "flow" and index not in drop_deps
            for index, dep in enumerate(ddg.deps)
        )
    }
    return _rebuild(ddg, drop_ops, new_deps, drop_deps)


def optimize(ddg: Ddg) -> Ddg:
    """Forwarding to a fixpoint (chains of copies through memory)."""
    current = ddg
    for _ in range(4):
        after = forward_stores(current)
        if (after.num_ops == current.num_ops
                and after.num_deps == current.num_deps):
            return after
        current = after
    return current


def _rebuild(ddg: Ddg, drop_ops: Set[int], new_deps: List[Dep],
             drop_deps: Set[int]) -> Ddg:
    result = Ddg(ddg.name)
    remap: Dict[int, int] = {}
    for op in ddg.ops:
        if op.index in drop_ops:
            continue
        remap[op.index] = result.add_op(op.name, op.op_class).index
    seen = set()
    for source_index, dep in enumerate(ddg.deps):
        if source_index in drop_deps:
            continue
        if dep.src in drop_ops or dep.dst in drop_ops:
            continue
        key = (dep.src, dep.dst, dep.distance, dep.kind)
        if key in seen:
            continue
        seen.add(key)
        result.add_dep(remap[dep.src], remap[dep.dst], dep.distance,
                       dep.kind, dep.latency)
    for dep in new_deps:
        if dep.src in drop_ops or dep.dst in drop_ops:
            continue
        key = (dep.src, dep.dst, dep.distance, dep.kind)
        if key in seen:
            continue
        seen.add(key)
        result.add_dep(remap[dep.src], remap[dep.dst], dep.distance,
                       dep.kind, dep.latency)
    return result
