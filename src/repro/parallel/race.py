"""Race candidate periods across worker processes (§6, parallelized).

The sequential driver proves infeasibility of ``T_lb, T_lb+1, ...`` one
period at a time; on hard loops nearly all wall-clock goes into those
proofs.  The per-``T`` ILPs are completely independent, so
:func:`race_periods` dispatches a window of admissible periods to a
supervised worker pool (:class:`repro.supervision.SupervisedExecutor`)
and collects outcomes as they land:

* the **winner** is the smallest ``T`` whose solve returned a feasible
  point — exactly what the sequential sweep would have found;
* outstanding work at **larger** periods is cancelled the moment a
  winner is known (queued futures are dropped; already-running solves
  are bounded by the per-process time budget and their results are
  discarded);
* work at **smaller** periods is always awaited, because rate-optimality
  (:attr:`SchedulingResult.is_rate_optimal_proven`) is a claim about
  those periods: the win only counts once every smaller admissible ``T``
  has come back INFEASIBLE.  A smaller period that lands feasible late
  *replaces* the provisional winner.

A worker that crashes, hangs past its deadline, or OOMs fails **only its
own candidate period**: the failure is recorded on that attempt as a
:class:`~repro.supervision.records.FailureRecord` (after the policy's
retries) and the race keeps going with the surviving candidates.  On
SIGINT/SIGTERM the race settles to its best-known incumbent — the
provisional winner or the heuristic schedule — with a ``degraded``
marker instead of raising.

Every attempt funnels through :func:`repro.core.scheduler.attempt_period`
— the same body the sequential driver runs — so the two drivers return
identical achieved periods and proof flags (asserted corpus-wide by
``tests/test_parallel_equivalence.py``).

**Portfolio racing** (``backend="portfolio"`` or an explicit
``backends=(...)`` roster) widens the race from periods to
``(period x backend)`` pairs: every candidate ``T`` is attempted by
every solver in the roster simultaneously, and

* the **first backend** to deliver a verdict settles its period for the
  whole roster — a feasible point makes it the (provisional) winner and
  same-/larger-``T`` losers are *killed* (running workers reaped with
  bounded TERM->KILL escalation, queued tasks dropped); an INFEASIBLE
  proof cancels the sibling backends still chewing on that period;
* a backend that crashes or errors on a period it cannot express (the
  SAT backend only lowers feasibility formulations) loses **only its
  own (period, backend) cell** — the siblings keep racing, so the
  portfolio's verdict per period is as strong as its strongest member;
* the achieved period and proof flag are identical to any single
  backend's (agreement is structural: every cell funnels through
  ``attempt_period``) — only wall-clock changes, tracking whichever
  backend is fastest per period.

Per-period losers are recorded as ``"cancelled"`` attempts tagged with
their backend, and :attr:`SchedulingResult.portfolio` carries the
roster plus kill/cancel counters for the batch report.
"""

from __future__ import annotations

import dataclasses
import os
import time
from collections import defaultdict
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.bounds import lower_bounds, modulo_feasible_t
from repro.core.errors import SchedulingError
from repro.core.schedule import Schedule
from repro.core.scheduler import (
    HEURISTIC,
    AttemptConfig,
    AttemptOutcome,
    ScheduleAttempt,
    SchedulingResult,
    attempt_period,
    heuristic_attempt,
    heuristic_pass,
)
from repro.ddg.graph import Ddg
from repro.ilp.errors import SolverError
from repro.ilp.solution import SolveStatus
from repro.machine import Machine
from repro.supervision.executor import (
    RUNNING,
    SupervisedExecutor,
    SupervisedTask,
)
from repro.supervision.records import (
    DEGRADED,
    INTERRUPTED,
    SOLVER_ERROR,
    FailureRecord,
    SupervisionPolicy,
)
from repro.supervision.signals import interrupted

#: Attempt status recorded for periods abandoned after a smaller win.
CANCELLED = "cancelled"

#: Statuses that settle a period as "no schedule exists here".
_PROOFS = (SolveStatus.INFEASIBLE.value, "modulo_infeasible")

#: Backends a portfolio roster may name (``auto`` excluded on purpose —
#: a roster is exactly the set of *distinct* solvers to race).
PORTFOLIO_BACKENDS = ("highs", "bnb", "sat")


def default_jobs() -> int:
    """Worker count when the caller does not choose one."""
    return max(1, os.cpu_count() or 1)


def default_portfolio(objective: str = "feasibility") -> Tuple[str, ...]:
    """The backends worth racing for ``objective`` on this interpreter.

    HiGHS joins only when scipy's MILP interface imports; the SAT
    backend joins only under the pure-feasibility objective (it lowers
    the presolved feasibility formulation, nothing else).  The built-in
    branch-and-bound is always present, so the roster is never empty.
    """
    roster: List[str] = []
    try:
        from scipy.optimize import milp  # noqa: F401

        roster.append("highs")
    except ImportError:
        pass
    roster.append("bnb")
    if objective == "feasibility":
        roster.append("sat")
    return tuple(roster)


def _validate_roster(
    backends: Sequence[str], objective: str
) -> Tuple[str, ...]:
    roster = tuple(backends)
    if not roster:
        raise SchedulingError("portfolio roster must name >= 1 backend")
    seen = set()
    for name in roster:
        if name not in PORTFOLIO_BACKENDS:
            raise SchedulingError(
                f"unknown portfolio backend {name!r}; expected a subset "
                f"of {PORTFOLIO_BACKENDS}"
            )
        if name in seen:
            raise SchedulingError(
                f"portfolio roster lists {name!r} twice"
            )
        seen.add(name)
    if "sat" in seen and objective != "feasibility":
        raise SchedulingError(
            "the sat backend only solves the feasibility objective; "
            f"drop it from the roster or use objective='feasibility' "
            f"(got {objective!r})"
        )
    return roster


def _init_worker(time_budget: Optional[float]) -> None:
    """Pool initializer: cap every solve in this worker process."""
    from repro.ilp import solve as solve_module

    solve_module.set_process_time_budget(time_budget)


def race_periods(
    ddg: Ddg,
    machine: Machine,
    backend: str = "auto",
    objective: str = "feasibility",
    mapping: Optional[bool] = None,
    time_limit_per_t: Optional[float] = 30.0,
    max_extra: int = 10,
    verify: bool = True,
    repair_modulo: bool = False,
    presolve: bool = True,
    jobs: Optional[int] = None,
    window: Optional[int] = None,
    warmstart: bool = True,
    incremental: bool = True,
    policy: Optional[SupervisionPolicy] = None,
    store=None,
    backends: Optional[Sequence[str]] = None,
    breaker=None,
) -> SchedulingResult:
    """Drop-in parallel replacement for :func:`repro.core.schedule_loop`.

    ``jobs`` is the worker-process count (default: CPU count); ``window``
    caps how many periods may be in flight at once (default:
    ``2 * jobs``), bounding speculative work beyond the eventual winner.
    With ``jobs=1`` no pool is spawned and the sweep runs in-process,
    byte-identical to the sequential driver.

    With ``warmstart`` (the default) the iterative modulo heuristic runs
    once in the parent process before any dispatch: its achieved II caps
    the candidate range (periods above it can never win), settles its own
    period outright under the feasibility objective (the race then only
    chases smaller periods), and otherwise seeds the II-period solve with
    the heuristic incumbent.

    ``policy`` tunes the supervision guard-rails (deadline, memory cap,
    retries, backoff); the default policy derives each candidate's
    deadline from ``time_limit_per_t``, so a solver that ignores its
    budget is killed rather than trusted.

    ``store`` (a :class:`repro.store.ScheduleStore` or path) is
    consulted before the heuristic pre-pass or any dispatch: a verified
    hit returns immediately without spawning workers, and a clean cold
    result is published back for future runs.

    With ``incremental`` (the default) every worker process self-serves
    a :class:`~repro.core.incremental.SweepContext` from its own
    per-process registry inside :func:`attempt_period` — nothing crosses
    a pickle boundary, and a worker handling several periods of the same
    loop reuses the shared analysis and banked cuts across them.

    ``backend="portfolio"`` (or an explicit ``backends`` roster) races
    every solver over every candidate period and takes the first
    verdict per period, killing the losers — see the module docstring.
    The achieved period, schedule validity and proof flag are the same
    as any single backend's; the backend column and the wall-clock are
    what change.  With ``jobs=1`` the portfolio degenerates to an
    ordered fallback chain per period: backends run in roster order
    until one settles the period, the rest are recorded cancelled.

    ``breaker`` (optional, duck-typed — see
    :class:`repro.serve.breaker.CircuitBreaker`) makes the portfolio
    health-aware: backends whose ``breaker.allows(name)`` is False are
    dropped from the roster up front, cells landing on a backend that
    trips *mid-race* are skipped at dispatch time, and every cell's
    outcome is reported back via ``record_success(name)`` /
    ``record_failure(name, kind)`` so the breaker's failure counters
    track real solves.  The race itself never imports the serve layer;
    any object with those three methods works.
    """
    if max_extra < 0:
        raise SchedulingError(f"max_extra must be >= 0, got {max_extra}")
    jobs = jobs if jobs is not None else default_jobs()
    if jobs < 1:
        raise SchedulingError(f"jobs must be >= 1, got {jobs}")
    policy = policy or SupervisionPolicy()
    roster: Optional[Tuple[str, ...]] = None
    if backends is not None:
        roster = _validate_roster(backends, objective)
        backend = "portfolio"
    elif backend == "portfolio":
        roster = default_portfolio(objective)
    if roster is not None and breaker is not None:
        allowed = tuple(n for n in roster if breaker.allows(n))
        if not allowed:
            raise SchedulingError(
                f"every backend in roster {tuple(roster)} is "
                f"circuit-broken; retry after the breaker cooldown"
            )
        roster = allowed
    if roster is not None and len(roster) == 1:
        # A one-solver "portfolio" is just that solver.
        backend = roster[0]
        roster = None
    config = AttemptConfig(
        backend=backend,
        objective=objective,
        mapping=mapping,
        time_limit=time_limit_per_t,
        verify=verify,
        repair_modulo=repair_modulo,
        presolve=presolve,
        warmstart=warmstart,
        incremental=incremental,
    )
    start_clock = time.monotonic()
    store_stats = None
    if store is not None:
        from repro.store import open_store
        from repro.store.tiering import lookup as store_lookup

        store = open_store(store)
        stored, store_stats = store_lookup(
            store, ddg, machine, config, max_extra
        )
        if stored is not None:
            stored.store = store_stats
            stored.total_seconds = time.monotonic() - start_clock
            return stored
    bounds = lower_bounds(ddg, machine)
    ws, ws_stats = heuristic_pass(ddg, machine, config, max_extra)
    upper = bounds.t_lb + max_extra
    if ws is not None and ws.ii is not None:
        upper = min(upper, ws.ii)
    candidates = list(range(bounds.t_lb, upper + 1))

    # Classify up front: periods failing the modulo scheduling constraint
    # are recorded without a solve (the worker would re-derive the same
    # answer) — unless delay-insertion repair may rescue them, in which
    # case the worker must try.  The heuristic's own period is either
    # settled here (feasibility) or flagged to carry the incumbent.
    attempts: Dict[int, ScheduleAttempt] = {}
    dispatch: List[int] = []
    initial: Optional[AttemptOutcome] = None
    incumbent: Optional[Schedule] = None
    incumbent_t: Optional[int] = None
    for t_period in candidates:
        if ws is not None and ws.ii == t_period:
            if objective == "feasibility":
                attempts[t_period] = heuristic_attempt(ws)
                initial = AttemptOutcome(
                    attempt=attempts[t_period], schedule=ws.schedule
                )
                continue
            incumbent = ws.schedule
            incumbent_t = t_period
        if not repair_modulo and not modulo_feasible_t(
            ddg, machine, t_period
        ):
            attempts[t_period] = ScheduleAttempt(
                t_period=t_period, status="modulo_infeasible"
            )
        else:
            dispatch.append(t_period)

    degraded = False
    losers: List[ScheduleAttempt] = []
    portfolio_stats: Optional[Dict[str, object]] = None
    if roster is not None:
        if jobs == 1:
            winner, recs, kill_stats = _race_portfolio_inline(
                ddg, machine, dispatch, config, roster,
                initial=initial, incumbent=incumbent,
                incumbent_t=incumbent_t, breaker=breaker,
            )
        else:
            window = window if window is not None else 2 * jobs
            if window < 1:
                raise SchedulingError(
                    f"window must be >= 1, got {window}"
                )
            winner, recs, kill_stats = _race_portfolio_pool(
                ddg, machine, dispatch, config, roster, jobs, window,
                time_limit_per_t, policy,
                initial=initial, incumbent=incumbent,
                incumbent_t=incumbent_t, breaker=breaker,
            )
        for t_period, cell_attempts in recs.items():
            rep = _period_rep(cell_attempts)
            attempts[t_period] = rep
            losers.extend(a for a in cell_attempts if a is not rep)
        portfolio_stats = {
            "backends": list(roster),
            # The backend that produced the winning attempt; falls back
            # to the status label for wins no solver produced (a
            # heuristic settle or a degraded incumbent).
            "winner_backend": (
                (winner.attempt.backend or winner.attempt.status)
                if winner is not None else None
            ),
        }
        portfolio_stats.update(kill_stats)
    elif jobs == 1 or len(dispatch) <= 1:
        winner = _race_inline(
            ddg, machine, dispatch, config, attempts,
            initial=initial, incumbent=incumbent, incumbent_t=incumbent_t,
        )
    else:
        window = window if window is not None else 2 * jobs
        if window < 1:
            raise SchedulingError(f"window must be >= 1, got {window}")
        winner = _race_pool(
            ddg, machine, dispatch, config, attempts, jobs, window,
            time_limit_per_t, policy,
            initial=initial, incumbent=incumbent, incumbent_t=incumbent_t,
        )

    if winner is None and incumbent is not None:
        failed = attempts.get(incumbent_t)
        lost = failed is not None and failed.failure is not None
        if lost or interrupted():
            # The exact solve at the heuristic's period was lost to a
            # crash/hang/interrupt, but the heuristic schedule itself is
            # verified: settle to it rather than report nothing.
            attempts[incumbent_t] = ScheduleAttempt(
                t_period=incumbent_t, status=DEGRADED,
                warm_started=True,
                failure=failed.failure if lost else None,
            )
            winner = AttemptOutcome(
                attempt=attempts[incumbent_t], schedule=incumbent
            )
            degraded = True
    if winner is not None and any(
        a.failure is not None
        for a in attempts.values()
        if a.t_period < winner.attempt.t_period
    ):
        # The win stands, but a smaller period was lost to a failure or
        # interrupt: optimality below the winner is unproven.
        degraded = True

    # One attempt per period for single-backend races; per-(period,
    # backend) cells for portfolios.  Sorted by (T, backend) so the log
    # is deterministic; the per-period proof scan is order-independent.
    ordered = sorted(
        list(attempts.values()) + losers,
        key=lambda a: (a.t_period, a.backend),
    )
    if winner is None and not ordered:
        raise SchedulingError(
            f"no candidate periods for loop {ddg.name!r} "
            f"(T_lb={bounds.t_lb}, max_extra={max_extra})"
        )
    ws_stats.ilp_solves = sum(
        1 for a in ordered
        if a.status not in ("modulo_infeasible", HEURISTIC, CANCELLED,
                            DEGRADED)
        and a.failure is None
    )
    result = SchedulingResult(
        loop_name=ddg.name,
        bounds=bounds,
        attempts=ordered,
        schedule=winner.schedule if winner is not None else None,
        total_seconds=time.monotonic() - start_clock,
        warmstart=ws_stats,
        degraded=degraded,
        store=store_stats,
        portfolio=portfolio_stats,
    )
    if store is not None:
        from repro.store.tiering import publish as store_publish

        store_publish(
            store, ddg, machine, config, max_extra, result,
            stats=store_stats,
        )
    return result


def _race_inline(
    ddg: Ddg,
    machine: Machine,
    dispatch: List[int],
    config: AttemptConfig,
    attempts: Dict[int, ScheduleAttempt],
    initial: Optional[AttemptOutcome] = None,
    incumbent: Optional[Schedule] = None,
    incumbent_t: Optional[int] = None,
) -> Optional[AttemptOutcome]:
    """The jobs=1 degenerate race: an in-process increasing-T sweep.

    ``initial`` is a provisional winner already in hand (the heuristic's
    period under the feasibility objective); a feasible smaller period
    replaces it, otherwise it stands.
    """
    for t_period in dispatch:
        if interrupted():
            break
        outcome = attempt_period(
            ddg, machine, t_period, config,
            incumbent=incumbent if t_period == incumbent_t else None,
        )
        attempts[t_period] = outcome.attempt
        if outcome.schedule is not None:
            return outcome
    return initial


def _race_pool(
    ddg: Ddg,
    machine: Machine,
    dispatch: List[int],
    config: AttemptConfig,
    attempts: Dict[int, ScheduleAttempt],
    jobs: int,
    window: int,
    time_budget: Optional[float],
    policy: SupervisionPolicy,
    initial: Optional[AttemptOutcome] = None,
    incumbent: Optional[Schedule] = None,
    incumbent_t: Optional[int] = None,
) -> Optional[AttemptOutcome]:
    """Windowed supervised race over ``dispatch`` (increasing order).

    ``initial`` (when given) is a provisional winner from the heuristic
    pre-pass: only smaller periods remain in ``dispatch``, and the
    standard smaller-T replacement logic takes it from there.
    ``incumbent`` rides along to the ``incumbent_t`` solve as the MIP
    start (:class:`~repro.core.schedule.Schedule` pickles cleanly).

    Candidate deadlines default to the per-period solver budget: a solve
    that overruns ``time_budget`` by more than the policy's grace is
    killed and recorded as a ``hang`` failure for that period only.
    """
    winner: Optional[AttemptOutcome] = initial
    deadline = policy.deadline if policy.deadline is not None else time_budget
    pending = list(dispatch)  # not yet submitted, increasing T
    in_flight: Dict[SupervisedTask, int] = {}  # task -> t_period
    executor = SupervisedExecutor(
        max_workers=min(jobs, len(dispatch)),
        policy=policy,
        initializer=_init_worker,
        initargs=(time_budget,),
    )
    try:
        while True:
            if interrupted():
                for task in executor.abort(
                    INTERRUPTED, "race interrupted (SIGINT/SIGTERM)"
                ):
                    t_period = in_flight.pop(task, None)
                    if t_period is None or t_period in attempts:
                        continue
                    attempts[t_period] = ScheduleAttempt(
                        t_period=t_period, status=task.failure.kind,
                        seconds=task.failure.elapsed,
                        failure=task.failure,
                    )
                break
            if winner is not None:
                # Periods that can no longer win are abandoned: queued
                # tasks are cancelled outright, and unsubmitted ones
                # are never dispatched.
                best_t = winner.attempt.t_period
                pending = [t for t in pending if t < best_t]
                for task, t_period in list(in_flight.items()):
                    if t_period > best_t and executor.cancel(task):
                        del in_flight[task]
                # The win stands once no smaller period is outstanding;
                # still-*running* larger-T solves are abandoned (their
                # deadline bounds the straggler).
                if not pending and not any(
                    t < best_t for t in in_flight.values()
                ):
                    break
            elif not pending and not in_flight:
                break
            while (
                pending
                and len(in_flight) < window
                and (winner is None
                     or pending[0] < winner.attempt.t_period)
            ):
                t_period = pending.pop(0)
                task = executor.submit(
                    attempt_period, ddg, machine, t_period, config,
                    incumbent=(
                        incumbent if t_period == incumbent_t else None
                    ),
                    tag=t_period,
                    deadline=deadline,
                )
                in_flight[task] = t_period
            for task in executor.poll(timeout=0.25):
                t_period = in_flight.pop(task, None)
                if t_period is None:
                    continue
                if task.failure is not None:
                    # The candidate died (crash/hang/oom/solver error)
                    # after the policy's retries: record it and keep
                    # racing the survivors.
                    attempts[t_period] = ScheduleAttempt(
                        t_period=t_period, status=task.failure.kind,
                        seconds=task.failure.elapsed,
                        failure=task.failure,
                    )
                    continue
                outcome = task.result
                attempts[t_period] = outcome.attempt
                if outcome.schedule is not None and (
                    winner is None
                    or t_period < winner.attempt.t_period
                ):
                    winner = outcome
    finally:
        executor.shutdown()
    if winner is not None:
        # Anything beyond the winning period that never reported back —
        # cancelled in the queue, abandoned mid-run, or never submitted —
        # is recorded as such for the attempt log.
        for t_period in dispatch:
            if t_period > winner.attempt.t_period:
                attempts.setdefault(
                    t_period,
                    ScheduleAttempt(t_period=t_period, status=CANCELLED),
                )
    return winner


def _period_rep(cells: List[ScheduleAttempt]) -> ScheduleAttempt:
    """The attempt that best summarizes one period's portfolio cells.

    Priority: a feasible point, then an infeasibility proof, then a
    clean non-verdict (timeout), then a cancellation, then a failure.
    The representative is what the period-level post-processing reads:
    the incumbent fallback checks its ``failure``, and the degraded
    scan sees a failure only when *every* backend at the period failed
    — one backend crashing while a sibling delivered (or at least ran
    cleanly) must not degrade the result.
    """
    def rank(attempt: ScheduleAttempt) -> int:
        if attempt.status in _PROOFS:
            return 1
        if attempt.failure is not None:
            return 4
        if attempt.status == CANCELLED:
            return 3
        if attempt.status == SolveStatus.TIME_LIMIT.value:
            return 2
        return 0  # feasible/optimal/heuristic/degraded

    return min(cells, key=lambda a: (rank(a), a.backend))


def _race_portfolio_inline(
    ddg: Ddg,
    machine: Machine,
    dispatch: List[int],
    config: AttemptConfig,
    roster: Tuple[str, ...],
    initial: Optional[AttemptOutcome] = None,
    incumbent: Optional[Schedule] = None,
    incumbent_t: Optional[int] = None,
    breaker=None,
):
    """The ``jobs=1`` portfolio: an ordered fallback chain per period.

    Backends run in roster order until one settles the period — a
    feasible point or an infeasibility proof — and the remaining
    siblings are recorded cancelled.  An in-process
    :class:`~repro.ilp.errors.SolverError` (e.g. the SAT backend handed
    a formulation it cannot lower) loses only its own cell; the next
    backend in the roster picks the period up.
    """
    winner = initial
    recs: Dict[int, List[ScheduleAttempt]] = defaultdict(list)
    kill_stats = {"killed_running": 0, "cancelled_queued": 0}
    configs = {
        name: dataclasses.replace(config, backend=name) for name in roster
    }
    for t_period in dispatch:
        if interrupted():
            break
        settled = False
        for name in roster:
            if settled:
                recs[t_period].append(ScheduleAttempt(
                    t_period=t_period, status=CANCELLED, backend=name,
                ))
                kill_stats["cancelled_queued"] += 1
                continue
            if breaker is not None and not breaker.allows(name):
                # Tripped mid-race: skip the cell, siblings carry on.
                recs[t_period].append(ScheduleAttempt(
                    t_period=t_period, status=CANCELLED, backend=name,
                ))
                kill_stats["breaker_skipped"] = (
                    kill_stats.get("breaker_skipped", 0) + 1
                )
                continue
            start = time.monotonic()
            try:
                outcome = attempt_period(
                    ddg, machine, t_period, configs[name],
                    incumbent=(
                        incumbent if t_period == incumbent_t else None
                    ),
                )
            except SolverError as exc:
                elapsed = time.monotonic() - start
                failure = FailureRecord(
                    kind=SOLVER_ERROR, attempt=1, retries=0,
                    elapsed=elapsed,
                    detail=f"{type(exc).__name__}: {exc}",
                )
                recs[t_period].append(ScheduleAttempt(
                    t_period=t_period, status=SOLVER_ERROR,
                    seconds=elapsed, failure=failure, backend=name,
                ))
                if breaker is not None:
                    breaker.record_failure(name, SOLVER_ERROR)
                continue
            attempt = outcome.attempt
            if not attempt.backend:
                attempt.backend = name
            recs[t_period].append(attempt)
            if breaker is not None:
                breaker.record_success(name)
            if outcome.schedule is not None:
                if winner is None or t_period < winner.attempt.t_period:
                    winner = outcome
                settled = True
            elif attempt.status in _PROOFS:
                settled = True
        if winner is not None and winner.attempt.t_period == t_period:
            break
    return winner, recs, kill_stats


def _race_portfolio_pool(
    ddg: Ddg,
    machine: Machine,
    dispatch: List[int],
    config: AttemptConfig,
    roster: Tuple[str, ...],
    jobs: int,
    window: int,
    time_budget: Optional[float],
    policy: SupervisionPolicy,
    initial: Optional[AttemptOutcome] = None,
    incumbent: Optional[Schedule] = None,
    incumbent_t: Optional[int] = None,
    breaker=None,
):
    """Windowed supervised race over ``(period x backend)`` cells.

    Dispatch order is ``(T, roster index)`` increasing, so every
    backend gets the smallest open period before anyone speculates
    upward.  First verdict per period wins it for the roster:

    * feasible -> provisional winner; every cell at or beyond the
      winning period is killed (running workers included — bounded
      TERM->KILL escalation via
      :meth:`~repro.supervision.SupervisedExecutor.kill_task`);
    * INFEASIBLE / modulo-infeasible -> the period is settled, sibling
      backends still racing it are killed;
    * crash/hang/oom/solver-error -> that cell alone fails; siblings
      carry the period.

    ``kill_stats`` counts actual executor actions (running workers
    killed vs queued tasks dropped); cells that were never submitted
    are backfilled as plain cancelled attempts without counting.
    """
    winner: Optional[AttemptOutcome] = initial
    deadline = policy.deadline if policy.deadline is not None else time_budget
    configs = {
        name: dataclasses.replace(config, backend=name) for name in roster
    }
    recs: Dict[int, List[ScheduleAttempt]] = defaultdict(list)
    kill_stats = {"killed_running": 0, "cancelled_queued": 0}
    pending: List[Tuple[int, str]] = [
        (t, name) for t in dispatch for name in roster
    ]
    settled: set = set()
    in_flight: Dict[SupervisedTask, Tuple[int, str]] = {}
    executor = SupervisedExecutor(
        max_workers=min(jobs, max(1, len(pending))),
        policy=policy,
        initializer=_init_worker,
        initargs=(time_budget,),
    )

    def reap_loser(task: SupervisedTask, t_period: int, name: str) -> None:
        was_running = task.state == RUNNING
        if executor.kill_task(task):
            key = "killed_running" if was_running else "cancelled_queued"
            kill_stats[key] += 1
            del in_flight[task]
            recs[t_period].append(ScheduleAttempt(
                t_period=t_period, status=CANCELLED, backend=name,
            ))
        # kill_task returning False means the task already finished:
        # leave it in flight so the next poll records its real outcome.

    try:
        while True:
            if interrupted():
                for task in executor.abort(
                    INTERRUPTED, "race interrupted (SIGINT/SIGTERM)"
                ):
                    key = in_flight.pop(task, None)
                    if key is None:
                        continue
                    t_period, name = key
                    recs[t_period].append(ScheduleAttempt(
                        t_period=t_period, status=task.failure.kind,
                        seconds=task.failure.elapsed,
                        failure=task.failure, backend=name,
                    ))
                break
            best_t = (
                winner.attempt.t_period if winner is not None else None
            )
            # Losers die the moment they can no longer change the
            # outcome: any cell at a settled period, and — once a
            # winner exists — every cell at or beyond its period.
            for task, (t_period, name) in list(in_flight.items()):
                if t_period in settled or (
                    best_t is not None and t_period >= best_t
                ):
                    reap_loser(task, t_period, name)
            pending = [
                (t, name) for (t, name) in pending
                if t not in settled and (best_t is None or t < best_t)
            ]
            if not pending and not in_flight:
                break
            while pending and len(in_flight) < window:
                t_period, name = pending.pop(0)
                if breaker is not None and not breaker.allows(name):
                    # The backend tripped mid-race: its remaining cells
                    # are skipped, sibling backends carry the periods.
                    recs[t_period].append(ScheduleAttempt(
                        t_period=t_period, status=CANCELLED,
                        backend=name,
                    ))
                    kill_stats["breaker_skipped"] = (
                        kill_stats.get("breaker_skipped", 0) + 1
                    )
                    continue
                task = executor.submit(
                    attempt_period, ddg, machine, t_period,
                    configs[name],
                    incumbent=(
                        incumbent if t_period == incumbent_t else None
                    ),
                    tag=(t_period, name),
                    deadline=deadline,
                )
                in_flight[task] = (t_period, name)
            for task in executor.poll(timeout=0.25):
                key = in_flight.pop(task, None)
                if key is None:
                    continue
                t_period, name = key
                if task.failure is not None:
                    recs[t_period].append(ScheduleAttempt(
                        t_period=t_period, status=task.failure.kind,
                        seconds=task.failure.elapsed,
                        failure=task.failure, backend=name,
                    ))
                    if breaker is not None:
                        breaker.record_failure(name, task.failure.kind)
                    continue
                outcome = task.result
                attempt = outcome.attempt
                if not attempt.backend:
                    attempt.backend = name
                recs[t_period].append(attempt)
                if breaker is not None:
                    breaker.record_success(name)
                if outcome.schedule is not None:
                    settled.add(t_period)
                    if (winner is None
                            or t_period < winner.attempt.t_period):
                        winner = outcome
                elif attempt.status in _PROOFS:
                    settled.add(t_period)
    finally:
        executor.shutdown()
    # Cells that never got to report — dropped from the queue after a
    # settle, or never submitted at all — are backfilled as cancelled
    # so every (period, backend) pair appears exactly once in the log.
    best_t = winner.attempt.t_period if winner is not None else None
    for t_period in dispatch:
        if t_period not in settled and (
            best_t is None or t_period < best_t
        ):
            continue
        have = {a.backend for a in recs[t_period]}
        for name in roster:
            if name not in have:
                recs[t_period].append(ScheduleAttempt(
                    t_period=t_period, status=CANCELLED, backend=name,
                ))
    return winner, recs, kill_stats
