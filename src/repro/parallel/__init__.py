"""Multiprocess scheduling: period racing and corpus batch runs.

The §6 driver's candidate-period solves are mutually independent ILPs,
which makes them (a) raceable — :func:`race_periods` proves
infeasibility of several small periods concurrently instead of one at a
time — and (b) batchable — :func:`run_batch` spreads a whole corpus of
loops across worker processes with deterministic result ordering and a
JSON report.  :mod:`repro.parallel.cache` memoizes lower-bound and
formulation construction per worker.

Both entry points preserve the sequential driver's semantics exactly
(same achieved ``T``, same ``is_rate_optimal_proven`` proof obligation);
see ``docs/parallel.md`` for the argument.
"""

from repro.parallel.batch import (
    BatchEntry,
    BatchReport,
    collect_sources,
    load_report,
    run_batch,
)
from repro.parallel.cache import (
    LruCache,
    cache_stats,
    cached_formulation,
    cached_lower_bounds,
    cached_warmstart,
    clear_caches,
    ddg_digest,
    machine_digest,
)
from repro.parallel.race import (
    CANCELLED,
    PORTFOLIO_BACKENDS,
    default_jobs,
    default_portfolio,
    race_periods,
)

__all__ = [
    "BatchEntry",
    "BatchReport",
    "CANCELLED",
    "PORTFOLIO_BACKENDS",
    "default_portfolio",
    "LruCache",
    "cache_stats",
    "cached_formulation",
    "cached_lower_bounds",
    "cached_warmstart",
    "clear_caches",
    "collect_sources",
    "ddg_digest",
    "default_jobs",
    "load_report",
    "machine_digest",
    "race_periods",
    "run_batch",
]
