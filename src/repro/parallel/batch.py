"""Corpus batch runner: many loops across worker processes.

Schedules a whole directory (or any mix of ``.ddg`` paths, DDG text and
in-memory :class:`~repro.ddg.graph.Ddg` objects) with one worker process
per loop-task, and reports the outcome as a JSON document with a stable
schema (see :meth:`BatchReport.to_json_dict`).  Guarantees:

* **deterministic ordering** — entries come back in input order no
  matter which worker finished first;
* **per-loop fault isolation** — a loop whose scheduling raises is
  reported with its error message; the rest of the batch is unaffected;
* **warm caches** — each worker memoizes lower bounds and built
  formulations (:mod:`repro.parallel.cache`), so corpora with repeated
  loop shapes skip redundant construction work.

The JSON report (one object per loop: name, ``T_lb``/``T_dep``/``T_res``,
achieved ``T``, delta, proof flag, seconds, and the full per-period
attempt log) is what ``repro batch`` emits and what the Table 4/5
harnesses can consume.
"""

from __future__ import annotations

import json
import math
import os
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, List, Optional, Sequence, Union

from repro.core.scheduler import AttemptConfig, SchedulingResult, run_sweep
from repro.ddg.builders import parse_ddg, serialize_ddg
from repro.ddg.graph import Ddg
from repro.machine import Machine
from repro.parallel import cache
from repro.parallel.race import _init_worker, default_jobs

#: Report schema version (bump on incompatible changes).
#: v2: per-attempt ``model`` object carrying :class:`repro.ilp.model.
#: ModelStats` fields (sizes, eliminated vars/rows/nnz, phase timings).
#: v3: per-attempt ``bound``/``gap``/``warm_started`` fields and a
#: per-entry ``warmstart`` object (heuristic II/MII, heuristic seconds,
#: placement count, ILP-solve count, skipped-all-ILP flag).
REPORT_VERSION = 3

LoopSource = Union[str, "os.PathLike[str]", Ddg]


@dataclass
class BatchEntry:
    """Outcome for one loop of the batch."""

    name: str
    source: str  # file path, or "<memory>" for in-process Ddg inputs
    num_ops: int
    result: Optional[SchedulingResult] = None
    error: Optional[str] = None

    def to_json_dict(self) -> dict:
        entry = {
            "name": self.name,
            "source": self.source,
            "num_ops": self.num_ops,
        }
        if self.error is not None:
            entry["error"] = self.error
            return entry
        result = self.result
        entry.update(
            {
                "t_dep": result.bounds.t_dep,
                "t_res": result.bounds.t_res,
                "t_lb": result.bounds.t_lb,
                "achieved_t": result.achieved_t,
                "delta_from_lb": result.delta_from_lb,
                "is_rate_optimal_proven": result.is_rate_optimal_proven,
                "seconds": round(result.total_seconds, 6),
                "attempts": [
                    {
                        "t": attempt.t_period,
                        "status": attempt.status,
                        "seconds": round(attempt.seconds, 6),
                        "nodes": attempt.nodes,
                        "repaired": attempt.repaired,
                        "bound": attempt.bound,
                        # inf gap (bound but no incumbent) is not valid
                        # JSON; report it as null.
                        "gap": (
                            attempt.gap
                            if attempt.gap is not None
                            and math.isfinite(attempt.gap)
                            else None
                        ),
                        "warm_started": attempt.warm_started,
                        "model": {
                            key: (round(value, 6)
                                  if isinstance(value, float) else value)
                            for key, value in attempt.model_stats.items()
                        },
                    }
                    for attempt in result.attempts
                ],
            }
        )
        if result.warmstart is not None:
            entry["warmstart"] = result.warmstart.to_json_dict()
        return entry


@dataclass
class BatchReport:
    """A whole batch run, in input order."""

    machine_name: str
    backend: str
    jobs: int
    entries: List[BatchEntry] = field(default_factory=list)
    total_seconds: float = 0.0

    @property
    def scheduled(self) -> int:
        return sum(
            1
            for e in self.entries
            if e.result is not None and e.result.schedule is not None
        )

    @property
    def failed(self) -> int:
        return sum(1 for e in self.entries if e.error is not None)

    @property
    def skipped_ilp(self) -> int:
        """Loops the heuristic settled with zero ILP solves."""
        return sum(
            1
            for e in self.entries
            if e.result is not None
            and e.result.warmstart is not None
            and e.result.warmstart.skipped_all_ilp
        )

    def to_json_dict(self) -> dict:
        return {
            "report_version": REPORT_VERSION,
            "machine": self.machine_name,
            "backend": self.backend,
            "jobs": self.jobs,
            "loops": len(self.entries),
            "scheduled": self.scheduled,
            "failed": self.failed,
            "skipped_ilp": self.skipped_ilp,
            "total_seconds": round(self.total_seconds, 6),
            "entries": [entry.to_json_dict() for entry in self.entries],
        }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_json_dict(), indent=indent)

    def render(self) -> str:
        """Human-readable per-loop summary table."""
        lines = [
            f"{'loop':<16} {'T_lb':>4} {'T':>4} {'dT':>3} "
            f"{'proven':>6} {'sec':>8}  attempts"
        ]
        for entry in self.entries:
            if entry.error is not None:
                lines.append(f"{entry.name:<16} ERROR: {entry.error}")
                continue
            result = entry.result
            t = result.achieved_t if result.achieved_t is not None else "-"
            delta = (
                result.delta_from_lb
                if result.delta_from_lb is not None
                else "-"
            )
            proven = "yes" if result.is_rate_optimal_proven else "no"
            log = ",".join(
                f"{a.t_period}:{a.status}" for a in result.attempts
            )
            lines.append(
                f"{entry.name:<16} {result.bounds.t_lb:>4} {t:>4} "
                f"{delta:>3} {proven:>6} {result.total_seconds:>8.2f}  {log}"
            )
        lines.append(
            f"{len(self.entries)} loop(s): {self.scheduled} scheduled "
            f"({self.skipped_ilp} by heuristic alone), "
            f"{self.failed} failed, {self.total_seconds:.2f}s wall-clock"
        )
        return "\n".join(lines)


def collect_sources(paths: Iterable[LoopSource]) -> List[LoopSource]:
    """Expand directories into sorted ``.ddg`` file lists.

    Files and in-memory DDGs pass through unchanged; ordering within a
    directory is lexicographic, so the batch is deterministic for a
    given argument list.
    """
    sources: List[LoopSource] = []
    for item in paths:
        if isinstance(item, Ddg):
            sources.append(item)
            continue
        path = Path(item)
        if path.is_dir():
            sources.extend(sorted(path.glob("*.ddg")))
        else:
            sources.append(path)
    return sources


def _schedule_source(
    text: str, source: str, machine: Machine, config: AttemptConfig,
    max_extra: int,
) -> BatchEntry:
    """Worker body: schedule one serialized loop (picklable in and out).

    Runs the same increasing-T sweep as the sequential driver
    (:func:`repro.core.scheduler.run_sweep`), but with the worker-local
    bounds/formulation/warm-start caches injected, so corpora with
    repeated loop shapes skip redundant construction and heuristic work.
    """
    try:
        ddg = parse_ddg(text)
        ddg.validate_against(machine)
        result = run_sweep(
            ddg, machine, config, max_extra,
            bounds=cache.cached_lower_bounds(ddg, machine),
            formulation_builder=cache.cached_formulation,
            warmstart_provider=cache.cached_warmstart,
        )
        return BatchEntry(
            name=ddg.name,
            source=source,
            num_ops=ddg.num_ops,
            result=result,
        )
    except Exception as exc:  # per-loop fault isolation
        return BatchEntry(
            name=Path(source).stem if source != "<memory>" else source,
            source=source,
            num_ops=0,
            error=f"{type(exc).__name__}: {exc}",
        )


def run_batch(
    paths: Sequence[LoopSource],
    machine: Machine,
    backend: str = "auto",
    objective: str = "feasibility",
    mapping: Optional[bool] = None,
    time_limit_per_t: Optional[float] = 10.0,
    max_extra: int = 10,
    verify: bool = True,
    presolve: bool = True,
    jobs: Optional[int] = None,
    warmstart: bool = True,
) -> BatchReport:
    """Schedule every loop reachable from ``paths`` across ``jobs`` workers.

    Results always come back in input order (directories expand to
    sorted file lists).  ``jobs=1`` runs in-process with no pool.
    """
    jobs = jobs if jobs is not None else default_jobs()
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    config = AttemptConfig(
        backend=backend,
        objective=objective,
        mapping=mapping,
        time_limit=time_limit_per_t,
        verify=verify,
        presolve=presolve,
        warmstart=warmstart,
    )
    sources = collect_sources(paths)
    tasks: List[tuple] = []  # (text, label)
    for item in sources:
        if isinstance(item, Ddg):
            tasks.append((serialize_ddg(item), "<memory>"))
        else:
            path = Path(item)
            tasks.append((path.read_text(encoding="utf-8"), str(path)))

    start_clock = time.monotonic()
    entries: List[BatchEntry] = []
    if jobs == 1 or len(tasks) <= 1:
        for text, label in tasks:
            entries.append(
                _schedule_source(text, label, machine, config, max_extra)
            )
    else:
        with ProcessPoolExecutor(
            max_workers=min(jobs, len(tasks)),
            initializer=_init_worker,
            initargs=(time_limit_per_t,),
        ) as executor:
            futures = [
                executor.submit(
                    _schedule_source, text, label, machine, config,
                    max_extra,
                )
                for text, label in tasks
            ]
            entries = [future.result() for future in futures]
    return BatchReport(
        machine_name=machine.name,
        backend=backend,
        jobs=jobs,
        entries=entries,
        total_seconds=time.monotonic() - start_clock,
    )
