"""Corpus batch runner: many loops across supervised worker processes.

Schedules a whole directory (or any mix of ``.ddg`` paths, DDG text and
in-memory :class:`~repro.ddg.graph.Ddg` objects) with one worker process
per loop-task, and reports the outcome as a JSON document with a stable
schema (see :meth:`BatchReport.to_json_dict`).  Guarantees:

* **deterministic ordering** — entries come back in input order no
  matter which worker finished first;
* **per-loop fault isolation** — a loop whose scheduling raises is
  reported with its error message, and a loop whose *worker* crashes,
  hangs past its deadline, or OOMs is reported with a structured
  :class:`~repro.supervision.records.FailureRecord` (after the policy's
  retries); the rest of the batch is unaffected either way;
* **per-file diagnostics** — an unreadable or unparsable corpus file
  becomes an error entry naming the loop, the path and the parse error,
  not a traceback that kills the run;
* **checkpoint/resume** — with a journal path every finished loop is
  appended to a JSONL file (atomic single-write appends); a killed run
  resumed from its journal re-runs only failed/missing loops (see
  :mod:`repro.supervision.journal`);
* **graceful interrupts** — under
  :func:`repro.supervision.graceful_interrupts`, SIGINT/SIGTERM settles
  the batch: finished loops keep their results, unfinished ones are
  recorded as ``interrupted``, the journal is flushed, and the report is
  still written;
* **warm caches** — each worker memoizes lower bounds and built
  formulations (:mod:`repro.parallel.cache`), so corpora with repeated
  loop shapes skip redundant construction work.

The JSON report (one object per loop: name, ``T_lb``/``T_dep``/``T_res``,
achieved ``T``, delta, proof flag, seconds, and the full per-period
attempt log) is what ``repro batch`` emits and what the Table 4/5
harnesses can consume.
"""

from __future__ import annotations

import json
import math
import os
import time
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.core.scheduler import AttemptConfig, SchedulingResult, run_sweep
from repro.ddg.builders import parse_ddg, serialize_ddg
from repro.ddg.graph import Ddg
from repro.machine import Machine
from repro.parallel import cache
from repro.parallel.race import (
    _init_worker,
    _validate_roster,
    default_jobs,
    default_portfolio,
)
from repro.supervision import faults
from repro.supervision.atomicio import atomic_write_text
from repro.supervision.journal import (
    BatchJournal,
    completed_entries,
    config_digest,
    entry_key,
)
from repro.supervision.records import (
    INTERRUPTED,
    FailureRecord,
    SupervisionPolicy,
)
from repro.supervision.executor import SupervisedExecutor
from repro.supervision.signals import interrupted

#: Report schema version (bump on incompatible changes).
#: v2: per-attempt ``model`` object carrying :class:`repro.ilp.model.
#: ModelStats` fields (sizes, eliminated vars/rows/nnz, phase timings).
#: v3: per-attempt ``bound``/``gap``/``warm_started`` fields and a
#: per-entry ``warmstart`` object (heuristic II/MII, heuristic seconds,
#: placement count, ILP-solve count, skipped-all-ILP flag).
#: v4: structured failure taxonomy — per-attempt and per-entry
#: ``failure`` objects (kind/attempt/retries/elapsed/detail, present
#: only on failures), per-entry ``degraded`` flag, and journal-backed
#: resume (resumed entries are carried over verbatim).
#: v5: persistent schedule store — per-entry ``store`` object
#: (hit/verified/tier/published/evicted/seconds) and ``schedule``
#: payload (the full schedule, so journals/reports can warm a store via
#: ``repro cache warm``), plus report-level ``store`` and ``cache``
#: aggregates (store hit counts; per-process LRU hit/miss counters).
#: v6: incremental sweep core — per-attempt ``model`` gains
#: ``reused_rows``/``rebuilt_rows``/``analysis_seconds`` and a
#: ``verify_seconds`` phase timing (or a ``cut_skip`` marker when a
#: recycled infeasibility cut settled the attempt without a solve), and
#: the report-level ``cache`` aggregate gains an ``incremental`` block
#: (context registry, analysis reuse and cut-pool counters).
#: v7: portfolio racing — per-attempt ``backend`` (which solver
#: produced the verdict), per-entry ``portfolio`` object (roster,
#: winning backend, loser dispositions, kill/cancel counters) when the
#: loop was raced across backends, and a report-level ``portfolio``
#: aggregate (per-backend win counts plus total losers killed/
#: cancelled).
#: v8: degraded-settling provenance — entries with ``degraded: true``
#: carry ``lost_cells``: one ``{t, backend, kind, detail}`` record per
#: period cell that died without a verdict (supervision failures *and*
#: cancelled portfolio losers), so a degraded winner's missing proofs
#: are auditable from the report alone.
REPORT_VERSION = 8

from repro.corpusgen.manifest import (
    MANIFEST_NAME,
    ManifestEntrySource,
    manifest_sources,
    sha256_text,
)

LoopSource = Union[str, "os.PathLike[str]", Ddg, ManifestEntrySource]


@dataclass
class BatchEntry:
    """Outcome for one loop of the batch."""

    name: str
    source: str  # file path, or "<memory>" for in-process Ddg inputs
    num_ops: int
    result: Optional[SchedulingResult] = None
    error: Optional[str] = None
    #: Structured record when the loop was lost to a supervision event
    #: (worker crash, deadline kill, OOM, interrupt) rather than an
    #: in-worker exception.
    failure: Optional[FailureRecord] = None
    #: Pre-serialized entry carried over from a resume journal; when
    #: set it *is* the JSON form and the other fields are advisory.
    raw: Optional[dict] = None
    #: Cumulative LRU counters of the process that scheduled this loop
    #: (``{"pid": ..., "caches": cache_stats()}``) — *cumulative*, so
    #: report aggregation takes the max per pid, not the sum.
    cache_snapshot: Optional[dict] = None
    #: Loop-level portfolio record when the loop was raced across
    #: backends: roster, winning backend, per-loser dispositions and
    #: kill/cancel counters.  None for single-backend batches.
    portfolio: Optional[dict] = None

    @property
    def scheduled(self) -> bool:
        if self.raw is not None:
            return self.raw.get("achieved_t") is not None
        return self.result is not None and self.result.schedule is not None

    @property
    def skipped_ilp(self) -> bool:
        if self.raw is not None:
            warmstart = self.raw.get("warmstart") or {}
            return bool(warmstart.get("skipped_all_ilp"))
        return (
            self.result is not None
            and self.result.warmstart is not None
            and self.result.warmstart.skipped_all_ilp
        )

    def to_json_dict(self) -> dict:
        if self.raw is not None:
            return self.raw
        entry = {
            "name": self.name,
            "source": self.source,
            "num_ops": self.num_ops,
        }
        if self.error is not None:
            entry["error"] = self.error
            if self.failure is not None:
                entry["failure"] = self.failure.to_json_dict()
            if self.portfolio is not None:
                entry["portfolio"] = self.portfolio
            return entry
        result = self.result
        entry.update(
            {
                "t_dep": result.bounds.t_dep,
                "t_res": result.bounds.t_res,
                "t_lb": result.bounds.t_lb,
                "achieved_t": result.achieved_t,
                "delta_from_lb": result.delta_from_lb,
                "is_rate_optimal_proven": result.is_rate_optimal_proven,
                "degraded": result.degraded,
                "seconds": round(result.total_seconds, 6),
                "attempts": [
                    _attempt_json(attempt) for attempt in result.attempts
                ],
            }
        )
        if result.degraded:
            entry["lost_cells"] = result.lost_cells()
        if result.warmstart is not None:
            entry["warmstart"] = result.warmstart.to_json_dict()
        if result.store is not None:
            entry["store"] = result.store.to_json_dict()
        if self.portfolio is not None:
            entry["portfolio"] = self.portfolio
        elif result.portfolio is not None:
            entry["portfolio"] = result.portfolio
        if result.schedule is not None:
            entry["schedule"] = result.schedule.to_dict()
        return entry

    @classmethod
    def from_json_dict(cls, data: dict) -> "BatchEntry":
        """Rehydrate a journal entry (report-level fields only)."""
        failure = None
        if data.get("failure") is not None:
            failure = FailureRecord.from_json_dict(data["failure"])
        return cls(
            name=data.get("name", "?"),
            source=data.get("source", "?"),
            num_ops=int(data.get("num_ops", 0)),
            error=data.get("error"),
            failure=failure,
            raw=data,
        )


def _attempt_json(attempt) -> dict:
    doc = {
        "t": attempt.t_period,
        "status": attempt.status,
        "backend": attempt.backend,
        "seconds": round(attempt.seconds, 6),
        "nodes": attempt.nodes,
        "repaired": attempt.repaired,
        "bound": attempt.bound,
        # inf gap (bound but no incumbent) is not valid JSON; report it
        # as null.
        "gap": (
            attempt.gap
            if attempt.gap is not None and math.isfinite(attempt.gap)
            else None
        ),
        "warm_started": attempt.warm_started,
        "model": {
            key: (round(value, 6) if isinstance(value, float) else value)
            for key, value in attempt.model_stats.items()
        },
    }
    if attempt.failure is not None:
        doc["failure"] = attempt.failure.to_json_dict()
    return doc


@dataclass
class BatchReport:
    """A whole batch run, in input order."""

    machine_name: str
    backend: str
    jobs: int
    entries: List[BatchEntry] = field(default_factory=list)
    total_seconds: float = 0.0
    #: Schema version of the document this report was loaded from (or
    #: the current version for freshly-run batches).  Older documents
    #: load fine (see :func:`load_report`); fields introduced later
    #: simply read as absent.
    version: int = REPORT_VERSION

    @property
    def scheduled(self) -> int:
        return sum(1 for e in self.entries if e.scheduled)

    @property
    def failed(self) -> int:
        return sum(
            1
            for e in self.entries
            if (e.raw.get("error") if e.raw is not None else e.error)
            is not None
        )

    @property
    def skipped_ilp(self) -> int:
        """Loops the heuristic settled with zero ILP solves."""
        return sum(1 for e in self.entries if e.skipped_ilp)

    def _entry_store(self, entry: BatchEntry) -> Optional[dict]:
        if entry.raw is not None:
            return entry.raw.get("store")
        if entry.result is not None and entry.result.store is not None:
            return entry.result.store.to_json_dict()
        return None

    @property
    def store_hits(self) -> int:
        return sum(
            1 for e in self.entries
            if (self._entry_store(e) or {}).get("hit")
        )

    def store_summary(self) -> Optional[dict]:
        """Aggregate store counters, or None if no entry used a store."""
        docs = [d for d in map(self._entry_store, self.entries) if d]
        if not docs:
            return None
        return {
            "consulted": len(docs),
            "hits": sum(1 for d in docs if d.get("hit")),
            "memory_hits": sum(
                1 for d in docs if d.get("tier") == "memory"
            ),
            "disk_hits": sum(1 for d in docs if d.get("tier") == "disk"),
            "published": sum(1 for d in docs if d.get("published")),
            "evicted": sum(1 for d in docs if d.get("evicted")),
            "seconds": round(
                sum(d.get("seconds", 0.0) for d in docs), 6
            ),
        }

    def _entry_portfolio(self, entry: BatchEntry) -> Optional[dict]:
        if entry.raw is not None:
            return entry.raw.get("portfolio")
        if entry.portfolio is not None:
            return entry.portfolio
        if entry.result is not None:
            return entry.result.portfolio
        return None

    def portfolio_summary(self) -> Optional[dict]:
        """Aggregate portfolio counters, or None for single-backend runs."""
        docs = [
            d for d in map(self._entry_portfolio, self.entries) if d
        ]
        if not docs:
            return None
        wins: Dict[str, int] = {}
        for doc in docs:
            winner = doc.get("winner_backend")
            if winner:
                wins[winner] = wins.get(winner, 0) + 1
        return {
            "raced": len(docs),
            "wins": dict(sorted(wins.items())),
            "killed_running": sum(
                int(d.get("killed_running", 0)) for d in docs
            ),
            "cancelled_queued": sum(
                int(d.get("cancelled_queued", 0)) for d in docs
            ),
        }

    def cache_summary(self) -> Optional[dict]:
        """Sum the per-process LRU counters across worker snapshots.

        Snapshots are cumulative per pid, so the latest (largest) one
        per pid stands for that whole process.
        """
        latest: dict = {}
        for entry in self.entries:
            snap = entry.cache_snapshot
            if not snap:
                continue
            pid = snap.get("pid")
            caches = snap.get("caches") or {}
            best = latest.get(pid)
            if best is None or _snapshot_weight(caches) >= _snapshot_weight(
                best
            ):
                latest[pid] = caches
        if not latest:
            return None
        totals: dict = {}
        for caches in latest.values():
            for name, counters in caches.items():
                if name == "incremental":
                    # Not an LRU: sum its scalar counters directly
                    # (the per-kind cut_skips dict stays per-process).
                    slot = totals.setdefault(name, {})
                    for key, value in counters.items():
                        if isinstance(value, (int, float)):
                            slot[key] = slot.get(key, 0) + value
                    continue
                slot = totals.setdefault(name, {"hits": 0, "misses": 0})
                slot["hits"] += counters.get("hits", 0)
                slot["misses"] += counters.get("misses", 0)
        totals["processes"] = len(latest)
        return totals

    def to_json_dict(self) -> dict:
        doc = {
            "report_version": REPORT_VERSION,
            "machine": self.machine_name,
            "backend": self.backend,
            "jobs": self.jobs,
            "loops": len(self.entries),
            "scheduled": self.scheduled,
            "failed": self.failed,
            "skipped_ilp": self.skipped_ilp,
            "total_seconds": round(self.total_seconds, 6),
            "entries": [entry.to_json_dict() for entry in self.entries],
        }
        store = self.store_summary()
        if store is not None:
            doc["store"] = store
        cache_totals = self.cache_summary()
        if cache_totals is not None:
            doc["cache"] = cache_totals
        portfolio = self.portfolio_summary()
        if portfolio is not None:
            doc["portfolio"] = portfolio
        return doc

    @classmethod
    def from_json_dict(cls, doc: dict) -> "BatchReport":
        """Rehydrate a saved report document (any version >= 3).

        Entries come back in ``raw`` form — the JSON is authoritative —
        so fields absent from older versions read as missing rather
        than defaulted wrongly.
        """
        version = int(doc.get("report_version", 0))
        if version < 3:
            raise ValueError(
                f"report version {version} is too old to load "
                f"(supported: 3..{REPORT_VERSION})"
            )
        return cls(
            machine_name=doc.get("machine", "?"),
            backend=doc.get("backend", "?"),
            jobs=int(doc.get("jobs", 1)),
            entries=[
                BatchEntry.from_json_dict(e)
                for e in doc.get("entries", [])
            ],
            total_seconds=float(doc.get("total_seconds", 0.0)),
            version=version,
        )

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_json_dict(), indent=indent)

    def save_json(self, path) -> None:
        """Write the JSON report atomically (never a truncated file)."""
        atomic_write_text(path, self.to_json() + "\n")

    def render(self) -> str:
        """Human-readable per-loop summary table."""
        lines = [
            f"{'loop':<16} {'T_lb':>4} {'T':>4} {'dT':>3} "
            f"{'proven':>6} {'sec':>8}  attempts"
        ]
        for entry in (e.to_json_dict() for e in self.entries):
            name = entry.get("name", "?")
            if entry.get("error") is not None:
                lines.append(f"{name:<16} ERROR: {entry['error']}")
                continue
            t = entry["achieved_t"] if entry["achieved_t"] is not None else "-"
            delta = (
                entry["delta_from_lb"]
                if entry["delta_from_lb"] is not None
                else "-"
            )
            proven = "yes" if entry["is_rate_optimal_proven"] else "no"
            log = ",".join(
                f"{a['t']}:{a['status']}" for a in entry["attempts"]
            )
            lines.append(
                f"{name:<16} {entry['t_lb']:>4} {t:>4} "
                f"{delta:>3} {proven:>6} {entry['seconds']:>8.2f}  {log}"
            )
        lines.append(
            f"{len(self.entries)} loop(s): {self.scheduled} scheduled "
            f"({self.skipped_ilp} by heuristic alone), "
            f"{self.failed} failed, {self.total_seconds:.2f}s wall-clock"
        )
        store = self.store_summary()
        if store is not None:
            lines.append(
                f"store: {store['hits']}/{store['consulted']} hit(s) "
                f"({store['memory_hits']} memory, {store['disk_hits']} "
                f"disk), {store['published']} published, "
                f"{store['evicted']} evicted"
            )
        cache_totals = self.cache_summary()
        if cache_totals is not None:
            parts = ", ".join(
                f"{name} {c['hits']}/{c['hits'] + c['misses']}"
                for name, c in sorted(cache_totals.items())
                if isinstance(c, dict) and "hits" in c
            )
            lines.append(
                f"lru hits across {cache_totals['processes']} "
                f"process(es): {parts}"
            )
            inc = cache_totals.get("incremental")
            if inc:
                lines.append(
                    f"incremental: {inc.get('analysis_hits', 0)} analysis "
                    f"hit(s), {inc.get('cuts_harvested', 0)} cut(s) "
                    f"banked, {inc.get('attempts_skipped', 0)} attempt(s) "
                    f"settled by recycled cuts"
                )
        portfolio = self.portfolio_summary()
        if portfolio is not None:
            wins = ", ".join(
                f"{name} {count}"
                for name, count in portfolio["wins"].items()
            ) or "none"
            lines.append(
                f"portfolio: {portfolio['raced']} loop(s) raced, wins: "
                f"{wins}; losers: {portfolio['killed_running']} killed, "
                f"{portfolio['cancelled_queued']} cancelled"
            )
        return "\n".join(lines)


def _snapshot_weight(caches: dict) -> int:
    """Total event count of a cumulative cache snapshot (for max-per-pid)."""
    return sum(
        counters.get("hits", 0) + counters.get("misses", 0)
        for counters in caches.values()
        if isinstance(counters, dict)
    )


def load_report(path) -> BatchReport:
    """Load a saved batch report (any v3..v8 schema)."""
    with open(path, encoding="utf-8") as handle:
        return BatchReport.from_json_dict(json.load(handle))


def collect_sources(paths: Iterable[LoopSource]) -> List[LoopSource]:
    """Expand directories into deterministic loop-source lists.

    Files and in-memory DDGs pass through unchanged.  A directory that
    carries a ``repro gen`` ``manifest.json`` expands to the manifest's
    loop list (in manifest order, with expected checksums), so a
    missing or corrupt file becomes a per-loop error entry naming the
    loop and the path instead of silently vanishing from a glob; any
    other directory expands to its sorted ``.ddg`` files.
    """
    sources: List[LoopSource] = []
    for item in paths:
        if isinstance(item, (Ddg, ManifestEntrySource)):
            sources.append(item)
            continue
        path = Path(item)
        if path.is_dir():
            if (path / MANIFEST_NAME).is_file():
                sources.extend(manifest_sources(path))
            else:
                sources.extend(sorted(path.glob("*.ddg")))
        else:
            sources.append(path)
    return sources


def _schedule_source(
    text: str, source: str, machine: Machine, config: AttemptConfig,
    max_extra: int, store_path: Optional[str] = None,
) -> BatchEntry:
    """Worker body: schedule one serialized loop (picklable in and out).

    Runs the same increasing-T sweep as the sequential driver
    (:func:`repro.core.scheduler.run_sweep`), but with the worker-local
    bounds/formulation/warm-start caches injected, so corpora with
    repeated loop shapes skip redundant construction and heuristic work.
    ``store_path`` opens the shared persistent store in this process
    (concurrent-writer safe); each entry carries a cumulative snapshot
    of this process's LRU counters for report-level aggregation.
    """
    loop_id = Path(source).stem if source != "<memory>" else source
    faults.fire("batch", loop=loop_id, source=source,
                backend=config.backend)
    try:
        store = None
        if store_path is not None:
            from repro.store import open_store

            store = open_store(store_path)
        ddg = parse_ddg(text)
        ddg.validate_against(machine)
        result = run_sweep(
            ddg, machine, config, max_extra,
            bounds=cache.cached_lower_bounds(ddg, machine),
            formulation_builder=cache.cached_formulation,
            warmstart_provider=cache.cached_warmstart,
            store=store,
        )
        return BatchEntry(
            name=ddg.name,
            source=source,
            num_ops=ddg.num_ops,
            result=result,
            cache_snapshot={
                "pid": os.getpid(),
                "caches": cache.cache_stats(),
            },
        )
    except MemoryError:
        raise  # let the supervisor classify this as an OOM
    except Exception as exc:  # per-loop fault isolation
        return BatchEntry(
            name=loop_id,
            source=source,
            num_ops=0,
            error=f"loop {loop_id!r} ({source}): "
                  f"{type(exc).__name__}: {exc}",
        )


def _load_tasks(
    sources: Sequence[LoopSource],
) -> List[tuple]:
    """Read every source up front: ``(name, text | None, label, error)``.

    A file that cannot be read or decoded becomes an error tuple naming
    the loop id, the path and the failure — it turns into a failed
    report entry instead of aborting the whole batch.
    """
    tasks: List[tuple] = []
    for item in sources:
        if isinstance(item, Ddg):
            tasks.append((item.name, serialize_ddg(item), "<memory>", None))
            continue
        expected_sha = None
        if isinstance(item, ManifestEntrySource):
            path = item.path
            loop_id = item.name
            expected_sha = item.sha256
        else:
            path = Path(item)
            loop_id = path.stem
        try:
            text = path.read_text(encoding="utf-8")
        except (OSError, UnicodeDecodeError) as exc:
            tasks.append((
                loop_id, None, str(path),
                f"loop {loop_id!r} ({path}): cannot read corpus file: "
                f"{type(exc).__name__}: {exc}",
            ))
            continue
        if expected_sha is not None and sha256_text(text) != expected_sha:
            tasks.append((
                loop_id, None, str(path),
                f"loop {loop_id!r} ({path}): corpus file does not match "
                "its manifest checksum — regenerate the corpus with "
                "'repro gen --from-manifest' or audit it with "
                "'repro gen --check'",
            ))
            continue
        tasks.append((loop_id, text, str(path), None))
    return tasks


def _batch_digest(machine: Machine, config: AttemptConfig,
                  max_extra: int) -> str:
    """Journal config digest: everything that must match on resume.

    ``incremental`` is deliberately excluded: toggling it never changes
    schedules, bounds or proof flags (only timings and reuse counters),
    so a journal from either mode is safe to resume in the other.
    """
    return config_digest(
        cache.machine_digest(machine),
        backend=config.backend,
        objective=config.objective,
        mapping=config.mapping,
        time_limit=config.time_limit,
        verify=config.verify,
        repair_modulo=config.repair_modulo,
        presolve=config.presolve,
        warmstart=config.warmstart,
        max_extra=max_extra,
    )


def run_batch(
    paths: Sequence[LoopSource],
    machine: Machine,
    backend: str = "auto",
    objective: str = "feasibility",
    mapping: Optional[bool] = None,
    time_limit_per_t: Optional[float] = 10.0,
    max_extra: int = 10,
    verify: bool = True,
    presolve: bool = True,
    jobs: Optional[int] = None,
    warmstart: bool = True,
    incremental: bool = True,
    policy: Optional[SupervisionPolicy] = None,
    journal: Optional[Union[str, "os.PathLike[str]"]] = None,
    resume: Optional[Union[str, "os.PathLike[str]"]] = None,
    store: Optional[Union[str, "os.PathLike[str]"]] = None,
    backends: Optional[Sequence[str]] = None,
) -> BatchReport:
    """Schedule every loop reachable from ``paths`` across ``jobs`` workers.

    Results always come back in input order (directories expand to
    sorted file lists).  ``jobs=1`` runs in-process with no pool.

    ``policy`` tunes the supervision layer around each worker (deadline,
    memory cap, retries); with the default policy loops run unbounded
    but still survive worker crashes.  ``journal`` appends every
    finished loop to a JSONL checkpoint; ``resume`` replays such a
    journal, re-running only loops that failed or never finished (and
    keeps journaling to the same file unless ``journal`` says
    otherwise).  Journals refuse to resume under changed settings.

    ``store`` points at a persistent schedule store directory shared by
    all workers (and by other runs): verified hits skip the whole sweep
    for structurally identical loops, and clean cold results are
    published back.  Safe under concurrent writers — publication is
    atomic per entry with last-writer-wins.

    ``backend="portfolio"`` (or an explicit ``backends`` roster) races
    the backends at *loop* granularity: each backend runs the loop's
    whole sweep in its own worker, the first to come back with a
    schedule wins the loop, and the sibling workers are killed (worker
    processes cannot nest pools, so the per-period portfolio of
    :func:`repro.parallel.race_periods` stays a race-driver feature).
    The winning entry carries a ``portfolio`` record naming the winner
    and every loser's disposition.
    """
    jobs = jobs if jobs is not None else default_jobs()
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    policy = policy or SupervisionPolicy()
    roster: Optional[Tuple[str, ...]] = None
    if backends is not None:
        roster = _validate_roster(backends, objective)
        backend = "portfolio"
    elif backend == "portfolio":
        roster = default_portfolio(objective)
    if roster is not None and len(roster) == 1:
        backend = roster[0]
        roster = None
    config = AttemptConfig(
        backend=backend,
        objective=objective,
        mapping=mapping,
        time_limit=time_limit_per_t,
        verify=verify,
        presolve=presolve,
        warmstart=warmstart,
        incremental=incremental,
    )
    store_path = str(store) if store is not None else None
    sources = collect_sources(paths)
    tasks = _load_tasks(sources)
    digest = _batch_digest(machine, config, max_extra)

    carried: dict = {}
    if resume is not None:
        header, done = completed_entries(resume)
        if header is not None and header.get("config_digest") != digest:
            from repro.supervision.journal import JournalError

            raise JournalError(
                f"journal {resume} was written with different settings "
                "(machine/backend/budget mismatch); refusing to mix "
                "results — use a fresh journal"
            )
        carried = done
        if journal is None:
            journal = resume

    writer: Optional[BatchJournal] = None
    if journal is not None:
        writer = BatchJournal(
            journal, digest,
            meta={"machine": machine.name, "backend": backend,
                  "loops": len(tasks)},
        )

    start_clock = time.monotonic()
    entries: List[Optional[BatchEntry]] = [None] * len(tasks)
    to_run: List[tuple] = []  # (index, text, label)
    try:
        for index, (name, text, label, load_error) in enumerate(tasks):
            if load_error is not None:
                entries[index] = BatchEntry(
                    name=name, source=label, num_ops=0, error=load_error
                )
                _journal_entry(writer, index, entries[index])
                continue
            record = carried.get(entry_key(label, name))
            if record is not None and label != "<memory>":
                entries[index] = BatchEntry.from_json_dict(record["entry"])
                continue
            to_run.append((index, text, label))

        if roster is not None:
            if jobs == 1:
                _run_inline_portfolio(
                    to_run, entries, machine, config, roster, max_extra,
                    writer, store_path,
                )
            else:
                _run_pool_portfolio(
                    to_run, entries, machine, config, roster, max_extra,
                    jobs, time_limit_per_t, policy, writer, store_path,
                )
        elif jobs == 1 or len(to_run) <= 1:
            _run_inline(
                to_run, entries, machine, config, max_extra, writer,
                store_path,
            )
        else:
            _run_pool(
                to_run, entries, machine, config, max_extra, jobs,
                time_limit_per_t, policy, writer, store_path,
            )
    finally:
        if writer is not None:
            writer.close()
    return BatchReport(
        machine_name=machine.name,
        backend=backend,
        jobs=jobs,
        entries=[e for e in entries if e is not None],
        total_seconds=time.monotonic() - start_clock,
    )


def _journal_entry(writer: Optional[BatchJournal], index: int,
                   entry: BatchEntry) -> None:
    if writer is not None:
        writer.record(
            index, entry.source, entry.name, entry.to_json_dict()
        )


def _interrupted_entry(name: str, label: str) -> BatchEntry:
    failure = FailureRecord(
        kind=INTERRUPTED, detail="batch interrupted (SIGINT/SIGTERM)"
    )
    return BatchEntry(
        name=name, source=label, num_ops=0,
        error=f"loop {name!r} ({label}): {failure.summary()}",
        failure=failure,
    )


def _run_inline(
    to_run: List[tuple],
    entries: List[Optional[BatchEntry]],
    machine: Machine,
    config: AttemptConfig,
    max_extra: int,
    writer: Optional[BatchJournal],
    store_path: Optional[str] = None,
) -> None:
    """jobs=1 path: schedule in-process, still journaled/interruptible."""
    for index, text, label in to_run:
        if interrupted():
            name = Path(label).stem if label != "<memory>" else label
            entries[index] = _interrupted_entry(name, label)
            _journal_entry(writer, index, entries[index])
            continue
        entries[index] = _schedule_source(
            text, label, machine, config, max_extra, store_path
        )
        _journal_entry(writer, index, entries[index])


def _run_pool(
    to_run: List[tuple],
    entries: List[Optional[BatchEntry]],
    machine: Machine,
    config: AttemptConfig,
    max_extra: int,
    jobs: int,
    time_limit_per_t: Optional[float],
    policy: SupervisionPolicy,
    writer: Optional[BatchJournal],
    store_path: Optional[str] = None,
) -> None:
    """Supervised pool path: one task per loop, failures isolated."""
    executor = SupervisedExecutor(
        max_workers=min(jobs, len(to_run)),
        policy=policy,
        initializer=_init_worker,
        initargs=(time_limit_per_t,),
    )
    index_of = {}
    label_of = {}
    try:
        for index, text, label in to_run:
            task = executor.submit(
                _schedule_source, text, label, machine, config,
                max_extra, store_path, tag=index,
            )
            index_of[task] = index
            label_of[task] = label
        outstanding = len(to_run)
        while outstanding:
            if interrupted():
                for task in executor.abort(
                    INTERRUPTED, "batch interrupted (SIGINT/SIGTERM)"
                ):
                    index = index_of.pop(task, None)
                    if index is None:
                        continue
                    label = label_of[task]
                    name = (
                        Path(label).stem if label != "<memory>" else label
                    )
                    entry = BatchEntry(
                        name=name, source=label, num_ops=0,
                        error=f"loop {name!r} ({label}): "
                              f"{task.failure.summary()}",
                        failure=task.failure,
                    )
                    entries[index] = entry
                    _journal_entry(writer, index, entry)
                    outstanding -= 1
                continue
            for task in executor.poll(timeout=0.25):
                index = index_of.pop(task, None)
                if index is None:
                    continue
                label = label_of[task]
                if task.failure is not None:
                    name = (
                        Path(label).stem if label != "<memory>" else label
                    )
                    entry = BatchEntry(
                        name=name, source=label, num_ops=0,
                        error=f"loop {name!r} ({label}): "
                              f"{task.failure.summary()}",
                        failure=task.failure,
                    )
                else:
                    entry = task.result
                entries[index] = entry
                _journal_entry(writer, index, entry)
                outstanding -= 1
    finally:
        executor.shutdown()


def _pick_fallback(
    candidates: Dict[str, BatchEntry], roster: Tuple[str, ...]
) -> Tuple[str, BatchEntry]:
    """The entry that stands for a loop no backend scheduled.

    Prefer (in roster order) a clean-but-unscheduled sweep over an
    errored one: a real attempt log with timeouts beats a stack trace.
    """
    for name in roster:
        entry = candidates.get(name)
        if entry is not None and entry.error is None:
            return name, entry
    for name in roster:
        if name in candidates:
            return name, candidates[name]
    raise AssertionError("no candidate entries to fall back to")


def _loser_disposition(entry: Optional[BatchEntry]) -> str:
    if entry is None:
        return "cancelled"
    if entry.failure is not None:
        return entry.failure.kind
    if entry.error is not None:
        return "error"
    return "unscheduled"


def _run_inline_portfolio(
    to_run: List[tuple],
    entries: List[Optional[BatchEntry]],
    machine: Machine,
    config: AttemptConfig,
    roster: Tuple[str, ...],
    max_extra: int,
    writer: Optional[BatchJournal],
    store_path: Optional[str] = None,
) -> None:
    """jobs=1 portfolio: per loop, backends as an ordered fallback chain.

    The first backend that schedules the loop wins it; the rest never
    run (recorded as cancelled losers).  In the common case — the first
    backend succeeds — this costs exactly one sweep, same as a
    single-backend batch.
    """
    configs = {
        name: replace(config, backend=name) for name in roster
    }
    for index, text, label in to_run:
        if interrupted():
            name = Path(label).stem if label != "<memory>" else label
            entries[index] = _interrupted_entry(name, label)
            _journal_entry(writer, index, entries[index])
            continue
        candidates: Dict[str, BatchEntry] = {}
        winner_backend: Optional[str] = None
        for name in roster:
            entry = _schedule_source(
                text, label, machine, configs[name], max_extra,
                store_path,
            )
            candidates[name] = entry
            if entry.scheduled:
                winner_backend = name
                break
        if winner_backend is not None:
            winner = candidates[winner_backend]
            rep_name = winner_backend
        else:
            rep_name, winner = _pick_fallback(candidates, roster)
        losers = {
            name: _loser_disposition(candidates.get(name))
            for name in roster if name != rep_name
        }
        winner.portfolio = {
            "backends": list(roster),
            "winner_backend": winner_backend,
            "losers": losers,
            "killed_running": 0,
            "cancelled_queued": sum(
                1 for name in roster if name not in candidates
            ),
        }
        entries[index] = winner
        _journal_entry(writer, index, winner)


def _run_pool_portfolio(
    to_run: List[tuple],
    entries: List[Optional[BatchEntry]],
    machine: Machine,
    config: AttemptConfig,
    roster: Tuple[str, ...],
    max_extra: int,
    jobs: int,
    time_limit_per_t: Optional[float],
    policy: SupervisionPolicy,
    writer: Optional[BatchJournal],
    store_path: Optional[str] = None,
) -> None:
    """Portfolio pool: one worker task per (loop, backend) cell.

    The first backend to return a *scheduled* entry wins the loop and
    its sibling cells are killed on the spot (running workers reaped
    with bounded escalation, queued cells dropped).  A backend that
    fails or comes back unscheduled loses only its own cell; if every
    backend misses, the loop settles to the best fallback entry
    (:func:`_pick_fallback`) with the other dispositions recorded.
    """
    from repro.supervision.executor import RUNNING

    configs = {
        name: replace(config, backend=name) for name in roster
    }
    executor = SupervisedExecutor(
        max_workers=min(jobs, len(to_run) * len(roster)),
        policy=policy,
        initializer=_init_worker,
        initargs=(time_limit_per_t,),
    )
    tasks_of: Dict[int, Dict[str, object]] = {}
    label_of: Dict[int, str] = {}
    candidates: Dict[int, Dict[str, BatchEntry]] = {}
    settled: set = set()

    def settle(index: int, winner_backend: Optional[str],
               winner: BatchEntry) -> None:
        killed = 0
        cancelled = 0
        for name, task in tasks_of[index].items():
            if name == winner_backend:
                continue
            was_running = task.state == RUNNING
            if executor.kill_task(task):
                if was_running:
                    killed += 1
                else:
                    cancelled += 1
        losers = {
            name: _loser_disposition(candidates[index].get(name))
            for name in roster if name != winner_backend
        }
        winner.portfolio = {
            "backends": list(roster),
            "winner_backend": winner_backend,
            "losers": losers,
            "killed_running": killed,
            "cancelled_queued": cancelled,
        }
        entries[index] = winner
        _journal_entry(writer, index, winner)
        settled.add(index)

    try:
        for index, text, label in to_run:
            label_of[index] = label
            candidates[index] = {}
            tasks_of[index] = {}
            for name in roster:
                task = executor.submit(
                    _schedule_source, text, label, machine,
                    configs[name], max_extra, store_path,
                    tag=(index, name),
                )
                tasks_of[index][name] = task
        while len(settled) < len(to_run):
            if interrupted():
                executor.abort(
                    INTERRUPTED, "batch interrupted (SIGINT/SIGTERM)"
                )
                for index, _text, label in to_run:
                    if index in settled:
                        continue
                    name = (
                        Path(label).stem if label != "<memory>"
                        else label
                    )
                    entry = _interrupted_entry(name, label)
                    entry.portfolio = {
                        "backends": list(roster),
                        "winner_backend": None,
                        "losers": {
                            b: _loser_disposition(
                                candidates[index].get(b)
                            )
                            for b in roster
                        },
                        "killed_running": 0,
                        "cancelled_queued": 0,
                    }
                    entries[index] = entry
                    _journal_entry(writer, index, entry)
                    settled.add(index)
                break
            for task in executor.poll(timeout=0.25):
                index, name = task.tag
                if index in settled:
                    continue
                if task.failure is not None:
                    label = label_of[index]
                    loop_name = (
                        Path(label).stem if label != "<memory>"
                        else label
                    )
                    cell = BatchEntry(
                        name=loop_name, source=label, num_ops=0,
                        error=f"loop {loop_name!r} ({label}): "
                              f"{task.failure.summary()}",
                        failure=task.failure,
                    )
                else:
                    cell = task.result
                candidates[index][name] = cell
                if cell.scheduled:
                    settle(index, name, cell)
                elif len(candidates[index]) == len(roster):
                    # Every backend reported and none scheduled: settle
                    # to the least-bad entry.
                    fallback_name, fallback = _pick_fallback(
                        candidates[index], roster
                    )
                    fallback.portfolio = {
                        "backends": list(roster),
                        "winner_backend": None,
                        "losers": {
                            b: _loser_disposition(
                                candidates[index].get(b)
                            )
                            for b in roster if b != fallback_name
                        },
                        "killed_running": 0,
                        "cancelled_queued": 0,
                    }
                    entries[index] = fallback
                    _journal_entry(writer, index, fallback)
                    settled.add(index)
    finally:
        executor.shutdown()
