"""Per-process LRU caches for bounds and ILP formulation construction.

Corpora routinely contain structurally identical loops (the synthetic
generator reuses small shapes; real compiler corpora repeat idioms), and
the batch runner re-derives ``T_lb`` once for the report and once inside
the driver.  Both lookups are memoized here, keyed on content digests —
``(DDG digest, machine digest)`` for bounds and
``(DDG digest, machine digest, T, options)`` for built formulations — so
two different object instances with identical content share one entry.

Caches are plain per-process globals: each worker of a
:class:`~concurrent.futures.ProcessPoolExecutor` warms its own copy, and
nothing here ever crosses a pickle boundary.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from typing import Generic, Optional, Tuple, TypeVar

from repro.core.bounds import LowerBounds, lower_bounds
from repro.core.formulation import Formulation, FormulationOptions
from repro.core.warmstart import WarmStart, compute_warmstart
from repro.ddg.builders import serialize_ddg
from repro.ddg.graph import Ddg
from repro.machine import Machine

K = TypeVar("K")
V = TypeVar("V")


class LruCache(Generic[K, V]):
    """A small, None-safe LRU map (``None`` is never a cached value)."""

    def __init__(self, maxsize: int = 256) -> None:
        if maxsize < 1:
            raise ValueError(f"maxsize must be >= 1, got {maxsize}")
        self.maxsize = maxsize
        self.hits = 0
        self.misses = 0
        self._data: "OrderedDict[K, V]" = OrderedDict()

    def __len__(self) -> int:
        return len(self._data)

    def get(self, key: K) -> Optional[V]:
        try:
            value = self._data[key]
        except KeyError:
            self.misses += 1
            return None
        self._data.move_to_end(key)
        self.hits += 1
        return value

    def put(self, key: K, value: V) -> None:
        self._data[key] = value
        self._data.move_to_end(key)
        while len(self._data) > self.maxsize:
            self._data.popitem(last=False)

    def pop(self, key: K) -> Optional[V]:
        """Remove and return ``key``'s value (None if absent); no counters."""
        return self._data.pop(key, None)

    def clear(self) -> None:
        self._data.clear()
        self.hits = 0
        self.misses = 0


def ddg_digest(ddg: Ddg) -> str:
    """Content digest of a DDG (its canonical text serialization)."""
    return hashlib.sha256(serialize_ddg(ddg).encode("utf-8")).hexdigest()


def machine_digest(machine: Machine) -> str:
    """Content digest of a machine description.

    Built from every field that affects scheduling — FU types (count,
    cost, reservation rows) and op classes (FU binding, latency, table
    override) — and *only* those: the display ``name`` is deliberately
    excluded, so two machines differing only in what they are called
    share cache entries.
    """
    parts = []
    for name in sorted(machine.fu_types):
        fu = machine.fu_types[name]
        parts.append(f"fu {name} {fu.count} {fu.cost} {fu.table!r}")
    for name in sorted(machine.op_classes):
        cls = machine.op_classes[name]
        parts.append(f"class {name} {cls.fu_type} {cls.latency} {cls.table!r}")
    blob = "\n".join(parts).encode("utf-8")
    return hashlib.sha256(blob).hexdigest()


_BOUNDS_CACHE: LruCache[Tuple[str, str], LowerBounds] = LruCache(1024)
_FORMULATION_CACHE: LruCache[tuple, Formulation] = LruCache(64)
_WARMSTART_CACHE: LruCache[Tuple[str, str, int], WarmStart] = LruCache(512)


def cached_lower_bounds(ddg: Ddg, machine: Machine) -> LowerBounds:
    """Memoized :func:`repro.core.bounds.lower_bounds`."""
    key = (ddg_digest(ddg), machine_digest(machine))
    bounds = _BOUNDS_CACHE.get(key)
    if bounds is None:
        bounds = lower_bounds(ddg, machine)
        _BOUNDS_CACHE.put(key, bounds)
    return bounds


def _options_key(options: FormulationOptions) -> tuple:
    # Deliberately backend-free: a cached formulation is a *model*, and
    # every backend (HiGHS, branch-and-bound, SAT) solves that same
    # model — portfolio cells racing one (loop, T) share a single
    # cached build, and the SAT backend memoizes its CNF on the
    # formulation object itself (`_sat_encoding`), so the lowering
    # piggybacks on this cache too.
    return (
        options.mapping,
        options.objective,
        options.k_max,
        options.symmetry_breaking,
        options.enforce_modulo_constraint,
        options.presolve,
        tuple(sorted(options.fu_costs.items())),
    )


def cached_formulation(
    ddg: Ddg,
    machine: Machine,
    t_period: int,
    options: Optional[FormulationOptions] = None,
) -> Formulation:
    """Memoized, pre-built :class:`Formulation` for ``(ddg, machine, T)``.

    Safe to reuse: ``build()`` is idempotent and solving never mutates
    the model.  Signature matches the ``formulation_builder`` hook of
    :func:`repro.core.scheduler.attempt_period`.
    """
    options = options or FormulationOptions()
    key = (
        ddg_digest(ddg),
        machine_digest(machine),
        t_period,
        _options_key(options),
    )
    formulation = _FORMULATION_CACHE.get(key)
    if formulation is None:
        # Cold builds still draw on the loop's SweepContext: the shared
        # T-independent analysis feeds the build (byte-identical model,
        # less recomputation) and repeated periods of one loop reuse it.
        from repro.core.incremental import context_for

        context = context_for(
            ddg, machine, ddg_key=key[0], machine_key=key[1]
        )
        formulation = Formulation(
            ddg, machine, t_period, options, context=context
        )
        formulation.build()
        _FORMULATION_CACHE.put(key, formulation)
    return formulation


def cached_warmstart(ddg: Ddg, machine: Machine, max_extra: int) -> WarmStart:
    """Memoized :func:`repro.core.warmstart.compute_warmstart`.

    A :class:`WarmStart` is always returned (it records failure as
    ``ii=None``), so every outcome — including "heuristic found
    nothing" — is cacheable.  Signature matches the
    ``warmstart_provider`` hook of :func:`repro.core.scheduler.run_sweep`.
    """
    key = (ddg_digest(ddg), machine_digest(machine), max_extra)
    ws = _WARMSTART_CACHE.get(key)
    if ws is None:
        ws = compute_warmstart(ddg, machine, max_extra=max_extra)
        _WARMSTART_CACHE.put(key, ws)
    return ws


def cache_stats() -> dict:
    """Hit/miss counters for all caches (diagnostics / tests).

    The ``sat_encode`` block mirrors the SAT backend's per-formulation
    CNF memo (an encode is a miss, a reuse is a hit), reported in the
    same hits/misses shape as the LRUs so batch aggregation sums it
    uniformly.
    """
    from repro.core.incremental import incremental_stats
    from repro.sat.backend import encode_stats

    sat = encode_stats()
    return {
        "bounds": {
            "hits": _BOUNDS_CACHE.hits,
            "misses": _BOUNDS_CACHE.misses,
            "size": len(_BOUNDS_CACHE),
        },
        "formulation": {
            "hits": _FORMULATION_CACHE.hits,
            "misses": _FORMULATION_CACHE.misses,
            "size": len(_FORMULATION_CACHE),
        },
        "warmstart": {
            "hits": _WARMSTART_CACHE.hits,
            "misses": _WARMSTART_CACHE.misses,
            "size": len(_WARMSTART_CACHE),
        },
        "sat_encode": {
            "hits": sat["memo_hits"],
            "misses": sat["encodes"],
        },
        "incremental": incremental_stats(),
    }


def clear_caches() -> None:
    """Drop all caches and sweep contexts (tests / long-run memory)."""
    from repro.core.incremental import clear_contexts
    from repro.sat.backend import reset_encode_stats

    _BOUNDS_CACHE.clear()
    _FORMULATION_CACHE.clear()
    _WARMSTART_CACHE.clear()
    reset_encode_stats()
    clear_contexts()
