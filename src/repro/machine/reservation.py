"""Reservation tables (Kogge [15]) and their modulo arithmetic.

A reservation table is an ``s x d`` 0-1 matrix: entry ``(stage, cycle)``
is 1 when an operation issued at cycle 0 occupies ``stage`` at ``cycle``.
Software pipelining wraps the table modulo the initiation interval ``T``;
the paper's **modulo scheduling constraint** (§3, refs [5, 11, 19]) says a
single operation must never occupy one stage at two cycles that are equal
mod ``T`` — otherwise no fixed-FU schedule exists at that ``T`` at all.

The class also implements the *extension to T columns* technique of
Govindarajan–Altman–Gao [8] (zero-padding when ``d < T``) used by the
formulation and the Figure 2 resource-usage displays.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Set, Tuple

import numpy as np

from repro.machine.errors import MachineError


class ReservationTable:
    """An immutable stages-by-cycles usage matrix."""

    def __init__(self, rows: Sequence[Sequence[int]]) -> None:
        matrix = np.asarray(rows, dtype=int)
        if matrix.ndim != 2 or matrix.size == 0:
            raise MachineError("reservation table must be a non-empty 2-D matrix")
        if not np.isin(matrix, (0, 1)).all():
            raise MachineError("reservation table entries must be 0 or 1")
        if not matrix.any():
            raise MachineError("reservation table must use at least one stage")
        matrix.setflags(write=False)
        self._matrix = matrix

    # -- basic shape -----------------------------------------------------------
    @property
    def matrix(self) -> np.ndarray:
        return self._matrix

    @property
    def num_stages(self) -> int:
        return int(self._matrix.shape[0])

    @property
    def length(self) -> int:
        """Number of cycles the table spans (columns)."""
        return int(self._matrix.shape[1])

    def uses(self, stage: int, cycle: int) -> bool:
        """Whether the operation occupies ``stage`` at ``cycle`` (0-based)."""
        if 0 <= cycle < self.length:
            return bool(self._matrix[stage, cycle])
        return False

    def stage_cycles(self, stage: int) -> List[int]:
        """Cycles at which ``stage`` is occupied."""
        return [int(c) for c in np.where(self._matrix[stage])[0]]

    def stage_usage_counts(self) -> List[int]:
        """Total uses of each stage by one operation."""
        return [int(n) for n in self._matrix.sum(axis=1)]

    @property
    def max_stage_usage(self) -> int:
        """Uses of the busiest stage — drives the resource bound T_res."""
        return int(max(self.stage_usage_counts()))

    # -- hazard structure ----------------------------------------------------------
    def forbidden_latencies(self) -> Set[int]:
        """Issue distances that collide on the *same* physical unit.

        Classic pipeline-hazard analysis: latency ``l > 0`` is forbidden
        when some stage is used at two cycles ``l`` apart.  A clean
        pipeline has no forbidden latencies; a non-pipelined unit of
        execution time ``d`` forbids ``1..d-1``.
        """
        forbidden: Set[int] = set()
        for stage in range(self.num_stages):
            cycles = self.stage_cycles(stage)
            for a_idx, a_cycle in enumerate(cycles):
                for b_cycle in cycles[a_idx + 1:]:
                    forbidden.add(b_cycle - a_cycle)
        return forbidden

    @property
    def is_clean(self) -> bool:
        """True when a new operation may be issued every cycle."""
        return not self.forbidden_latencies()

    def modulo_feasible(self, t_period: int) -> bool:
        """Check the paper's modulo scheduling constraint for period ``T``.

        Feasible iff no stage is used by one operation at two cycles that
        are congruent mod ``T`` — equivalently no forbidden latency is a
        multiple of ``T``.
        """
        if t_period <= 0:
            raise MachineError(f"period must be positive, got {t_period}")
        return not any(lat % t_period == 0 for lat in self.forbidden_latencies())

    # -- modulo wrapping -------------------------------------------------------------
    def extend_to(self, t_period: int) -> "ReservationTable":
        """Zero-pad columns up to ``T`` (technique of [8]); no-op if d >= T."""
        if t_period <= self.length:
            return self
        pad = np.zeros((self.num_stages, t_period - self.length), dtype=int)
        return ReservationTable(np.hstack([self._matrix, pad]))

    def modulo_table(self, t_period: int) -> np.ndarray:
        """Wrap the table mod ``T``: counts of uses per (stage, slot).

        This is the per-operation modulo reservation table shown in the
        paper's Figure 2(b).  Under a modulo-feasible ``T`` all entries
        are 0/1.
        """
        if t_period <= 0:
            raise MachineError(f"period must be positive, got {t_period}")
        wrapped = np.zeros((self.num_stages, t_period), dtype=int)
        for stage in range(self.num_stages):
            for cycle in self.stage_cycles(stage):
                wrapped[stage, cycle % t_period] += 1
        return wrapped

    def usage_offsets(self) -> List[Tuple[int, int]]:
        """All (stage, cycle) pairs the operation occupies."""
        stages, cycles = np.nonzero(self._matrix)
        return [(int(s), int(c)) for s, c in zip(stages, cycles)]

    # -- constructors -----------------------------------------------------------------
    @classmethod
    def clean(cls, depth: int) -> "ReservationTable":
        """A hazard-free pipeline of ``depth`` stages (identity matrix)."""
        if depth < 1:
            raise MachineError("pipeline depth must be >= 1")
        return cls(np.eye(depth, dtype=int))

    @classmethod
    def non_pipelined(cls, busy: int) -> "ReservationTable":
        """A single-stage unit busy for ``busy`` consecutive cycles."""
        if busy < 1:
            raise MachineError("busy time must be >= 1")
        return cls(np.ones((1, busy), dtype=int))

    @classmethod
    def from_rows(cls, *rows: Iterable[int]) -> "ReservationTable":
        """Build from explicit stage rows, e.g. ``from_rows([1,0],[0,1])``."""
        return cls([list(r) for r in rows])

    # -- niceties -------------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ReservationTable):
            return NotImplemented
        return (
            self._matrix.shape == other._matrix.shape
            and bool((self._matrix == other._matrix).all())
        )

    def __hash__(self) -> int:
        return hash((self._matrix.shape, self._matrix.tobytes()))

    def render(self, title: str = "") -> str:
        """ASCII rendering in the paper's Figure 2 style."""
        lines = []
        if title:
            lines.append(title)
        header = "         " + " ".join(f"{c:>2}" for c in range(self.length))
        lines.append(header)
        for stage in range(self.num_stages):
            cells = " ".join(f"{v:>2}" for v in self._matrix[stage])
            lines.append(f"Stage {stage + 1:>2} {cells}")
        return "\n".join(lines)

    def __repr__(self) -> str:
        rows = ";".join("".join(str(v) for v in row) for row in self._matrix)
        return f"ReservationTable({rows})"
