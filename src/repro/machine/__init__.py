"""Machine-description substrate.

Models the paper's target architectures: function units (FUs) described by
**reservation tables** (Kogge [15]) — stages x cycles 0-1 matrices — with a
count of identical physical copies per FU type, and instruction classes
mapping operations to FU types with a latency.

Covers the whole spectrum the paper discusses:

* *clean pipelines* — every stage used exactly once, a new operation can
  enter every cycle;
* *non-pipelined units* — one stage busy for the whole execution time;
* *unclean pipelines* — arbitrary reservation tables with structural
  hazards (a stage used more than once, or several stages at once);
* *multi-function pipelines* (paper §7 extension) — several instruction
  classes sharing one FU type with per-class reservation tables.
"""

from repro.machine.errors import MachineError
from repro.machine.machine import FuType, Machine, OpClass
from repro.machine.reservation import ReservationTable

__all__ = ["FuType", "Machine", "MachineError", "OpClass", "ReservationTable"]
