"""Delay insertion: making a reservation table compatible with a period.

The paper assumes the modulo scheduling constraint holds and declares the
other case "beyond the scope of this paper" (§3).  The classical fix
(Patel & Davidson, 1976) inserts delay stages into the pipeline's data
path so that stage usages shift to cycles that are distinct mod ``T``.

Model: the table's columns are shifted by a non-decreasing vector
``s_0 <= s_1 <= ...`` (a delay inserted before column ``j`` also delays
every later column, preserving flow order).  We search the minimum total
shift making every stage's used cycles pairwise distinct mod ``T``,
returning the delayed table and the latency penalty (the shift of the
final column, which postpones the result).

Used by the scheduler extension in experiment E16: periods the paper's
formulation must skip become admissible at the price of extra latency.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.machine.errors import MachineError
from repro.machine.reservation import ReservationTable


@dataclass(frozen=True)
class DelayedTable:
    """Result of :func:`insert_delays`."""

    table: ReservationTable
    column_shifts: Tuple[int, ...]
    #: Cycles by which the operation's completion (result) is postponed.
    latency_penalty: int

    @property
    def total_delay(self) -> int:
        return sum(self.column_shifts)


def _shifted(table: ReservationTable, shifts: List[int]) -> ReservationTable:
    """Rebuild the table with column ``j`` moved to ``j + shifts[j]``."""
    new_length = table.length - 1 + shifts[-1] + 1 if shifts else table.length
    matrix = np.zeros((table.num_stages, new_length), dtype=int)
    for stage, cycle in table.usage_offsets():
        matrix[stage, cycle + shifts[cycle]] = 1
    return ReservationTable(matrix)


def _stage_conflicts(table: ReservationTable, shifts: List[int],
                     t_period: int, upto_column: int) -> bool:
    """Check mod-T collisions among already-shifted columns."""
    for stage in range(table.num_stages):
        seen = set()
        for cycle in table.stage_cycles(stage):
            if cycle > upto_column:
                continue
            slot = (cycle + shifts[cycle]) % t_period
            if slot in seen:
                return True
            seen.add(slot)
    return False


def insert_delays(
    table: ReservationTable,
    t_period: int,
    max_total_delay: int = 16,
) -> Optional[DelayedTable]:
    """Minimum-total-delay column shifts making ``table`` T-compatible.

    Returns ``None`` when no shift assignment within the budget works
    (e.g. a stage with more uses than ``T`` slots can never fit).
    Already-compatible tables return zero shifts.
    """
    if t_period < 1:
        raise MachineError(f"period must be >= 1, got {t_period}")
    if table.max_stage_usage > t_period:
        return None  # pigeonhole: some stage can never fit mod T
    columns = table.length
    if table.modulo_feasible(t_period):
        return DelayedTable(
            table=table,
            column_shifts=tuple([0] * columns),
            latency_penalty=0,
        )

    # Iterative deepening on the total delay keeps the first solution
    # minimal; per column the extra delay is bounded by T - 1 (a full
    # period of slip never helps mod T beyond T - 1).
    for budget in range(1, max_total_delay + 1):
        shifts = [0] * columns
        if _search(table, t_period, shifts, column=1, budget=budget):
            return DelayedTable(
                table=_shifted(table, shifts),
                column_shifts=tuple(shifts),
                latency_penalty=shifts[-1],
            )
    return None


def _search(table: ReservationTable, t_period: int, shifts: List[int],
            column: int, budget: int) -> bool:
    if column == table.length:
        return not _stage_conflicts(table, shifts, t_period,
                                    table.length - 1)
    base = shifts[column - 1]
    for extra in range(0, min(budget, t_period - 1) + 1):
        shifts[column] = base + extra
        if _stage_conflicts(table, shifts, t_period, column):
            continue
        if _search(table, t_period, shifts, column + 1, budget - extra):
            return True
    shifts[column] = base
    return False


def delayed_machine(machine, t_period: int, max_total_delay: int = 16):
    """A machine variant whose tables are all T-compatible, or ``None``.

    Every op class whose table violates the modulo constraint at
    ``t_period`` is given a delayed table; its latency grows by the
    delay's penalty (the result emerges later).  FU-type default tables
    are delayed likewise.  Returns ``None`` if any table is beyond
    repair within the budget.
    """
    from repro.machine.machine import Machine

    patched = Machine(f"{machine.name}@T={t_period}-delayed")
    fu_delays = {}
    for fu in machine.fu_types.values():
        outcome = insert_delays(fu.table, t_period, max_total_delay)
        if outcome is None:
            return None
        fu_delays[fu.name] = outcome
        patched.add_fu_type(fu.name, fu.count, outcome.table, cost=fu.cost)
    for cls in machine.op_classes.values():
        if cls.table is not None:
            outcome = insert_delays(cls.table, t_period, max_total_delay)
            if outcome is None:
                return None
            patched.add_op_class(
                cls.name, cls.fu_type,
                cls.latency + outcome.latency_penalty, outcome.table,
            )
        else:
            penalty = fu_delays[cls.fu_type].latency_penalty
            patched.add_op_class(
                cls.name, cls.fu_type, cls.latency + penalty, None
            )
    return patched
