"""Preset machine models used by the experiments.

``motivating_machine`` reconstructs the paper's §2 example architecture
(one clean Load/Store pipeline, two copies of an unclean 3-stage FP
pipeline whose third stage is busy two consecutive cycles — resource rows
``100 / 010 / 011`` as quoted in Figure 2).  ``powerpc604`` follows the
PowerPC-604 technical summary [14] the paper's evaluation used: two
single-cycle integer units, one complex integer unit (pipelined multiply,
blocking divide), one FPU (pipelined adds/multiplies, blocking divide),
one load/store unit and one branch unit.
"""

from __future__ import annotations

from repro.machine.machine import Machine
from repro.machine.reservation import ReservationTable


def motivating_machine(fp_units: int = 2, mem_units: int = 1) -> Machine:
    """The §2 motivating-example machine.

    The FP pipeline has a structural hazard: stage 3 is occupied at cycles
    1 and 2 (forbidden latency 1), so consecutive-cycle issue to one FP
    unit is impossible even though the dependence latency is only 2.
    """
    m = Machine("motivating")
    fp_table = ReservationTable.from_rows([1, 0, 0], [0, 1, 0], [0, 1, 1])
    m.add_fu_type("FP", count=fp_units, table=fp_table)
    m.add_fu_type("MEM", count=mem_units, table=ReservationTable.clean(3))
    m.add_op_class("fadd", "FP", latency=2)
    m.add_op_class("fmul", "FP", latency=2)
    m.add_op_class("load", "MEM", latency=3)
    m.add_op_class("store", "MEM", latency=1)
    return m


def clean_machine(int_units: int = 2, fp_units: int = 1, mem_units: int = 1) -> Machine:
    """A hazard-free VLIW-style machine (the regime of the earlier work [9])."""
    m = Machine("clean")
    m.add_fu_type("INT", count=int_units, table=ReservationTable.clean(1))
    m.add_fu_type("FP", count=fp_units, table=ReservationTable.clean(3))
    m.add_fu_type("MEM", count=mem_units, table=ReservationTable.clean(2))
    m.add_op_class("add", "INT", latency=1)
    m.add_op_class("mul", "FP", latency=3)
    m.add_op_class("fadd", "FP", latency=3)
    m.add_op_class("fmul", "FP", latency=3)
    m.add_op_class("load", "MEM", latency=2)
    m.add_op_class("store", "MEM", latency=1)
    return m


def nonpipelined_machine(div_units: int = 2, div_time: int = 4) -> Machine:
    """The §1 illustration: several divide ops competing for non-pipelined
    divide units (mapping decides which of X / Y runs each divide)."""
    m = Machine("nonpipelined")
    m.add_fu_type("DIV", count=div_units,
                  table=ReservationTable.non_pipelined(div_time))
    m.add_fu_type("INT", count=1, table=ReservationTable.clean(1))
    m.add_op_class("div", "DIV", latency=div_time)
    m.add_op_class("add", "INT", latency=1)
    return m


def powerpc604() -> Machine:
    """PowerPC-604-like model (latencies per the 604 technical summary [14]).

    Multi-function pipelines use per-class reservation tables: ``div`` and
    ``fdiv`` block stage 0 of their unit for the full execution time,
    while the pipelined classes flow through clean stages.
    """
    m = Machine("powerpc604")
    m.add_fu_type("SCIU", count=2, table=ReservationTable.clean(1))
    m.add_fu_type("MCIU", count=1, table=ReservationTable.clean(4))
    m.add_fu_type("FPU", count=1, table=ReservationTable.clean(3))
    m.add_fu_type("LSU", count=1, table=ReservationTable.clean(2))
    m.add_fu_type("BPU", count=1, table=ReservationTable.clean(1))

    for cls in ("add", "sub", "logical", "shift", "cmp"):
        m.add_op_class(cls, "SCIU", latency=1)
    m.add_op_class("mul", "MCIU", latency=4)
    m.add_op_class("div", "MCIU", latency=20,
                   table=ReservationTable.non_pipelined(20))
    m.add_op_class("fadd", "FPU", latency=3)
    m.add_op_class("fmul", "FPU", latency=3)
    m.add_op_class("fdiv", "FPU", latency=18,
                   table=ReservationTable.non_pipelined(18))
    m.add_op_class("load", "LSU", latency=2)
    m.add_op_class("store", "LSU", latency=1,
                   table=ReservationTable.from_rows([1]))
    m.add_op_class("branch", "BPU", latency=1)
    return m


def cydra5() -> Machine:
    """Cydra-5-like numeric processor (Dehnert–Towle [4]).

    Characteristic regime: long main-memory latency served by two ports,
    deep clean FP pipelines, and a blocking divide/sqrt unit — the
    architecture whose compiler work the paper credits for handling
    complex usage patterns heuristically.
    """
    m = Machine("cydra5")
    m.add_fu_type("ADDR", count=2, table=ReservationTable.clean(1))
    m.add_fu_type("FPALU", count=1, table=ReservationTable.clean(5))
    m.add_fu_type("DIV", count=1, table=ReservationTable.non_pipelined(21))
    m.add_fu_type("MEM", count=2, table=ReservationTable.clean(2))
    m.add_op_class("add", "ADDR", latency=1)
    m.add_op_class("cmp", "ADDR", latency=1)
    m.add_op_class("fadd", "FPALU", latency=5)
    m.add_op_class("fmul", "FPALU", latency=5)
    m.add_op_class("fdiv", "DIV", latency=21)
    m.add_op_class("load", "MEM", latency=17)
    m.add_op_class("store", "MEM", latency=1,
                   table=ReservationTable.from_rows([1]))
    return m


def coreblocks() -> Machine:
    """RISC-V-style integer core with hazardous long-op units.

    Reservation shapes follow the FU implementations in the coreblocks
    out-of-order RISC-V core (kuznia-rdzeni/coreblocks): combinational
    ALU / branch units, a pipelined multiplier whose recombination
    stage stays busy two consecutive cycles (shared result path —
    forbidden latency 1), an iterative long divider that blocks its
    datapath for the full division, and an LSU whose stores occupy the
    address stage two cycles (request + response handshake).
    """
    m = Machine("coreblocks")
    m.add_fu_type("ALU", count=2, table=ReservationTable.clean(1))
    m.add_fu_type("MUL", count=1, table=ReservationTable.from_rows(
        [1, 0, 0, 0], [0, 1, 0, 0], [0, 0, 1, 1]
    ))
    m.add_fu_type("DIV", count=1,
                  table=ReservationTable.non_pipelined(10))
    m.add_fu_type("LSU", count=1, table=ReservationTable.clean(2))
    m.add_fu_type("BR", count=1, table=ReservationTable.clean(1))
    for cls in ("add", "logical", "shift", "cmp"):
        m.add_op_class(cls, "ALU", latency=1)
    m.add_op_class("mul", "MUL", latency=4)
    m.add_op_class("div", "DIV", latency=10)
    m.add_op_class("load", "LSU", latency=2)
    m.add_op_class("store", "LSU", latency=1,
                   table=ReservationTable.from_rows([1, 1]))
    m.add_op_class("branch", "BR", latency=1)
    return m


def deep_unclean() -> Machine:
    """Deep unclean FP pipelines with shared stages (stress preset).

    The FPU is a 6-cycle pipeline whose normalize stage is revisited
    two cycles later (forbidden latency 2), shared by ``fadd``/``fmul``;
    ``fdiv`` runs on the *same* unit but blocks it end-to-end via a
    per-class table (multi-function pipeline, paper §7).  The single
    memory port is banked: every access holds the address stage two
    consecutive cycles, so back-to-back memory issue is impossible.
    """
    m = Machine("deep-unclean")
    m.add_fu_type("FPU", count=2, table=ReservationTable.from_rows(
        [1, 0, 0, 0, 0, 0],
        [0, 1, 0, 0, 0, 0],
        [0, 0, 1, 0, 1, 0],
        [0, 0, 0, 1, 0, 0],
        [0, 0, 0, 0, 0, 1],
    ))
    m.add_fu_type("MEM", count=1, table=ReservationTable.from_rows(
        [1, 1, 0], [0, 0, 1]
    ))
    m.add_fu_type("INT", count=1, table=ReservationTable.clean(1))
    m.add_op_class("fadd", "FPU", latency=4)
    m.add_op_class("fmul", "FPU", latency=5)
    m.add_op_class("fdiv", "FPU", latency=12,
                   table=ReservationTable.non_pipelined(12))
    m.add_op_class("load", "MEM", latency=4)
    m.add_op_class("store", "MEM", latency=1,
                   table=ReservationTable.from_rows([1, 1]))
    m.add_op_class("add", "INT", latency=1)
    m.add_op_class("cmp", "INT", latency=1)
    return m


def unclean_demo_machine() -> Machine:
    """A small machine whose only FU is an unclean pipeline; handy in tests."""
    m = Machine("unclean-demo")
    table = ReservationTable.from_rows([1, 0, 1], [0, 1, 0])
    m.add_fu_type("X", count=1, table=table)
    m.add_op_class("op", "X", latency=3)
    return m


#: Registry used by the CLI (`--machine NAME`).
PRESETS = {
    "motivating": motivating_machine,
    "clean": clean_machine,
    "nonpipelined": nonpipelined_machine,
    "powerpc604": powerpc604,
    "cydra5": cydra5,
    "coreblocks": coreblocks,
    "deep-unclean": deep_unclean,
    "unclean-demo": unclean_demo_machine,
}


def by_name(name: str) -> Machine:
    """Instantiate a preset machine by registry name."""
    try:
        factory = PRESETS[name]
    except KeyError:
        known = ", ".join(sorted(PRESETS))
        raise KeyError(f"unknown machine preset {name!r}; known: {known}")
    return factory()
