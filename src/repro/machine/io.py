"""Machine descriptions as text files.

Lets users define architectures without writing Python, e.g.::

    machine dsp
    fu MAC count=2 cost=2.0
      row 1 0 0 0
      row 0 1 1 0
      row 0 0 0 1
    fu AGU count=2 clean=2
    class mac  MAC latency=4
    class div  MAC latency=6 nonpipelined=6
    class load AGU latency=2
    class store AGU latency=1 row=1

FU tables come either from explicit ``row`` lines (stages in order),
``clean=D`` (hazard-free D-deep pipeline) or ``nonpipelined=D``.
Classes may override their FU's table the same way (inline ``row=...``
uses comma-free single-row shorthand: ``row=101`` means ``[1,0,1]``).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.machine.errors import MachineError
from repro.machine.machine import Machine
from repro.machine.reservation import ReservationTable


def parse_machine(text: str) -> Machine:
    """Parse the machine text format."""
    machine: Optional[Machine] = None
    pending_fu: Optional[Dict] = None
    pending_rows: List[List[int]] = []

    def flush_fu() -> None:
        nonlocal pending_fu, pending_rows
        if pending_fu is None:
            return
        if pending_rows:
            table = ReservationTable(pending_rows)
        elif "table" in pending_fu:
            table = pending_fu["table"]
        else:
            raise MachineError(
                f"FU {pending_fu['name']!r} has no reservation table "
                "(add 'row' lines, clean=D or nonpipelined=D)"
            )
        machine.add_fu_type(
            pending_fu["name"], pending_fu["count"], table,
            cost=pending_fu["cost"],
        )
        pending_fu = None
        pending_rows = []

    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        tokens = line.split()
        directive = tokens[0]
        try:
            if directive == "machine":
                if machine is not None:
                    raise MachineError("duplicate 'machine' directive")
                machine = Machine(tokens[1])
            elif directive == "fu":
                _require(machine, lineno)
                flush_fu()
                options = _options(tokens[2:])
                pending_fu = {
                    "name": tokens[1],
                    "count": int(options.pop("count", "1")),
                    "cost": float(options.pop("cost", "1.0")),
                }
                table = _table_from_options(options)
                if table is not None:
                    pending_fu["table"] = table
                _reject_leftovers(options, lineno)
            elif directive == "row":
                if pending_fu is None:
                    raise MachineError("'row' outside an 'fu' block")
                pending_rows.append([int(v) for v in tokens[1:]])
            elif directive == "class":
                _require(machine, lineno)
                flush_fu()
                options = _options(tokens[3:])
                latency = int(options.pop("latency"))
                table = _table_from_options(options)
                _reject_leftovers(options, lineno)
                machine.add_op_class(tokens[1], tokens[2], latency, table)
            else:
                raise MachineError(f"unknown directive {directive!r}")
        except (IndexError, ValueError, KeyError) as exc:
            raise MachineError(f"line {lineno}: {exc!r}") from exc
        except MachineError as exc:
            if str(exc).startswith("line "):
                raise
            raise MachineError(f"line {lineno}: {exc}") from exc
    if machine is None:
        raise MachineError("missing 'machine' directive")
    flush_fu()
    machine.validate()
    return machine


def _require(machine: Optional[Machine], lineno: int) -> None:
    if machine is None:
        raise MachineError(
            f"line {lineno}: 'machine NAME' must come first"
        )


def _options(tokens: List[str]) -> Dict[str, str]:
    options = {}
    for token in tokens:
        if "=" not in token:
            raise MachineError(f"expected key=value, got {token!r}")
        key, value = token.split("=", 1)
        options[key] = value
    return options


def _table_from_options(options: Dict[str, str]) -> Optional[ReservationTable]:
    if "clean" in options:
        return ReservationTable.clean(int(options.pop("clean")))
    if "nonpipelined" in options:
        return ReservationTable.non_pipelined(
            int(options.pop("nonpipelined"))
        )
    if "row" in options:
        digits = options.pop("row")
        return ReservationTable([[int(d) for d in digits]])
    return None


def _reject_leftovers(options: Dict[str, str], lineno: int) -> None:
    if options:
        raise MachineError(
            f"line {lineno}: unknown option(s) {sorted(options)}"
        )


def serialize_machine(machine: Machine) -> str:
    """Render a machine back into the text format (round-trips)."""
    lines = [f"machine {machine.name}"]
    for fu in machine.fu_types.values():
        lines.append(f"fu {fu.name} count={fu.count} cost={fu.cost:g}")
        for row in fu.table.matrix:
            lines.append("  row " + " ".join(str(v) for v in row))
    for cls in machine.op_classes.values():
        line = f"class {cls.name} {cls.fu_type} latency={cls.latency}"
        lines.append(line)
        if cls.table is not None:
            # Per-class tables are emitted as a dedicated FU-style note;
            # single-row tables use the inline shorthand.
            if cls.table.num_stages == 1:
                digits = "".join(str(v) for v in cls.table.matrix[0])
                lines[-1] += f" row={digits}"
            else:
                raise MachineError(
                    f"class {cls.name!r} has a multi-stage override "
                    "table, which the text format cannot express"
                )
    return "\n".join(lines) + "\n"


def load_machine(path) -> Machine:
    """Read a machine description file."""
    with open(path, encoding="utf-8") as handle:
        return parse_machine(handle.read())
