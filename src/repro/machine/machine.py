"""Machine descriptions: FU types, counts, and instruction classes."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.machine.errors import MachineError
from repro.machine.reservation import ReservationTable


@dataclass(frozen=True)
class FuType:
    """A function-unit type: ``count`` identical physical copies.

    ``table`` is the default reservation table for operations executing on
    this type; individual :class:`OpClass` entries may override it
    (multi-function pipelines, paper §7).  ``cost`` weights the FU in the
    ``min sum C_r * R_r`` objective (paper Eq. 5 context).
    """

    name: str
    count: int
    table: ReservationTable
    cost: float = 1.0

    def __post_init__(self) -> None:
        if self.count < 1:
            raise MachineError(f"FU type {self.name!r} needs count >= 1")


@dataclass(frozen=True)
class OpClass:
    """An instruction class bound to an FU type.

    ``latency`` is the dependence latency ``d_i`` (cycles until the result
    may be consumed); the reservation table describes *occupancy*, which
    may be shorter or longer than the latency.
    """

    name: str
    fu_type: str
    latency: int
    table: Optional[ReservationTable] = None

    def __post_init__(self) -> None:
        if self.latency < 1:
            raise MachineError(f"op class {self.name!r} needs latency >= 1")


@dataclass
class Machine:
    """A complete target description.

    Example::

        m = Machine("toy")
        m.add_fu_type("FP", count=1,
                      table=ReservationTable.from_rows([1,0,0],[0,1,0],[0,1,1]))
        m.add_fu_type("MEM", count=1, table=ReservationTable.clean(3))
        m.add_op_class("fadd", "FP", latency=2)
        m.add_op_class("load", "MEM", latency=3)
    """

    name: str = "machine"
    fu_types: Dict[str, FuType] = field(default_factory=dict)
    op_classes: Dict[str, OpClass] = field(default_factory=dict)

    # -- construction ------------------------------------------------------------
    def add_fu_type(
        self,
        name: str,
        count: int,
        table: ReservationTable,
        cost: float = 1.0,
    ) -> FuType:
        if name in self.fu_types:
            raise MachineError(f"duplicate FU type {name!r}")
        fu = FuType(name, count, table, cost)
        self.fu_types[name] = fu
        return fu

    def add_op_class(
        self,
        name: str,
        fu_type: str,
        latency: int,
        table: Optional[ReservationTable] = None,
    ) -> OpClass:
        if name in self.op_classes:
            raise MachineError(f"duplicate op class {name!r}")
        if fu_type not in self.fu_types:
            raise MachineError(
                f"op class {name!r} references unknown FU type {fu_type!r}"
            )
        cls = OpClass(name, fu_type, latency, table)
        self.op_classes[name] = cls
        return cls

    # -- lookups --------------------------------------------------------------------
    def op_class(self, name: str) -> OpClass:
        try:
            return self.op_classes[name]
        except KeyError:
            raise MachineError(f"unknown op class {name!r}") from None

    def fu_type(self, name: str) -> FuType:
        try:
            return self.fu_types[name]
        except KeyError:
            raise MachineError(f"unknown FU type {name!r}") from None

    def fu_type_of(self, op_class: str) -> FuType:
        return self.fu_type(self.op_class(op_class).fu_type)

    def latency(self, op_class: str) -> int:
        return self.op_class(op_class).latency

    def reservation_for(self, op_class: str) -> ReservationTable:
        """Reservation table an op of ``op_class`` stamps on its FU."""
        cls = self.op_class(op_class)
        if cls.table is not None:
            return cls.table
        return self.fu_type(cls.fu_type).table

    def classes_on(self, fu_type: str) -> List[OpClass]:
        return [c for c in self.op_classes.values() if c.fu_type == fu_type]

    def stage_count(self, fu_type: str) -> int:
        """Stages of an FU type = max over the tables stamped on it."""
        tables = [self.fu_type(fu_type).table] + [
            c.table for c in self.classes_on(fu_type) if c.table is not None
        ]
        return max(t.num_stages for t in tables)

    @property
    def is_clean(self) -> bool:
        """True when every op class runs on a hazard-free pipeline."""
        return all(
            self.reservation_for(c).is_clean for c in self.op_classes
        )

    # -- validation ------------------------------------------------------------------
    def validate(self) -> None:
        """Raise :class:`MachineError` on inconsistencies."""
        if not self.fu_types:
            raise MachineError("machine has no FU types")
        if not self.op_classes:
            raise MachineError("machine has no op classes")
        for cls in self.op_classes.values():
            table = self.reservation_for(cls.name)
            fu = self.fu_type(cls.fu_type)
            if cls.table is not None and cls.table.num_stages > fu.table.num_stages:
                # Per-class tables may add stages; allowed, but the FU's
                # stage space is the union - nothing to check beyond shape.
                pass
            if table.length < 1:  # pragma: no cover - table guards this
                raise MachineError(f"class {cls.name!r} has an empty table")

    def render(self) -> str:
        """Human-readable summary (Table 3-style machine model listing)."""
        lines = [f"Machine {self.name!r}"]
        for fu in self.fu_types.values():
            kind = "clean" if fu.table.is_clean else "unclean/non-pipelined"
            lines.append(
                f"  FU {fu.name}: x{fu.count}, {fu.table.num_stages} stage(s), "
                f"span {fu.table.length}, {kind}"
            )
            for cls in self.classes_on(fu.name):
                table_note = " (own table)" if cls.table is not None else ""
                lines.append(
                    f"    class {cls.name}: latency {cls.latency}{table_note}"
                )
        return "\n".join(lines)
