"""Classical pipeline-hazard theory: collision vectors and MAL (Kogge [15]).

The paper's §5 reasons about unclean pipelines through their reservation
tables; this module supplies the classical analysis toolkit for a single
such pipeline:

* the **initial collision vector** (which issue distances collide);
* the **state diagram** of collision vectors under issue/advance moves;
* **greedy cycles** and the **minimum average latency (MAL)** — the best
  sustained initiation rate one pipeline copy can support;
* the MAL-based refinement of the per-FU-type resource bound: a single
  copy cannot start more than one op per MAL cycles *on average*, no
  matter the schedule, so ``T >= ceil(N_r * MAL_r / R_r)`` — at least as
  strong as the busiest-stage bound whenever the table has hazards.

These are used by :func:`repro.core.bounds` consumers and the ablation
experiments, and they give machine designers a way to evaluate a
reservation table *before* scheduling anything on it.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, FrozenSet, List, Set, Tuple

from repro.machine.errors import MachineError
from repro.machine.reservation import ReservationTable


def initial_collision_vector(table: ReservationTable) -> Tuple[int, ...]:
    """Bit ``l-1`` is 1 when issuing two ops ``l`` cycles apart collides.

    Returned as a tuple ``(c_1, ..., c_{d-1})`` indexed by latency;
    empty for single-cycle tables.
    """
    horizon = table.length - 1
    forbidden = table.forbidden_latencies()
    return tuple(
        1 if latency in forbidden else 0
        for latency in range(1, horizon + 1)
    )


State = Tuple[int, ...]


@dataclass(frozen=True)
class StateDiagram:
    """The reachable collision-vector states of one pipeline.

    ``transitions[state][latency] = next_state`` for every *permissible*
    issue latency (bit clear).  Latencies greater than the vector length
    always return to the initial state.
    """

    initial: State
    transitions: Dict[State, Dict[int, State]]

    @property
    def num_states(self) -> int:
        return len(self.transitions)

    def permissible_latencies(self, state: State) -> List[int]:
        return sorted(self.transitions[state])


def build_state_diagram(table: ReservationTable) -> StateDiagram:
    """Enumerate the collision-vector state machine of ``table``."""
    initial = initial_collision_vector(table)
    width = len(initial)
    transitions: Dict[State, Dict[int, State]] = {}
    worklist = [initial]
    while worklist:
        state = worklist.pop()
        if state in transitions:
            continue
        moves: Dict[int, State] = {}
        for latency in range(1, width + 1):
            if state[latency - 1]:
                continue  # collision — latency not permissible
            shifted = state[latency:] + (0,) * latency
            nxt = tuple(
                s | i for s, i in zip(shifted, initial)
            ) if width else ()
            moves[latency] = nxt
            if nxt not in transitions:
                worklist.append(nxt)
        # A latency beyond the vector width always drains the pipe and
        # re-enters at the initial state; represent it with width+1.
        moves[width + 1] = initial
        transitions[state] = moves
    return StateDiagram(initial=initial, transitions=transitions)


def greedy_cycle(table: ReservationTable) -> List[int]:
    """The greedy cycle: always issue at the smallest permissible latency.

    Returns the repeating latency sequence (e.g. ``[1]`` for a clean
    pipe, ``[d]`` for a non-pipelined unit of busy time ``d``).
    """
    diagram = build_state_diagram(table)
    state = diagram.initial
    seen: Dict[State, int] = {}
    path: List[int] = []
    while state not in seen:
        seen[state] = len(path)
        latency = min(diagram.transitions[state])
        path.append(latency)
        state = diagram.transitions[state][latency]
    start = seen[state]
    return path[start:]


def minimum_average_latency(table: ReservationTable) -> Fraction:
    """MAL: the best achievable average issue distance on one copy.

    Found by minimum-mean-cycle search over the state diagram (Karp-style
    dynamic programming).  Lower-bounded by ``max_stage_usage`` (each
    issue burns that many cells of the busiest stage) and upper-bounded
    by the greedy cycle's average — both classical results, both asserted
    in the test-suite.
    """
    diagram = build_state_diagram(table)
    states = list(diagram.transitions)
    index = {s: i for i, s in enumerate(states)}
    n = len(states)
    # Karp: dp[k][v] = min weight of a k-edge path ending at v.
    inf = float("inf")
    dp = [[inf] * n for _ in range(n + 1)]
    dp[0][index[diagram.initial]] = 0.0
    # Make every state reachable a valid start (cycles may avoid initial).
    for i in range(n):
        dp[0][i] = 0.0
    for k in range(1, n + 1):
        for state in states:
            u = index[state]
            if dp[k - 1][u] == inf:
                continue
            for latency, nxt in diagram.transitions[state].items():
                v = index[nxt]
                weight = dp[k - 1][u] + latency
                if weight < dp[k][v]:
                    dp[k][v] = weight
    best = None
    for v in range(n):
        if dp[n][v] == inf:
            continue
        worst_ratio = None
        for k in range(n):
            if dp[k][v] == inf:
                continue
            ratio = Fraction(int(dp[n][v] - dp[k][v]), n - k)
            if worst_ratio is None or ratio > worst_ratio:
                worst_ratio = ratio
        if worst_ratio is not None and (best is None or worst_ratio < best):
            best = worst_ratio
    if best is None:  # pragma: no cover - diagram always has a cycle
        raise MachineError("state diagram has no cycle")
    return best


def mal_bound(num_ops: int, copies: int, table: ReservationTable) -> int:
    """MAL-refined resource bound: ``ceil(N * MAL / R)`` for one op class.

    At least as strong as the busiest-stage bound
    ``ceil(N * max_stage_usage / R)`` because ``MAL >= max_stage_usage``.
    """
    if num_ops < 0 or copies < 1:
        raise MachineError("need num_ops >= 0 and copies >= 1")
    if num_ops == 0:
        return 1
    mal = minimum_average_latency(table)
    value = Fraction(num_ops) * mal / copies
    return max(1, -(-value.numerator // value.denominator))


def analyze(table: ReservationTable) -> Dict[str, object]:
    """One-stop report for a reservation table (used by the CLI)."""
    diagram = build_state_diagram(table)
    cycle = greedy_cycle(table)
    mal = minimum_average_latency(table)
    return {
        "forbidden_latencies": sorted(table.forbidden_latencies()),
        "initial_collision_vector": diagram.initial,
        "num_states": diagram.num_states,
        "greedy_cycle": cycle,
        "greedy_average": Fraction(sum(cycle), len(cycle)),
        "mal": mal,
        "max_stage_usage": table.max_stage_usage,
        "is_clean": table.is_clean,
    }
