"""Errors raised by the machine-description substrate."""


class MachineError(Exception):
    """Malformed machine description (bad tables, unknown classes, ...)."""
