"""Fault-tolerant supervision of out-of-process solves.

The scheduling drivers (sequential sweep, period race, corpus batch)
hand long ILP solves to worker processes; this package is the layer
that assumes those workers will hang, crash, or eat all the memory —
and turns every such event into data instead of a dead run:

* :mod:`~repro.supervision.records` — the failure taxonomy
  (:class:`FailureRecord`) and the guard-rail knobs
  (:class:`SupervisionPolicy`);
* :mod:`~repro.supervision.executor` — a process pool with hard
  wall-clock deadlines (SIGKILL, not trust), per-worker memory caps,
  crash recovery and bounded retry with exponential backoff;
* :mod:`~repro.supervision.runner` — the same guarantees for the
  sequential driver's per-attempt solves;
* :mod:`~repro.supervision.signals` — SIGINT/SIGTERM as graceful
  degrade-to-incumbent, not stack traces;
* :mod:`~repro.supervision.journal` — JSONL checkpoint/resume for batch
  runs;
* :mod:`~repro.supervision.atomicio` — torn-write-free reports;
* :mod:`~repro.supervision.faults` — deterministic fault injection so
  every recovery path above is exercised in CI.

See ``docs/robustness.md`` for the full model.
"""

from repro.supervision.atomicio import (
    AppendOnlyLines,
    atomic_write_json,
    atomic_write_text,
)
from repro.supervision.executor import SupervisedExecutor, SupervisedTask
from repro.supervision.journal import (
    BatchJournal,
    JournalError,
    completed_entries,
    read_journal,
)
from repro.supervision.records import (
    CRASH,
    DEGRADED,
    FAILURE_KINDS,
    HANG,
    INTERRUPTED,
    OOM,
    SOLVER_ERROR,
    FailureRecord,
    SupervisionPolicy,
)
from repro.supervision.runner import SupervisedAttemptRunner
from repro.supervision.signals import (
    clear_interrupt,
    graceful_interrupts,
    interrupted,
    request_interrupt,
)

__all__ = [
    "AppendOnlyLines",
    "BatchJournal",
    "CRASH",
    "DEGRADED",
    "FAILURE_KINDS",
    "FailureRecord",
    "HANG",
    "INTERRUPTED",
    "JournalError",
    "OOM",
    "SOLVER_ERROR",
    "SupervisedAttemptRunner",
    "SupervisedExecutor",
    "SupervisedTask",
    "SupervisionPolicy",
    "atomic_write_json",
    "atomic_write_text",
    "clear_interrupt",
    "completed_entries",
    "graceful_interrupts",
    "interrupted",
    "read_journal",
    "request_interrupt",
]
