"""Crash-safe file writes.

Reports, BENCH files and saved schedules are written via a sibling
``*.tmp`` file and ``os.replace``, so an interrupt mid-write leaves
either the old content or the new — never a truncated JSON document.
Journal lines are appended with a single ``os.write`` on an O_APPEND
descriptor, the POSIX idiom for all-or-nothing appends.

Durability (``fsync``) is policy, not dogma: production runs want every
journal line on the platter before the supervisor reports it written,
but test suites that create thousands of short-lived journals pay a
large latency tax for durability they throw away seconds later.  The
``REPRO_FSYNC`` environment variable controls it process-wide:

* unset / ``on`` / ``1``  — fsync after every write (the default);
* ``off`` / ``0`` / ``no`` — skip fsync entirely.  Atomicity is
  unaffected (``os.replace`` and O_APPEND still guarantee readers see
  whole documents/lines); only power-loss durability is traded away.
"""

from __future__ import annotations

import itertools
import json
import os
import threading
from pathlib import Path
from typing import Union

PathLike = Union[str, "os.PathLike[str]"]

#: Environment variable controlling the fsync policy (see module doc).
FSYNC_ENV = "REPRO_FSYNC"

_FSYNC_OFF = ("off", "0", "no", "false")

#: Per-process counter folded into scratch-file names.  The pid alone is
#: not collision-proof: two *threads* of one process (or one process
#: publishing the same key twice back-to-back, or a recycled pid on a
#: shared filesystem) would otherwise truncate each other's scratch
#: file mid-write.  ``itertools.count`` is atomic under the GIL.
_SCRATCH_IDS = itertools.count()
_SCRATCH_LOCK = threading.Lock()


def fsync_enabled() -> bool:
    """Whether the current policy calls for fsync after writes."""
    value = os.environ.get(FSYNC_ENV, "").strip().lower()
    return value not in _FSYNC_OFF


def _maybe_fsync(fd: int) -> None:
    if fsync_enabled():
        os.fsync(fd)


def unique_tmp_suffix() -> str:
    """A scratch-file suffix unique across processes *and* within one.

    ``.{pid}.{n}.tmp`` where ``n`` is a per-process counter: concurrent
    writers to the same target — whether distinct processes or distinct
    threads/calls of one process — never name the same scratch file.
    """
    with _SCRATCH_LOCK:
        count = next(_SCRATCH_IDS)
    return f".{os.getpid()}.{count}.tmp"


def atomic_write_text(path: PathLike, text: str,
                      tmp_suffix: str = ".tmp") -> None:
    """Write ``text`` to ``path`` atomically (tmp file + ``os.replace``).

    ``tmp_suffix`` names the sibling scratch file.  Callers racing to
    publish the *same* target from several processes (the schedule
    store) pass :func:`unique_tmp_suffix` so writers never truncate each
    other's scratch file; ``os.replace`` then gives last-writer-wins
    with readers always seeing a complete document.
    """
    target = Path(path)
    tmp = target.with_name(target.name + tmp_suffix)
    with open(tmp, "w", encoding="utf-8") as handle:
        handle.write(text)
        handle.flush()
        _maybe_fsync(handle.fileno())
    os.replace(tmp, target)


def atomic_write_json(path: PathLike, payload, indent: int = 2,
                      sort_keys: bool = False) -> None:
    """Serialize ``payload`` and write it atomically, newline-terminated."""
    atomic_write_text(
        path,
        json.dumps(payload, indent=indent, sort_keys=sort_keys) + "\n",
    )


class AppendOnlyLines:
    """Append whole lines to a file, one atomic ``os.write`` per line."""

    def __init__(self, path: PathLike) -> None:
        self.path = Path(path)
        self._fd = os.open(
            self.path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644
        )

    def append(self, line: str) -> None:
        if "\n" in line:
            raise ValueError("journal lines must not contain newlines")
        data = (line + "\n").encode("utf-8")
        os.write(self._fd, data)
        _maybe_fsync(self._fd)

    def close(self) -> None:
        if self._fd is not None:
            os.close(self._fd)
            self._fd = None

    def __enter__(self) -> "AppendOnlyLines":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
