"""Crash-safe file writes.

Reports, BENCH files and saved schedules are written via a sibling
``*.tmp`` file and ``os.replace``, so an interrupt mid-write leaves
either the old content or the new — never a truncated JSON document.
Journal lines are appended with a single ``os.write`` on an O_APPEND
descriptor, the POSIX idiom for all-or-nothing appends.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Union

PathLike = Union[str, "os.PathLike[str]"]


def atomic_write_text(path: PathLike, text: str,
                      tmp_suffix: str = ".tmp") -> None:
    """Write ``text`` to ``path`` atomically (tmp file + ``os.replace``).

    ``tmp_suffix`` names the sibling scratch file.  Callers racing to
    publish the *same* target from several processes (the schedule
    store) pass a per-process suffix so writers never truncate each
    other's scratch file; ``os.replace`` then gives last-writer-wins
    with readers always seeing a complete document.
    """
    target = Path(path)
    tmp = target.with_name(target.name + tmp_suffix)
    with open(tmp, "w", encoding="utf-8") as handle:
        handle.write(text)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, target)


def atomic_write_json(path: PathLike, payload, indent: int = 2,
                      sort_keys: bool = False) -> None:
    """Serialize ``payload`` and write it atomically, newline-terminated."""
    atomic_write_text(
        path,
        json.dumps(payload, indent=indent, sort_keys=sort_keys) + "\n",
    )


class AppendOnlyLines:
    """Append whole lines to a file, one atomic ``os.write`` per line."""

    def __init__(self, path: PathLike) -> None:
        self.path = Path(path)
        self._fd = os.open(
            self.path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644
        )

    def append(self, line: str) -> None:
        if "\n" in line:
            raise ValueError("journal lines must not contain newlines")
        data = (line + "\n").encode("utf-8")
        os.write(self._fd, data)
        os.fsync(self._fd)

    def close(self) -> None:
        if self._fd is not None:
            os.close(self._fd)
            self._fd = None

    def __enter__(self) -> "AppendOnlyLines":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
