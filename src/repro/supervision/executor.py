"""A process pool that assumes its workers will misbehave.

:class:`concurrent.futures.ProcessPoolExecutor` treats a dead worker as
fatal (``BrokenProcessPool`` poisons every outstanding future) and has
no way to kill a task that ignores its time budget.  This executor is
built for the opposite world:

* every task carries a **wall-clock deadline**; a worker that exceeds
  ``deadline + grace`` is SIGKILLed and the task fails as ``hang``;
* a worker that **dies** (segfault, ``os._exit``, kernel OOM-kill) fails
  only its own task, as ``crash`` — the pool replaces the worker and the
  rest of the run never notices;
* crashes and hangs are **retried** with exponential backoff up to the
  policy's ``max_retries``, then surface as a
  :class:`~repro.supervision.records.FailureRecord`;
* an optional **RLIMIT_AS cap** turns runaway allocations into an
  in-worker ``MemoryError``, reported as ``oom``;
* :meth:`SupervisedExecutor.abort` fails everything still outstanding
  (``interrupted``) and kills the workers — the SIGINT/SIGTERM path.

Tasks never raise out of the pool: a finished
:class:`SupervisedTask` holds either ``result`` or ``failure``.  The
supervisor itself is single-threaded — drivers interleave dispatch,
deadline enforcement and result collection through :meth:`poll`.
"""

from __future__ import annotations

import itertools
import multiprocessing
import multiprocessing.connection
import os
import signal
import time
from collections import deque
from typing import Callable, Deque, Dict, List, Optional

from repro.supervision.records import (
    CRASH,
    HANG,
    INTERRUPTED,
    OOM,
    RETRYABLE_KINDS,
    SOLVER_ERROR,
    FailureRecord,
    SupervisionPolicy,
)

#: Task lifecycle states.
PENDING = "pending"
RUNNING = "running"
DONE = "done"
FAILED = "failed"
CANCELLED = "cancelled"

#: Floor/ceiling on one blocking wait, keeping the supervisor responsive
#: to deadlines and interrupt flags without spinning.
_MIN_WAIT = 0.01
_MAX_WAIT = 0.25


class SupervisedTask:
    """One unit of work and its outcome (result *or* failure, never a raise)."""

    def __init__(self, task_id, fn, args, kwargs, tag, deadline):
        self.id = task_id
        self.fn = fn
        self.args = args
        self.kwargs = kwargs
        #: Opaque caller payload (the race stores the candidate period).
        self.tag = tag
        self.deadline = deadline
        self.state = PENDING
        self.tries = 0
        self.eligible_at = 0.0
        self.started_at: Optional[float] = None
        self.elapsed = 0.0
        self.result = None
        self.failure: Optional[FailureRecord] = None

    @property
    def finished(self) -> bool:
        return self.state in (DONE, FAILED)

    def __repr__(self) -> str:
        return (
            f"SupervisedTask(id={self.id}, tag={self.tag!r}, "
            f"state={self.state}, tries={self.tries})"
        )


def _worker_main(conn, initializer, initargs, memory_mb) -> None:
    """Worker loop: recv ``(task_id, fn, args, kwargs)``, send outcome.

    The worker classifies its own recoverable failures (``MemoryError``
    -> oom, anything else raised by the task -> solver_error) so the
    parent never needs to unpickle an arbitrary exception object.  A
    death without a reply is the parent's signal of a crash.
    """
    # The parent owns interrupt policy; a Ctrl-C must not kill workers
    # before the supervisor has settled the run.
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    signal.signal(signal.SIGTERM, signal.SIG_DFL)
    if memory_mb is not None:
        try:
            import resource

            limit = memory_mb << 20
            resource.setrlimit(resource.RLIMIT_AS, (limit, limit))
        except (ImportError, ValueError, OSError):
            pass  # unsupported platform / cap below current usage
    if initializer is not None:
        initializer(*initargs)
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            break
        if message is None:
            break
        task_id, fn, args, kwargs = message
        try:
            result = fn(*args, **kwargs)
            reply = ("ok", task_id, result)
        except MemoryError:
            reply = ("fail", task_id, OOM,
                     "MemoryError: worker exceeded its memory cap")
        except BaseException as exc:  # noqa: BLE001 - full isolation
            reply = ("fail", task_id, SOLVER_ERROR,
                     f"{type(exc).__name__}: {exc}")
        try:
            conn.send(reply)
        except (BrokenPipeError, OSError):
            break
        except Exception as exc:  # unpicklable result object
            try:
                conn.send(("fail", task_id, SOLVER_ERROR,
                           f"unpicklable task result: {exc}"))
            except Exception:
                break


class _Worker:
    """A worker process plus its duplex pipe and in-flight task."""

    def __init__(self, ctx, initializer, initargs, memory_mb):
        parent_conn, child_conn = ctx.Pipe(duplex=True)
        self.process = ctx.Process(
            target=_worker_main,
            args=(child_conn, initializer, initargs, memory_mb),
            daemon=True,
        )
        self.process.start()
        child_conn.close()
        self.conn = parent_conn
        self.task: Optional[SupervisedTask] = None

    @property
    def busy(self) -> bool:
        return self.task is not None

    def dispatch(self, task: SupervisedTask) -> None:
        self.conn.send((task.id, task.fn, task.args, task.kwargs))
        self.task = task
        task.state = RUNNING
        task.tries += 1
        task.started_at = time.monotonic()

    def kill(self, join_timeout: float = 1.0) -> None:
        """Terminate with bounded escalation: TERM, join, KILL, join.

        SIGTERM first so a cooperative worker exits cleanly; SIGKILL
        only if it is still alive after the bounded join.  Every join
        is bounded, so reaping a wedged loser can never block the
        supervisor for more than ~2x ``join_timeout`` — the portfolio
        race reaps losers on the winner's critical path.
        """
        try:
            if self.process.is_alive():
                self.process.terminate()
                self.process.join(timeout=join_timeout)
            if self.process.is_alive():
                self.process.kill()
                self.process.join(timeout=join_timeout)
        except (OSError, AttributeError):
            pass
        try:
            self.conn.close()
        except OSError:
            pass

    def stop(self) -> None:
        """Polite shutdown for an idle worker."""
        try:
            self.conn.send(None)
        except (BrokenPipeError, OSError):
            pass
        self.process.join(timeout=0.2)
        if self.process.is_alive():
            self.kill()
        else:
            try:
                self.conn.close()
            except OSError:
                pass


class SupervisedExecutor:
    """Deadline-, crash- and memory-guarded process pool (see module doc)."""

    def __init__(
        self,
        max_workers: int,
        policy: Optional[SupervisionPolicy] = None,
        initializer: Optional[Callable] = None,
        initargs: tuple = (),
        mp_context=None,
    ) -> None:
        if max_workers < 1:
            raise ValueError(f"max_workers must be >= 1, got {max_workers}")
        self.policy = policy or SupervisionPolicy()
        self._max_workers = max_workers
        self._initializer = initializer
        self._initargs = initargs
        self._ctx = mp_context or multiprocessing.get_context()
        self._workers: List[_Worker] = []
        self._pending: Deque[SupervisedTask] = deque()
        self._done: Deque[SupervisedTask] = deque()
        self._ids = itertools.count()
        self._tasks: Dict[int, SupervisedTask] = {}
        #: Every process this executor ever spawned, for post-run
        #: no-zombie assertions (see :meth:`live_children`).
        self._children: List[multiprocessing.process.BaseProcess] = []
        self._shut_down = False

    # ------------------------------------------------------------------
    # public API

    def submit(self, fn, *args, tag=None, deadline="policy",
               **kwargs) -> SupervisedTask:
        """Queue ``fn(*args, **kwargs)``; returns immediately.

        ``deadline`` defaults to the policy's; pass ``None`` explicitly
        for an unbounded task.
        """
        if self._shut_down:
            raise RuntimeError("executor has been shut down")
        if deadline == "policy":
            deadline = self.policy.deadline
        task = SupervisedTask(
            next(self._ids), fn, args, kwargs, tag, deadline
        )
        self._tasks[task.id] = task
        self._pending.append(task)
        return task

    def cancel(self, task: SupervisedTask) -> bool:
        """Drop a task that has not started; False once it is running."""
        if task.state != PENDING:
            return False
        task.state = CANCELLED
        try:
            self._pending.remove(task)
        except ValueError:
            pass
        self._tasks.pop(task.id, None)
        return True

    def kill_task(self, task: SupervisedTask) -> bool:
        """Terminate a task wherever it is — queued or mid-solve.

        A queued task is dropped; a running task's worker is killed
        (bounded TERM->KILL escalation) and not replaced until the
        dispatcher next needs one.  Either way the task lands in state
        ``CANCELLED`` with neither result nor failure — this is how the
        portfolio race reaps losers the moment a winner is known, so a
        cancellation is an expected outcome, not an error.  Returns
        False when the task already finished (its result/failure
        stands) or was already cancelled.

        Kill-after-exit race: between the caller's decision to kill and
        the escalation here, the worker may already have *finished* the
        task — its reply sitting unread in the pipe, its process
        possibly exited (and, in the worst interleaving, its pid
        reaped and reused by the OS).  Signaling at that point would
        discard a real verdict and aim TERM/KILL at a process that is
        no longer ours.  So the worker's pipe is drained first: a reply
        for this task settles it as DONE/FAILED (delivered by the next
        :meth:`poll`), the worker is kept alive for reuse, and the
        caller gets False — "too late, the result stands".
        """
        if task.state == PENDING:
            return self.cancel(task)
        if task.state != RUNNING:
            return False
        now = time.monotonic()
        for worker in list(self._workers):
            if worker.task is not task:
                continue
            if self._settle_finished(worker, now):
                # The task beat the kill: its verdict was already in
                # the pipe.  Nothing was signaled; the result stands.
                return False
            worker.task = None
            worker.kill()
            self._workers.remove(worker)
            break
        task.elapsed += now - (task.started_at or now)
        task.state = CANCELLED
        self._tasks.pop(task.id, None)
        return True

    def _settle_finished(self, worker: _Worker, now: float) -> bool:
        """Drain a reply for ``worker``'s task, settling it if present.

        Returns True when the in-flight task turned out to be finished
        (reply drained, task moved to DONE/FAILED and queued for
        :meth:`poll`); False when no reply is available and the task is
        genuinely still running (or the worker died without answering —
        the regular reap path owns that classification).
        """
        task = worker.task
        if task is None:
            return False
        try:
            while worker.conn.poll():
                status, task_id, *payload = worker.conn.recv()
                if task_id != task.id:
                    continue  # stale reply from a pre-kill task
                worker.task = None
                task.elapsed += now - (task.started_at or now)
                if status == "ok":
                    task.result = payload[0]
                    task.state = DONE
                    self._done.append(task)
                else:
                    kind, detail = payload
                    self._fail(task, kind, detail, retryable=False)
                return True
        except (EOFError, OSError):
            pass  # death without a reply: the reap path classifies it
        return False

    def live_children(self) -> List:
        """Worker processes (ever spawned) that are still alive.

        Empty after a clean ``shutdown``/``abort`` — fault-matrix tests
        assert exactly that to prove no loser survives a race.
        """
        return [p for p in self._children if p.is_alive()]

    def outstanding(self) -> int:
        """Tasks not yet finished (pending + running)."""
        return len(self._pending) + sum(
            1 for w in self._workers if w.busy
        )

    def poll(self, timeout: Optional[float] = None) -> List[SupervisedTask]:
        """Advance the pool and return newly finished tasks.

        Blocks up to ``timeout`` seconds (forever when ``None``) waiting
        for at least one task to finish; returns possibly-empty on
        timeout and immediately when nothing is outstanding.  Within one
        call the supervisor keeps dispatching, reaping replies, killing
        over-deadline workers and re-queuing retries.
        """
        wait_until = (
            None if timeout is None else time.monotonic() + timeout
        )
        while True:
            self._reap()
            self._dispatch()
            if self._done:
                drained = list(self._done)
                self._done.clear()
                return drained
            if not self.outstanding():
                return []
            now = time.monotonic()
            if wait_until is not None and now >= wait_until:
                return []
            self._block(now, wait_until)

    def abort(self, kind: str = INTERRUPTED,
              detail: str = "run aborted") -> List[SupervisedTask]:
        """Fail every outstanding task with ``kind`` and kill busy workers.

        Returns all tasks failed by this call (already-finished tasks
        still waiting in the done queue are *not* included; drain them
        with :meth:`poll` first if the distinction matters).
        """
        failed: List[SupervisedTask] = []
        now = time.monotonic()
        for worker in list(self._workers):
            task = worker.task
            if task is None:
                continue
            worker.task = None
            worker.kill()
            self._workers.remove(worker)
            task.elapsed += now - (task.started_at or now)
            self._fail(task, kind, detail, retryable=False)
            failed.append(task)
        while self._pending:
            task = self._pending.popleft()
            self._fail(task, kind, detail, retryable=False)
            failed.append(task)
        # _fail queued these for poll(); this call is their delivery.
        for task in failed:
            try:
                self._done.remove(task)
            except ValueError:
                pass
        return failed

    def shutdown(self) -> None:
        """Kill all workers; outstanding tasks are left unresolved."""
        self._shut_down = True
        for worker in self._workers:
            if worker.busy:
                worker.kill()
            else:
                worker.stop()
        self._workers.clear()
        self._pending.clear()
        # Final bounded sweep: any child whose first escalation didn't
        # land inside its join timeout gets one more KILL here, so a
        # shut-down executor leaves no zombies behind.
        for process in self._children:
            if process.is_alive():
                try:
                    process.kill()
                except (OSError, AttributeError):
                    pass
                process.join(timeout=1.0)

    def __enter__(self) -> "SupervisedExecutor":
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()

    # ------------------------------------------------------------------
    # internals

    def _spawn(self) -> _Worker:
        worker = _Worker(
            self._ctx, self._initializer, self._initargs,
            self.policy.memory_mb,
        )
        self._workers.append(worker)
        self._children.append(worker.process)
        return worker

    def _dispatch(self) -> None:
        """Hand eligible pending tasks to idle (possibly new) workers."""
        now = time.monotonic()
        idle = [w for w in self._workers if not w.busy]
        while self._pending:
            # Find the first eligible task in submit order (tasks in
            # backoff are skipped, not reordered past permanently).
            eligible = next(
                (t for t in self._pending if t.eligible_at <= now), None
            )
            if eligible is None:
                return
            if idle:
                worker = idle.pop()
            elif len(self._workers) < self._max_workers:
                worker = self._spawn()
            else:
                return
            self._pending.remove(eligible)
            try:
                worker.dispatch(eligible)
            except (BrokenPipeError, OSError):
                # Worker died between tasks; replace it and re-queue.
                self._workers.remove(worker)
                worker.kill()
                eligible.state = PENDING
                self._pending.appendleft(eligible)

    def _reap(self) -> None:
        """Collect replies, detect deaths, and enforce deadlines."""
        now = time.monotonic()
        for worker in list(self._workers):
            if not worker.busy:
                continue
            task = worker.task
            # Drain any reply first: a worker may answer and then exit.
            got_reply = False
            try:
                while worker.conn.poll():
                    status, task_id, *payload = worker.conn.recv()
                    if task_id != task.id:
                        continue  # stale reply from a pre-kill task
                    got_reply = True
                    worker.task = None
                    task.elapsed += now - task.started_at
                    if status == "ok":
                        task.result = payload[0]
                        task.state = DONE
                        self._done.append(task)
                    else:
                        kind, detail = payload
                        self._fail(task, kind, detail, retryable=False)
                    break
            except (EOFError, OSError):
                pass  # treated as a death below
            if got_reply:
                continue
            if not worker.process.is_alive():
                exitcode = worker.process.exitcode
                worker.task = None
                worker.kill()
                self._workers.remove(worker)
                task.elapsed += now - task.started_at
                self._fail(
                    task, CRASH,
                    f"worker died (exit code {exitcode}) before "
                    f"finishing the task",
                )
                continue
            kill_after = self._kill_after(task)
            if (kill_after is not None
                    and now - task.started_at > kill_after):
                worker.task = None
                worker.kill()
                self._workers.remove(worker)
                task.elapsed += now - task.started_at
                self._fail(
                    task, HANG,
                    f"killed after {task.elapsed:.1f}s "
                    f"(deadline {task.deadline}s + grace "
                    f"{self.policy.grace}s)",
                )

    def _kill_after(self, task: SupervisedTask) -> Optional[float]:
        """Seconds after dispatch at which ``task``'s worker is killed.

        ``submit`` already resolved the policy default, so an explicit
        ``deadline=None`` really means unbounded here — unlike
        ``SupervisionPolicy.kill_after``, which treats None as "use the
        policy's deadline".
        """
        if task.deadline is None:
            return None
        return task.deadline + self.policy.grace

    def _fail(self, task: SupervisedTask, kind: str, detail: str,
              retryable: bool = True) -> None:
        """Fail or re-queue ``task`` after try number ``task.tries``."""
        if (retryable and kind in RETRYABLE_KINDS
                and task.tries <= self.policy.max_retries):
            task.state = PENDING
            task.started_at = None
            task.eligible_at = (
                time.monotonic() + self.policy.retry_delay(task.tries)
            )
            self._pending.append(task)
            return
        task.failure = FailureRecord(
            kind=kind,
            attempt=max(task.tries, 1),
            retries=max(task.tries - 1, 0),
            elapsed=task.elapsed,
            detail=detail,
        )
        task.state = FAILED
        self._done.append(task)

    def _block(self, now: float, wait_until: Optional[float]) -> None:
        """Sleep until the next interesting event (reply/deadline/backoff)."""
        horizon = now + _MAX_WAIT
        if wait_until is not None:
            horizon = min(horizon, wait_until)
        for worker in self._workers:
            task = worker.task
            if task is None:
                continue
            kill_after = self._kill_after(task)
            if kill_after is not None:
                horizon = min(horizon, task.started_at + kill_after)
        for task in self._pending:
            if task.eligible_at > now:
                horizon = min(horizon, task.eligible_at)
        delay = max(_MIN_WAIT, horizon - now)
        conns = [w.conn for w in self._workers if w.busy]
        if conns:
            multiprocessing.connection.wait(conns, timeout=delay)
        else:
            time.sleep(min(delay, _MAX_WAIT))
