"""Supervised out-of-process execution of the sequential driver's attempts.

:func:`repro.core.schedule_loop` normally solves each candidate period
in-process; a hung or crashing solve takes the whole program with it.
:class:`SupervisedAttemptRunner` is a drop-in ``attempt_runner`` for
:func:`repro.core.scheduler.run_sweep` that ships each
:func:`~repro.core.scheduler.attempt_period` call to a single supervised
worker (kept warm across attempts), so the sweep inherits every
guarantee of :class:`~repro.supervision.executor.SupervisedExecutor`:
deadline kills, crash recovery with retry, memory caps, and
failures-as-records.
"""

from __future__ import annotations

from typing import Optional

from repro.supervision.executor import SupervisedExecutor
from repro.supervision.records import INTERRUPTED, SupervisionPolicy
from repro.supervision.signals import interrupted


def _init_solver_budget(budget: Optional[float]) -> None:
    """Worker initializer: cap every solve in the worker process."""
    from repro.ilp import solve as solve_module

    solve_module.set_process_time_budget(budget)


class SupervisedAttemptRunner:
    """Run ``attempt_period`` in a supervised child process.

    Matches the ``attempt_runner`` hook signature of
    :func:`repro.core.scheduler.run_sweep` and returns an
    :class:`~repro.core.scheduler.AttemptOutcome` whose attempt carries
    a :class:`~repro.supervision.records.FailureRecord` when the child
    crashed, hung, OOMed or was interrupted.  The worker is spawned
    lazily and reused across attempts; call :meth:`close` (or use as a
    context manager) when the sweep is done.
    """

    def __init__(self, policy: Optional[SupervisionPolicy] = None,
                 time_budget: Optional[float] = None) -> None:
        self.policy = policy or SupervisionPolicy()
        self._time_budget = time_budget
        self._executor: Optional[SupervisedExecutor] = None

    def _ensure_executor(self) -> SupervisedExecutor:
        if self._executor is None:
            self._executor = SupervisedExecutor(
                max_workers=1,
                policy=self.policy,
                initializer=_init_solver_budget,
                initargs=(self._time_budget,),
            )
        return self._executor

    def __call__(self, ddg, machine, t_period, config, incumbent=None):
        from repro.core.scheduler import (
            AttemptOutcome,
            ScheduleAttempt,
            attempt_period,
        )

        executor = self._ensure_executor()
        deadline = self.policy.deadline
        if deadline is None:
            deadline = config.time_limit
        task = executor.submit(
            attempt_period, ddg, machine, t_period, config,
            incumbent=incumbent, deadline=deadline,
        )
        while not task.finished:
            if interrupted():
                executor.abort(
                    INTERRUPTED, "sweep interrupted (SIGINT/SIGTERM)"
                )
                break
            executor.poll(timeout=0.25)
        if task.failure is not None:
            return AttemptOutcome(
                attempt=ScheduleAttempt(
                    t_period=t_period,
                    status=task.failure.kind,
                    seconds=task.failure.elapsed,
                    failure=task.failure,
                )
            )
        return task.result

    def close(self) -> None:
        if self._executor is not None:
            self._executor.shutdown()
            self._executor = None

    def __enter__(self) -> "SupervisedAttemptRunner":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
