"""Failure taxonomy and supervision policy shared by every driver.

A supervised solve can end five ways that are *not* a solver status:

* ``crash``        — the worker process died (segfault, ``os._exit``,
  kernel OOM-killer, broken pipe);
* ``hang``         — the worker blew through its wall-clock deadline and
  was killed by the supervisor (the solver's own ``time_limit`` was not
  honored, or time went somewhere outside the solver);
* ``oom``          — the worker hit its memory cap (``MemoryError``,
  typically via the per-worker RLIMIT_AS rlimit);
* ``solver_error`` — the task body raised (bad model, malformed
  solution, verification failure, any uncaught exception);
* ``interrupted``  — the run was asked to stop (SIGINT/SIGTERM) before
  the task finished.

Each of those becomes a :class:`FailureRecord` attached to the attempt /
batch entry it felled, instead of an exception that aborts the run.  The
knobs that decide when the supervisor intervenes live in
:class:`SupervisionPolicy`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

#: Failure kinds (``FailureRecord.kind`` is always one of these).
CRASH = "crash"
HANG = "hang"
OOM = "oom"
SOLVER_ERROR = "solver_error"
INTERRUPTED = "interrupted"

FAILURE_KINDS = (CRASH, HANG, OOM, SOLVER_ERROR, INTERRUPTED)

#: Kinds the supervisor retries (a crash or hang may be transient; an
#: OOM or task-level error will just repeat).
RETRYABLE_KINDS = (CRASH, HANG)

#: Attempt status for a loop that settled to its best-known incumbent
#: (heuristic schedule or provisional winner) after failures or an
#: interrupt, instead of raising.
DEGRADED = "degraded"


@dataclass
class FailureRecord:
    """One supervised task's terminal failure, after retries."""

    kind: str  # one of FAILURE_KINDS
    #: 1-based try number that produced this record (``retries + 1``
    #: when every retry was consumed).
    attempt: int = 1
    #: Retries consumed before giving up.
    retries: int = 0
    #: Wall-clock seconds spent across all tries of the task.
    elapsed: float = 0.0
    detail: str = ""

    def __post_init__(self) -> None:
        if self.kind not in FAILURE_KINDS:
            raise ValueError(
                f"unknown failure kind {self.kind!r}; "
                f"expected one of {FAILURE_KINDS}"
            )

    def to_json_dict(self) -> dict:
        return {
            "kind": self.kind,
            "attempt": self.attempt,
            "retries": self.retries,
            "elapsed": round(self.elapsed, 6),
            "detail": self.detail,
        }

    @classmethod
    def from_json_dict(cls, data: dict) -> "FailureRecord":
        return cls(
            kind=data["kind"],
            attempt=int(data.get("attempt", 1)),
            retries=int(data.get("retries", 0)),
            elapsed=float(data.get("elapsed", 0.0)),
            detail=str(data.get("detail", "")),
        )

    def summary(self) -> str:
        note = f" ({self.detail})" if self.detail else ""
        return (
            f"{self.kind} after {self.attempt} attempt(s), "
            f"{self.elapsed:.2f}s{note}"
        )


@dataclass(frozen=True)
class SupervisionPolicy:
    """Guard-rails for out-of-process solves.

    Frozen and picklable: the policy crosses into pool initializers and
    journal headers unchanged.

    ``deadline`` is the per-task wall-clock budget in seconds; ``None``
    lets each driver derive one (the race uses its per-period solver
    budget; the batch runner runs unbounded unless told otherwise).  A
    task is killed — SIGKILL, not a polite request — once it exceeds
    ``deadline + grace``.
    """

    deadline: Optional[float] = None
    #: Slack beyond the deadline before the kill, covering model build,
    #: extraction and verification time around the solve proper.
    grace: float = 5.0
    #: Per-worker address-space cap (RLIMIT_AS), in MiB.  ``None``
    #: leaves the OS limit in place.
    memory_mb: Optional[int] = None
    #: How many times a crashed or hung task is re-dispatched before it
    #: fails for good.
    max_retries: int = 2
    #: Base backoff before a retry, doubling each time (0.25s, 0.5s, 1s,
    #: ...), so a crash-looping worker cannot spin the supervisor.
    backoff: float = 0.25

    def __post_init__(self) -> None:
        if self.deadline is not None and self.deadline <= 0:
            raise ValueError(f"deadline must be > 0, got {self.deadline}")
        if self.grace < 0:
            raise ValueError(f"grace must be >= 0, got {self.grace}")
        if self.memory_mb is not None and self.memory_mb < 1:
            raise ValueError(
                f"memory_mb must be >= 1, got {self.memory_mb}"
            )
        if self.max_retries < 0:
            raise ValueError(
                f"max_retries must be >= 0, got {self.max_retries}"
            )
        if self.backoff < 0:
            raise ValueError(f"backoff must be >= 0, got {self.backoff}")

    def retry_delay(self, tries: int) -> float:
        """Backoff before re-dispatching a task that failed ``tries`` times."""
        if tries < 1:
            return 0.0
        return self.backoff * (2.0 ** (tries - 1))

    def kill_after(self, deadline: Optional[float]) -> Optional[float]:
        """Seconds after task start at which the worker is killed."""
        budget = deadline if deadline is not None else self.deadline
        if budget is None:
            return None
        return budget + self.grace
