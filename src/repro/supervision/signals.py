"""Cooperative SIGINT/SIGTERM handling for long solve loops.

The drivers (sequential sweep, period race, batch runner) poll
:func:`interrupted` between dispatch steps; :func:`graceful_interrupts`
turns the first SIGINT/SIGTERM into that flag so a loop can settle to
its best-known incumbent and flush its journal instead of dying with a
stack trace.  A second SIGINT falls through to the default handler
(KeyboardInterrupt) so an impatient Ctrl-C Ctrl-C still works.

The flag is process-global on purpose: one run, one intent to stop.
Worker processes ignore SIGINT entirely (the supervisor decides their
fate), so only the parent observes the flag.
"""

from __future__ import annotations

import contextlib
import signal
import threading
from typing import Iterator, Tuple

_STOP = threading.Event()


def interrupted() -> bool:
    """True once a graceful-stop signal (or test request) has arrived."""
    return _STOP.is_set()


def request_interrupt() -> None:
    """Set the stop flag programmatically (tests, embedding apps)."""
    _STOP.set()


def clear_interrupt() -> None:
    """Reset the stop flag (start of a new supervised run)."""
    _STOP.clear()


@contextlib.contextmanager
def graceful_interrupts(
    signums: Tuple[int, ...] = (signal.SIGINT, signal.SIGTERM),
) -> Iterator[None]:
    """Route the first SIGINT/SIGTERM to the stop flag, the second on.

    No-op (flag-only) when not in the main thread, where Python forbids
    installing signal handlers.
    """
    if threading.current_thread() is not threading.main_thread():
        yield
        return

    previous = {}

    def _handler(signum, frame):  # noqa: ARG001 - signal API
        if _STOP.is_set():
            # Second signal: restore the old handler and re-raise so the
            # default behaviour (KeyboardInterrupt / termination) wins.
            signal.signal(signum, previous.get(signum, signal.SIG_DFL))
            raise KeyboardInterrupt
        _STOP.set()

    for signum in signums:
        previous[signum] = signal.signal(signum, _handler)
    try:
        yield
    finally:
        for signum, old in previous.items():
            signal.signal(signum, old)
        _STOP.clear()
