"""JSONL journal for checkpoint/resume of corpus batch runs.

A multi-hour ``repro batch`` over a large corpus must not lose
everything to a crash or Ctrl-C at loop 900.  The batch runner appends
one JSON line per *finished* loop (atomic single-write appends via
:class:`repro.supervision.atomicio.AppendOnlyLines`), and
``repro batch --resume journal.jsonl`` replays the journal: loops with a
recorded, non-failed outcome are carried over verbatim; failed or
missing loops run again, and their fresh outcomes are appended to the
same file.

File layout::

    {"journal_version": 1, "config_digest": "...", "machine": ..., ...}
    {"seq": 0, "source": "corpus/loop0000.ddg", "entry": {...}}
    {"seq": 2, "source": "corpus/loop0002.ddg", "entry": {...}}
    ...

The header pins the run configuration (machine content digest, backend,
objective, budgets, presolve/warm-start flags): resuming under different
settings would silently mix incomparable results, so it is an error.
A truncated final line (the crash landed mid-append despite O_APPEND) is
skipped with the entry treated as incomplete — exactly the re-run-it
answer.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Dict, Optional, Tuple

from repro.supervision.atomicio import AppendOnlyLines

JOURNAL_VERSION = 1


class JournalError(ValueError):
    """Unusable journal: bad header, version or config mismatch."""


def config_digest(machine_digest: str, **settings) -> str:
    """Digest of everything that must match between run and resume."""
    blob = json.dumps(
        {"machine": machine_digest, **settings}, sort_keys=True
    )
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def entry_key(source: str, name: str) -> str:
    """Journal key for one loop (source path alone is ambiguous for
    in-memory loops, which all report ``<memory>``)."""
    return f"{source}::{name}"


class BatchJournal:
    """Append-side handle for a batch run's journal."""

    def __init__(self, path, digest: str, meta: Optional[dict] = None):
        self.path = Path(path)
        existing = read_journal(self.path) if self.path.exists() else None
        self._writer = AppendOnlyLines(self.path)
        if existing is None or existing[0] is None:
            header = {
                "journal_version": JOURNAL_VERSION,
                "config_digest": digest,
                **(meta or {}),
            }
            self._writer.append(json.dumps(header, sort_keys=True))
        else:
            header = existing[0]
            if header.get("config_digest") != digest:
                self._writer.close()
                raise JournalError(
                    f"journal {self.path} was written with different "
                    "settings (machine/backend/budget mismatch); "
                    "refusing to mix results — use a fresh journal"
                )

    def record(self, seq: int, source: str, name: str,
               entry: dict) -> None:
        """Append one finished loop (atomic single-write line)."""
        line = json.dumps(
            {"seq": seq, "source": source, "name": name, "entry": entry},
            sort_keys=True,
        )
        self._writer.append(line)

    def close(self) -> None:
        self._writer.close()

    def __enter__(self) -> "BatchJournal":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def read_journal(
    path,
) -> Tuple[Optional[dict], Dict[str, dict]]:
    """Parse a journal into ``(header, {entry_key: line_dict})``.

    Later lines for the same loop win (a resumed run re-records its
    re-runs).  Corrupt or truncated lines are skipped — an unreadable
    record is indistinguishable from an unwritten one, and both mean
    "run that loop again".
    """
    header: Optional[dict] = None
    entries: Dict[str, dict] = {}
    with open(path, encoding="utf-8") as handle:
        for index, raw in enumerate(handle):
            raw = raw.strip()
            if not raw:
                continue
            try:
                record = json.loads(raw)
            except json.JSONDecodeError:
                continue  # truncated mid-append; treat as absent
            if index == 0 and "journal_version" in record:
                if record["journal_version"] != JOURNAL_VERSION:
                    raise JournalError(
                        f"journal {path} has version "
                        f"{record['journal_version']}, expected "
                        f"{JOURNAL_VERSION}"
                    )
                header = record
                continue
            if not isinstance(record, dict) or "entry" not in record:
                continue
            key = entry_key(
                str(record.get("source", "")), str(record.get("name", ""))
            )
            entries[key] = record
    return header, entries


def completed_entries(path) -> Tuple[Optional[dict], Dict[str, dict]]:
    """Like :func:`read_journal`, keeping only non-failed outcomes.

    An entry that recorded an ``error`` (including supervision failures:
    crash/hang/oom/interrupted) is dropped so the resumed run retries
    it; a loop that legitimately exhausted its solver budget
    (``achieved_t`` null, no error) counts as completed.
    """
    header, entries = read_journal(path)
    done = {
        key: record
        for key, record in entries.items()
        if isinstance(record.get("entry"), dict)
        and record["entry"].get("error") is None
    }
    return header, done
