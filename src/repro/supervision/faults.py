"""Deterministic fault injection for the supervision layer.

Every recovery path in :mod:`repro.supervision` is exercised in CI by
*injecting* the failure it guards against, instead of trusting that the
handling code works.  Faults are driven by the ``REPRO_FAULTS``
environment variable (worker processes inherit it), a comma-separated
list of clauses::

    kind@site[:key=value]...

``kind``
    ``crash``      — ``os._exit(70)`` (a hard worker death)
    ``hang``       — sleep far past any deadline (``seconds=`` to tune)
    ``oom``        — allocate until ``MemoryError`` (``mb=`` caps the
                     simulated allocation so tests stay bounded even
                     without an rlimit)
    ``malformed``  — corrupt the next solver :class:`Solution` so
                     extraction/verification fails downstream

``site``
    ``attempt``  — entry of :func:`repro.core.scheduler.attempt_period`
    ``batch``    — entry of the batch worker body (one whole loop)
    ``solve``    — :func:`repro.ilp.solve.solve` (malformed only)
    ``any``      — every site

Remaining ``key=value`` pairs filter on the context the site reports
(``t`` for the candidate period, ``loop`` for the loop name), plus two
control knobs: ``times=N`` caps how often the clause fires *per
process*, and ``after=N`` skips the first N matches (so "crash on the
second try" is expressible, which is how retry recovery is tested).

Examples::

    REPRO_FAULTS="crash@attempt:t=4"           # kill the T=4 worker
    REPRO_FAULTS="crash@attempt:t=4:times=1"   # ... only the first time
    REPRO_FAULTS="hang@batch:loop=loop0003"    # wedge one batch loop
    REPRO_FAULTS="malformed@solve:times=1"     # one corrupted solution

Everything here is inert — one dict lookup per call — unless the
variable is set.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

ENV_VAR = "REPRO_FAULTS"

KINDS = ("crash", "hang", "oom", "malformed")
SITES = ("attempt", "batch", "solve", "any")

#: Exit code used by the crash fault (visible in worker post-mortems).
CRASH_EXIT_CODE = 70


class FaultSpecError(ValueError):
    """A ``REPRO_FAULTS`` clause that cannot be parsed."""


@dataclass(frozen=True)
class FaultSpec:
    """One parsed fault clause."""

    kind: str
    site: str = "any"
    match: Tuple[Tuple[str, str], ...] = ()
    #: Max firings per process (None = every match).
    times: Optional[int] = None
    #: Matches to skip before the first firing.
    after: int = 0
    #: Hang duration (seconds).
    seconds: float = 3600.0
    #: Simulated-OOM allocation cap (MiB).
    mb: int = 256

    def matches(self, site: str, context: Dict[str, object]) -> bool:
        if self.site not in ("any", site):
            return False
        return all(
            str(context.get(key)) == value for key, value in self.match
        )


def parse_faults(text: str) -> List[FaultSpec]:
    """Parse a ``REPRO_FAULTS`` value into specs (empty list for "")."""
    specs: List[FaultSpec] = []
    for clause in filter(None, (c.strip() for c in text.split(","))):
        head, *options = clause.split(":")
        kind, _, site = head.partition("@")
        site = site or "any"
        if kind not in KINDS:
            raise FaultSpecError(
                f"unknown fault kind {kind!r} in {clause!r}; "
                f"expected one of {KINDS}"
            )
        if site not in SITES:
            raise FaultSpecError(
                f"unknown fault site {site!r} in {clause!r}; "
                f"expected one of {SITES}"
            )
        match: List[Tuple[str, str]] = []
        times: Optional[int] = None
        after = 0
        seconds = 3600.0
        mb = 256
        for option in options:
            key, sep, value = option.partition("=")
            if not sep or not value:
                raise FaultSpecError(
                    f"fault option {option!r} in {clause!r} is not "
                    "key=value"
                )
            try:
                if key == "times":
                    times = int(value)
                elif key == "after":
                    after = int(value)
                elif key == "seconds":
                    seconds = float(value)
                elif key == "mb":
                    mb = int(value)
                else:
                    match.append((key, value))
            except ValueError as exc:
                raise FaultSpecError(
                    f"bad value for {key!r} in {clause!r}: {exc}"
                ) from exc
        specs.append(
            FaultSpec(
                kind=kind, site=site, match=tuple(match), times=times,
                after=after, seconds=seconds, mb=mb,
            )
        )
    return specs


@dataclass
class _State:
    """Per-process parsed specs + firing counters, keyed on the env value."""

    raw: Optional[str] = None
    specs: List[FaultSpec] = field(default_factory=list)
    #: Per-spec count of *matches* seen (drives ``after``/``times``).
    seen: Dict[int, int] = field(default_factory=dict)


_STATE = _State()


def _active() -> List[FaultSpec]:
    raw = os.environ.get(ENV_VAR)
    if raw != _STATE.raw:
        _STATE.raw = raw
        _STATE.specs = parse_faults(raw) if raw else []
        _STATE.seen = {}
    return _STATE.specs


def _consume(index: int, spec: FaultSpec) -> bool:
    """Record a match for ``spec``; True when the clause should fire."""
    seen = _STATE.seen.get(index, 0)
    _STATE.seen[index] = seen + 1
    if seen < spec.after:
        return False
    if spec.times is not None and seen - spec.after >= spec.times:
        return False
    return True


def reset() -> None:
    """Forget cached specs and counters (tests)."""
    _STATE.raw = None
    _STATE.specs = []
    _STATE.seen = {}


def fire(site: str, **context) -> None:
    """Execute any crash/hang/oom fault armed for this site + context.

    Called at the top of each supervised task body.  ``crash`` does not
    return; ``hang`` returns only when the supervisor kills the process
    or the configured sleep elapses; ``oom`` raises ``MemoryError``.
    """
    specs = _active()
    if not specs:
        return
    for index, spec in enumerate(specs):
        if spec.kind == "malformed" or not spec.matches(site, context):
            continue
        if not _consume(index, spec):
            continue
        if spec.kind == "crash":
            os._exit(CRASH_EXIT_CODE)
        elif spec.kind == "hang":
            _hang(spec.seconds)
        elif spec.kind == "oom":
            _exhaust_memory(spec.mb)


def should_corrupt(site: str = "solve", **context) -> bool:
    """True when a ``malformed`` fault is armed for this site + context."""
    specs = _active()
    if not specs:
        return False
    for index, spec in enumerate(specs):
        if spec.kind != "malformed" or not spec.matches(site, context):
            continue
        if _consume(index, spec):
            return True
    return False


def corrupt_solution(solution):
    """Damage a feasible :class:`repro.ilp.solution.Solution` in place.

    Half the variable assignments disappear and one survivor turns
    fractional — guaranteed to trip extraction (missing key) or integer
    rounding downstream, exactly like a solver handing back garbage.
    """
    if not solution.values:
        return solution
    items = sorted(solution.values.items(), key=lambda kv: kv[0].name)
    kept = dict(items[: max(1, len(items) // 2)])
    first_var = next(iter(kept))
    kept[first_var] = kept[first_var] + 0.5
    solution.values = kept
    return solution


def _hang(seconds: float) -> None:
    # Sleep in slices so the fault stays observable in process listings;
    # the supervisor's SIGKILL ends it long before the total elapses.
    deadline = time.monotonic() + seconds
    while time.monotonic() < deadline:
        time.sleep(min(0.2, max(0.0, deadline - time.monotonic())))


def _exhaust_memory(mb: int) -> None:
    blocks = []
    chunk = 1 << 24  # 16 MiB
    try:
        while len(blocks) * 16 < mb:
            # Touch the pages so RSS actually grows under an rlimit.
            blocks.append(bytearray(chunk))
    except MemoryError:
        blocks.clear()
        raise
    blocks.clear()
    raise MemoryError(
        f"fault injection: simulated OOM after allocating ~{mb} MiB"
    )
