"""SAT backend: CNF lowering + pure-python CDCL solver.

The paper's unified formulation is nearly propositional — 0-1 slot
variables, pair-interference conflicts, small integer stage counts —
so it lowers naturally to CNF (Roorda's SMT pipeliner and Tirelli's
SAT-MapIt both exploit exactly this).  This subpackage mirrors how
:mod:`repro.ilp` is layered:

* :mod:`repro.sat.cnf` — a minimal CNF container (DIMACS-style
  signed-integer literals).
* :mod:`repro.sat.cardinality` — sequential-counter and totalizer
  at-most-k encodings plus exactly-one helpers.
* :mod:`repro.sat.solver` — a self-contained CDCL core (two-watched
  literals, 1-UIP learning, VSIDS, phase saving, Luby restarts,
  assumptions), the propositional sibling of ``ilp/simplex.py`` +
  ``ilp/branch_bound.py``.
* :mod:`repro.sat.encode` — lowers a built
  :class:`repro.core.formulation.Formulation` (slot windows, k bounds,
  pair verdicts) to CNF.
* :mod:`repro.sat.backend` — the ``backend="sat"`` entry point,
  returning the same :class:`repro.ilp.Solution` surface as
  ``ilp/highs.py`` so extraction, verification, warm starts and the
  store work unchanged.

The backend is feasibility-only (the sweep's hot path): a SATISFIABLE
answer maps to ``OPTIMAL`` under the constant objective, UNSAT to
``INFEASIBLE``, and an expired budget to ``TIME_LIMIT``.
"""

from repro.sat.cnf import Cnf
from repro.sat.errors import SatEncodeError
from repro.sat.solver import CdclSolver, SatResult, SatStats

__all__ = [
    "CdclSolver",
    "Cnf",
    "SatEncodeError",
    "SatResult",
    "SatStats",
]
