"""A minimal CNF formula container.

Literals are DIMACS-style signed integers: variable ``v`` (1-based)
appears positively as ``v`` and negatively as ``-v``.  Clauses are
plain lists of literals; the container only allocates variables and
accumulates clauses — all reasoning lives in
:class:`repro.sat.solver.CdclSolver`.
"""

from __future__ import annotations

from typing import Dict, Iterable, List


class Cnf:
    """A growable CNF formula."""

    __slots__ = ("num_vars", "clauses", "_names")

    def __init__(self) -> None:
        self.num_vars = 0
        self.clauses: List[List[int]] = []
        #: Optional debug names for variables (kept sparse).
        self._names: Dict[int, str] = {}

    def new_var(self, name: str = "") -> int:
        """Allocate a fresh variable; returns its (positive) literal."""
        self.num_vars += 1
        if name:
            self._names[self.num_vars] = name
        return self.num_vars

    def name_of(self, var: int) -> str:
        return self._names.get(abs(var), f"v{abs(var)}")

    def add_clause(self, lits: Iterable[int]) -> None:
        """Add one clause (a disjunction of literals).

        An empty iterable is a legitimate empty clause — it makes the
        formula trivially unsatisfiable, which the encoder uses for
        constraints it can refute structurally.
        """
        self.clauses.append(list(lits))

    def add(self, *lits: int) -> None:
        """Variadic convenience for :meth:`add_clause`."""
        self.clauses.append(list(lits))

    @property
    def num_clauses(self) -> int:
        return len(self.clauses)

    @property
    def num_literals(self) -> int:
        return sum(len(c) for c in self.clauses)

    def stats(self) -> Dict[str, int]:
        return {
            "variables": self.num_vars,
            "clauses": self.num_clauses,
            "literals": self.num_literals,
        }

    def __repr__(self) -> str:
        return (
            f"Cnf({self.num_vars} vars, {self.num_clauses} clauses, "
            f"{self.num_literals} literals)"
        )
