"""Errors raised by the SAT subsystem."""

from repro.ilp.errors import SolverError


class SatEncodeError(SolverError):
    """The formulation cannot be lowered to CNF.

    A subclass of :class:`repro.ilp.errors.SolverError` so every caller
    that already classifies solver failures (the supervision layer, the
    race, the batch runner) handles it without new plumbing.
    """
