"""``backend="sat"``: solve a scheduling formulation via CNF + CDCL.

Entry points mirror :mod:`repro.ilp.highs`: the result is a standard
:class:`repro.ilp.Solution`, so extraction, verification, warm starts,
the supervision layer and the store all work unchanged.  Status maps as

* SATISFIABLE -> ``OPTIMAL`` (feasibility objective: any model is
  optimal, objective and bound both 0),
* UNSAT -> ``INFEASIBLE``,
* budget expired -> ``TIME_LIMIT`` (no incumbent — SAT search has no
  anytime relaxation to report).

Every satisfying model is decoded to a full ILP assignment and checked
row-by-row against the built model before being returned
(:func:`repro.core.warmstart.violated_rows`), which makes cross-backend
agreement structural: a decode that violated any ILP row would raise,
never silently return a different schedule space.

The CNF is memoized on the formulation object (one encode per
formulation, however many solves race over it); counters are surfaced
through :func:`encode_stats` into ``repro cache stats``.

``REPRO_SAT_CARD`` selects the capacity cardinality encoding
(``auto``/``sequential``/``totalizer``) for differential testing.
"""

from __future__ import annotations

import os
import time
from typing import Dict, List, Optional, Sequence

from repro.ilp.errors import SolverError
from repro.ilp.model import Model, Variable
from repro.ilp.solution import Solution, SolveStatus
from repro.sat.encode import (
    SatEncoding,
    decode_model,
    encode_formulation,
    phase_hints,
)
from repro.sat.solver import SAT, UNSAT, CdclSolver

#: Environment override for the capacity cardinality encoding.
SAT_CARD_ENV = "REPRO_SAT_CARD"

#: Per-process encode counters (mirrors the formulation cache stats).
_ENCODE_STATS = {"encodes": 0, "memo_hits": 0}


def encode_stats() -> Dict[str, int]:
    """Per-process SAT encode counters (encodes vs memo hits)."""
    return dict(_ENCODE_STATS)


def reset_encode_stats() -> None:
    _ENCODE_STATS["encodes"] = 0
    _ENCODE_STATS["memo_hits"] = 0


def solve_sat(
    model: Model,
    time_limit: Optional[float] = None,
    gap: float = 1e-6,
    mip_start: Optional[Dict[Variable, float]] = None,
) -> Solution:
    """Backend-dispatch entry point (called by :func:`repro.ilp.solve.solve`)."""
    formulation = getattr(model, "_formulation", None)
    if formulation is None or formulation.model is not model:
        raise SolverError(
            "the sat backend lowers the scheduling formulation, not "
            "bare rows; build the model through "
            "repro.core.Formulation (bare Models are ILP-only)"
        )
    return solve_formulation(
        formulation, time_limit=time_limit, mip_start=mip_start
    )


def _encoding_for(formulation) -> SatEncoding:
    card = os.environ.get(SAT_CARD_ENV, "auto")
    cached = getattr(formulation, "_sat_encoding", None)
    if cached is not None and cached[0] == card:
        _ENCODE_STATS["memo_hits"] += 1
        return cached[1]
    encoding = encode_formulation(formulation, card=card)
    _ENCODE_STATS["encodes"] += 1
    formulation._sat_encoding = (card, encoding)
    return encoding


def solve_formulation(
    formulation,
    time_limit: Optional[float] = None,
    mip_start: Optional[Dict[Variable, float]] = None,
    assumptions: Optional[Sequence[int]] = None,
) -> Solution:
    """Solve a built formulation's feasibility question via CDCL.

    ``mip_start``: a *valid* start short-circuits to ``OPTIMAL``
    immediately (any feasible point is optimal under the constant
    objective — same move as ``ilp/highs.py``); an invalid one seeds
    the CDCL phase store so search begins in its neighborhood.

    ``assumptions``: raw solver literals to pin (see
    :func:`repro.sat.encode.seed_assumptions`); if they conflict the
    solve is retried unassumed, so callers can speculate freely.
    """
    from repro.core.warmstart import violated_rows

    start = time.monotonic()
    deadline = None if time_limit is None else start + time_limit
    formulation.build()

    hints: Optional[Dict[int, bool]] = None
    if mip_start:
        if not violated_rows(formulation, mip_start):
            objective = formulation.model.objective.value(mip_start)
            return Solution(
                status=SolveStatus.OPTIMAL,
                objective=objective,
                values=dict(mip_start),
                bound=objective,
                gap=0.0,
                solve_seconds=time.monotonic() - start,
                nodes=0,
                backend="sat",
                stats={"sat_warm_shortcircuit": 1.0},
            )

    encoding = _encoding_for(formulation)
    stats: Dict[str, float] = {
        "sat_encode_seconds": round(encoding.encode_seconds, 6),
        "sat_vars": float(encoding.cnf.num_vars),
        "sat_clauses": float(encoding.cnf.num_clauses),
    }
    if encoding.trivially_unsat:
        return Solution(
            status=SolveStatus.INFEASIBLE,
            solve_seconds=time.monotonic() - start,
            backend="sat",
            stats=stats,
        )
    if mip_start:
        # The start was invalid for this model (or this T): keep it as
        # phase hints only.
        hints = phase_hints(encoding, mip_start, formulation)

    search_start = time.monotonic()
    solver = CdclSolver(
        encoding.cnf.num_vars,
        encoding.cnf.clauses,
        phase_hints=hints,
    )
    remaining = (
        None if deadline is None
        else max(0.001, deadline - time.monotonic())
    )
    result = solver.solve(
        assumptions=assumptions or (), time_limit=remaining
    )
    if result.assumption_conflict:
        # Speculative pinning failed; the answer must come unassumed.
        remaining = (
            None if deadline is None
            else max(0.001, deadline - time.monotonic())
        )
        result = solver.solve(time_limit=remaining)
    stats["sat_search_seconds"] = round(
        time.monotonic() - search_start, 6
    )
    for key, value in result.stats.as_dict().items():
        stats[f"sat_{key}"] = float(value)
    stats.pop("sat_solve_seconds", None)

    if result.status == UNSAT:
        return Solution(
            status=SolveStatus.INFEASIBLE,
            solve_seconds=time.monotonic() - start,
            lower_seconds=encoding.encode_seconds,
            backend="sat",
            stats=stats,
        )
    if result.status != SAT:
        return Solution(
            status=SolveStatus.TIME_LIMIT,
            solve_seconds=time.monotonic() - start,
            lower_seconds=encoding.encode_seconds,
            backend="sat",
            stats=stats,
        )

    decode_start = time.monotonic()
    values = decode_model(formulation, encoding, result.model)
    bad = violated_rows(formulation, values)
    stats["sat_decode_seconds"] = round(
        time.monotonic() - decode_start, 6
    )
    if bad:
        shown: List[str] = bad[:5]
        raise SolverError(
            "sat decode produced an assignment violating "
            f"{len(bad)} model row(s): {shown} — encoding bug, "
            "refusing to return it"
        )
    objective = formulation.model.objective.value(values)
    return Solution(
        status=SolveStatus.OPTIMAL,
        objective=objective,
        values=values,
        bound=objective,
        gap=0.0,
        solve_seconds=time.monotonic() - start,
        lower_seconds=encoding.encode_seconds,
        backend="sat",
        stats=stats,
    )
