"""CNF lowering of the presolved scheduling formulation.

Translates a built :class:`repro.core.formulation.Formulation` (the
unified Eq. 22-25 model, post-presolve) into propositional clauses:

* **slots** — one literal per surviving ``a[t][i]`` variable, an
  exactly-one row per op (the windowed assignment constraint);
* **stages** — each ``k_i`` is order-encoded over its presolved bounds
  (``g_j`` reads "k_i >= lb+j+1", chained so the encoding is monotone);
* **dependences** — ``t_dst - t_src >= rho`` decomposes per slot pair
  into a stage-difference bound ``k_dst - k_src >= L`` with
  ``L = ceil((rho + v_src - v_dst) / T)``: always-true pairs vanish,
  impossible pairs become binary conflict clauses, the rest share an
  implication ladder over the order literals (grouped by ``L`` behind
  one activation literal when several slot pairs agree);
* **capacities** — per (FU type, stage, slot) occupancy literals
  bounded by the FU count through a sequential-counter or totalizer
  cardinality encoding (:mod:`repro.sat.cardinality`), with the same
  row-elision rules the ILP build applies (stage fits under capacity,
  duplicate rows);
* **mapping** — direct-encoded colors with the formulation's own
  symmetry caps as unit clauses; pair interference follows the
  presolve verdicts (NEVER pairs vanish, ALWAYS pairs get per-color
  conflict clauses, MAYBE pairs get a reservation-table collision
  indicator over exactly the colliding slot pairs).

Only the feasibility objective is supported — the sweep's hot path —
and only modulo-feasible periods (``u_binary``); anything else raises
:class:`repro.sat.errors.SatEncodeError` so the dispatcher can fail
fast with a clear message.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.presolve import ALWAYS, NEVER
from repro.core.warmstart import _footprint
from repro.ilp.model import Variable
from repro.sat.cardinality import ENCODINGS, at_most_k, exactly_one
from repro.sat.cnf import Cnf
from repro.sat.errors import SatEncodeError

#: Slot-pair buckets at least this large share one activation literal.
_LADDER_GROUP_MIN = 2


@dataclass
class SatEncoding:
    """A lowered formulation plus the maps needed to decode models."""

    cnf: Cnf = field(default_factory=Cnf)
    #: Refuted during encoding (presolve verdict, empty window, ...).
    trivially_unsat: bool = False
    unsat_reason: str = ""
    #: Per op: surviving slot -> slot literal.
    slot_lits: List[Dict[int, int]] = field(default_factory=list)
    #: Per op: k lower bound and order literals (g_j <=> k >= lb+j+1).
    k_lb: List[int] = field(default_factory=list)
    k_lits: List[List[int]] = field(default_factory=list)
    #: Per colored op: one literal per color 1..R.
    color_lits: Dict[int, List[int]] = field(default_factory=dict)
    #: Cardinality encoding(s) actually used for capacity rows.
    card_encodings: Tuple[str, ...] = ()
    encode_seconds: float = 0.0

    def k_ge(self, op_index: int, bound: int) -> Optional[int]:
        """Literal for ``k_op >= bound``; None = constant true, 0 = false."""
        lb = self.k_lb[op_index]
        if bound <= lb:
            return None
        j = bound - lb - 1
        lits = self.k_lits[op_index]
        if j >= len(lits):
            return 0
        return lits[j]


def encode_formulation(formulation, card: str = "auto") -> SatEncoding:
    """Lower ``formulation`` to CNF; raises SatEncodeError if unsupported."""
    start = time.monotonic()
    if card not in ENCODINGS:
        raise SatEncodeError(
            f"unknown cardinality encoding {card!r}; "
            f"expected one of {ENCODINGS}"
        )
    if formulation.options.objective != "feasibility":
        raise SatEncodeError(
            "the sat backend is feasibility-only; objective "
            f"{formulation.options.objective!r} needs an ILP backend "
            "(highs/bnb)"
        )
    formulation.build()
    if not formulation._u_binary:
        raise SatEncodeError(
            "the sat backend requires a modulo-feasible period "
            "(usage expressions must be 0-1); re-run with "
            "repair_modulo or an ILP backend"
        )

    encoding = SatEncoding()
    info = formulation.presolve_info
    if info is not None and info.infeasible:
        encoding.trivially_unsat = True
        encoding.unsat_reason = "presolve_infeasible"
        encoding.encode_seconds = time.monotonic() - start
        return encoding

    cnf = encoding.cnf
    ddg = formulation.ddg
    machine = formulation.machine
    t_period = formulation.t_period
    n = ddg.num_ops

    # -- slots ---------------------------------------------------------------
    sat_of: Dict[Variable, int] = {}
    for i in range(n):
        lits: Dict[int, int] = {}
        for t in range(t_period):
            var = formulation.a[t][i]
            if var is not None:
                lit = cnf.new_var(var.name)
                lits[t] = lit
                sat_of[var] = lit
        if not lits:
            encoding.trivially_unsat = True
            encoding.unsat_reason = f"empty_window[{i}]"
            encoding.encode_seconds = time.monotonic() - start
            return encoding
        encoding.slot_lits.append(lits)
        exactly_one(cnf, list(lits.values()))

    # -- stage counters (order encoding) -------------------------------------
    for i, var in enumerate(formulation.k):
        lb, ub = int(var.lb), int(var.ub)
        lits = [
            cnf.new_var(f"{var.name}>={lb + j + 1}")
            for j in range(ub - lb)
        ]
        for j in range(1, len(lits)):
            cnf.add(-lits[j], lits[j - 1])
        encoding.k_lb.append(lb)
        encoding.k_lits.append(lits)

    # -- dependences ---------------------------------------------------------
    if formulation.analysis is not None:
        separations = formulation.analysis.dep_latencies
    else:
        separations = ddg.dep_latencies(machine)
    for e, dep in enumerate(ddg.deps):
        rhs = separations[e] - t_period * dep.distance
        src, dst = dep.src, dep.dst
        if src == dst:
            if rhs > 0:
                cnf.add_clause([])
            continue
        src_lb, src_ub = encoding.k_lb[src], (
            encoding.k_lb[src] + len(encoding.k_lits[src])
        )
        dst_lb, dst_ub = encoding.k_lb[dst], (
            encoding.k_lb[dst] + len(encoding.k_lits[dst])
        )
        buckets: Dict[int, List[Tuple[int, int]]] = {}
        for v_src, s_src in encoding.slot_lits[src].items():
            for v_dst, s_dst in encoding.slot_lits[dst].items():
                bound = rhs + v_src - v_dst
                level = -((-bound) // t_period)  # ceil(bound / T)
                if level <= dst_lb - src_ub:
                    continue  # satisfied for every stage choice
                if level > dst_ub - src_lb:
                    cnf.add(-s_src, -s_dst)
                    continue
                buckets.setdefault(level, []).append((s_src, s_dst))
        for level in sorted(buckets):
            pairs = buckets[level]
            if len(pairs) >= _LADDER_GROUP_MIN:
                trigger = cnf.new_var(f"dep[{e}]L{level}")
                for s_src, s_dst in pairs:
                    cnf.add(-s_src, -s_dst, trigger)
                _emit_ladder(encoding, src, dst, level, [-trigger])
            else:
                for s_src, s_dst in pairs:
                    _emit_ladder(
                        encoding, src, dst, level, [-s_src, -s_dst]
                    )

    # -- capacities ----------------------------------------------------------
    usage = formulation.usage_terms()
    seen_rows: set = set()
    occupancy_aux: Dict[Tuple[int, Tuple[int, ...]], int] = {}
    cards_used: set = set()
    for fu_name, op_indices in formulation.ops_by_type().items():
        fu = machine.fu_type(fu_name)
        capacity = fu.count
        stages = machine.stage_count(fu_name)
        for stage in range(stages):
            users = [
                i for i in op_indices
                if formulation.stage_cycles(i, stage)
            ]
            if len(users) <= capacity:
                continue
            for t in range(t_period):
                occupants: List[Tuple[int, Tuple[int, ...]]] = []
                for i in users:
                    part = usage.get((i, stage, t))
                    if not part:
                        continue
                    lits = []
                    for var, coef in part.items():
                        if coef != 1.0:
                            raise SatEncodeError(
                                "non-unit usage coefficient at "
                                f"({i}, {stage}, {t}); period is not "
                                "modulo-feasible"
                            )
                        lits.append(sat_of[var])
                    occupants.append((i, tuple(sorted(lits))))
                if len(occupants) <= capacity:
                    # Each op holds the cell for at most one of its
                    # slots (exactly-one assignment), so the bound
                    # cannot be exceeded.
                    continue
                key = (
                    capacity,
                    tuple(lits for _, lits in sorted(occupants)),
                )
                if key in seen_rows:
                    continue
                seen_rows.add(key)
                occ_lits = []
                for i, lits in occupants:
                    if len(lits) == 1:
                        occ_lits.append(lits[0])
                        continue
                    aux_key = (i, lits)
                    aux = occupancy_aux.get(aux_key)
                    if aux is None:
                        aux = cnf.new_var(
                            f"occ[{i},{fu_name},s{stage}]"
                        )
                        occupancy_aux[aux_key] = aux
                        for lit in lits:
                            cnf.add(-lit, aux)
                    occ_lits.append(aux)
                cards_used.add(
                    at_most_k(cnf, occ_lits, capacity, encoding=card)
                )
    encoding.card_encodings = tuple(sorted(cards_used))

    # -- mapping (circular-arc coloring) -------------------------------------
    for fu_name in formulation.colored_types:
        ordered = formulation.color_order[fu_name]
        ops = sorted(ordered)
        count = machine.fu_type(fu_name).count
        for i in ops:
            lits = [
                cnf.new_var(f"c[{i}]={r + 1}") for r in range(count)
            ]
            encoding.color_lits[i] = lits
            exactly_one(cnf, lits)
        if formulation.options.symmetry_breaking:
            if info is not None:
                for rank in range(min(len(ordered), count - 1)):
                    for r in range(rank + 1, count):
                        cnf.add(-encoding.color_lits[ordered[rank]][r])
            else:
                for r in range(1, count):
                    cnf.add(-encoding.color_lits[ordered[0]][r])
        stages = machine.stage_count(fu_name)
        for pos, i in enumerate(ops):
            for j in ops[pos + 1:]:
                _encode_pair_conflict(
                    formulation, encoding, info, i, j, stages, count
                )

    encoding.encode_seconds = time.monotonic() - start
    return encoding


def _emit_ladder(
    encoding: SatEncoding,
    src: int,
    dst: int,
    level: int,
    premise: List[int],
) -> None:
    """Clauses for ``premise -> (k_dst - k_src >= level)``.

    Uses the order-literal ladder: for each admissible ``a``,
    ``(k_src >= a) -> (k_dst >= a + level)``.  Constant-true
    conclusions are skipped; the first constant-false conclusion
    subsumes all later ones (the order encoding is monotone), so the
    ladder stops there.
    """
    src_lb = encoding.k_lb[src]
    src_ub = src_lb + len(encoding.k_lits[src])
    dst_lb = encoding.k_lb[dst]
    start = max(src_lb, dst_lb - level + 1)
    for a in range(start, src_ub + 1):
        conclusion = encoding.k_ge(dst, a + level)
        if conclusion is None:
            continue
        clause = list(premise)
        prem_lit = encoding.k_ge(src, a)
        if prem_lit is not None and prem_lit != 0:
            clause.append(-prem_lit)
        if conclusion == 0:
            encoding.cnf.add_clause(clause)
            break
        clause.append(conclusion)
        encoding.cnf.add_clause(clause)


def _encode_pair_conflict(
    formulation,
    encoding: SatEncoding,
    info,
    i: int,
    j: int,
    stages: int,
    count: int,
) -> None:
    """Different-color clauses for one same-FU-type op pair.

    Follows the presolve verdict when available; otherwise computes the
    reservation-table collision residues directly (the slot-pair analog
    of the ILP's ``ov`` rows).
    """
    cnf = encoding.cnf
    shared = [
        s for s in range(stages)
        if formulation.stage_cycles(i, s)
        and formulation.stage_cycles(j, s)
    ]
    if not shared:
        return
    verdict = info.pairs.get((i, j)) if info is not None else None
    ci, cj = encoding.color_lits[i], encoding.color_lits[j]
    if verdict is not None and verdict.kind == NEVER:
        return
    if verdict is not None and verdict.kind == ALWAYS:
        for r in range(count):
            cnf.add(-ci[r], -cj[r])
        return
    t_period = formulation.t_period
    residues = set()
    for s in shared:
        cycles_i = formulation.stage_cycles(i, s)
        cycles_j = formulation.stage_cycles(j, s)
        for l_i in cycles_i:
            for l_j in cycles_j:
                residues.add((l_i - l_j) % t_period)
    colliding: List[Tuple[int, int]] = []
    total = 0
    for v_i, s_i in encoding.slot_lits[i].items():
        for v_j, s_j in encoding.slot_lits[j].items():
            total += 1
            if (v_j - v_i) % t_period in residues:
                colliding.append((s_i, s_j))
    if not colliding:
        return
    if len(colliding) == total:
        for r in range(count):
            cnf.add(-ci[r], -cj[r])
        return
    overlap = cnf.new_var(f"o[{i},{j}]")
    for s_i, s_j in colliding:
        cnf.add(-s_i, -s_j, overlap)
    for r in range(count):
        cnf.add(-overlap, -ci[r], -cj[r])


def decode_model(
    formulation, encoding: SatEncoding, model: Sequence[bool]
) -> Dict[Variable, float]:
    """Expand a CDCL model into a full ILP variable assignment.

    Mirrors :func:`repro.core.warmstart.warmstart_assignment`: slot and
    stage variables come straight from the literals; the ``w``/``o``
    coloring side variables are recomputed from reservation-table
    footprints so the point satisfies the Hu rows the CNF never
    materialized.  The caller validates the result with
    :func:`repro.core.warmstart.violated_rows` before trusting it.
    """
    values: Dict[Variable, float] = {}
    n = formulation.ddg.num_ops
    slots: List[int] = []
    for i in range(n):
        chosen = -1
        for t, lit in encoding.slot_lits[i].items():
            is_set = model[lit]
            values[formulation.a[t][i]] = 1.0 if is_set else 0.0
            if is_set:
                chosen = t
        slots.append(chosen)
    for i, var in enumerate(formulation.k):
        count = sum(1 for lit in encoding.k_lits[i] if model[lit])
        values[var] = float(encoding.k_lb[i] + count)
    for i, var in formulation.color.items():
        lits = encoding.color_lits[i]
        color = next(r for r, lit in enumerate(lits) if model[lit])
        values[var] = float(color + 1)

    footprints = {
        i: _footprint(formulation, i, slots[i])
        for i in set(formulation.color)
        | {i for pair in formulation.sign_var for i in pair}
    }
    for (i, j), var in formulation.overlap_var.items():
        overlaps = bool(footprints[i] & footprints[j])
        values[var] = 1.0 if overlaps else 0.0
    for (i, j), var in formulation.sign_var.items():
        overlap_var = formulation.overlap_var.get((i, j))
        overlapping = (
            overlap_var is None or values[overlap_var] == 1.0
        )
        if overlapping:
            higher = (
                values[formulation.color[i]]
                > values[formulation.color[j]]
            )
            values[var] = 1.0 if higher else 0.0
        else:
            values[var] = 0.0
    return values


def phase_hints(
    encoding: SatEncoding, values: Dict[Variable, float], formulation
) -> Dict[int, bool]:
    """Map an (possibly partial) ILP assignment onto literal phases.

    Used to seed the CDCL phase store from a warm-start incumbent: the
    search then explores the incumbent's neighborhood first without the
    hard commitment of assumptions.
    """
    hints: Dict[int, bool] = {}
    for i, lits in enumerate(encoding.slot_lits):
        for t, lit in lits.items():
            var = formulation.a[t][i]
            if var in values:
                hints[lit] = values[var] > 0.5
    for i, var in enumerate(formulation.k):
        if var not in values:
            continue
        k_val = int(round(values[var]))
        for j, lit in enumerate(encoding.k_lits[i]):
            hints[lit] = k_val >= encoding.k_lb[i] + j + 1
    for i, lits in encoding.color_lits.items():
        var = formulation.color.get(i)
        if var is None or var not in values:
            continue
        color = int(round(values[var]))
        for r, lit in enumerate(lits):
            hints[lit] = color == r + 1
    return hints


def seed_assumptions(
    encoding: SatEncoding, values: Dict[Variable, float], formulation
) -> List[int]:
    """Slot-pinning assumption literals from an incumbent assignment.

    Stronger than phase hints: the solver must extend exactly these
    slot choices, reporting ``assumption_conflict`` if they cannot be
    extended (callers then retry unassumed).
    """
    assumptions: List[int] = []
    for i, lits in enumerate(encoding.slot_lits):
        for t, lit in lits.items():
            var = formulation.a[t][i]
            if var in values and values[var] > 0.5:
                assumptions.append(lit)
    return assumptions
