"""A self-contained CDCL SAT solver.

The propositional sibling of ``ilp/simplex.py`` + ``ilp/branch_bound.py``:
pure python, no dependencies, deterministic.  Implements the standard
modern kernel:

* **two-watched literals** — each clause is watched on its first two
  positions; a literal's falsification visits only the clauses watching
  it (MiniSat's invariant and relocation discipline);
* **1-UIP conflict analysis** — resolve backwards along the trail until
  one literal of the current decision level remains, learn the
  asserting clause, backjump to its second-highest level;
* **VSIDS** — exponentially decayed activity with a lazy max-heap
  (stale entries are skipped on pop, duplicates pushed on bump/unassign);
* **phase saving** — decisions reuse the last value a variable held,
  seedable from an external hint (the warm-start incumbent);
* **Luby restarts** — universal-sequence restart intervals, with the
  learned-clause database reduced (by LBD) at restart time, when the
  trail is at the root level and watches can be rebuilt safely;
* **assumptions** — forced first decisions, so a caller can pin part of
  an assignment; a conflicting assumption reports
  ``assumption_conflict`` instead of global UNSAT.

Satisfying assignments are re-checked against every input clause before
being returned — the solver never hands back a model it cannot verify
in linear time (the same self-auditing posture as the warm LP engine).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from heapq import heapify, heappop, heappush
from typing import Dict, Iterable, List, Optional, Sequence

SAT = "sat"
UNSAT = "unsat"
UNKNOWN = "unknown"

#: Conflicts per Luby unit (the sequence multiplies this base).
_RESTART_BASE = 128
#: Wall-clock is polled every this many conflicts or decisions.
_BUDGET_CHECK_EVERY = 256
#: Learned-clause DB reduction trigger: first at this many learned
#: clauses, growing by the same amount after each reduction.
_REDUCE_BASE = 2000


@dataclass
class SatStats:
    """Search counters (reported up through ``Solution.stats``)."""

    decisions: int = 0
    conflicts: int = 0
    propagations: int = 0
    restarts: int = 0
    learned_clauses: int = 0
    learned_literals: int = 0
    deleted_clauses: int = 0
    solve_seconds: float = 0.0

    def as_dict(self) -> Dict[str, float]:
        return {
            "decisions": self.decisions,
            "conflicts": self.conflicts,
            "propagations": self.propagations,
            "restarts": self.restarts,
            "learned_clauses": self.learned_clauses,
            "learned_literals": self.learned_literals,
            "deleted_clauses": self.deleted_clauses,
            "solve_seconds": self.solve_seconds,
        }


@dataclass
class SatResult:
    """Outcome of one :meth:`CdclSolver.solve` call."""

    status: str
    #: ``model[v]`` is the truth value of variable ``v`` (1-based);
    #: present only when ``status == "sat"``.
    model: Optional[List[bool]] = None
    #: True when UNSAT was caused by the assumptions, not the formula.
    assumption_conflict: bool = False
    stats: SatStats = field(default_factory=SatStats)

    def __bool__(self) -> bool:
        return self.status == SAT


def _luby(i: int) -> int:
    """The i-th term (1-based) of the Luby restart sequence."""
    size, seq = 1, 0
    while size < i + 1:
        seq += 1
        size = 2 * size + 1
    while size - 1 != i:
        size = (size - 1) // 2
        seq -= 1
        i %= size
    return 1 << seq


class CdclSolver:
    """Conflict-driven clause learning over a fixed clause set."""

    def __init__(
        self,
        num_vars: int,
        clauses: Iterable[Sequence[int]],
        phase_hints: Optional[Dict[int, bool]] = None,
    ) -> None:
        self.nvars = num_vars
        self.assign = [0] * (num_vars + 1)   # 0 unknown, 1 true, -1 false
        self.level = [0] * (num_vars + 1)
        self.reason: List[Optional[List[int]]] = [None] * (num_vars + 1)
        self.trail: List[int] = []
        self.trail_lim: List[int] = []
        self.qhead = 0
        # watches[idx(lit)] = clauses currently watching ``lit``
        # (idx: positive lit v -> 2v, negative -> 2v+1).
        self.watches: List[List[List[int]]] = [
            [] for _ in range(2 * num_vars + 2)
        ]
        self.activity = [0.0] * (num_vars + 1)
        self.var_inc = 1.0
        self.var_decay = 1.0 / 0.95
        self.order: List = [(0.0, -v) for v in range(num_vars, 0, -1)]
        heapify(self.order)
        self.phase = [False] * (num_vars + 1)
        if phase_hints:
            for var, value in phase_hints.items():
                if 1 <= var <= num_vars:
                    self.phase[var] = bool(value)
        self.clauses: List[List[int]] = []
        self.learned: List[List[int]] = []
        self.lbd: Dict[int, int] = {}
        self.stats = SatStats()
        self.ok = True
        # Normalized copy of the input, kept for the final model audit.
        self._audit: List[List[int]] = []
        for clause in clauses:
            self._add_input_clause(clause)

    # -- construction --------------------------------------------------------
    def _add_input_clause(self, raw: Sequence[int]) -> None:
        seen = set()
        clause: List[int] = []
        for lit in raw:
            var = abs(lit)
            if not 1 <= var <= self.nvars:
                raise ValueError(
                    f"literal {lit} out of range for {self.nvars} vars"
                )
            if -lit in seen:
                return  # tautology
            if lit not in seen:
                seen.add(lit)
                clause.append(lit)
        self._audit.append(list(clause))
        if not self.ok:
            return
        if not clause:
            self.ok = False
            return
        if len(clause) == 1:
            lit = clause[0]
            value = self._value(lit)
            if value == -1:
                self.ok = False
            elif value == 0:
                self._enqueue(lit, None)
            return
        self.clauses.append(clause)
        self._attach(clause)

    def _attach(self, clause: List[int]) -> None:
        self.watches[self._idx(clause[0])].append(clause)
        self.watches[self._idx(clause[1])].append(clause)

    @staticmethod
    def _idx(lit: int) -> int:
        return (lit << 1) if lit > 0 else ((-lit) << 1) | 1

    def _value(self, lit: int) -> int:
        return self.assign[lit] if lit > 0 else -self.assign[-lit]

    # -- trail ---------------------------------------------------------------
    def _enqueue(self, lit: int, reason: Optional[List[int]]) -> None:
        var = abs(lit)
        self.assign[var] = 1 if lit > 0 else -1
        self.level[var] = len(self.trail_lim)
        self.reason[var] = reason
        self.trail.append(lit)

    def _cancel_until(self, target: int) -> None:
        if len(self.trail_lim) <= target:
            return
        bound = self.trail_lim[target]
        for lit in self.trail[bound:]:
            var = abs(lit)
            self.phase[var] = lit > 0
            self.assign[var] = 0
            self.reason[var] = None
            heappush(self.order, (-self.activity[var], -var))
        del self.trail[bound:]
        del self.trail_lim[target:]
        self.qhead = len(self.trail)

    # -- propagation ---------------------------------------------------------
    def _propagate(self) -> Optional[List[int]]:
        assign = self.assign
        watches = self.watches
        trail = self.trail
        level_now = len(self.trail_lim)
        while self.qhead < len(trail):
            p = trail[self.qhead]
            self.qhead += 1
            self.stats.propagations += 1
            falsified = -p
            wl = watches[self._idx(falsified)]
            i = j = 0
            n = len(wl)
            while i < n:
                clause = wl[i]
                i += 1
                if clause[0] == falsified:
                    clause[0] = clause[1]
                    clause[1] = falsified
                first = clause[0]
                value = assign[first] if first > 0 else -assign[-first]
                if value == 1:
                    wl[j] = clause
                    j += 1
                    continue
                relocated = False
                for k in range(2, len(clause)):
                    lit = clause[k]
                    lv = assign[lit] if lit > 0 else -assign[-lit]
                    if lv != -1:
                        clause[1] = lit
                        clause[k] = falsified
                        watches[self._idx(lit)].append(clause)
                        relocated = True
                        break
                if relocated:
                    continue
                wl[j] = clause
                j += 1
                if value == -1:
                    while i < n:
                        wl[j] = wl[i]
                        j += 1
                        i += 1
                    del wl[j:]
                    self.qhead = len(trail)
                    return clause
                var = first if first > 0 else -first
                assign[var] = 1 if first > 0 else -1
                self.level[var] = level_now
                self.reason[var] = clause
                trail.append(first)
            del wl[j:]
        return None

    # -- conflict analysis ---------------------------------------------------
    def _bump(self, var: int) -> None:
        self.activity[var] += self.var_inc
        if self.activity[var] > 1e100:
            for v in range(1, self.nvars + 1):
                self.activity[v] *= 1e-100
            self.var_inc *= 1e-100
        heappush(self.order, (-self.activity[var], -var))

    def _analyze(self, conflict: List[int]) -> List[int]:
        """Derive the 1-UIP clause; returns [asserting_lit, rest...]."""
        learnt: List[int] = []
        seen = bytearray(self.nvars + 1)
        counter = 0
        p = 0
        index = len(self.trail) - 1
        current = len(self.trail_lim)
        clause: Optional[List[int]] = conflict
        while True:
            for q in (clause if p == 0 else clause[1:]):
                var = abs(q)
                if not seen[var] and self.level[var] > 0:
                    seen[var] = 1
                    self._bump(var)
                    if self.level[var] >= current:
                        counter += 1
                    else:
                        learnt.append(q)
            while not seen[abs(self.trail[index])]:
                index -= 1
            p = self.trail[index]
            index -= 1
            counter -= 1
            if counter == 0:
                break
            clause = self.reason[abs(p)]
        learnt.insert(0, -p)
        return learnt

    def _backjump_level(self, learnt: List[int]) -> int:
        if len(learnt) == 1:
            return 0
        # Put the second-highest-level literal at position 1 so the
        # watch invariant holds immediately after backjumping.
        best = 1
        for i in range(2, len(learnt)):
            if self.level[abs(learnt[i])] > self.level[abs(learnt[best])]:
                best = i
        learnt[1], learnt[best] = learnt[best], learnt[1]
        return self.level[abs(learnt[1])]

    def _record_learnt(self, learnt: List[int]) -> None:
        self.stats.learned_clauses += 1
        self.stats.learned_literals += len(learnt)
        if len(learnt) == 1:
            self._enqueue(learnt[0], None)
            return
        self.learned.append(learnt)
        self.lbd[id(learnt)] = len(
            {self.level[abs(lit)] for lit in learnt}
        )
        self._attach(learnt)
        self._enqueue(learnt[0], learnt)

    # -- clause DB maintenance (root level only) -----------------------------
    def _reduce_db(self) -> None:
        keep_always = []
        candidates = []
        for clause in self.learned:
            if (len(clause) <= 2
                    or self.lbd.get(id(clause), 9) <= 2
                    or self.reason[abs(clause[0])] is clause):
                keep_always.append(clause)
            else:
                candidates.append(clause)
        candidates.sort(key=lambda c: (self.lbd.get(id(c), 9), len(c)))
        kept = candidates[: len(candidates) // 2]
        dropped = len(candidates) - len(kept)
        self.stats.deleted_clauses += dropped
        self.learned = keep_always + kept
        surviving = {id(c) for c in self.learned}
        self.lbd = {
            key: val for key, val in self.lbd.items() if key in surviving
        }
        self._rebuild_watches()

    def _rebuild_watches(self) -> None:
        """Re-attach every clause; callable only with the trail at root.

        At the root level after a clean propagation fixpoint every
        clause is either satisfied or has two non-false literals, so a
        fresh watch assignment is always available.
        """
        for wl in self.watches:
            wl.clear()
        for clause in self.clauses:
            self._rewatch(clause)
        for clause in self.learned:
            self._rewatch(clause)

    def _rewatch(self, clause: List[int]) -> None:
        free = []
        sat_at = -1
        for i, lit in enumerate(clause):
            value = self._value(lit)
            if value == 1:
                sat_at = i
                break
            if value == 0:
                free.append(i)
                if len(free) == 2:
                    break
        if sat_at >= 0:
            clause[0], clause[sat_at] = clause[sat_at], clause[0]
            for i in range(1, len(clause)):
                if self._value(clause[i]) != -1:
                    clause[1], clause[i] = clause[i], clause[1]
                    break
        else:
            clause[0], clause[free[0]] = clause[free[0]], clause[0]
            # free positions may have moved if free[1] was position 0
            second = free[1] if free[1] != 0 else free[0]
            clause[1], clause[second] = clause[second], clause[1]
        self._attach(clause)

    # -- decisions -----------------------------------------------------------
    def _pick_branch_var(self) -> int:
        while self.order:
            _, negvar = heappop(self.order)
            var = -negvar
            if self.assign[var] == 0:
                return var
        return 0

    # -- main search ---------------------------------------------------------
    def solve(
        self,
        assumptions: Sequence[int] = (),
        time_limit: Optional[float] = None,
        conflict_limit: Optional[int] = None,
    ) -> SatResult:
        start = time.monotonic()
        deadline = None if time_limit is None else start + time_limit
        stats = self.stats

        def done(status: str, **kw) -> SatResult:
            stats.solve_seconds += time.monotonic() - start
            return SatResult(status=status, stats=stats, **kw)

        if not self.ok:
            return done(UNSAT)
        if self._propagate() is not None:
            self.ok = False
            return done(UNSAT)
        for lit in assumptions:
            if not 1 <= abs(lit) <= self.nvars:
                raise ValueError(f"assumption {lit} out of range")

        assume = list(assumptions)
        restarts = 0
        conflicts_this_restart = 0
        budget = _luby(restarts + 1) * _RESTART_BASE
        reduce_at = _REDUCE_BASE
        ticks = 0

        while True:
            conflict = self._propagate()
            if conflict is not None:
                stats.conflicts += 1
                conflicts_this_restart += 1
                if not self.trail_lim:
                    self.ok = False
                    return done(UNSAT)
                learnt = self._analyze(conflict)
                target = self._backjump_level(learnt)
                self._cancel_until(target)
                self._record_learnt(learnt)
                self.var_inc *= self.var_decay
                if conflict_limit is not None and (
                        stats.conflicts >= conflict_limit):
                    self._cancel_until(0)
                    return done(UNKNOWN)
                if stats.conflicts % _BUDGET_CHECK_EVERY == 0:
                    if deadline is not None and (
                            time.monotonic() > deadline):
                        self._cancel_until(0)
                        return done(UNKNOWN)
                continue

            if conflicts_this_restart >= budget:
                stats.restarts += 1
                restarts += 1
                conflicts_this_restart = 0
                budget = _luby(restarts + 1) * _RESTART_BASE
                self._cancel_until(0)
                if self.stats.learned_clauses and (
                        len(self.learned) >= reduce_at):
                    self._reduce_db()
                    reduce_at += _REDUCE_BASE
                continue

            ticks += 1
            if ticks % _BUDGET_CHECK_EVERY == 0:
                if deadline is not None and time.monotonic() > deadline:
                    self._cancel_until(0)
                    return done(UNKNOWN)

            decision_level = len(self.trail_lim)
            if decision_level < len(assume):
                lit = assume[decision_level]
                value = self._value(lit)
                if value == -1:
                    self._cancel_until(0)
                    return done(UNSAT, assumption_conflict=True)
                self.trail_lim.append(len(self.trail))
                if value == 0:
                    self._enqueue(lit, None)
                continue

            var = self._pick_branch_var()
            if var == 0:
                model = [False] * (self.nvars + 1)
                for v in range(1, self.nvars + 1):
                    model[v] = self.assign[v] == 1
                self._audit_model(model)
                self._cancel_until(0)
                return done(SAT, model=model)
            stats.decisions += 1
            self.trail_lim.append(len(self.trail))
            self._enqueue(var if self.phase[var] else -var, None)

    def _audit_model(self, model: List[bool]) -> None:
        for clause in self._audit:
            if not any(
                model[lit] if lit > 0 else not model[-lit]
                for lit in clause
            ):
                raise RuntimeError(
                    "internal error: CDCL model violates clause "
                    f"{clause!r}"
                )
