"""Cardinality constraint encodings over CNF.

Two at-most-k encodings, selectable because they trade size against
propagation strength differently on our two constraint families:

* **sequential counter** (Sinz 2005, LT-SEQ) — ``n*k`` auxiliary
  variables, arc-consistent, compact for the small bounds that dominate
  FU capacities (count <= 4 in every preset machine);
* **totalizer** (Bailleux & Boutonnet 2003) — a balanced tree of unary
  counters, ``O(n log n)`` auxiliaries with outputs capped at ``k+1``,
  better when many literals share one constraint (wide capacity rows on
  large T).

Both handle duplicate literals (a coefficient-2 contribution is just
the literal listed twice).  ``exactly_one`` / ``at_most_one`` cover the
assignment and color rows, pairwise below a size threshold and a
1-bounded sequential ladder above it.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.sat.cnf import Cnf

ENCODINGS = ("auto", "sequential", "totalizer")

#: Pairwise at-most-one is smaller than the ladder up to this size.
_PAIRWISE_MAX = 5
#: ``auto`` switches to the totalizer above this many literals.
_TOTALIZER_MIN_LITS = 32


def exactly_one(cnf: Cnf, lits: Sequence[int]) -> None:
    """Exactly one of ``lits`` is true."""
    if not lits:
        cnf.add_clause([])
        return
    cnf.add_clause(list(lits))
    at_most_one(cnf, lits)


def at_most_one(cnf: Cnf, lits: Sequence[int]) -> None:
    """At most one of ``lits`` is true."""
    n = len(lits)
    if n <= 1:
        return
    if n <= _PAIRWISE_MAX:
        for i in range(n):
            for j in range(i + 1, n):
                cnf.add(-lits[i], -lits[j])
        return
    _sequential(cnf, lits, 1)


def at_most_k(
    cnf: Cnf, lits: Sequence[int], k: int, encoding: str = "auto"
) -> str:
    """Constrain ``sum(lits) <= k``; returns the encoding actually used."""
    if encoding not in ENCODINGS:
        raise ValueError(
            f"unknown cardinality encoding {encoding!r}; "
            f"expected one of {ENCODINGS}"
        )
    n = len(lits)
    if k < 0:
        cnf.add_clause([])
        return "trivial"
    if k == 0:
        for lit in lits:
            cnf.add(-lit)
        return "trivial"
    if n <= k:
        return "trivial"
    if k == 1 and encoding == "auto":
        at_most_one(cnf, lits)
        return "sequential" if n > _PAIRWISE_MAX else "pairwise"
    if encoding == "auto":
        encoding = (
            "totalizer" if n >= _TOTALIZER_MIN_LITS else "sequential"
        )
    if encoding == "totalizer":
        _totalizer(cnf, lits, k)
    else:
        _sequential(cnf, lits, k)
    return encoding


def _sequential(cnf: Cnf, lits: Sequence[int], k: int) -> None:
    """Sinz's sequential unary counter for ``sum(lits) <= k``.

    ``r[i][j]`` reads "at least ``j+1`` of the first ``i+1`` literals
    are true"; the final row is elided — only its overflow clause is
    emitted.
    """
    n = len(lits)
    prev: List[int] = []
    for i in range(n - 1):
        x = lits[i]
        cur = [cnf.new_var() for _ in range(k)]
        cnf.add(-x, cur[0])
        if prev:
            for j in range(k):
                cnf.add(-prev[j], cur[j])
            for j in range(1, k):
                cnf.add(-x, -prev[j - 1], cur[j])
            cnf.add(-x, -prev[k - 1])
        else:
            for j in range(1, k):
                cnf.add(-cur[j])
        prev = cur
    if prev:
        cnf.add(-lits[-1], -prev[k - 1])


def _totalizer(cnf: Cnf, lits: Sequence[int], k: int) -> None:
    """Bailleux–Boutonnet totalizer for ``sum(lits) <= k``.

    Builds a balanced merge tree whose node outputs are unary counts
    truncated at ``k+1``; only the "sum propagates up" direction is
    emitted (sufficient for an upper bound), then output ``k+1`` is
    forbidden.
    """
    limit = k + 1

    def build(lo: int, hi: int) -> List[int]:
        if hi - lo == 1:
            return [lits[lo]]
        mid = (lo + hi) // 2
        left = build(lo, mid)
        right = build(mid, hi)
        m = min(hi - lo, limit)
        out = [cnf.new_var() for _ in range(m)]
        for alpha in range(min(len(left), m) + 1):
            for beta in range(min(len(right), m) + 1):
                sigma = alpha + beta
                if sigma == 0 or sigma > m:
                    continue
                clause = [out[sigma - 1]]
                if alpha:
                    clause.append(-left[alpha - 1])
                if beta:
                    clause.append(-right[beta - 1])
                cnf.add_clause(clause)
        return out

    out = build(0, len(lits))
    if len(out) >= limit:
        cnf.add(-out[limit - 1])
