"""repro — rate-optimal software pipelining with structural hazards.

A production-quality reproduction of

    Erik R. Altman, R. Govindarajan, Guang R. Gao.
    *Scheduling and Mapping: Software Pipelining in the Presence of
    Structural Hazards.*  PLDI 1995.

Quickstart::

    from repro import schedule_loop, kernels, presets

    machine = presets.motivating_machine()
    loop = kernels.motivating_example()
    result = schedule_loop(loop, machine)
    print(result.summary())
    print(result.schedule.render_kernel())

Layout:

* :mod:`repro.core`      — the unified ILP scheduling+mapping formulation
* :mod:`repro.ddg`       — dependence graphs, kernels, generators
* :mod:`repro.machine`   — reservation tables, FU types, machine presets
* :mod:`repro.ilp`       — modeling layer + simplex/B&B/HiGHS solvers
* :mod:`repro.baselines` — iterative modulo scheduling, list scheduling
* :mod:`repro.sim`       — cycle-accurate replay (hazard cross-check)
* :mod:`repro.codegen`   — prolog/kernel/epilog emission
* :mod:`repro.parallel`  — multiprocess period racing + corpus batch runs
"""

from repro.core import (
    Formulation,
    FormulationOptions,
    LowerBounds,
    MappingError,
    ModuloInfeasibleError,
    Schedule,
    SchedulingResult,
    VerificationError,
    lower_bounds,
    schedule_loop,
    verify_schedule,
)
from repro.ddg import Ddg
from repro.ddg import generators, kernels
from repro.frontend import compile_loop
from repro.machine import Machine, ReservationTable
from repro.machine import presets

__version__ = "1.0.0"

__all__ = [
    "Ddg",
    "Formulation",
    "FormulationOptions",
    "LowerBounds",
    "Machine",
    "MappingError",
    "ModuloInfeasibleError",
    "ReservationTable",
    "Schedule",
    "SchedulingResult",
    "VerificationError",
    "__version__",
    "compile_loop",
    "generators",
    "kernels",
    "lower_bounds",
    "presets",
    "schedule_loop",
    "verify_schedule",
]
