"""The ``repro serve`` daemon: asyncio HTTP front, supervised solve back.

Architecture — two threads, one direction of ownership:

* the **asyncio event loop** (main thread) owns the HTTP server and all
  admission decisions: rate limits, load shedding, coalescing, breaker
  rejection, journaling of accepted jobs.  Handlers never block on a
  solve — a submit returns a job id immediately and ``GET /jobs/<id>``
  long-polls the job's completion event.
* the **dispatcher thread** exclusively owns the
  :class:`~repro.supervision.SupervisedExecutor` (which is
  single-threaded by design): it pulls jobs off the weighted fair
  queue, expands portfolio jobs into one supervised task per
  breaker-allowed backend, settles each job on its first verdict
  (killing sibling tasks), and reports per-backend outcomes to the
  circuit breaker.

Shared state (job registry, fair queue, stats, breaker, journal) is
individually thread-safe; jobs signal completion through a
``threading.Event`` the HTTP side polls, so no asyncio primitive is
ever touched from the dispatcher thread.

The HTTP protocol is deliberately minimal — HTTP/1.1, JSON bodies,
``Connection: close`` — parsed directly off the asyncio streams so the
daemon needs nothing beyond the standard library.  Routes::

    POST /submit        {ddg, machine, backend?, objective?, client?,
                         weight?}                 -> 200 {job: id, ...}
    GET  /jobs/<id>[?wait=SECONDS]                -> 200 job document
    GET  /healthz                                 -> 200 {ok, draining}
    GET  /stats                                   -> 200 full snapshot
    POST /drain                                   -> 200 (begin drain)

Graceful drain (SIGTERM or ``POST /drain``): admission flips to 503,
in-flight and queued jobs get ``drain_grace`` seconds to finish, and
whatever remains is already in the journal as accepted-but-unfinished
— the next incarnation re-admits those jobs under their original ids,
which is also exactly what happens after a SIGKILL with no drain at
all.  An accepted job is never lost.
"""

from __future__ import annotations

import asyncio
import json
import math
import multiprocessing
import os
import signal
import threading
import time
import uuid
from typing import Dict, List, Optional, Tuple

from repro.ddg.builders import parse_ddg
from repro.machine import presets
from repro.parallel.race import (
    PORTFOLIO_BACKENDS,
    default_portfolio,
)
from repro.serve.admission import FairQueue, TokenBucket
from repro.serve.breaker import CircuitBreaker
from repro.serve.config import ServeConfig
from repro.serve.jobs import (
    CANCELLED,
    DONE,
    FAILED,
    QUEUED,
    RUNNING,
    Job,
    request_config,
    solve_args,
    solve_request,
)
from repro.serve.journal import (
    ServeJournal,
    read_serve_journal,
    unfinished_jobs,
)
from repro.serve.stats import ServeStats
from repro.store.tiering import request_key
from repro.supervision.executor import SupervisedExecutor
from repro.supervision.journal import config_digest
from repro.supervision.records import SupervisionPolicy

_REASONS = {
    200: "OK", 400: "Bad Request", 404: "Not Found",
    405: "Method Not Allowed", 429: "Too Many Requests",
    500: "Internal Server Error", 503: "Service Unavailable",
}

#: Backends a request may name (``portfolio`` expands to a roster).
_REQUEST_BACKENDS = ("auto", "portfolio") + PORTFOLIO_BACKENDS

#: Daemon modes.  running -> draining -> halted is the only path.
_RUNNING = "running"
_DRAINING = "draining"
_HALTED = "halted"


def _close_inherited_fds(fds) -> None:
    """Worker initializer: drop the daemon's listening sockets."""
    for fd in fds:
        try:
            os.close(fd)
        except OSError:
            pass


class ServeDaemon:
    """One daemon incarnation; see the module docstring for the design."""

    def __init__(self, config: Optional[ServeConfig] = None) -> None:
        self.config = config or ServeConfig()
        self.stats = ServeStats()
        self.breaker = CircuitBreaker(
            threshold=self.config.breaker_threshold,
            cooldown=self.config.breaker_cooldown,
        )
        self.queue = FairQueue(self.config.queue_depth)
        self._buckets: Dict[str, TokenBucket] = {}
        self._buckets_lock = threading.Lock()
        #: job id -> Job; also holds finished jobs for polling.
        self._registry: Dict[str, Job] = {}
        #: coalescing map: store key -> in-flight primary job id.
        self._inflight: Dict[str, str] = {}
        self._registry_lock = threading.Lock()
        self._journal: Optional[ServeJournal] = None
        self._journal_lock = threading.Lock()
        self._mode = _RUNNING
        self._dispatcher: Optional[threading.Thread] = None
        #: Live connection-handler tasks; drain waits for them so an
        #: in-flight long-poll gets its response before the loop dies.
        self._connections: set = set()
        self._server: Optional[asyncio.AbstractServer] = None
        self._stopped: Optional[asyncio.Event] = None
        self.port: Optional[int] = None

    # ------------------------------------------------------------------
    # lifecycle

    def _digest(self) -> str:
        return config_digest("serve", **self.config.digest_settings())

    async def start(self) -> None:
        """Resume from the journal, start the server and the dispatcher."""
        self._stopped = asyncio.Event()
        if self.config.journal is not None:
            self._resume_from_journal()
            self._journal = ServeJournal(
                self.config.journal, self._digest()
            )
        # Bind before spawning the dispatcher: workers must know the
        # listening fds so forked children can close their inherited
        # copies (an orphaned worker holding the socket would keep the
        # port half-alive after the daemon is SIGKILLed, turning what
        # should be instant connection refusals into client hangs).
        self._server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port,
        )
        self._listen_fds = tuple(
            sock.fileno() for sock in self._server.sockets
        )
        self._dispatcher = threading.Thread(
            target=self._dispatch_loop, name="serve-dispatcher",
            daemon=True,
        )
        self._dispatcher.start()
        self.port = self._server.sockets[0].getsockname()[1]
        if self.config.port_file:
            with open(self.config.port_file, "w", encoding="utf-8") as fh:
                fh.write(f"{self.port}\n")

    async def run(self) -> None:
        """Start and serve until a drain completes (SIGTERM/POST /drain)."""
        await self.start()
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(
                    signum, lambda: loop.create_task(self.drain())
                )
            except (NotImplementedError, RuntimeError):
                pass  # non-main thread / unsupported platform
        await self._stopped.wait()

    async def drain(self) -> None:
        """Stop admitting; finish or journal in-flight; shut down."""
        if self._mode != _RUNNING:
            return
        self._mode = _DRAINING
        deadline = time.monotonic() + self.config.drain_grace
        while time.monotonic() < deadline and self._unfinished() > 0:
            await asyncio.sleep(0.1)
        self._mode = _HALTED
        if self._dispatcher is not None:
            await asyncio.get_running_loop().run_in_executor(
                None, self._dispatcher.join
            )
        with self._journal_lock:
            if self._journal is not None:
                self._journal.close()
                self._journal = None
        pending = {
            task for task in self._connections
            if task is not asyncio.current_task()
        }
        if pending:
            await asyncio.wait(pending, timeout=5.0)
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if self._stopped is not None:
            self._stopped.set()

    def _unfinished(self) -> int:
        with self._registry_lock:
            return sum(
                1 for job in self._registry.values() if not job.finished
            )

    def _resume_from_journal(self) -> None:
        """Rebuild registry state from a previous incarnation's journal."""
        header, accepted, done = read_serve_journal(self.config.journal)
        if header is None:
            return
        for job_id, line in done.items():
            source = accepted.get(job_id, {})
            job = Job(
                job_id, source.get("client", "anon"),
                source.get("key", ""), source.get("request", {}),
            )
            job.state = line.get("state", DONE)
            job.entry = line.get("entry")
            job.error = line.get("error")
            job.failure = line.get("failure")
            job.finished_at = job.submitted_at
            job.event.set()
            self._registry[job_id] = job
        for job_id, line in accepted.items():
            if job_id in done:
                continue
            # Interrupted mid-flight: re-admit under the original id so
            # pollers that outlived the restart still get their answer.
            job = Job(
                job_id, line.get("client", "anon"), line.get("key", ""),
                line.get("request", {}), weight=line.get("weight", 1),
            )
            self._registry[job_id] = job
            primary = self._inflight.get(job.key)
            if primary is not None:
                self._coalesce_locked(job, self._registry[primary])
            else:
                if job.key:
                    self._inflight[job.key] = job.id
                self.queue.push(job, job.client, job.weight)
            self.stats.bump("resumed")

    # ------------------------------------------------------------------
    # admission (asyncio thread)

    def _bucket(self, client: str) -> TokenBucket:
        with self._buckets_lock:
            bucket = self._buckets.get(client)
            if bucket is None:
                bucket = TokenBucket(self.config.rate, self.config.burst)
                self._buckets[client] = bucket
            return bucket

    def _journal_accepted(self, job: Job) -> None:
        with self._journal_lock:
            if self._journal is not None:
                self._journal.accepted(
                    job.id, job.client, job.key, job.request, job.weight
                )

    def _journal_done(self, job: Job) -> None:
        with self._journal_lock:
            if self._journal is not None:
                self._journal.done(
                    job.id, job.state, entry=job.entry,
                    error=job.error, failure=job.failure,
                )

    def _coalesce_locked(self, job: Job, primary: Job) -> None:
        """Attach ``job`` to ``primary``'s solve (registry lock held)."""
        job.coalesced_with = primary.id
        primary.followers.append(job)
        self.stats.bump("coalesced")

    def submit(self, payload: dict) -> Tuple[int, dict, List[Tuple[str, str]]]:
        """Admit one submission; returns (status, body, extra headers)."""
        self.stats.bump("submitted")
        if self._mode != _RUNNING:
            return 503, {"error": "daemon is draining"}, []
        client = str(payload.get("client") or "anon")
        weight = int(payload.get("weight", 1))
        wait = self._bucket(client).take()
        if wait is not None:
            self.stats.bump("rate_limited")
            retry = max(1, math.ceil(wait))
            return (
                429,
                {"error": f"client {client!r} exceeded its rate limit",
                 "retry_after": retry},
                [("Retry-After", str(retry))],
            )
        text = payload.get("ddg")
        machine_name = payload.get("machine")
        if not isinstance(text, str) or not text.strip():
            return 400, {"error": "missing 'ddg' text"}, []
        if not isinstance(machine_name, str):
            return 400, {"error": "missing 'machine' preset name"}, []
        backend = str(payload.get("backend", "portfolio"))
        if backend not in _REQUEST_BACKENDS:
            return 400, {
                "error": f"unknown backend {backend!r}; expected one of "
                         f"{_REQUEST_BACKENDS}",
            }, []
        objective = str(payload.get("objective", "feasibility"))
        try:
            machine = presets.by_name(machine_name)
            ddg = parse_ddg(text)
            ddg.validate_against(machine)
        except Exception as exc:  # noqa: BLE001 - user input boundary
            return 400, {"error": f"{type(exc).__name__}: {exc}"}, []
        # Backend health: refuse now rather than queue work that the
        # dispatcher would only bounce off an open breaker.
        if backend in PORTFOLIO_BACKENDS and not self.breaker.allows(backend):
            retry = math.ceil(self.breaker.retry_after(backend) or 1)
            self.stats.bump("breaker_rejected")
            return (
                503,
                {"error": f"backend {backend!r} is circuit-broken",
                 "retry_after": retry},
                [("Retry-After", str(retry))],
            )
        if backend == "portfolio" and not self.breaker.filter_roster(
            default_portfolio(objective)
        ):
            self.stats.bump("breaker_rejected")
            return 503, {"error": "every portfolio backend is "
                                  "circuit-broken"}, []
        request = {
            "ddg": text,
            "machine": machine_name,
            "backend": backend,
            "objective": objective,
            "time_limit": float(
                payload.get("time_limit", self.config.time_limit)
            ),
            "warmstart": bool(payload.get("warmstart", True)),
        }
        key = request_key(
            ddg, machine, request_config(request), self.config.max_extra
        )
        job = Job(uuid.uuid4().hex[:12], client, key, request, weight)
        with self._registry_lock:
            primary_id = self._inflight.get(key)
            primary = (
                self._registry.get(primary_id)
                if primary_id is not None else None
            )
            if primary is not None and not primary.finished:
                self._registry[job.id] = job
                self._coalesce_locked(job, primary)
                self._journal_accepted(job)
                self.stats.bump("accepted")
                return 200, {
                    "job": job.id, "coalesced_with": primary.id,
                }, []
            if not self.queue.push(job, client, weight):
                self.stats.bump("shed")
                retry = max(1, math.ceil(
                    self.config.queue_depth / self.config.rate
                ))
                return (
                    429,
                    {"error": "admission queue is full",
                     "retry_after": retry},
                    [("Retry-After", str(retry))],
                )
            self._registry[job.id] = job
            self._inflight[key] = job.id
        self._journal_accepted(job)
        self.stats.bump("accepted")
        return 200, {"job": job.id}, []

    # ------------------------------------------------------------------
    # dispatcher (its own thread; sole owner of the executor)

    def _policy(self) -> SupervisionPolicy:
        return SupervisionPolicy(
            deadline=self.config.deadline,
            grace=self.config.grace,
            max_retries=self.config.max_retries,
            backoff=self.config.backoff,
        )

    def _job_backends(self, job: Job) -> Tuple[str, ...]:
        backend = job.request.get("backend", "auto")
        objective = job.request.get("objective", "feasibility")
        if backend == "portfolio":
            return self.breaker.filter_roster(default_portfolio(objective))
        if backend in PORTFOLIO_BACKENDS:
            return (backend,) if self.breaker.allows(backend) else ()
        return (str(backend),)  # "auto": untracked by the breaker

    def _dispatch_loop(self) -> None:
        initializer, initargs = None, ()
        if multiprocessing.get_start_method() == "fork":
            # Forked workers inherit the listening socket; close it so
            # the port dies with the daemon process, not with the last
            # solver worker.  (spawn/forkserver children inherit no
            # fds, and closing by number there would hit a stranger's.)
            initializer = _close_inherited_fds
            initargs = (getattr(self, "_listen_fds", ()),)
        executor = SupervisedExecutor(
            max_workers=self.config.workers, policy=self._policy(),
            initializer=initializer, initargs=initargs,
        )
        #: task -> (job, backend); one job may fan out to many tasks.
        task_map: Dict[object, Tuple[Job, str]] = {}
        #: job id -> outstanding tasks (for sibling kills).
        job_tasks: Dict[str, List[object]] = {}
        try:
            while True:
                if self._mode == _HALTED:
                    break
                if (self._mode == _DRAINING
                        and not task_map and len(self.queue) == 0):
                    break
                while executor.outstanding() < self.config.workers:
                    job = self.queue.pop()
                    if job is None:
                        break
                    self._start_job(executor, job, task_map, job_tasks)
                if not task_map:
                    time.sleep(0.05)
                    continue
                for task in executor.poll(timeout=0.2):
                    self._task_finished(
                        executor, task, task_map, job_tasks
                    )
        finally:
            # Whatever is still outstanding stays accepted-but-
            # unfinished in the journal; the next incarnation re-admits.
            executor.shutdown()

    def _start_job(self, executor, job: Job, task_map, job_tasks) -> None:
        roster = self._job_backends(job)
        if not roster:
            self._finish_job(
                job, FAILED,
                error="every eligible backend is circuit-broken",
                failure={"kind": "breaker_open", "detail":
                         "roster empty after breaker filtering"},
            )
            return
        job.state = RUNNING
        tasks = []
        for name in roster:
            task = executor.submit(
                solve_request,
                *solve_args(job.request, name, self.config.max_extra,
                            self.config.store),
                tag=job.id,
                deadline=self.config.deadline,
            )
            task_map[task] = (job, name)
            tasks.append(task)
        job_tasks[job.id] = tasks

    def _task_finished(self, executor, task, task_map, job_tasks) -> None:
        entry = task_map.pop(task, None)
        if entry is None:
            return
        job, backend = entry
        remaining = job_tasks.get(job.id, [])
        if task in remaining:
            remaining.remove(task)
        tracked = backend in PORTFOLIO_BACKENDS
        if task.failure is not None:
            if tracked:
                self.breaker.record_failure(backend, task.failure.kind)
            self.stats.record_failure_kind(task.failure.kind)
            if job.finished:
                return  # a sibling already settled the job
            if remaining:
                return  # siblings still racing carry the job
            job_tasks.pop(job.id, None)
            self._finish_job(
                job, FAILED,
                error=f"solve failed ({task.failure.kind}): "
                      f"{task.failure.detail}",
                failure=task.failure.to_json_dict(),
            )
            return
        if task.state == CANCELLED:
            return  # a killed sibling of an already-settled job
        if tracked:
            self.breaker.record_success(backend)
        if job.finished:
            return
        # First verdict wins the job; reap the sibling backends.
        for sibling in list(remaining):
            if executor.kill_task(sibling):
                task_map.pop(sibling, None)
                remaining.remove(sibling)
        job_tasks.pop(job.id, None)
        result = dict(task.result)
        result.setdefault("winner_backend", backend)
        self._finish_job(job, DONE, entry=result)

    def _finish_job(self, job: Job, state: str,
                    entry: Optional[dict] = None,
                    error: Optional[str] = None,
                    failure: Optional[dict] = None) -> None:
        """Settle a job and all its coalesced followers (any thread)."""
        with self._registry_lock:
            job.state = state
            job.entry = entry
            job.error = error
            job.failure = failure
            job.finished_at = time.monotonic()
            if self._inflight.get(job.key) == job.id:
                del self._inflight[job.key]
            followers = list(job.followers)
        self._journal_done(job)
        self._account_finished(job)
        job.event.set()
        for follower in followers:
            with self._registry_lock:
                follower.state = state
                follower.entry = entry
                follower.error = error
                follower.failure = failure
                follower.finished_at = job.finished_at
            self._journal_done(follower)
            self._account_finished(follower, coalesced=True)
            follower.event.set()

    def _account_finished(self, job: Job, coalesced: bool = False) -> None:
        if job.state == DONE:
            self.stats.bump("completed")
            self.stats.record_latency(job.latency())
            store = (job.entry or {}).get("store")
            if store and store.get("hit"):
                self.stats.bump(
                    "coalesce_store_hits" if coalesced else "store_hits"
                )
        else:
            self.stats.bump("failed")

    # ------------------------------------------------------------------
    # HTTP plumbing (asyncio thread)

    def snapshot(self) -> dict:
        doc = self.stats.snapshot()
        doc["queue"] = {
            "depth": len(self.queue),
            "capacity": self.config.queue_depth,
            "unfinished_jobs": self._unfinished(),
        }
        doc["breakers"] = self.breaker.snapshot()
        doc["mode"] = self._mode
        doc["workers"] = self.config.workers
        return doc

    async def _route(
        self, method: str, path: str, payload: dict
    ) -> Tuple[int, dict, List[Tuple[str, str]]]:
        path, _, query = path.partition("?")
        if path == "/healthz" and method == "GET":
            return 200, {
                "ok": self._mode != _HALTED,
                "draining": self._mode != _RUNNING,
            }, []
        if path == "/stats" and method == "GET":
            return 200, self.snapshot(), []
        if path == "/submit" and method == "POST":
            return self.submit(payload)
        if path == "/drain" and method == "POST":
            asyncio.get_running_loop().create_task(self.drain())
            return 200, {"draining": True}, []
        if path.startswith("/jobs/") and method == "GET":
            job_id = path[len("/jobs/"):]
            wait = 0.0
            for part in query.split("&"):
                if part.startswith("wait="):
                    try:
                        wait = min(60.0, float(part[5:]))
                    except ValueError:
                        return 400, {"error": "bad wait= value"}, []
            with self._registry_lock:
                job = self._registry.get(job_id)
            if job is None:
                return 404, {"error": f"unknown job {job_id!r}"}, []
            deadline = time.monotonic() + wait
            while (not job.event.is_set()
                   and time.monotonic() < deadline
                   and self._mode != _HALTED):
                await asyncio.sleep(0.05)
            return 200, job.to_json_dict(), []
        return 405, {"error": f"no route for {method} {path}"}, []

    async def _handle_connection(self, reader, writer) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._connections.add(task)
        try:
            request_line = await reader.readline()
            parts = request_line.decode("latin-1").split()
            if len(parts) < 2:
                return
            method, raw_path = parts[0], parts[1]
            headers = {}
            while True:
                line = await reader.readline()
                if line in (b"\r\n", b"\n", b""):
                    break
                name, _, value = line.decode("latin-1").partition(":")
                headers[name.strip().lower()] = value.strip()
            payload = {}
            length = int(headers.get("content-length", "0") or 0)
            if length:
                body = await reader.readexactly(length)
                try:
                    payload = json.loads(body)
                    if not isinstance(payload, dict):
                        raise ValueError("body must be a JSON object")
                except ValueError as exc:
                    await self._respond(
                        writer, 400, {"error": f"bad JSON body: {exc}"}, []
                    )
                    return
            try:
                status, doc, extra = await self._route(
                    method, raw_path, payload
                )
            except Exception as exc:  # noqa: BLE001 - keep serving
                status, doc, extra = 500, {
                    "error": f"{type(exc).__name__}: {exc}"
                }, []
            await self._respond(writer, status, doc, extra)
        except (asyncio.IncompleteReadError, ConnectionError):
            pass
        finally:
            if task is not None:
                self._connections.discard(task)
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _respond(self, writer, status, doc, extra) -> None:
        data = json.dumps(doc).encode("utf-8")
        head = [
            f"HTTP/1.1 {status} {_REASONS.get(status, 'OK')}",
            "Content-Type: application/json",
            f"Content-Length: {len(data)}",
            "Connection: close",
        ]
        head.extend(f"{name}: {value}" for name, value in extra)
        writer.write(
            ("\r\n".join(head) + "\r\n\r\n").encode("latin-1") + data
        )
        await writer.drain()


def serve_main(config: ServeConfig) -> int:
    """Blocking entry point for ``repro serve`` (returns exit code)."""
    daemon = ServeDaemon(config)
    try:
        asyncio.run(daemon.run())
    except KeyboardInterrupt:
        pass
    return 0
