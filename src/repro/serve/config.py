"""Tunables for the ``repro serve`` daemon, in one picklable dataclass."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


@dataclass
class ServeConfig:
    """Everything the daemon's policies read, with service-shaped defaults.

    The solve-side knobs (``time_limit``, ``max_extra``, supervision
    deadline/retries) mirror the CLI's; the service-side knobs bound how
    much work the daemon will *accept*, which is what keeps a
    heavy-tailed solver workload from melting the box: admission is
    refused long before the pool is.
    """

    host: str = "127.0.0.1"
    #: 0 = pick a free port (the bound port lands in ``port_file``).
    port: int = 0
    #: Worker processes in the supervised solve pool.
    workers: int = 2
    #: Jobs allowed in the admission queue (queued, not yet solving);
    #: beyond this, submissions are shed with 429 + Retry-After.
    queue_depth: int = 64
    #: Per-client token bucket: sustained submissions/second and burst.
    rate: float = 20.0
    burst: int = 20
    #: Per-job wall-clock deadline (supervision kills past it + grace).
    deadline: float = 120.0
    grace: float = 5.0
    max_retries: int = 1
    backoff: float = 0.25
    #: Per-candidate-period solver budget inside a job's sweep.
    time_limit: float = 10.0
    max_extra: int = 10
    #: Consecutive failures that trip a backend's circuit breaker, and
    #: how long it stays open before a half-open probe is allowed.
    breaker_threshold: int = 3
    breaker_cooldown: float = 10.0
    #: Content-addressed store root (shared cache tier); None disables.
    store: Optional[str] = None
    #: Accepted/done journal for drain + crash resume; None disables.
    journal: Optional[str] = None
    #: Seconds the SIGTERM drain waits for in-flight jobs before
    #: journaling the stragglers for the next incarnation.
    drain_grace: float = 30.0
    #: When set, the daemon writes its bound port here once listening —
    #: how tests and ``repro loadgen --manage`` discover a port=0 bind.
    port_file: Optional[str] = None

    def digest_settings(self) -> dict:
        """The solve-affecting settings pinned by the journal header."""
        return {
            "time_limit": self.time_limit,
            "max_extra": self.max_extra,
        }
