"""Scheduling-as-a-service: the ``repro serve`` daemon and its parts.

The service fronts the supervised solver pool and the content-addressed
store with the robustness layers a heavy-tailed solve workload needs:
admission control with load shedding, per-client rate limits and
weighted fair queueing (:mod:`repro.serve.admission`), request
coalescing on store keys, a per-backend circuit breaker
(:mod:`repro.serve.breaker`), journal-backed graceful drain and restart
(:mod:`repro.serve.journal`), and live ``/healthz`` + ``/stats``
introspection (:mod:`repro.serve.stats`).  See ``docs/service.md``.
"""

from repro.serve.breaker import CircuitBreaker
from repro.serve.client import ServeClient
from repro.serve.config import ServeConfig
from repro.serve.daemon import ServeDaemon

__all__ = [
    "CircuitBreaker",
    "ServeClient",
    "ServeConfig",
    "ServeDaemon",
]
