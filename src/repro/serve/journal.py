"""Accepted/done journal: the daemon's zero-lost-jobs guarantee.

Same physical format as the batch checkpoint journal (PR 4): a JSON
header line pinning the run configuration, then one JSON line per
event, appended with a single ``O_APPEND`` write so a torn tail can
only ever be the final line.  Two event kinds:

* ``accepted`` — written *before* the submit response leaves the
  daemon, carrying the full replayable request.  Once a client holds a
  job id, the journal holds everything needed to finish that job.
* ``done`` — written when the job reaches a terminal state, with the
  result entry (or failure taxonomy).

On restart, ``accepted`` without a matching ``done`` is exactly the
set of jobs a crash or SIGKILL interrupted: the daemon re-admits them
under their original ids, so a poller that survived the restart still
gets its answer.  ``done`` lines pre-populate the registry, so polls
for finished jobs keep working across restarts too.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Optional, Tuple

from repro.supervision.atomicio import AppendOnlyLines
from repro.supervision.journal import JournalError

SERVE_JOURNAL_VERSION = 1


class ServeJournal:
    """Append-side handle; one per daemon incarnation."""

    def __init__(self, path, digest: str) -> None:
        self.path = Path(path)
        header = None
        if self.path.exists():
            header, _, _ = read_serve_journal(self.path)
        self._writer = AppendOnlyLines(self.path)
        if header is None:
            self._writer.append(json.dumps({
                "journal_version": SERVE_JOURNAL_VERSION,
                "kind": "serve",
                "config_digest": digest,
            }, sort_keys=True))
        elif header.get("config_digest") != digest:
            self._writer.close()
            raise JournalError(
                f"serve journal {self.path} was written under different "
                "solve settings; refusing to mix — use a fresh journal"
            )

    def accepted(self, job_id: str, client: str, key: str,
                 request: dict, weight: int = 1) -> None:
        self._writer.append(json.dumps({
            "event": "accepted",
            "job": job_id,
            "client": client,
            "key": key,
            "weight": weight,
            "request": request,
        }, sort_keys=True))

    def done(self, job_id: str, state: str,
             entry: Optional[dict] = None,
             error: Optional[str] = None,
             failure: Optional[dict] = None) -> None:
        line = {"event": "done", "job": job_id, "state": state}
        if entry is not None:
            line["entry"] = entry
        if error is not None:
            line["error"] = error
        if failure is not None:
            line["failure"] = failure
        self._writer.append(json.dumps(line, sort_keys=True))

    def close(self) -> None:
        self._writer.close()

    def __enter__(self) -> "ServeJournal":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def read_serve_journal(
    path,
) -> Tuple[Optional[dict], Dict[str, dict], Dict[str, dict]]:
    """Parse into ``(header, accepted_by_id, done_by_id)``.

    Corrupt or truncated lines are skipped (indistinguishable from
    unwritten); later lines for the same job win, matching the
    append-only re-record discipline of the batch journal.
    """
    header: Optional[dict] = None
    accepted: Dict[str, dict] = {}
    done: Dict[str, dict] = {}
    try:
        text = Path(path).read_text(encoding="utf-8")
    except OSError:
        return None, accepted, done
    for index, line in enumerate(text.splitlines()):
        line = line.strip()
        if not line:
            continue
        try:
            doc = json.loads(line)
            if not isinstance(doc, dict):
                raise ValueError("journal line is not an object")
        except ValueError:
            continue  # torn tail / corruption: treat as unwritten
        if index == 0 and "journal_version" in doc:
            if doc.get("journal_version") != SERVE_JOURNAL_VERSION:
                raise JournalError(
                    f"unsupported serve journal version "
                    f"{doc.get('journal_version')!r} in {path}"
                )
            header = doc
            continue
        job_id = doc.get("job")
        if not isinstance(job_id, str):
            continue
        if doc.get("event") == "accepted":
            accepted[job_id] = doc
        elif doc.get("event") == "done":
            done[job_id] = doc
    return header, accepted, done


def unfinished_jobs(path) -> Dict[str, dict]:
    """Accepted lines with no matching done line: the resume set."""
    _, accepted, done = read_serve_journal(path)
    return {
        job_id: line for job_id, line in accepted.items()
        if job_id not in done
    }
