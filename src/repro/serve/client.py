"""A tiny blocking HTTP client for the serve daemon (stdlib only).

Used by ``repro loadgen``, the CI smoke test and anything else that
wants to talk to the daemon without hand-rolling requests.  One
connection per call (the daemon answers ``Connection: close``), which
also keeps the client trivially thread-safe for closed-loop load
generation.
"""

from __future__ import annotations

import http.client
import json
import time
from typing import Optional, Tuple


class ServeError(RuntimeError):
    """A non-2xx daemon response; carries status and body."""

    def __init__(self, status: int, body: dict) -> None:
        super().__init__(f"HTTP {status}: {body.get('error', body)}")
        self.status = status
        self.body = body


class ServeClient:
    def __init__(self, host: str, port: int, timeout: float = 70.0) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout

    def _request(
        self, method: str, path: str, payload: Optional[dict] = None
    ) -> Tuple[int, dict]:
        conn = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            body = None
            headers = {}
            if payload is not None:
                body = json.dumps(payload)
                headers["Content-Type"] = "application/json"
            conn.request(method, path, body=body, headers=headers)
            response = conn.getresponse()
            raw = response.read()
            try:
                doc = json.loads(raw) if raw else {}
            except ValueError:
                doc = {"error": raw.decode("utf-8", "replace")}
            return response.status, doc
        finally:
            conn.close()

    def _checked(self, method: str, path: str,
                 payload: Optional[dict] = None) -> dict:
        status, doc = self._request(method, path, payload)
        if status != 200:
            raise ServeError(status, doc)
        return doc

    # -- API ------------------------------------------------------------

    def submit(self, ddg: str, machine: str, **options) -> dict:
        """Submit a solve; returns the raw response (``job`` on 200).

        Raises :class:`ServeError` on shed/rate-limit/breaker refusals —
        callers doing load generation catch it and count the outcome.
        """
        payload = {"ddg": ddg, "machine": machine}
        payload.update(options)
        return self._checked("POST", "/submit", payload)

    def submit_raw(self, ddg: str, machine: str,
                   **options) -> Tuple[int, dict]:
        """Like :meth:`submit` but never raises: ``(status, body)``."""
        payload = {"ddg": ddg, "machine": machine}
        payload.update(options)
        return self._request("POST", "/submit", payload)

    def job(self, job_id: str, wait: float = 0.0) -> dict:
        path = f"/jobs/{job_id}"
        if wait:
            path += f"?wait={wait}"
        return self._checked("GET", path)

    def wait_for(self, job_id: str, timeout: float = 120.0) -> dict:
        """Long-poll until the job is terminal (or raise on timeout)."""
        deadline = time.monotonic() + timeout
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise TimeoutError(
                    f"job {job_id} still unfinished after {timeout}s"
                )
            doc = self.job(job_id, wait=min(10.0, remaining))
            if doc.get("state") in ("done", "failed", "shed", "cancelled"):
                return doc

    def stats(self) -> dict:
        return self._checked("GET", "/stats")

    def healthz(self) -> dict:
        return self._checked("GET", "/healthz")

    def drain(self) -> dict:
        return self._checked("POST", "/drain")

    def alive(self) -> bool:
        try:
            return bool(self.healthz().get("ok"))
        except (ServeError, OSError):
            return False
