"""Job objects and the picklable worker body the daemon dispatches.

A :class:`Job` lives on the daemon side only; what crosses the process
boundary is :func:`solve_request` — the same shape as the batch
runner's worker body (parse, validate, supervised ``run_sweep`` with
the worker-local caches and the shared store), returning the entry as
a plain JSON dict so the HTTP layer serves it verbatim.  Anything the
solve raises surfaces through the supervisor's failure taxonomy
(``MemoryError`` re-raised for OOM classification, everything else a
``solver_error``), so a job's failure always names a kind.
"""

from __future__ import annotations

import threading
import time
from typing import Dict, List, Optional, Tuple

from repro.core.scheduler import AttemptConfig
from repro.machine import presets
from repro.parallel import cache
from repro.parallel.batch import BatchEntry
from repro.supervision import faults

#: Job lifecycle states (terminal: done/failed/shed/cancelled).
QUEUED = "queued"
RUNNING = "running"
DONE = "done"
FAILED = "failed"
SHED = "shed"
CANCELLED = "cancelled"

TERMINAL_STATES = (DONE, FAILED, SHED, CANCELLED)

#: Source label entries carry in journals and reports.
SERVE_SOURCE = "<serve>"


class Job:
    """One accepted submission and its (eventual) outcome.

    Mutated by the HTTP thread (creation) and the dispatcher thread
    (completion); ``event`` flips exactly once, when the job reaches a
    terminal state, and long-polling handlers wait on it.
    """

    def __init__(
        self,
        job_id: str,
        client: str,
        key: str,
        request: Dict[str, object],
        weight: int = 1,
    ) -> None:
        self.id = job_id
        self.client = client
        #: ``store.keys.store_key`` of the request — the coalescing key.
        self.key = key
        #: Picklable request payload (ddg text, machine name, config
        #: fields) — exactly what the journal replays on resume.
        self.request = request
        self.weight = weight
        self.state = QUEUED
        self.submitted_at = time.monotonic()
        self.finished_at: Optional[float] = None
        self.entry: Optional[dict] = None
        self.error: Optional[str] = None
        self.failure: Optional[dict] = None
        self.event = threading.Event()
        #: Jobs coalesced onto this one (they share the solve).
        self.followers: List["Job"] = []
        #: Set on followers: the primary's job id.
        self.coalesced_with: Optional[str] = None

    @property
    def finished(self) -> bool:
        return self.state in TERMINAL_STATES

    def latency(self) -> float:
        end = self.finished_at if self.finished_at else time.monotonic()
        return end - self.submitted_at

    def to_json_dict(self, include_entry: bool = True) -> dict:
        doc: Dict[str, object] = {
            "job": self.id,
            "client": self.client,
            "key": self.key,
            "state": self.state,
        }
        if self.coalesced_with is not None:
            doc["coalesced_with"] = self.coalesced_with
        if self.finished:
            doc["seconds"] = round(self.latency(), 6)
        if self.error is not None:
            doc["error"] = self.error
        if self.failure is not None:
            doc["failure"] = self.failure
        if include_entry and self.entry is not None:
            doc["entry"] = self.entry
        return doc


def request_config(request: Dict[str, object]) -> AttemptConfig:
    """The :class:`AttemptConfig` a request resolves to (admission-time).

    ``backend="portfolio"`` stays symbolic here — the dispatcher expands
    it against the breaker-filtered roster; the config fingerprint (and
    hence the coalescing key) treats the portfolio as one logical solve.
    """
    return AttemptConfig(
        backend=str(request.get("backend", "auto")),
        objective=str(request.get("objective", "feasibility")),
        time_limit=float(request["time_limit"]),
        warmstart=bool(request.get("warmstart", True)),
    )


def solve_request(
    text: str,
    machine_name: str,
    backend: str,
    objective: str,
    time_limit: float,
    max_extra: int,
    warmstart: bool = True,
    store_path: Optional[str] = None,
) -> dict:
    """Worker body: schedule one submitted loop, return its entry dict.

    Runs in a supervised worker process.  Errors are deliberately *not*
    swallowed into an error entry (unlike the batch body): the
    supervisor's taxonomy is the service's failure channel, and the
    breaker needs real per-backend failures to count.
    """
    from repro.core.scheduler import run_sweep
    from repro.ddg.builders import parse_ddg

    machine = presets.by_name(machine_name)
    ddg = parse_ddg(text)
    ddg.validate_against(machine)
    faults.fire("solve", loop=ddg.name, backend=backend)
    config = AttemptConfig(
        backend=backend,
        objective=objective,
        time_limit=time_limit,
        warmstart=warmstart,
    )
    store = None
    if store_path is not None:
        from repro.store import open_store

        store = open_store(store_path)
    result = run_sweep(
        ddg, machine, config, max_extra,
        bounds=cache.cached_lower_bounds(ddg, machine),
        formulation_builder=cache.cached_formulation,
        warmstart_provider=cache.cached_warmstart,
        store=store,
    )
    return BatchEntry(
        name=ddg.name,
        source=SERVE_SOURCE,
        num_ops=ddg.num_ops,
        result=result,
    ).to_json_dict()


def solve_args(
    request: Dict[str, object],
    backend: str,
    max_extra: int,
    store_path: Optional[str],
) -> Tuple:
    """Positional args for :func:`solve_request` (picklable)."""
    return (
        request["ddg"],
        request["machine"],
        backend,
        request.get("objective", "feasibility"),
        request["time_limit"],
        max_extra,
        request.get("warmstart", True),
        store_path,
    )
