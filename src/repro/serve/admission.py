"""Admission control: per-client token buckets and weighted fair queueing.

The daemon's first line of defense is refusing work it cannot serve
well.  Two mechanisms, both thread-safe and clock-injectable:

* :class:`TokenBucket` — classic leaky-bucket rate limiting per client:
  ``burst`` tokens capacity, refilled at ``rate`` tokens/second.  An
  empty bucket yields the seconds until the next token, which the HTTP
  layer turns into ``429`` + ``Retry-After``.
* :class:`FairQueue` — weighted fair queueing over per-client backlogs
  using virtual finish times: each enqueued job is stamped
  ``max(queue_virtual_time, client_last_tag) + 1/weight`` and the
  smallest tag is served first.  A client flooding the queue only
  delays *itself*; a weight-3 client drains three jobs for every one of
  a weight-1 client under contention, and an idle queue serves anyone
  immediately.  The queue also enforces the global depth bound — the
  load-shedding threshold — so "queue full" is decided exactly where
  the queue lives.
"""

from __future__ import annotations

import heapq
import itertools
import threading
import time
from typing import Callable, Dict, Optional

#: Weights accepted from clients, clamped to keep one client from
#: declaring itself infinitely important.
MIN_WEIGHT = 1
MAX_WEIGHT = 10


class TokenBucket:
    """``rate`` tokens/second, ``burst`` capacity, lazily refilled."""

    def __init__(
        self,
        rate: float,
        burst: int,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if rate <= 0:
            raise ValueError(f"rate must be > 0, got {rate}")
        if burst < 1:
            raise ValueError(f"burst must be >= 1, got {burst}")
        self.rate = rate
        self.burst = burst
        self._clock = clock
        self._tokens = float(burst)
        self._refilled_at = clock()
        self._lock = threading.Lock()

    def _refill(self, now: float) -> None:
        elapsed = max(0.0, now - self._refilled_at)
        self._tokens = min(self.burst, self._tokens + elapsed * self.rate)
        self._refilled_at = now

    def take(self) -> Optional[float]:
        """Consume one token; None on success, else seconds to wait."""
        with self._lock:
            now = self._clock()
            self._refill(now)
            if self._tokens >= 1.0:
                self._tokens -= 1.0
                return None
            return (1.0 - self._tokens) / self.rate


class FairQueue:
    """Weighted-fair FIFO over per-client submissions (thread-safe).

    Items are opaque; fairness only reads ``client`` and ``weight``.
    ``push`` refuses beyond ``depth`` (the shed signal), ``pop`` returns
    the item with the smallest virtual finish time or None when empty.
    """

    def __init__(self, depth: int) -> None:
        if depth < 1:
            raise ValueError(f"depth must be >= 1, got {depth}")
        self.depth = depth
        self._lock = threading.Lock()
        self._heap = []  # (tag, seq, item)
        self._seq = itertools.count()  # FIFO tie-break for equal tags
        self._virtual_time = 0.0
        self._client_tags: Dict[str, float] = {}

    def __len__(self) -> int:
        with self._lock:
            return len(self._heap)

    def push(self, item, client: str, weight: int = 1) -> bool:
        """Enqueue; False when the queue is at depth (caller sheds)."""
        weight = max(MIN_WEIGHT, min(MAX_WEIGHT, int(weight)))
        with self._lock:
            if len(self._heap) >= self.depth:
                return False
            start = max(
                self._virtual_time, self._client_tags.get(client, 0.0)
            )
            tag = start + 1.0 / weight
            self._client_tags[client] = tag
            heapq.heappush(self._heap, (tag, next(self._seq), item))
            return True

    def pop(self):
        with self._lock:
            if not self._heap:
                return None
            tag, _, item = heapq.heappop(self._heap)
            self._virtual_time = tag
            if not self._heap:
                # Idle queue: forget per-client history so a returning
                # client is not penalized for long-finished bursts.
                self._client_tags.clear()
            return item
