"""Live service counters behind ``/stats``.

One thread-safe accumulator shared by the HTTP handlers (admission
outcomes) and the dispatcher thread (solve outcomes).  Latency
percentiles come from a bounded reservoir of recent completions — a
daemon serving millions of requests must not hold per-request state
forever, and p50/p99 over the last window is what an operator actually
watches.
"""

from __future__ import annotations

import threading
from collections import Counter, deque
from typing import Deque, Dict, Optional

#: Completions kept for the latency percentiles.
_LATENCY_WINDOW = 2048


def percentile(samples, fraction: float) -> Optional[float]:
    """Nearest-rank percentile; None on an empty sample set."""
    if not samples:
        return None
    ordered = sorted(samples)
    rank = min(len(ordered) - 1, int(fraction * len(ordered)))
    return ordered[rank]


class ServeStats:
    """Counters + latency reservoir; every method is thread-safe."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Counter = Counter()
        self._failure_kinds: Counter = Counter()
        self._latencies: Deque[float] = deque(maxlen=_LATENCY_WINDOW)

    def bump(self, name: str, amount: int = 1) -> None:
        with self._lock:
            self._counters[name] += amount

    def record_failure_kind(self, kind: str) -> None:
        with self._lock:
            self._failure_kinds[kind] += 1

    def record_latency(self, seconds: float) -> None:
        with self._lock:
            self._latencies.append(seconds)

    def count(self, name: str) -> int:
        with self._lock:
            return self._counters[name]

    def snapshot(self) -> Dict[str, object]:
        with self._lock:
            latencies = list(self._latencies)
            counters = dict(self._counters)
            failures = dict(self._failure_kinds)
        completed = counters.get("completed", 0)
        failed = counters.get("failed", 0)
        finished = completed + failed
        return {
            "counters": counters,
            "failure_kinds": failures,
            "error_rate": (failed / finished) if finished else 0.0,
            "latency": {
                "samples": len(latencies),
                "p50_seconds": percentile(latencies, 0.50),
                "p99_seconds": percentile(latencies, 0.99),
            },
        }
