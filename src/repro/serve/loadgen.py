"""``repro loadgen``: closed+open-loop load generation against the daemon.

Two phases drive the seeded corpus mix through a live daemon:

* **closed loop** — ``concurrency`` threads each submit, long-poll the
  result, then immediately submit again: the classic saturation probe,
  measuring sustained throughput at a fixed multiprogramming level.
* **open loop** — submissions arrive at a fixed rate regardless of
  completions (the arrival process real services face); completions are
  collected afterwards.  Refusals (shed, rate-limited, breaker) are
  counted, not retried — bounded error behavior under overload is the
  thing being measured.

The mix deliberately repeats loops so request coalescing has duplicates
to collapse, and respects ``REPRO_FAULTS`` in the daemon's environment
so the error-rate bound is exercised under injected crashes.

``run_benchmark`` is the managed mode behind ``repro loadgen --manage``:
it boots a daemon subprocess, runs both phases, SIGKILLs the daemon
mid-load, restarts it on the same journal, and verifies **every
accepted job reaches a terminal state** — the zero-lost-jobs
differential — before writing BENCH_serve.json.
"""

from __future__ import annotations

import json
import os
import random
import signal
import subprocess
import sys
import tempfile
import threading
import time
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from repro.serve.client import ServeClient, ServeError
from repro.serve.stats import percentile
from repro.supervision.atomicio import atomic_write_json

#: Terminal job states a poller can observe.
_TERMINAL = ("done", "failed", "shed", "cancelled")


def corpus_mix(
    corpus: Sequence[Path],
    count: int,
    duplicate_fraction: float = 0.5,
    seed: int = 0,
) -> List[str]:
    """``count`` DDG texts sampled from ``corpus`` with forced repeats.

    ``duplicate_fraction`` of the mix re-submits already-chosen loops,
    guaranteeing the coalescer and the store tier have duplicates to
    collapse; the rest cycles fresh files deterministically.
    """
    paths = sorted(corpus)
    if not paths:
        raise ValueError("corpus mix needs at least one .ddg file")
    rng = random.Random(seed)
    texts: List[str] = []
    fresh = 0
    for _ in range(count):
        if texts and rng.random() < duplicate_fraction:
            texts.append(rng.choice(texts))
        else:
            texts.append(
                paths[fresh % len(paths)].read_text(encoding="utf-8")
            )
            fresh += 1
    return texts


class PhaseResult:
    """Counters for one load phase (thread-safe accumulation)."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._lock = threading.Lock()
        self.submitted = 0
        self.accepted = 0
        self.refused: Dict[str, int] = {}
        self.completed = 0
        self.failed = 0
        self.latencies: List[float] = []
        self.job_ids: List[str] = []
        self.wall_seconds = 0.0

    def record_accept(self, job_id: str) -> None:
        with self._lock:
            self.submitted += 1
            self.accepted += 1
            self.job_ids.append(job_id)

    def record_refusal(self, status: int) -> None:
        with self._lock:
            self.submitted += 1
            key = str(status)
            self.refused[key] = self.refused.get(key, 0) + 1

    def record_outcome(self, state: str, latency: float) -> None:
        with self._lock:
            if state == "done":
                self.completed += 1
                self.latencies.append(latency)
            else:
                self.failed += 1

    def to_json_dict(self) -> dict:
        finished = self.completed + self.failed
        return {
            "phase": self.name,
            "submitted": self.submitted,
            "accepted": self.accepted,
            "refused": self.refused,
            "completed": self.completed,
            "failed": self.failed,
            "error_rate": (self.failed / finished) if finished else 0.0,
            "wall_seconds": round(self.wall_seconds, 3),
            "throughput_rps": (
                round(finished / self.wall_seconds, 3)
                if self.wall_seconds > 0 else None
            ),
            "p50_seconds": percentile(self.latencies, 0.50),
            "p99_seconds": percentile(self.latencies, 0.99),
        }


def closed_loop(
    client: ServeClient,
    texts: Sequence[str],
    machine: str,
    concurrency: int = 4,
    timeout: float = 120.0,
    backend: str = "auto",
    warmstart: bool = True,
) -> PhaseResult:
    """Drive ``texts`` with ``concurrency`` submit-and-wait workers."""
    result = PhaseResult("closed_loop")
    queue = list(texts)
    lock = threading.Lock()
    start = time.monotonic()

    def worker(worker_id: int) -> None:
        while True:
            with lock:
                if not queue:
                    return
                text = queue.pop()
            try:
                doc = client.submit(
                    text, machine, backend=backend,
                    warmstart=warmstart,
                    client=f"closed-{worker_id}",
                )
            except ServeError as exc:
                result.record_refusal(exc.status)
                continue
            except OSError:
                result.record_refusal(0)
                continue
            result.record_accept(doc["job"])
            submitted = time.monotonic()
            try:
                final = client.wait_for(doc["job"], timeout=timeout)
            except (TimeoutError, ServeError, OSError):
                result.record_outcome("failed", 0.0)
                continue
            result.record_outcome(
                final.get("state", "failed"),
                time.monotonic() - submitted,
            )

    threads = [
        threading.Thread(target=worker, args=(i,), daemon=True)
        for i in range(concurrency)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    result.wall_seconds = time.monotonic() - start
    return result


def open_loop(
    client: ServeClient,
    texts: Sequence[str],
    machine: str,
    rate: float = 10.0,
    timeout: float = 120.0,
    backend: str = "auto",
    warmstart: bool = True,
    on_accept=None,
) -> PhaseResult:
    """Submit at a fixed arrival rate, then collect every accepted job.

    ``on_accept(job_id)`` (when given) fires after each acceptance —
    the kill-and-restart differential uses it to know exactly which
    jobs the daemon owed an answer for at SIGKILL time.
    """
    result = PhaseResult("open_loop")
    interval = 1.0 / rate if rate > 0 else 0.0
    start = time.monotonic()
    for index, text in enumerate(texts):
        target = start + index * interval
        delay = target - time.monotonic()
        if delay > 0:
            time.sleep(delay)
        try:
            doc = client.submit(
                text, machine, backend=backend,
                warmstart=warmstart, client="open",
            )
        except ServeError as exc:
            result.record_refusal(exc.status)
            continue
        except OSError:
            result.record_refusal(0)
            continue
        result.record_accept(doc["job"])
        if on_accept is not None:
            on_accept(doc["job"])
    for job_id in list(result.job_ids):
        submitted = time.monotonic()
        try:
            final = client.wait_for(job_id, timeout=timeout)
        except (TimeoutError, ServeError, OSError):
            result.record_outcome("failed", 0.0)
            continue
        result.record_outcome(
            final.get("state", "failed"),
            time.monotonic() - submitted,
        )
    result.wall_seconds = time.monotonic() - start
    return result


# ----------------------------------------------------------------------
# managed mode: daemon lifecycle + the kill/restart differential


class DaemonHandle:
    """A ``repro serve`` subprocess plus its discovered port."""

    def __init__(self, args: Sequence[str], env: Optional[dict] = None):
        self.args = list(args)
        self.env = dict(os.environ, **(env or {}))
        self.process: Optional[subprocess.Popen] = None
        self.port: Optional[int] = None
        self._port_file: Optional[str] = None

    def start(self, boot_timeout: float = 30.0) -> ServeClient:
        fd, self._port_file = tempfile.mkstemp(suffix=".port")
        os.close(fd)
        os.unlink(self._port_file)
        self.process = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", "--port", "0",
             "--port-file", self._port_file] + self.args,
            env=self.env,
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )
        deadline = time.monotonic() + boot_timeout
        while time.monotonic() < deadline:
            if self.process.poll() is not None:
                raise RuntimeError(
                    f"daemon exited during boot "
                    f"(code {self.process.returncode})"
                )
            try:
                self.port = int(
                    Path(self._port_file).read_text(encoding="utf-8")
                )
                break
            except (OSError, ValueError):
                time.sleep(0.05)
        else:
            self.kill()
            raise RuntimeError("daemon never wrote its port file")
        client = ServeClient("127.0.0.1", self.port)
        while time.monotonic() < deadline:
            if client.alive():
                return client
            time.sleep(0.05)
        self.kill()
        raise RuntimeError("daemon bound a port but never became healthy")

    def kill(self) -> None:
        """SIGKILL — the crash the restart differential recovers from."""
        if self.process is not None and self.process.poll() is None:
            self.process.send_signal(signal.SIGKILL)
            self.process.wait(timeout=10)

    def terminate(self, timeout: float = 60.0) -> int:
        """SIGTERM and wait: the graceful-drain exit."""
        if self.process is None:
            return 0
        if self.process.poll() is None:
            self.process.terminate()
            self.process.wait(timeout=timeout)
        return self.process.returncode or 0

    def cleanup(self) -> None:
        self.kill()
        if self._port_file and os.path.exists(self._port_file):
            os.unlink(self._port_file)


def run_benchmark(
    corpus: Sequence[Path],
    machine: str,
    out: Path,
    requests: int = 30,
    concurrency: int = 4,
    workers: int = 2,
    open_rate: float = 8.0,
    time_limit: float = 5.0,
    backend: str = "auto",
    warmstart: bool = True,
    kill_restart: bool = True,
    faults: Optional[str] = None,
    seed: int = 0,
    work_dir: Optional[Path] = None,
) -> dict:
    """Managed benchmark: boot, load, SIGKILL, restart, verify, report.

    Returns the BENCH document (also written atomically to ``out``):
    per-phase throughput/latency/error-rate, the daemon's own ``/stats``
    snapshot (coalesce + tier hit counters, breaker states, failure
    taxonomy), and the restart differential — accepted-at-kill job ids
    vs. jobs terminal after resume, which must lose nothing.
    """
    work = Path(work_dir) if work_dir else Path(tempfile.mkdtemp(
        prefix="repro-loadgen-"
    ))
    work.mkdir(parents=True, exist_ok=True)
    journal = work / "serve.journal.jsonl"
    store = work / "store"
    daemon_args = [
        "--workers", str(workers),
        "--time-limit", str(time_limit),
        "--journal", str(journal),
        "--store", str(store),
        "--deadline", "60",
    ]
    env = {}
    if faults:
        env["REPRO_FAULTS"] = faults
    env.setdefault("REPRO_FSYNC", os.environ.get("REPRO_FSYNC", "off"))
    texts = corpus_mix(corpus, requests, seed=seed)
    split = max(1, len(texts) // 2)
    handle = DaemonHandle(daemon_args, env=env)
    phases = []
    restart_report: Optional[dict] = None
    try:
        client = handle.start()
        closed = closed_loop(
            client, texts[:split], machine,
            concurrency=concurrency, backend=backend,
            warmstart=warmstart,
        )
        phases.append(closed)
        stats_before_kill: dict = {"counters": {}}
        accepted_before_kill: List[str] = []
        if kill_restart:
            # Snapshot the first incarnation's counters now: the
            # SIGKILL below erases its in-memory stats (the journal
            # keeps the jobs).
            stats_before_kill = client.stats()
            # SIGKILL the daemon the moment the open-loop phase has
            # accepted a few jobs it has not finished: the journal now
            # owes answers it never delivered.
            kill_after = max(2, min(4, len(texts) - split))

            def maybe_kill(job_id: str) -> None:
                accepted_before_kill.append(job_id)
                if len(accepted_before_kill) == kill_after:
                    handle.kill()

            interrupted = open_loop(
                client, texts[split:], machine, rate=open_rate,
                backend=backend, warmstart=warmstart,
                timeout=5.0, on_accept=maybe_kill,
            )
            phases.append(interrupted)
            client = handle.start()  # same journal: resume
            lost, states = [], {}
            for job_id in accepted_before_kill:
                try:
                    final = client.wait_for(job_id, timeout=120.0)
                    states[job_id] = final.get("state")
                    if final.get("state") not in _TERMINAL:
                        lost.append(job_id)
                except (TimeoutError, ServeError, OSError):
                    lost.append(job_id)
            restart_report = {
                "accepted_before_kill": len(accepted_before_kill),
                "resumed_terminal": len(states),
                "lost_jobs": lost,
                "states": states,
            }
        else:
            phases.append(open_loop(
                client, texts[split:], machine, rate=open_rate,
                backend=backend, warmstart=warmstart,
            ))
        daemon_stats = client.stats()
        # End-to-end error rate over every accepted job: steady-state
        # failures, plus the post-restart verdicts of the jobs the kill
        # interrupted (their in-phase "failed" was just a dead client).
        finished = closed.completed + closed.failed
        failed = closed.failed
        if restart_report is not None:
            finished += restart_report["resumed_terminal"]
            failed += sum(
                1 for state in restart_report["states"].values()
                if state != "done"
            )
        else:
            finished += phases[-1].completed + phases[-1].failed
            failed += phases[-1].failed

        def _summed(counter: str) -> int:
            return (
                stats_before_kill["counters"].get(counter, 0)
                + daemon_stats["counters"].get(counter, 0)
            )

        drained = client.drain()
        deadline = time.monotonic() + 60.0
        while handle.process.poll() is None and time.monotonic() < deadline:
            time.sleep(0.1)
        doc = {
            "bench": "serve_loadgen",
            "machine": machine,
            "requests": requests,
            "workers": workers,
            "backend": backend,
            "warmstart": warmstart,
            "faults": faults,
            "phases": [p.to_json_dict() for p in phases],
            "coalesce_hits": _summed("coalesced"),
            "store_hits": (
                _summed("store_hits") + _summed("coalesce_store_hits")
            ),
            "error_rate": (failed / finished) if finished else 0.0,
            "breakers": daemon_stats["breakers"],
            "failure_kinds": daemon_stats["failure_kinds"],
            "daemon_stats": daemon_stats,
            "restart": restart_report,
            "drain": drained,
        }
        atomic_write_json(out, doc)
        return doc
    finally:
        handle.cleanup()
