"""Per-backend circuit breaker for the solver portfolio.

A backend that starts crashing or hanging (a broken native library, a
pathological input class, an OOM-prone formulation) must not keep
eating worker slots and per-cell time budgets while healthy siblings
could serve every request.  The breaker watches per-backend outcomes
and walks the classic three states:

* **closed** — healthy; every cell is allowed.  ``threshold``
  *consecutive* failures trip it open (any success resets the count —
  solver workloads fail in bursts, not trickles).
* **open** — the backend is dropped from every roster
  (:meth:`CircuitBreaker.allows` is False) until ``cooldown`` seconds
  pass, bounding how long a broken backend can keep hurting.
* **half-open** — after the cooldown, probes are allowed through; the
  first recorded success closes the breaker, the first failure re-opens
  it for another full cooldown.

The breaker is duck-typed into :func:`repro.parallel.race_periods`
(``breaker=``) so the race layer never imports this module; anything
with ``allows`` / ``record_success`` / ``record_failure`` works.  All
methods are thread-safe — the daemon's dispatcher thread and the HTTP
admission path consult one shared instance — and the clock is
injectable so tests step through cooldowns without sleeping.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Dict, Optional, Sequence, Tuple

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"


class _BackendState:
    __slots__ = ("state", "failures", "opened_at", "last_kind")

    def __init__(self) -> None:
        self.state = CLOSED
        self.failures = 0
        self.opened_at = 0.0
        self.last_kind = ""


class CircuitBreaker:
    """Consecutive-failure breaker over a set of backend names."""

    def __init__(
        self,
        threshold: int = 3,
        cooldown: float = 10.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if threshold < 1:
            raise ValueError(f"threshold must be >= 1, got {threshold}")
        if cooldown < 0:
            raise ValueError(f"cooldown must be >= 0, got {cooldown}")
        self.threshold = threshold
        self.cooldown = cooldown
        self._clock = clock
        self._lock = threading.Lock()
        self._backends: Dict[str, _BackendState] = {}

    def _state(self, backend: str) -> _BackendState:
        state = self._backends.get(backend)
        if state is None:
            state = self._backends[backend] = _BackendState()
        return state

    # -- the race-facing protocol ---------------------------------------

    def allows(self, backend: str) -> bool:
        """Whether ``backend`` may be dispatched right now.

        An open breaker whose cooldown has elapsed transitions to
        half-open here (the check *is* the probe admission), so callers
        never need a separate timer.
        """
        with self._lock:
            state = self._state(backend)
            if state.state == OPEN:
                if self._clock() - state.opened_at >= self.cooldown:
                    state.state = HALF_OPEN
                else:
                    return False
            return True

    def record_success(self, backend: str) -> None:
        """A cell on ``backend`` delivered a verdict: heal."""
        with self._lock:
            state = self._state(backend)
            state.failures = 0
            if state.state != CLOSED:
                state.state = CLOSED

    def record_failure(self, backend: str, kind: str = "") -> None:
        """A cell on ``backend`` crashed/hung/erred: count toward a trip.

        In half-open the very first failure re-opens (the probe failed);
        in closed, ``threshold`` consecutive failures trip it.
        """
        with self._lock:
            state = self._state(backend)
            state.last_kind = kind
            if state.state == HALF_OPEN:
                state.state = OPEN
                state.opened_at = self._clock()
                state.failures = self.threshold
                return
            state.failures += 1
            if state.state == CLOSED and state.failures >= self.threshold:
                state.state = OPEN
                state.opened_at = self._clock()

    # -- daemon-side conveniences ---------------------------------------

    def state(self, backend: str) -> str:
        with self._lock:
            state = self._state(backend)
            if (state.state == OPEN
                    and self._clock() - state.opened_at >= self.cooldown):
                return HALF_OPEN
            return state.state

    def retry_after(self, backend: str) -> Optional[float]:
        """Seconds until an open ``backend`` half-opens (None if usable)."""
        with self._lock:
            state = self._state(backend)
            if state.state != OPEN:
                return None
            remaining = self.cooldown - (self._clock() - state.opened_at)
            return max(0.0, remaining)

    def filter_roster(self, roster: Sequence[str]) -> Tuple[str, ...]:
        """The subset of ``roster`` currently allowed to race."""
        return tuple(name for name in roster if self.allows(name))

    def snapshot(self) -> Dict[str, dict]:
        """Per-backend state for ``/stats`` (open cooldowns included)."""
        with self._lock:
            now = self._clock()
            out = {}
            for name, state in sorted(self._backends.items()):
                effective = state.state
                if (effective == OPEN
                        and now - state.opened_at >= self.cooldown):
                    effective = HALF_OPEN
                entry = {
                    "state": effective,
                    "consecutive_failures": state.failures,
                }
                if state.last_kind:
                    entry["last_failure_kind"] = state.last_kind
                if effective == OPEN:
                    entry["retry_after"] = round(
                        self.cooldown - (now - state.opened_at), 3
                    )
                out[name] = entry
            return out
