"""Content-addressed keys for the persistent schedule store.

A store entry answers the question "what does the §6 sweep produce for
*this* loop on *this* machine under *these* semantics?", so its key is
built from exactly three canonical digests:

* the **loop**: the canonical DDG digest of :mod:`repro.ddg.canonical`
  — invariant to loop/op naming and op/edge order, so structurally
  identical loops from different files share one entry;
* the **machine**: a canonicalized machine digest — invariant to the
  machine's display name *and* to FU-type renaming (an FU type is
  identified by its content: copy count, cost, reservation rows, and
  the set of op classes bound to it — the binding structure is what
  decides which ops compete for capacity);
* the **semantic fingerprint** of the sweep configuration: the fields
  that change *what* the result is (objective, mapping relaxation,
  modulo repair, sweep range), not *how fast* it was obtained.  Solver
  backend, time limits, presolve and warm-start flags are recorded as
  provenance on the entry but kept out of the key — the repo's
  differential test suites pin down that they do not change results.
"""

from __future__ import annotations

import hashlib
import json
from typing import Dict

from repro.machine import Machine

#: Entry schema version; bump on incompatible entry layout changes.
#: Mismatched entries read as misses (never as garbage results).
STORE_VERSION = 1


def canonical_machine_digest(machine: Machine) -> str:
    """Scheduling-content digest of a machine, invariant to naming.

    Digests every op class (the names the DDG actually references) with
    its latency, effective reservation table, and the *content
    signature* of the FU type it is bound to.  An FU signature includes
    the sorted list of class names bound to it, so two classes sharing
    one FU type (competing for its copies) never digest equal to the
    same classes on separate identical FU types.
    """
    bound: Dict[str, list] = {name: [] for name in machine.fu_types}
    for cls_name in sorted(machine.op_classes):
        bound[machine.op_classes[cls_name].fu_type].append(cls_name)
    fu_sig = {
        name: repr((fu.count, fu.cost, fu.table.matrix.tolist(),
                    tuple(bound[name])))
        for name, fu in machine.fu_types.items()
    }
    parts = []
    for cls_name in sorted(machine.op_classes):
        cls = machine.op_classes[cls_name]
        table = machine.reservation_for(cls_name)
        parts.append(repr((
            cls_name, cls.latency, table.matrix.tolist(),
            fu_sig[cls.fu_type],
        )))
    blob = "\n".join(parts).encode("utf-8")
    return hashlib.sha256(blob).hexdigest()


def config_fingerprint(config, max_extra: int) -> dict:
    """The semantic slice of an :class:`~repro.core.scheduler.AttemptConfig`.

    Only fields that partition result *content* enter the key; see the
    module docstring for why backend/budget/presolve/warm-start do not.
    """
    return {
        "objective": config.objective,
        "mapping": config.mapping,
        "repair_modulo": config.repair_modulo,
        "max_extra": max_extra,
    }


def fingerprint_digest(fingerprint: dict) -> str:
    blob = json.dumps(fingerprint, sort_keys=True).encode("utf-8")
    return hashlib.sha256(blob).hexdigest()


def store_key(ddg_digest: str, machine_digest: str,
              fingerprint: dict) -> str:
    """The content address of one store entry."""
    blob = "\n".join([
        f"store-v{STORE_VERSION}",
        ddg_digest,
        machine_digest,
        fingerprint_digest(fingerprint),
    ]).encode("utf-8")
    return hashlib.sha256(blob).hexdigest()
