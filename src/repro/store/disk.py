"""The on-disk store: sharded JSON entries, atomic writes, tolerant reads.

Layout: ``root/<key[:2]>/<key>.json`` — one file per content address,
sharded by the first digest byte so directory listings stay cheap at
tens of thousands of entries.  Writes go through
:func:`~repro.supervision.atomicio.atomic_write_text` with a per-write
unique tmp suffix (pid + per-process counter): concurrent publishers of
the same key never see each other's scratch files, ``os.replace`` makes
the winner's document appear whole, and a torn or corrupt file can only
predate this code.

Reads are maximally suspicious: unparseable JSON is deleted on sight and
reported as a miss; a ``store_version`` mismatch is a miss without
deletion (an older/newer tool may still want it).  Nothing in this
module trusts entry *content* — semantic validation (canonical-text
equality, schedule re-verification) lives in :mod:`repro.store.tiering`.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Iterator, Optional, Tuple

from repro.store.keys import STORE_VERSION
from repro.supervision.atomicio import atomic_write_text, unique_tmp_suffix


class ScheduleStore:
    """A persistent, content-addressed map of store key -> entry dict."""

    def __init__(self, root) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    def path_for(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    # -- primitive operations -------------------------------------------

    def read(self, key: str) -> Optional[dict]:
        """The entry at ``key``, or None (missing, corrupt, alien version).

        Corrupt files are evicted immediately: leaving them would turn
        one bad write into a permanent per-key slowdown (parse-fail on
        every lookup), and the store can always re-derive content.
        """
        path = self.path_for(key)
        try:
            text = path.read_text(encoding="utf-8")
        except OSError:
            return None
        try:
            entry = json.loads(text)
            if not isinstance(entry, dict):
                raise ValueError("entry root is not an object")
        except ValueError:
            self.delete(key)
            return None
        if entry.get("store_version") != STORE_VERSION:
            return None
        return entry

    def write(self, key: str, entry: dict) -> None:
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        # A per-write unique suffix (pid + per-process counter): two
        # publishers of the same key — whether different processes, two
        # threads of one daemon, or a recycled pid — can never truncate
        # each other's scratch file; os.replace keeps readers whole.
        atomic_write_text(
            path,
            json.dumps(entry, sort_keys=True) + "\n",
            tmp_suffix=unique_tmp_suffix(),
        )

    def delete(self, key: str) -> bool:
        try:
            self.path_for(key).unlink()
            return True
        except OSError:
            return False

    # -- enumeration ----------------------------------------------------

    def keys(self) -> Iterator[str]:
        for path in sorted(self.root.glob("??/*.json")):
            yield path.stem

    def entries(self) -> Iterator[Tuple[str, dict]]:
        """All readable entries; corrupt ones are evicted while walking."""
        for key in list(self.keys()):
            entry = self.read(key)
            if entry is not None:
                yield key, entry

    def __len__(self) -> int:
        return sum(1 for _ in self.keys())

    # -- maintenance ----------------------------------------------------

    def stats(self) -> dict:
        """Size/footprint summary for ``repro cache stats``."""
        count = 0
        total_bytes = 0
        oldest = newest = None
        for path in self.root.glob("??/*.json"):
            try:
                info = path.stat()
            except OSError:
                continue
            count += 1
            total_bytes += info.st_size
            mtime = info.st_mtime
            oldest = mtime if oldest is None else min(oldest, mtime)
            newest = mtime if newest is None else max(newest, mtime)
        return {
            "root": str(self.root),
            "entries": count,
            "bytes": total_bytes,
            "oldest_mtime": oldest,
            "newest_mtime": newest,
        }

    def gc(self, max_bytes: Optional[int] = None,
           max_age: Optional[float] = None) -> dict:
        """Evict by age, then by size (oldest mtime first).

        ``max_age`` is seconds; entries whose mtime is older are removed
        unconditionally.  If the surviving set still exceeds
        ``max_bytes``, the least-recently-written entries go until it
        fits.  Returns {removed, kept, bytes} counters.
        """
        now = time.time()
        survivors = []
        removed = 0
        for path in self.root.glob("??/*.json"):
            try:
                info = path.stat()
            except OSError:
                continue
            if max_age is not None and now - info.st_mtime > max_age:
                path.unlink(missing_ok=True)
                removed += 1
                continue
            survivors.append((info.st_mtime, info.st_size, path))
        survivors.sort()
        total = sum(size for _, size, _ in survivors)
        if max_bytes is not None:
            while survivors and total > max_bytes:
                _, size, path = survivors.pop(0)
                path.unlink(missing_ok=True)
                total -= size
                removed += 1
        self._prune_empty_shards()
        return {"removed": removed, "kept": len(survivors), "bytes": total}

    def clear(self) -> int:
        removed = 0
        for path in self.root.glob("??/*.json"):
            path.unlink(missing_ok=True)
            removed += 1
        self._prune_empty_shards()
        return removed

    def _prune_empty_shards(self) -> None:
        for shard in self.root.glob("??"):
            if shard.is_dir():
                try:
                    shard.rmdir()
                except OSError:
                    pass
