"""Store entry schema: a full ``SchedulingResult`` as a JSON blob.

An entry carries everything needed to reconstruct the result on an
*isomorphic* loop: bounds, the complete per-period attempt log (which is
what the ``is_rate_optimal_proven`` claim is made of), warm-start stats,
and the schedule with starts/colors permuted into **canonical op
order** — so a hit on a renamed/reordered variant of the original loop
maps the payload back through its own canonical order.  The canonical
DDG text rides along verbatim: lookups compare it byte-for-byte against
the query's canonical text (digest equality alone never decides a hit),
and ``repro cache verify`` re-checks entries offline by parsing it.

Entries are provenance-rich but trust-poor: reconstruction re-verifies
the schedule against the *current* machine before anything is reused
(see :mod:`repro.store.tiering`).
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional

from repro.core.bounds import LowerBounds
from repro.core.schedule import Schedule
from repro.core.scheduler import (
    ScheduleAttempt,
    SchedulingResult,
    WarmStartStats,
)
from repro.ddg.canonical import CanonicalForm
from repro.ddg.graph import Ddg
from repro.machine import Machine
from repro.store.keys import STORE_VERSION


class EntryError(ValueError):
    """Structurally unusable store entry (treated as a miss upstream)."""


def attempt_to_json(attempt: ScheduleAttempt) -> dict:
    return {
        "t_period": attempt.t_period,
        "status": attempt.status,
        "seconds": attempt.seconds,
        "model_stats": dict(attempt.model_stats),
        "nodes": attempt.nodes,
        "repaired": attempt.repaired,
        "bound": attempt.bound,
        "gap": attempt.gap,
        "warm_started": attempt.warm_started,
    }


def attempt_from_json(data: dict) -> ScheduleAttempt:
    return ScheduleAttempt(
        t_period=int(data["t_period"]),
        status=str(data["status"]),
        seconds=float(data.get("seconds", 0.0)),
        model_stats=dict(data.get("model_stats") or {}),
        nodes=int(data.get("nodes", 0)),
        repaired=bool(data.get("repaired", False)),
        bound=data.get("bound"),
        gap=data.get("gap"),
        warm_started=bool(data.get("warm_started", False)),
    )


def _warmstart_to_json(stats: Optional[WarmStartStats]) -> Optional[dict]:
    if stats is None:
        return None
    return {
        "enabled": stats.enabled,
        "heuristic_ii": stats.heuristic_ii,
        "heuristic_mii": stats.heuristic_mii,
        "heuristic_seconds": stats.heuristic_seconds,
        "placements": stats.placements,
        "ilp_solves": stats.ilp_solves,
    }


def _warmstart_from_json(data: Optional[dict]) -> Optional[WarmStartStats]:
    if data is None:
        return None
    return WarmStartStats(
        enabled=bool(data.get("enabled", False)),
        heuristic_ii=data.get("heuristic_ii"),
        heuristic_mii=data.get("heuristic_mii"),
        heuristic_seconds=float(data.get("heuristic_seconds", 0.0)),
        placements=int(data.get("placements", 0)),
        ilp_solves=int(data.get("ilp_solves", 0)),
    )


def result_to_entry(
    result: SchedulingResult,
    form: CanonicalForm,
    machine_digest: str,
    fingerprint: dict,
    provenance: Optional[dict] = None,
) -> dict:
    """Serialize a clean result into the store's JSON entry schema.

    ``form`` is the canonical identity of the loop the result was
    computed for; the schedule's starts/colors are permuted into its
    canonical order so they transfer to any isomorphic loop.
    """
    schedule = result.schedule
    if schedule is None:
        raise EntryError("only results with a schedule are storable")
    pos_of = {old: p for p, old in enumerate(form.order)}
    starts = [0] * len(form.order)
    colors: Dict[str, int] = {}
    for old, p in pos_of.items():
        starts[p] = schedule.starts[old]
        if old in schedule.colors:
            colors[str(p)] = schedule.colors[old]
    return {
        "store_version": STORE_VERSION,
        "ddg_digest": form.digest,
        "ddg": form.text,
        "machine_digest": machine_digest,
        "fingerprint": dict(fingerprint),
        "provenance": {
            "created": time.time(),
            "loop": result.loop_name,
            "solve_seconds": result.total_seconds,
            **(provenance or {}),
        },
        "result": {
            "bounds": {
                "t_dep": result.bounds.t_dep,
                "t_res": result.bounds.t_res,
            },
            "attempts": [attempt_to_json(a) for a in result.attempts],
            "warmstart": _warmstart_to_json(result.warmstart),
            "schedule": {
                "t_period": schedule.t_period,
                "starts": starts,
                "colors": colors,
                "fu_counts_used": schedule.fu_counts_used,
            },
        },
    }


def entry_to_result(
    entry: dict,
    ddg: Ddg,
    machine: Machine,
    order: List[int],
) -> SchedulingResult:
    """Reconstruct a result against the *query* loop and machine.

    ``order`` is the query DDG's canonical order; canonical position
    ``p`` of the stored payload corresponds to query op ``order[p]``.
    Raises :class:`EntryError` on any structural mismatch — upstream
    treats that as a verification failure (miss + eviction), never as
    data.
    """
    try:
        payload = entry["result"]
        sched = payload["schedule"]
        starts_canon = [int(v) for v in sched["starts"]]
        if len(starts_canon) != ddg.num_ops or len(order) != ddg.num_ops:
            raise EntryError(
                f"entry has {len(starts_canon)} starts for a "
                f"{ddg.num_ops}-op loop"
            )
        starts = [0] * ddg.num_ops
        for p, value in enumerate(starts_canon):
            starts[order[p]] = value
        colors: Dict[int, int] = {}
        for key, value in (sched.get("colors") or {}).items():
            colors[order[int(key)]] = int(value)
        schedule = Schedule(
            ddg=ddg,
            machine=machine,
            t_period=int(sched["t_period"]),
            starts=starts,
            colors=colors,
            fu_counts_used=sched.get("fu_counts_used"),
        )
        bounds = LowerBounds(
            t_dep=int(payload["bounds"]["t_dep"]),
            t_res=int(payload["bounds"]["t_res"]),
        )
        attempts = [attempt_from_json(a) for a in payload["attempts"]]
        warmstart = _warmstart_from_json(payload.get("warmstart"))
    except EntryError:
        raise
    except (KeyError, TypeError, ValueError, IndexError) as exc:
        raise EntryError(
            f"malformed store entry: {type(exc).__name__}: {exc}"
        ) from exc
    return SchedulingResult(
        loop_name=ddg.name,
        bounds=bounds,
        attempts=attempts,
        schedule=schedule,
        total_seconds=0.0,
        warmstart=warmstart,
    )
