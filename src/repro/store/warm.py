"""Warm the persistent store from a batch journal or report.

``repro cache warm journal.jsonl --store DIR`` turns a finished (or
half-finished) batch run into store content without re-solving anything:
each recorded entry that carries a ``schedule`` payload is re-parsed
from its source file, rebuilt into a :class:`SchedulingResult`, and
pushed through the normal :func:`repro.store.tiering.publish` path —
which re-verifies the schedule against the machine before anything is
written, so a stale journal can only produce skips, never bad entries.

Only v5+ documents carry schedule payloads; older journals/reports are
read fine but every entry skips with ``no_schedule``.  In-memory loops
(source ``"<memory>"``) skip too — there is no file to re-parse the DDG
from.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Optional

from repro.core.bounds import LowerBounds
from repro.core.errors import CoreError
from repro.core.schedule import Schedule
from repro.core.scheduler import (
    AttemptConfig,
    ScheduleAttempt,
    SchedulingResult,
    WarmStartStats,
)
from repro.ddg.builders import parse_ddg
from repro.ddg.errors import DdgError
from repro.machine import Machine
from repro.store.disk import ScheduleStore
from repro.store.tiering import publish


def _load_entry_docs(path) -> list:
    """Entry dicts from either a JSONL journal or a JSON report."""
    path = Path(path)
    text = path.read_text(encoding="utf-8")
    stripped = text.lstrip()
    if stripped.startswith("{") and "\n{" not in stripped.rstrip():
        # A single JSON object: a batch report.
        doc = json.loads(text)
        return list(doc.get("entries", []))
    from repro.supervision.journal import completed_entries

    _, done = completed_entries(path)
    return [record["entry"] for record in done.values()]


def _report_attempt(doc: dict) -> ScheduleAttempt:
    """Rebuild an attempt from *report* format (``t``, ``model``)."""
    return ScheduleAttempt(
        t_period=int(doc["t"]),
        status=str(doc["status"]),
        seconds=float(doc.get("seconds", 0.0)),
        model_stats=dict(doc.get("model") or {}),
        nodes=int(doc.get("nodes", 0)),
        repaired=bool(doc.get("repaired", False)),
        bound=doc.get("bound"),
        gap=doc.get("gap"),
        warm_started=bool(doc.get("warm_started", False)),
    )


def _report_result(doc: dict, ddg, machine: Machine) -> SchedulingResult:
    ws = doc.get("warmstart")
    warmstart = None
    if ws is not None:
        warmstart = WarmStartStats(
            enabled=bool(ws.get("enabled", False)),
            heuristic_ii=ws.get("heuristic_ii"),
            heuristic_mii=ws.get("heuristic_mii"),
            heuristic_seconds=float(ws.get("heuristic_seconds", 0.0)),
            placements=int(ws.get("placements", 0)),
            ilp_solves=int(ws.get("ilp_solves", 0)),
        )
    return SchedulingResult(
        loop_name=ddg.name,
        bounds=LowerBounds(
            t_dep=int(doc["t_dep"]), t_res=int(doc["t_res"])
        ),
        attempts=[_report_attempt(a) for a in doc.get("attempts", [])],
        schedule=Schedule.from_dict(doc["schedule"], ddg, machine),
        total_seconds=float(doc.get("seconds", 0.0)),
        warmstart=warmstart,
        degraded=bool(doc.get("degraded", False)),
    )


def _resolve_source(source: str, base: Path) -> Optional[Path]:
    path = Path(source)
    if path.is_file():
        return path
    relative = base / source
    if relative.is_file():
        return relative
    return None


def warm_store(
    path,
    store: ScheduleStore,
    machine: Machine,
    config: AttemptConfig,
    max_extra: int,
) -> dict:
    """Publish every usable entry of a journal/report into ``store``.

    ``machine``, ``config`` and ``max_extra`` must describe the run that
    produced the document — they form the content address and the
    verification context.  Returns counters:
    ``{"examined", "published", "skipped": {reason: count}}``.
    """
    base = Path(path).parent
    skipped: dict = {}

    def skip(reason: str) -> None:
        skipped[reason] = skipped.get(reason, 0) + 1

    docs = _load_entry_docs(path)
    published = 0
    for doc in docs:
        if doc.get("error") is not None:
            skip("error_entry")
            continue
        if doc.get("schedule") is None:
            skip("no_schedule")
            continue
        if doc.get("degraded"):
            skip("degraded")
            continue
        if any(a.get("failure") for a in doc.get("attempts", [])):
            skip("attempt_failure")
            continue
        source = doc.get("source", "<memory>")
        if source == "<memory>":
            skip("in_memory_source")
            continue
        resolved = _resolve_source(source, base)
        if resolved is None:
            skip("source_missing")
            continue
        try:
            ddg = parse_ddg(resolved.read_text(encoding="utf-8"))
            ddg.validate_against(machine)
            result = _report_result(doc, ddg, machine)
        except (OSError, DdgError, CoreError, KeyError, TypeError,
                ValueError) as exc:
            skip(f"rebuild_failed:{type(exc).__name__}")
            continue
        if publish(store, ddg, machine, config, max_extra, result):
            published += 1
        else:
            skip("verify_failed")
    return {
        "examined": len(docs),
        "published": published,
        "skipped": skipped,
    }
