"""Persistent, content-addressed schedule store.

Turns the §6 sweep into a three-tier lookup: per-process LRU entry
cache -> on-disk store shared across processes and runs -> actual
solve.  Keys are canonical content addresses (loop structure + machine
content + sweep semantics; see :mod:`repro.store.keys`), entries are
schema-versioned JSON blobs published atomically, and every hit is
re-verified against the current machine before it is trusted
(:mod:`repro.store.tiering`).  ``docs/performance.md`` documents the
tiering, invalidation rules and guarantees.
"""

from __future__ import annotations

from typing import Optional, Union

from repro.store.disk import ScheduleStore
from repro.store.entry import EntryError, entry_to_result, result_to_entry
from repro.store.keys import (
    STORE_VERSION,
    canonical_machine_digest,
    config_fingerprint,
    fingerprint_digest,
    store_key,
)
from repro.store.tiering import (
    clear_tiers,
    lookup,
    publish,
    tier_stats,
)
from repro.store.warm import warm_store

__all__ = [
    "STORE_VERSION",
    "EntryError",
    "ScheduleStore",
    "canonical_machine_digest",
    "clear_tiers",
    "config_fingerprint",
    "entry_to_result",
    "fingerprint_digest",
    "lookup",
    "open_store",
    "publish",
    "result_to_entry",
    "store_key",
    "tier_stats",
    "warm_store",
]


def open_store(
    value: Union[None, str, "ScheduleStore"],
) -> Optional[ScheduleStore]:
    """Coerce a CLI/API store argument: None, a path, or a live store."""
    if value is None or isinstance(value, ScheduleStore):
        return value
    return ScheduleStore(value)
