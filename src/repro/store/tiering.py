"""Three-tier result lookup: process memory -> disk store -> solve.

``lookup`` is the fast path bolted onto the front of
:func:`repro.core.scheduler.run_sweep`: canonicalize the query loop and
machine, form the content address, and probe a small in-process entry
cache, then the shared on-disk store.  A raw entry is never trusted —
before it becomes a hit it must pass, in order:

1. **canonical-text equality**: the entry's stored canonical DDG text
   must equal the query's byte-for-byte.  Digest equality got us to the
   file; text equality is what proves genuine isomorphism even if the
   WL-refined canonical labeling ever mapped two distinct graphs to one
   digest.
2. **bounds cross-check**: the stored ``(T_dep, T_res)`` must match the
   bounds recomputed for the query loop on the *current* machine, and
   the stored period must lie inside the query's sweep window.
3. **schedule re-verification**: the rebuilt schedule is run through
   :func:`repro.core.verify.verify_schedule` against the current
   machine.  This is the load-bearing guarantee — a stale, corrupted or
   adversarial entry can cost a failed lookup, never a wrong result.

Any failure evicts the entry from both tiers and reports a miss, so the
caller falls back to a cold solve which then re-publishes fresh content.
"""

from __future__ import annotations

import time
from typing import Optional, Tuple

from repro.core.errors import VerificationError
from repro.core.scheduler import (
    AttemptConfig,
    SchedulingResult,
    StoreStats,
)
from repro.core.verify import verify_schedule
from repro.ddg.canonical import CanonicalForm, canonical_form
from repro.ddg.graph import Ddg
from repro.machine import Machine
from repro.parallel.cache import LruCache, cached_lower_bounds, ddg_digest
from repro.store.disk import ScheduleStore
from repro.store.entry import EntryError, entry_to_result, result_to_entry
from repro.store.keys import (
    canonical_machine_digest,
    config_fingerprint,
    store_key,
)

#: raw DDG digest -> CanonicalForm.  Canonicalization is cheap but the
#: batch runner queries the same handful of shapes thousands of times.
_CANON_CACHE: LruCache[str, CanonicalForm] = LruCache(512)
#: store key -> entry dict (the in-process tier above the disk store).
_ENTRY_CACHE: LruCache[str, dict] = LruCache(256)


def cached_canonical_form(ddg: Ddg) -> CanonicalForm:
    raw = ddg_digest(ddg)
    form = _CANON_CACHE.get(raw)
    if form is None:
        form = canonical_form(ddg)
        _CANON_CACHE.put(raw, form)
    return form


def request_key(
    ddg: Ddg, machine: Machine, config: AttemptConfig, max_extra: int
) -> str:
    """The content address a ``(ddg, machine, config)`` query resolves to.

    Exposed for request coalescing in :mod:`repro.serve`: two
    submissions with the same key would perform byte-identical sweeps
    and publish the same store entry, so the daemon runs one solve and
    fans the result out.  Uses the same canonicalization cache as
    :func:`lookup`, so computing the key does not duplicate work the
    eventual solve needs anyway.
    """
    form = cached_canonical_form(ddg)
    return store_key(
        form.digest,
        canonical_machine_digest(machine),
        config_fingerprint(config, max_extra),
    )


def _validated_result(
    entry: dict,
    form: CanonicalForm,
    ddg: Ddg,
    machine: Machine,
    config: AttemptConfig,
    max_extra: int,
) -> Optional[SchedulingResult]:
    """Run the three validation gates; None means evict-and-miss."""
    if entry.get("ddg") != form.text:
        return None
    try:
        result = entry_to_result(entry, ddg, machine, form.order)
    except EntryError:
        return None
    bounds = cached_lower_bounds(ddg, machine)
    if (result.bounds.t_dep, result.bounds.t_res) != (
        bounds.t_dep, bounds.t_res,
    ):
        return None
    schedule = result.schedule
    if schedule is None:
        return None
    if not bounds.t_lb <= schedule.t_period <= bounds.t_lb + max_extra:
        return None
    try:
        verify_schedule(schedule, check_mapping=config.mapping is not False)
    except VerificationError:
        return None
    return result


def lookup(
    store: ScheduleStore,
    ddg: Ddg,
    machine: Machine,
    config: AttemptConfig,
    max_extra: int,
) -> Tuple[Optional[SchedulingResult], StoreStats]:
    """Probe both tiers for ``(ddg, machine, config)``; verify any hit."""
    clock = time.monotonic()
    form = cached_canonical_form(ddg)
    fingerprint = config_fingerprint(config, max_extra)
    key = store_key(
        form.digest, canonical_machine_digest(machine), fingerprint
    )
    stats = StoreStats(enabled=True, key=key)
    entry = _ENTRY_CACHE.get(key)
    tier = "memory" if entry is not None else None
    if entry is None:
        entry = store.read(key)
        if entry is not None:
            tier = "disk"
    if entry is None:
        stats.seconds = time.monotonic() - clock
        return None, stats
    result = _validated_result(entry, form, ddg, machine, config, max_extra)
    if result is None:
        _ENTRY_CACHE.pop(key)
        store.delete(key)
        stats.evicted = True
        stats.seconds = time.monotonic() - clock
        return None, stats
    if tier == "disk":
        _ENTRY_CACHE.put(key, entry)
    stats.hit = True
    stats.tier = tier
    stats.verified = True
    stats.seconds = time.monotonic() - clock
    return result, stats


def publishable(result: SchedulingResult) -> bool:
    """Only clean results enter the store: a schedule was found, the
    sweep did not degrade to an incumbent, and no attempt ended in a
    supervision failure (a failure means some smaller period's verdict
    is unknown, so the attempt log must not be replayed as authoritative
    on a future machine-identical query)."""
    return (
        result.schedule is not None
        and not result.degraded
        and all(a.failure is None for a in result.attempts)
    )


def publish(
    store: ScheduleStore,
    ddg: Ddg,
    machine: Machine,
    config: AttemptConfig,
    max_extra: int,
    result: SchedulingResult,
    stats: Optional[StoreStats] = None,
) -> bool:
    """Write a clean result under its content address (both tiers).

    Verifies the schedule once more before serializing — nothing enters
    the store unverified, so every reader's verify-on-read starts from
    content that was valid when written.
    """
    if not publishable(result):
        return False
    try:
        verify_schedule(
            result.schedule, check_mapping=config.mapping is not False
        )
    except VerificationError:
        return False
    form = cached_canonical_form(ddg)
    fingerprint = config_fingerprint(config, max_extra)
    key = store_key(
        form.digest, canonical_machine_digest(machine), fingerprint
    )
    entry = result_to_entry(
        result,
        form,
        canonical_machine_digest(machine),
        fingerprint,
        provenance={
            "backend": config.backend,
            "time_limit": config.time_limit,
            "presolve": config.presolve,
            "warmstart": config.warmstart,
        },
    )
    store.write(key, entry)
    _ENTRY_CACHE.put(key, entry)
    if stats is not None:
        stats.published = True
    return True


def tier_stats() -> dict:
    """Hit/miss counters for the in-process tiers (diagnostics)."""
    return {
        "canonical": {
            "hits": _CANON_CACHE.hits,
            "misses": _CANON_CACHE.misses,
            "size": len(_CANON_CACHE),
        },
        "entry": {
            "hits": _ENTRY_CACHE.hits,
            "misses": _ENTRY_CACHE.misses,
            "size": len(_ENTRY_CACHE),
        },
    }


def clear_tiers() -> None:
    """Drop the in-process tiers (tests; does not touch the disk store)."""
    _CANON_CACHE.clear()
    _ENTRY_CACHE.clear()
