"""Best-first branch-and-bound MILP solver over the pure-python simplex.

Branches on the most-fractional integer variable; nodes are explored in
best-bound order so the incumbent's optimality gap shrinks monotonically.
A wall-clock budget turns the result into ``TIME_LIMIT`` (with the
incumbent attached when one exists), mirroring the 10 s / 30 s budgets the
paper gave its commercial solver.
"""

from __future__ import annotations

import heapq
import itertools
import math
import time
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.ilp.model import Model
from repro.ilp.simplex import solve_lp
from repro.ilp.solution import Solution, SolveStatus
from repro.ilp.standard import ArrayForm, to_arrays

#: A variable value within this distance of an integer counts as integral.
INT_TOL = 1e-6


@dataclass(order=True)
class _Node:
    bound: float
    tie: int
    lb: np.ndarray = field(compare=False)
    ub: np.ndarray = field(compare=False)
    x: np.ndarray = field(compare=False)


def _most_fractional(x: np.ndarray, integrality: np.ndarray) -> Optional[int]:
    """Index of the integer variable farthest from integrality, or None."""
    best_j = None
    best_frac = INT_TOL
    for j in np.where(integrality)[0]:
        frac = abs(x[j] - round(x[j]))
        if frac > best_frac:
            best_frac = frac
            best_j = int(j)
    return best_j


def solve_bnb(
    model: Model,
    time_limit: Optional[float] = None,
    gap: float = 1e-6,
    node_limit: int = 200000,
) -> Solution:
    """Solve ``model`` with branch-and-bound; returns a :class:`Solution`."""
    start = time.monotonic()
    form = to_arrays(model)
    form.a_matrix  # materialize the dense tableau the simplex works on
    lower_seconds = time.monotonic() - start
    counter = itertools.count()

    root = solve_lp(form)
    if root.status == "infeasible":
        return _finish(model, form, SolveStatus.INFEASIBLE, None, None,
                       start, 1, lower_seconds)
    if root.status == "unbounded":
        return _finish(model, form, SolveStatus.UNBOUNDED, None, None,
                       start, 1, lower_seconds)
    if root.status != "optimal":
        return _finish(model, form, SolveStatus.ERROR, None, None, start, 1,
                       lower_seconds)

    heap = [
        _Node(root.objective, next(counter), form.lb.copy(), form.ub.copy(),
              root.x)
    ]
    incumbent_x: Optional[np.ndarray] = None
    incumbent_obj = math.inf
    nodes = 1
    timed_out = False

    while heap:
        if time_limit is not None and time.monotonic() - start > time_limit:
            timed_out = True
            break
        if nodes >= node_limit:
            timed_out = True
            break
        node = heapq.heappop(heap)
        if node.bound >= incumbent_obj - gap:
            continue  # cannot improve the incumbent
        branch_var = _most_fractional(node.x, form.integrality)
        if branch_var is None:
            # Integral LP optimum: new incumbent.
            if node.bound < incumbent_obj - gap:
                incumbent_obj = node.bound
                incumbent_x = node.x
            continue
        value = node.x[branch_var]
        for direction in ("down", "up"):
            child_lb = node.lb.copy()
            child_ub = node.ub.copy()
            if direction == "down":
                child_ub[branch_var] = math.floor(value)
            else:
                child_lb[branch_var] = math.ceil(value)
            if child_lb[branch_var] > child_ub[branch_var]:
                continue
            result = solve_lp(form, lb=child_lb, ub=child_ub)
            nodes += 1
            if result.status != "optimal":
                continue
            if result.objective >= incumbent_obj - gap:
                continue
            heapq.heappush(
                heap,
                _Node(result.objective, next(counter), child_lb, child_ub,
                      result.x),
            )

    if incumbent_x is not None:
        status = SolveStatus.FEASIBLE if timed_out else SolveStatus.OPTIMAL
        return _finish(model, form, status, incumbent_x, incumbent_obj,
                       start, nodes, lower_seconds)
    if timed_out:
        return _finish(model, form, SolveStatus.TIME_LIMIT, None, None,
                       start, nodes, lower_seconds)
    return _finish(model, form, SolveStatus.INFEASIBLE, None, None, start,
                   nodes, lower_seconds)


def _finish(
    model: Model,
    form: ArrayForm,
    status: SolveStatus,
    x: Optional[np.ndarray],
    minimized_obj: Optional[float],
    start: float,
    nodes: int,
    lower_seconds: float = 0.0,
) -> Solution:
    values = {}
    objective = None
    if x is not None:
        snapped = x.copy()
        for j in np.where(form.integrality)[0]:
            snapped[j] = round(snapped[j])
        values = {var: float(snapped[var.index]) for var in model.variables}
        objective = form.user_objective(float(minimized_obj))
    return Solution(
        status=status,
        objective=objective,
        values=values,
        bound=None,
        solve_seconds=time.monotonic() - start,
        lower_seconds=lower_seconds,
        nodes=nodes,
        backend="bnb",
    )
